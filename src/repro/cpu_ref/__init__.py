"""``repro.cpu_ref`` — sequential reference MapReduce (correctness oracle)."""

from .reference import (
    normalised,
    reference_job,
    reference_map,
    reference_reduce,
    reference_shuffle,
)

__all__ = [
    "normalised",
    "reference_job",
    "reference_map",
    "reference_reduce",
    "reference_shuffle",
]
