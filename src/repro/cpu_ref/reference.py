"""Sequential CPU reference MapReduce — the correctness oracle.

Runs the *same* user functions as the GPU framework (they are plain
Python over :class:`Accessor` views), with a deterministic
sort-by-key shuffle, so every GPU mode/strategy combination can be
checked for exact output equivalence (up to record order, which the
GPU's atomic appends legitimately permute — comparisons normalise by
sorting).
"""

from __future__ import annotations

from functools import reduce as _reduce
from typing import Iterable

from ..framework.api import MapReduceSpec
from ..framework.modes import ReduceStrategy
from ..framework.records import KeyValueSet
from ..gpu.accessor import Accessor


def reference_map(spec: MapReduceSpec, inp: KeyValueSet) -> KeyValueSet:
    """Run the Map phase sequentially."""
    out = KeyValueSet()
    const = Accessor(spec.const_bytes) if spec.const_bytes else None
    for k, v in inp:
        spec.map_record(
            Accessor(k), Accessor(v),
            lambda ek, ev: out.append(bytes(ek), bytes(ev)),
            const,
        )
    return out


def reference_shuffle(inter: KeyValueSet) -> list[tuple[bytes, list[bytes]]]:
    """Group by key, sorted by key bytes (matching the device shuffle)."""
    groups: dict[bytes, list[bytes]] = {}
    for k, v in inter:
        groups.setdefault(k, []).append(v)
    return sorted(groups.items())


def reference_reduce(
    spec: MapReduceSpec,
    grouped: Iterable[tuple[bytes, list[bytes]]],
    strategy: ReduceStrategy = ReduceStrategy.TR,
) -> KeyValueSet:
    """Run the Reduce phase sequentially under either strategy."""
    out = KeyValueSet()
    const = Accessor(spec.const_bytes) if spec.const_bytes else None
    for key, values in grouped:
        if strategy is ReduceStrategy.TR:
            spec.reduce_record(
                Accessor(key),
                [Accessor(v) for v in values],
                lambda ek, ev: out.append(bytes(ek), bytes(ev)),
                const,
            )
        else:
            acc = _reduce(spec.combine, values)
            k_out, v_out = spec.finalize(key, acc, len(values))
            out.append(bytes(k_out), bytes(v_out))
    return out


def reference_job(
    spec: MapReduceSpec,
    inp: KeyValueSet,
    strategy: ReduceStrategy | None = None,
) -> KeyValueSet:
    """Full sequential job: Map [+ Shuffle + Reduce]."""
    inter = reference_map(spec, inp)
    if strategy is None:
        return inter
    return reference_reduce(spec, reference_shuffle(inter), strategy)


def normalised(kvs: KeyValueSet) -> list[tuple[bytes, bytes]]:
    """Order-independent canonical form for output comparison."""
    return sorted(zip(kvs.keys, kvs.values))
