"""Linear Regression (LR) — from the Phoenix benchmark suite.

Beyond the paper's Table I; included (like SS and HG) to demonstrate
framework generality.  Fits ``y = slope * x + intercept`` by least
squares over a cloud of ``(x, y)`` points: each Map task takes one
point and emits the partial sums ``(x, y, x^2, x*y, 1)`` under a
single key; Reduce folds the partials and solves the two normal
equations.

The workload exercises the degenerate Shuffle case — every
intermediate record shares one key, so the Reduce phase is a single
giant group — the mirror image of Inverted Index's many tiny groups.
Both reduce strategies apply: TR walks the full value list in one
task; BR's commutative ``combine`` is just elementwise vector
addition, with ``finalize`` solving the normal equations once.
"""

from __future__ import annotations

import struct

import numpy as np

from ..framework.api import MapReduceSpec
from ..framework.columns import Column, ColumnBatch
from ..framework.records import KeyValueSet
from .base import ProblemSize, Workload

#: All partials fold under this single intermediate key.
LR_KEY = struct.pack("<I", 0)


def lr_map(key, value, emit, const) -> None:
    """Emit the point's contribution to the five running sums."""
    x = float(value.f32(0))
    y = float(value.f32(4))
    emit(LR_KEY, np.array([x, y, x * x, x * y, 1.0], dtype="<f4").tobytes())


def _solve(sums: np.ndarray) -> bytes:
    sx, sy, sxx, sxy, n = (float(s) for s in sums)
    denom = n * sxx - sx * sx
    slope = (n * sxy - sx * sy) / denom if denom else 0.0
    intercept = (sy - slope * sx) / n if n else 0.0
    return struct.pack("<ff", slope, intercept)


def lr_map_batch(cols, *, const=None):
    """Vectorized Map: all five partial-sum terms in two array ops.

    The scalar kernel computes ``x * x`` / ``x * y`` in f64 (Python
    floats) and rounds once to f32; the f64 column products below
    round identically.  Declines on points that are not exactly two
    ``f32`` values.
    """
    if cols.values.fixed_width != 8:
        return None
    pts = cols.values.fixed_array("<f4").astype(np.float64)
    x, y = pts[:, 0], pts[:, 1]
    out = np.column_stack(
        [x, y, x * x, x * y, np.ones(len(x))]
    ).astype("<f4")
    return ColumnBatch(
        Column.repeated(LR_KEY, len(cols)), Column.from_array(out)
    )


def lr_reduce(key, values, emit, const) -> None:
    """TR reduce: fold the partials, solve the normal equations."""
    acc = np.zeros(5, dtype=np.float64)
    for v in values:
        acc += v.f32_array(0, 5)
    emit(key.to_bytes(), _solve(acc))


def lr_reduce_batch(keys, offsets, values, *, const=None):
    """Vectorized TR reduce: sequential f64 ``reduceat`` folds (the
    scalar accumulation order), then :func:`_solve` per group."""
    if values.fixed_width != 20:
        return None
    arr = values.fixed_array("<f4").astype(np.float64)
    sums = np.add.reduceat(arr, offsets[:-1], axis=0)
    return ColumnBatch(keys, Column.from_list([_solve(s) for s in sums]))


def lr_combine(a: bytes, b: bytes) -> bytes:
    """BR combine: elementwise sum of the five partials."""
    va = np.frombuffer(a, dtype="<f4").astype(np.float64)
    vb = np.frombuffer(b, dtype="<f4").astype(np.float64)
    return (va + vb).astype("<f4").tobytes()


def lr_finalize(key: bytes, acc: bytes, count: int) -> tuple[bytes, bytes]:
    return key, _solve(np.frombuffer(acc, dtype="<f4").astype(np.float64))


class LinearRegression(Workload):
    code = "LR"
    title = "Linear Regression"
    has_reduce = True

    def spec(self) -> MapReduceSpec:
        return MapReduceSpec(
            name="linearreg",
            map_record=lr_map,
            reduce_record=lr_reduce,
            map_batch=lr_map_batch,
            reduce_batch=lr_reduce_batch,
            combine=lr_combine,
            finalize=lr_finalize,
            io_ratio=0.5,
            cycles_per_record=16.0,
            cycles_per_access=4.0,
            out_bytes_factor=3.0,
            out_records_factor=1.0,
        )

    def sizes(self) -> dict[str, ProblemSize]:
        # Phoenix used 50-500 MB point files; scaled down like the
        # rest (the value is the point count, 8 B each).
        return {
            "small": ProblemSize("small", 512, "4MB"),
            "medium": ProblemSize("medium", 2048, "16MB"),
            "large": ProblemSize("large", 8192, "64MB"),
        }

    def generate(self, size: str = "small", *, seed: int = 0, scale: float = 1.0
                 ) -> KeyValueSet:
        """Points scattered around a seeded ground-truth line."""
        n = self.size_value(size, scale)
        rng = np.random.default_rng(seed)
        slope = rng.uniform(-2.0, 2.0)
        intercept = rng.uniform(-5.0, 5.0)
        x = rng.uniform(0.0, 10.0, size=n)
        y = slope * x + intercept + rng.normal(0.0, 0.5, size=n)
        pts = np.column_stack([x, y]).astype("<f4")
        out = KeyValueSet()
        for row in pts:
            out.append(b"", row.tobytes())
        return out

    def expected_fit(self, inp: KeyValueSet) -> tuple[float, float]:
        """Host-side least-squares fit for checking outputs."""
        pts = np.array([
            struct.unpack("<ff", v) for _, v in inp
        ], dtype=np.float64)
        sums = np.array([
            pts[:, 0].sum(), pts[:, 1].sum(), (pts[:, 0] ** 2).sum(),
            (pts[:, 0] * pts[:, 1]).sum(), float(len(pts)),
        ])
        return struct.unpack("<ff", _solve(sums))
