"""KMeans (KM): one clustering iteration as MapReduce.

"Each Map task takes one vector and calculates its distance to K
centroid vectors of existing clusters, and then emits as an
intermediate result the id of the nearest cluster and the vector
itself.  Each Reduce task takes one cluster, and computes its new
centroid" (Section IV-B).

Table II shapes: input key empty, input value a 32-byte vector
(8 x f32); intermediate key = 4-byte cluster id, value = the vector;
Reduce ratio = vectors per cluster (huge).  The Map function re-reads
the input vector once per centroid — the "strong access locality"
that makes staged input shine — while the K centroids live in the
constant region (global memory, or the texture cache under GT, which
is why "the GT mode wins" for KM-M).
"""

from __future__ import annotations

import struct

import numpy as np

from ..framework.api import MapReduceSpec
from ..framework.columns import Column, ColumnBatch
from ..framework.records import KeyValueSet
from .base import ProblemSize, Workload
from .datagen import clustered_vectors

DIM = 8
VEC_BYTES = 4 * DIM


def km_map(key, value, emit, const) -> None:
    """Assign the vector (value) to its nearest centroid."""
    n_centroids = len(const) // VEC_BYTES
    best = -1
    best_d = np.inf
    for c in range(n_centroids):
        # Re-read the input vector for each centroid: the access
        # locality Section IV-D highlights.
        vec = value.f32_array(0, DIM)
        cen = const.f32_array(c * VEC_BYTES, DIM)
        d = float(((vec - cen) ** 2).sum())
        if d < best_d:
            best_d = d
            best = c
    emit(struct.pack("<I", best), value.to_bytes())


def km_map_batch(cols, *, const=None):
    """Vectorized Map: one broadcast distance matrix + argmin.

    Byte-identical to :func:`km_map`: distances are f32 sums over the
    contiguous last axis (same accumulation order as the scalar
    ``((vec - cen) ** 2).sum()``) and ``argmin`` takes the *first*
    minimum, matching the scalar strict-``<`` first-wins update.
    Declines (returns None) on ragged/odd-width values, a missing
    centroid table, or NaN distances — the scalar loop then reproduces
    the exact legacy behaviour, error cases included.
    """
    if cols.values.fixed_width != VEC_BYTES or not const:
        return None
    n_centroids = len(const) // VEC_BYTES
    if n_centroids == 0:
        return None
    vecs = cols.values.fixed_array("<f4")
    cens = np.frombuffer(
        const[: n_centroids * VEC_BYTES], dtype="<f4"
    ).reshape(n_centroids, DIM)
    d = ((vecs[:, None, :] - cens[None, :, :]) ** 2).sum(axis=2)
    if np.isnan(d).any():
        # The scalar `<` never accepts a NaN distance; argmin would.
        return None
    best = np.argmin(d, axis=1).astype("<u4")
    return ColumnBatch(Column.from_array(best), cols.values)


def km_reduce(key, values, emit, const) -> None:
    """TR reduce: new centroid = mean of the cluster's vectors."""
    acc = np.zeros(DIM, dtype=np.float64)
    for v in values:
        acc += v.f32_array(0, DIM)
    mean = (acc / max(1, len(values))).astype("<f4")
    emit(key.to_bytes(), mean.tobytes())


def km_reduce_batch(keys, offsets, values, *, const=None):
    """Vectorized TR reduce: per-group f64 ``reduceat`` sums -> mean.

    ``np.add.reduceat`` accumulates sequentially, matching the scalar
    ``acc += vec`` loop bit for bit; the final ``astype("<f4")`` is
    the same rounding :func:`km_reduce` applies.
    """
    if values.fixed_width != VEC_BYTES:
        return None
    arr = values.fixed_array("<f4").astype(np.float64)
    sums = np.add.reduceat(arr, offsets[:-1], axis=0)
    counts = np.diff(offsets)
    mean = (sums / counts[:, None]).astype("<f4")
    return ColumnBatch(keys, Column.from_array(mean))


def km_combine(a: bytes, b: bytes) -> bytes:
    """BR combine: elementwise vector sum."""
    va = np.frombuffer(a, dtype="<f4")
    vb = np.frombuffer(b, dtype="<f4")
    return (va.astype(np.float64) + vb.astype(np.float64)).astype("<f4").tobytes()


def km_finalize(key: bytes, acc: bytes, count: int) -> tuple[bytes, bytes]:
    """Divide the summed vector by the cluster population."""
    v = np.frombuffer(acc, dtype="<f4").astype(np.float64) / max(1, count)
    return key, v.astype("<f4").tobytes()


class KMeans(Workload):
    code = "KM"
    title = "KMeans"
    has_reduce = True

    def __init__(self, *, k: int = 16):
        self.k = k
        self._centroids: dict[int, bytes] = {}

    def spec(self) -> MapReduceSpec:
        # Constant region: the K current centroids.  Deterministic per
        # seed; generate() caches them.
        const = self._centroids.get(0)
        if const is None:
            _, init = clustered_vectors(1, dim=DIM, k=self.k, seed=0)
            const = init.tobytes()
            self._centroids[0] = const
        return MapReduceSpec(
            name="kmeans",
            map_record=km_map,
            reduce_record=km_reduce,
            map_batch=km_map_batch,
            reduce_batch=km_reduce_batch,
            combine=km_combine,
            finalize=km_finalize,
            const_bytes=const,
            io_ratio=0.5,
            cycles_per_record=32.0,
            cycles_per_access=6.0,
            out_bytes_factor=3.0,
            out_records_factor=4.0,
        )

    def sizes(self) -> dict[str, ProblemSize]:
        # Paper: 4 / 16 / 64 MB of vectors; scaled ~256x down.  The
        # value is the vector count (x 32 B each).
        return {
            "small": ProblemSize("small", 512, "4MB"),
            "medium": ProblemSize("medium", 2048, "16MB"),
            "large": ProblemSize("large", 8192, "64MB"),
        }

    def generate(self, size: str = "small", *, seed: int = 0, scale: float = 1.0
                 ) -> KeyValueSet:
        n = self.size_value(size, scale)
        vecs, init = clustered_vectors(n, dim=DIM, k=self.k, seed=seed)
        self._centroids[seed] = init.tobytes()
        out = KeyValueSet()
        for v in vecs:
            out.append(b"", v.tobytes())
        return out

    def spec_for_seed(self, seed: int) -> MapReduceSpec:
        """Spec whose centroids match ``generate(seed=seed)``."""
        if seed not in self._centroids:
            self.generate("small", seed=seed)
        spec = self.spec()
        spec.const_bytes = self._centroids[seed]
        return spec
