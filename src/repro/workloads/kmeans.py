"""KMeans (KM): one clustering iteration as MapReduce.

"Each Map task takes one vector and calculates its distance to K
centroid vectors of existing clusters, and then emits as an
intermediate result the id of the nearest cluster and the vector
itself.  Each Reduce task takes one cluster, and computes its new
centroid" (Section IV-B).

Table II shapes: input key empty, input value a 32-byte vector
(8 x f32); intermediate key = 4-byte cluster id, value = the vector;
Reduce ratio = vectors per cluster (huge).  The Map function re-reads
the input vector once per centroid — the "strong access locality"
that makes staged input shine — while the K centroids live in the
constant region (global memory, or the texture cache under GT, which
is why "the GT mode wins" for KM-M).
"""

from __future__ import annotations

import struct

import numpy as np

from ..framework.api import MapReduceSpec
from ..framework.records import KeyValueSet
from .base import ProblemSize, Workload
from .datagen import clustered_vectors

DIM = 8
VEC_BYTES = 4 * DIM


def km_map(key, value, emit, const) -> None:
    """Assign the vector (value) to its nearest centroid."""
    n_centroids = len(const) // VEC_BYTES
    best = -1
    best_d = np.inf
    for c in range(n_centroids):
        # Re-read the input vector for each centroid: the access
        # locality Section IV-D highlights.
        vec = value.f32_array(0, DIM)
        cen = const.f32_array(c * VEC_BYTES, DIM)
        d = float(((vec - cen) ** 2).sum())
        if d < best_d:
            best_d = d
            best = c
    emit(struct.pack("<I", best), value.to_bytes())


def km_reduce(key, values, emit, const) -> None:
    """TR reduce: new centroid = mean of the cluster's vectors."""
    acc = np.zeros(DIM, dtype=np.float64)
    for v in values:
        acc += v.f32_array(0, DIM)
    mean = (acc / max(1, len(values))).astype("<f4")
    emit(key.to_bytes(), mean.tobytes())


def km_combine(a: bytes, b: bytes) -> bytes:
    """BR combine: elementwise vector sum."""
    va = np.frombuffer(a, dtype="<f4")
    vb = np.frombuffer(b, dtype="<f4")
    return (va.astype(np.float64) + vb.astype(np.float64)).astype("<f4").tobytes()


def km_finalize(key: bytes, acc: bytes, count: int) -> tuple[bytes, bytes]:
    """Divide the summed vector by the cluster population."""
    v = np.frombuffer(acc, dtype="<f4").astype(np.float64) / max(1, count)
    return key, v.astype("<f4").tobytes()


class KMeans(Workload):
    code = "KM"
    title = "KMeans"
    has_reduce = True

    def __init__(self, *, k: int = 16):
        self.k = k
        self._centroids: dict[int, bytes] = {}

    def spec(self) -> MapReduceSpec:
        # Constant region: the K current centroids.  Deterministic per
        # seed; generate() caches them.
        const = self._centroids.get(0)
        if const is None:
            _, init = clustered_vectors(1, dim=DIM, k=self.k, seed=0)
            const = init.tobytes()
            self._centroids[0] = const
        return MapReduceSpec(
            name="kmeans",
            map_record=km_map,
            reduce_record=km_reduce,
            combine=km_combine,
            finalize=km_finalize,
            const_bytes=const,
            io_ratio=0.5,
            cycles_per_record=32.0,
            cycles_per_access=6.0,
            out_bytes_factor=3.0,
            out_records_factor=4.0,
        )

    def sizes(self) -> dict[str, ProblemSize]:
        # Paper: 4 / 16 / 64 MB of vectors; scaled ~256x down.  The
        # value is the vector count (x 32 B each).
        return {
            "small": ProblemSize("small", 512, "4MB"),
            "medium": ProblemSize("medium", 2048, "16MB"),
            "large": ProblemSize("large", 8192, "64MB"),
        }

    def generate(self, size: str = "small", *, seed: int = 0, scale: float = 1.0
                 ) -> KeyValueSet:
        n = self.size_value(size, scale)
        vecs, init = clustered_vectors(n, dim=DIM, k=self.k, seed=seed)
        self._centroids[seed] = init.tobytes()
        out = KeyValueSet()
        for v in vecs:
            out.append(b"", v.tobytes())
        return out

    def spec_for_seed(self, seed: int) -> MapReduceSpec:
        """Spec whose centroids match ``generate(seed=seed)``."""
        if seed not in self._centroids:
            self.generate("small", seed=seed)
        spec = self.spec()
        spec.const_bytes = self._centroids[seed]
        return spec
