"""``repro.workloads`` — the five evaluation workloads of Table I,
plus two extras from the wider Mars/Phoenix suites (Similarity Score,
Histogram) demonstrating framework generality."""

from .base import SIZES, ProblemSize, Workload
from .histogram import Histogram
from .invertedindex import InvertedIndex
from .kmeans import KMeans
from .matrixmul import MatrixMultiplication
from .similarity import SimilarityScore
from .stringmatch import StringMatch
from .wordcount import WordCount

#: Table I order.
ALL_WORKLOADS = (
    WordCount,
    MatrixMultiplication,
    StringMatch,
    InvertedIndex,
    KMeans,
)

#: Extra workloads beyond the paper's Table I.
EXTRA_WORKLOADS = (SimilarityScore, Histogram)

__all__ = [
    "ALL_WORKLOADS",
    "EXTRA_WORKLOADS",
    "Histogram",
    "SimilarityScore",
    "InvertedIndex",
    "KMeans",
    "MatrixMultiplication",
    "ProblemSize",
    "SIZES",
    "StringMatch",
    "WordCount",
    "Workload",
]
