"""``repro.workloads`` — the five evaluation workloads of Table I,
plus three extras from the wider Mars/Phoenix suites (Similarity
Score, Histogram, Linear Regression) demonstrating framework
generality."""

from .base import SIZES, ProblemSize, Workload
from .histogram import Histogram
from .invertedindex import InvertedIndex
from .kmeans import KMeans
from .linearreg import LinearRegression
from .matrixmul import MatrixMultiplication
from .similarity import SimilarityScore
from .stringmatch import StringMatch
from .wordcount import WordCount

#: Table I order.
ALL_WORKLOADS = (
    WordCount,
    MatrixMultiplication,
    StringMatch,
    InvertedIndex,
    KMeans,
)

#: Extra workloads beyond the paper's Table I.
EXTRA_WORKLOADS = (SimilarityScore, Histogram, LinearRegression)

__all__ = [
    "ALL_WORKLOADS",
    "EXTRA_WORKLOADS",
    "Histogram",
    "LinearRegression",
    "SimilarityScore",
    "InvertedIndex",
    "KMeans",
    "MatrixMultiplication",
    "ProblemSize",
    "SIZES",
    "StringMatch",
    "WordCount",
    "Workload",
]
