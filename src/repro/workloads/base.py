"""Workload interface: Table I's five benchmarks behind one protocol.

A :class:`Workload` bundles a :class:`MapReduceSpec` (the user
functions + tuning hints) with seeded input generation at the paper's
three problem sizes.  Sizes are scaled down from the paper's (the
simulator runs mechanisms, not silicon); ``scale`` multiplies them
back up for larger experiments.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..framework.api import MapReduceSpec
from ..framework.modes import ReduceStrategy
from ..framework.records import KeyValueSet

#: Problem-size names used throughout the paper.
SIZES = ("small", "medium", "large")


@dataclass(frozen=True)
class ProblemSize:
    """A named problem size with its paper-scale description."""

    name: str
    #: The quantity our generator uses (bytes of text, matrix order,
    #: vector count — workload-specific).
    value: int
    #: What the paper used at this size (for Table I).
    paper: str


class Workload(abc.ABC):
    """One of the five evaluation workloads."""

    #: Short name: WC, MM, SM, II, KM.
    code: str
    #: Full name for Table I.
    title: str
    #: Does the workload have a Reduce phase (Table II '-' rows don't)?
    has_reduce: bool

    @abc.abstractmethod
    def spec(self) -> MapReduceSpec:
        """The framework spec (user functions + hints)."""

    @abc.abstractmethod
    def sizes(self) -> dict[str, ProblemSize]:
        """The three problem sizes (scaled; see module docstring)."""

    @abc.abstractmethod
    def generate(self, size: str = "small", *, seed: int = 0, scale: float = 1.0
                 ) -> KeyValueSet:
        """Deterministically generate the input record set."""

    # ------------------------------------------------------------------

    def spec_for_size(self, size: str = "small", *, seed: int = 0,
                      scale: float = 1.0) -> MapReduceSpec:
        """Spec matching a particular generated input.

        Most workloads have one spec; Matrix Multiplication overrides
        this because its constant region (the matrices) depends on the
        problem size, and KMeans because its centroids depend on the
        seed.
        """
        if hasattr(self, "spec_for_seed"):
            return self.spec_for_seed(seed)
        return self.spec()

    def reduce_strategies(self) -> tuple[ReduceStrategy, ...]:
        return (ReduceStrategy.TR, ReduceStrategy.BR) if self.has_reduce else ()

    def size_value(self, size: str, scale: float = 1.0) -> int:
        ps = self.sizes()[size]
        return max(1, int(ps.value * scale))

    def table1_row(self) -> tuple[str, str]:
        """(workload title, problem sizes) — one row of Table I."""
        sizes = self.sizes()
        return (
            f"{self.title} ({self.code})",
            " / ".join(sizes[s].paper for s in SIZES),
        )
