"""String Match (SM): grep-style keyword search.

"Each Map task takes a line and searches for the keyword.  If a
keyword is found, the line is emitted as a result.  No Reduce phase"
(Section IV-B).  Output records are ``(line_id, match_position)`` —
two 4-byte fields, matching Table II's 4/0 output key and value, with
a hit on roughly 1 line in 3.83 (the Map ratio).

The keyword lives in the constant region (the texture-bound buffer in
GT mode); the scan charges the whole line, which is what gives SM its
"slight benefit from SI: more access locality when processing the
input data" (Section IV-D).
"""

from __future__ import annotations

import struct

from ..framework.api import MapReduceSpec
from ..framework.records import KeyValueSet
from .base import ProblemSize, Workload
from .datagen import match_lines

#: The planted keyword (also the paper's usage: a single search term).
KEYWORD = b"needle"


def sm_map(key, value, emit, const) -> None:
    """Scan the line (key) for the keyword; emit (line_id, position)."""
    keyword = const.to_bytes() if const is not None else KEYWORD
    pos = key.find(keyword)
    if pos >= 0:
        line_id = value.u32()
        emit(struct.pack("<I", line_id), struct.pack("<I", pos))


class StringMatch(Workload):
    code = "SM"
    title = "String Match"
    has_reduce = False

    def spec(self) -> MapReduceSpec:
        return MapReduceSpec(
            name="stringmatch",
            map_record=sm_map,
            const_bytes=KEYWORD,
            io_ratio=0.5,
            cycles_per_record=16.0,
            cycles_per_access=4.0,
            out_bytes_factor=2.0,
            out_records_factor=4.0,
        )

    def sizes(self) -> dict[str, ProblemSize]:
        # Paper: 16 / 32 / 64 MB; scaled ~256x down.
        return {
            "small": ProblemSize("small", 64 * 1024, "16MB"),
            "medium": ProblemSize("medium", 128 * 1024, "32MB"),
            "large": ProblemSize("large", 256 * 1024, "64MB"),
        }

    def generate(self, size: str = "small", *, seed: int = 0, scale: float = 1.0
                 ) -> KeyValueSet:
        nbytes = self.size_value(size, scale)
        lines = match_lines(nbytes, KEYWORD, seed=seed)
        out = KeyValueSet()
        for i, line in enumerate(lines):
            out.append(line, struct.pack("<I", i))
        return out
