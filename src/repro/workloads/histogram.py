"""Histogram (HG) — from the Phoenix/Mars benchmark families.

Beyond the paper's Table I; included to demonstrate framework
generality with an *extreme* key-set shape: a fixed, tiny key space
(256 intensity buckets) with enormous per-key populations — the
opposite corner from Word Count's many-small key sets, and exactly
the regime where block-level reduction (BR) shines and where the
Map phase's output contention concentrates on few hot records.

Input records are pixel rows (value = raw bytes); Map emits one
``(bucket, count)`` pair per bucket present in the row (a per-task
combiner, as real histogram kernels do); Reduce sums per bucket.
"""

from __future__ import annotations

import struct
from collections import Counter

import numpy as np

from ..framework.api import MapReduceSpec
from ..framework.columns import Column, ColumnBatch
from ..framework.records import KeyValueSet
from .base import ProblemSize, Workload

#: Intensity buckets (one byte of dynamic range).
BUCKETS = 64


def hg_map(key, value, emit, const) -> None:
    """Emit (bucket, partial_count) for every bucket in this row."""
    row = value.to_bytes()
    counts = Counter(b * BUCKETS // 256 for b in row)
    for bucket in sorted(counts):
        emit(struct.pack("<I", bucket), struct.pack("<I", counts[bucket]))


def hg_map_batch(cols, *, const=None):
    """Vectorized Map: one ``np.unique`` over ``row * BUCKETS + bucket``
    codes counts every (row, bucket) pair at once.

    ``np.unique`` returns codes sorted ascending — row-major, then
    bucket-ascending within a row — which is exactly the scalar
    emission order (rows in input order, ``sorted(counts)`` buckets).
    The uint16 upcast keeps ``b * BUCKETS`` out of uint8 overflow.
    Declines on ragged rows.
    """
    w = cols.values.fixed_width
    if w is None:
        return None
    mat = cols.values.matrix()
    buckets = mat.astype(np.uint16) * BUCKETS // 256
    n = len(cols)
    codes = (
        np.arange(n, dtype=np.int64)[:, None] * BUCKETS + buckets
    ).ravel()
    uniq, counts = np.unique(codes, return_counts=True)
    return ColumnBatch(
        Column.from_array((uniq % BUCKETS).astype("<u4")),
        Column.from_array(counts.astype("<u4")),
    )


def hg_reduce(key, values, emit, const) -> None:
    emit(key.to_bytes(), struct.pack("<Q", sum(v.u32() for v in values)))


def hg_reduce_batch(keys, offsets, values, *, const=None):
    """Vectorized TR reduce: per-bucket ``reduceat`` sums as ``<Q``."""
    if values.fixed_width != 4:
        return None
    vals = values.fixed_array("<u4").reshape(-1).astype(np.int64)
    sums = np.add.reduceat(vals, offsets[:-1])
    return ColumnBatch(keys, Column.from_array(sums.astype("<u8")))


def hg_combine(a: bytes, b: bytes) -> bytes:
    ai = int.from_bytes(a.ljust(8, b"\0")[:8], "little")
    bi = int.from_bytes(b.ljust(8, b"\0")[:8], "little")
    return struct.pack("<Q", ai + bi)


def hg_finalize(key: bytes, acc: bytes, count: int) -> tuple[bytes, bytes]:
    return key, acc


class Histogram(Workload):
    code = "HG"
    title = "Histogram"
    has_reduce = True

    def spec(self) -> MapReduceSpec:
        return MapReduceSpec(
            name="histogram",
            map_record=hg_map,
            reduce_record=hg_reduce,
            map_batch=hg_map_batch,
            reduce_batch=hg_reduce_batch,
            combine=hg_combine,
            finalize=hg_finalize,
            io_ratio=0.4,
            cycles_per_record=48.0,  # the per-row counting loop
            cycles_per_access=4.0,
            out_bytes_factor=4.0,
            out_records_factor=48.0,
        )

    def sizes(self) -> dict[str, ProblemSize]:
        # Pixel-row bytes (Phoenix used multi-MP images).
        return {
            "small": ProblemSize("small", 64 * 1024, "small bitmap"),
            "medium": ProblemSize("medium", 128 * 1024, "medium bitmap"),
            "large": ProblemSize("large", 256 * 1024, "large bitmap"),
        }

    def generate(self, size: str = "small", *, seed: int = 0, scale: float = 1.0
                 ) -> KeyValueSet:
        total = self.size_value(size, scale)
        row_bytes = 64
        rng = np.random.default_rng(seed)
        # A lumpy intensity distribution (mixture of two gaussians),
        # so buckets are unevenly hot like a real photo's histogram.
        n_rows = max(1, total // row_bytes)
        means = rng.choice([60.0, 180.0], size=n_rows)
        out = KeyValueSet()
        for i in range(n_rows):
            row = np.clip(
                rng.normal(means[i], 35.0, size=row_bytes), 0, 255
            ).astype(np.uint8)
            out.append(struct.pack("<I", i), row.tobytes())
        return out

    def expected_histogram(self, inp: KeyValueSet) -> dict[int, int]:
        counts: dict[int, int] = {}
        for _, row in inp:
            for b in row:
                bucket = b * BUCKETS // 256
                counts[bucket] = counts.get(bucket, 0) + 1
        return counts
