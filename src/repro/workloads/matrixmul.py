"""Matrix Multiplication (MM): one output element per Map task.

"Each Map task takes one row and one column from the two input
matrices, respectively, and calculates the value of one element in
the result matrix.  No Reduce phase" (Section IV-B).

Representation: each of the ``n*n`` input records carries the 8-byte
``(row, col)`` index pair as its key (empty value); the two matrices
live once in the constant region (A row-major, B column-major, so both
the row and the column are contiguous streams).  This matches how
Mars-style MM actually addresses memory — tasks dereference shared
matrix storage — while Table II's "8192-byte key/value" describes the
*logical* row/column each task consumes.  Consequences the paper
calls out are preserved exactly:

* SI/SIO can stage "only the indices for a row/column vector ...
  Otherwise, the huge record ... will reduce the concurrency to fewer
  than 8 threads" — here ``stage_values``/vector staging is moot and
  the staged input is just the index directory;
* GT "shows superior performance over SI because in GT, row/column
  vectors can be cached with the hardware-managed replacement policy,
  while SI can only stage the row/column indices" — the texture cache
  gets hits across tasks sharing a row or column;
* the workload is memory-bound: every mode streams ~2n floats per
  task from the same global arrays.
"""

from __future__ import annotations

import struct

import numpy as np

from ..framework.api import MapReduceSpec
from ..framework.records import KeyValueSet
from .base import ProblemSize, Workload
from .datagen import random_matrices


def make_mm_map(n: int):
    """Build the Map closure for an ``n x n`` problem.

    The constant region is ``A (row-major) ++ B (column-major)``; task
    ``(i, j)`` reads A's row ``i`` and B's column ``j`` and emits the
    dot product.
    """

    def mm_map(key, value, emit, const) -> None:
        i = key.u32(0)
        j = key.u32(4)
        row = const.f32_array(4 * n * i, n)
        col = const.f32_array(4 * n * (n + j), n)
        dot = float(np.dot(row.astype(np.float64), col.astype(np.float64)))
        emit(key.to_bytes(), struct.pack("<f", dot))

    return mm_map


class MatrixMultiplication(Workload):
    code = "MM"
    title = "Matrix Multiplication"
    has_reduce = False

    def __init__(self) -> None:
        self._cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}

    def _matrices(self, n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
        key = (n, seed)
        if key not in self._cache:
            self._cache[key] = random_matrices(n, seed=seed)
        return self._cache[key]

    def spec_for(self, n: int, seed: int = 0) -> MapReduceSpec:
        a, b = self._matrices(n, seed)
        const = a.tobytes() + np.asfortranarray(b).tobytes(order="F")
        return MapReduceSpec(
            name=f"matrixmul{n}",
            map_record=make_mm_map(n),
            const_bytes=const,
            stage_values=False,  # "only the indices ... can be staged"
            stage_keys=True,     # the 8-byte (i, j) pair
            io_ratio=0.5,
            working_bytes_per_thread=16,  # the per-thread output float
            cycles_per_record=16.0,
            cycles_per_access=2.0,  # FMA-dominated inner loop
            out_bytes_factor=2.0,
            out_records_factor=2.0,
        )

    def spec(self) -> MapReduceSpec:
        return self.spec_for(self.sizes()["small"].value)

    def spec_for_size(self, size: str = "small", *, seed: int = 0,
                      scale: float = 1.0) -> MapReduceSpec:
        return self.spec_for(self.size_value(size, scale), seed)

    def sizes(self) -> dict[str, ProblemSize]:
        # Paper: 512 / 1024 / 2048 square; scaled ~42x down.
        return {
            "small": ProblemSize("small", 16, "512x512"),
            "medium": ProblemSize("medium", 24, "1024x1024"),
            "large": ProblemSize("large", 32, "2048x2048"),
        }

    def generate(self, size: str = "small", *, seed: int = 0, scale: float = 1.0
                 ) -> KeyValueSet:
        n = self.size_value(size, scale)
        self._matrices(n, seed)  # ensure the const region exists
        out = KeyValueSet()
        for i in range(n):
            for j in range(n):
                out.append(struct.pack("<II", i, j), b"")
        return out

    def expected_product(self, size: str = "small", *, seed: int = 0,
                         scale: float = 1.0) -> np.ndarray:
        n = self.size_value(size, scale)
        a, b = self._matrices(n, seed)
        return a @ b
