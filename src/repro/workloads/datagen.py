"""Synthetic input generators matching Table II's record statistics.

The paper's corpora (16-64 MB documents, html files, vector sets) are
not distributed; these generators produce inputs with the same
*record-level statistics* — mean/stddev of record sizes, match/link
densities, input:output record-count ratios — which are the quantities
that drive every contention effect the evaluation measures.  All
generators are seeded and deterministic.

Paper-scale problem sizes are scaled down ~64-256x by default (the
simulator trades wall-clock speed for mechanism fidelity); the
benchmark harness can raise them via the ``REPRO_SCALE`` environment
variable.
"""

from __future__ import annotations

import string

import numpy as np

#: Vocabulary letters for generated words.
_LETTERS = np.frombuffer(string.ascii_lowercase.encode(), dtype=np.uint8)


def _zipf_vocabulary(rng: np.random.Generator, size: int = 4096,
                     mean_len: float = 5.46, std_len: float = 2.53) -> list[bytes]:
    """A vocabulary with Word-Count's word-length statistics
    (Table II: intermediate key 5.46 / 2.53)."""
    words = []
    seen = set()
    while len(words) < size:
        ln = int(np.clip(rng.normal(mean_len, std_len), 2, 16))
        w = bytes(rng.choice(_LETTERS, size=ln))
        if w not in seen:
            seen.add(w)
            words.append(w)
    return words


def _zipf_weights(n: int, s: float = 1.05) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks ** (-s)
    return w / w.sum()


def text_lines(
    total_bytes: int,
    *,
    seed: int = 0,
    target_line_len: float = 32.44,
    vocabulary_size: int = 4096,
    zipf_s: float = 1.05,
) -> list[bytes]:
    """Word-Count-style document lines.

    Lines average ``target_line_len`` bytes (Table II input key
    32.44 / 2.59) and consist of Zipf-distributed words, giving the
    many-occurrences-per-distinct-word profile behind WC's 68:1
    Reduce ratio.
    """
    rng = np.random.default_rng(seed)
    vocab = _zipf_vocabulary(rng, vocabulary_size)
    weights = _zipf_weights(len(vocab), zipf_s)
    lines: list[bytes] = []
    produced = 0
    while produced < total_bytes:
        words = []
        ln = 0
        target = max(8, int(rng.normal(target_line_len, 2.59)))
        while ln < target:
            w = vocab[int(rng.choice(len(vocab), p=weights))]
            words.append(w)
            ln += len(w) + 1
        line = b" ".join(words)
        lines.append(line)
        produced += len(line)
    return lines


def match_lines(
    total_bytes: int,
    keyword: bytes,
    *,
    seed: int = 0,
    target_line_len: float = 44.52,
    match_ratio: float = 1 / 3.83,
) -> list[bytes]:
    """String-Match lines: ``match_ratio`` of them contain ``keyword``
    (Table II: SM Map ratio 3.83:1; input key 44.52 / 2.68)."""
    rng = np.random.default_rng(seed)
    lines: list[bytes] = []
    produced = 0
    while produced < total_bytes:
        target = max(len(keyword) + 4, int(rng.normal(target_line_len, 2.68)))
        body = bytes(rng.choice(_LETTERS, size=target))
        if rng.random() < match_ratio:
            pos = int(rng.integers(0, max(1, target - len(keyword))))
            body = body[:pos] + keyword + body[pos + len(keyword):]
        lines.append(body)
        produced += len(body)
    return lines


def html_chunks(
    total_bytes: int,
    *,
    seed: int = 0,
    mean_len: float = 63.9,
    link_ratio: float = 1 / 7.94,
    link_mean: float = 31.67,
    link_std: float = 17.34,
) -> list[bytes]:
    """Inverted-Index html fragments.

    Chunk sizes are heavy-tailed (Table II: value 63.9 / 123.2 — a
    lognormal reproduces that variance blow-up), and ``link_ratio`` of
    chunks embed an ``<a href="...">`` anchor whose URL length follows
    the paper's 31.67 / 17.34 output-key statistics.
    """
    rng = np.random.default_rng(seed)
    # lognormal with mean 63.9 and large sigma for the 123.2 stddev.
    sigma = 1.1
    mu = np.log(mean_len) - sigma**2 / 2
    chunks: list[bytes] = []
    produced = 0
    while produced < total_bytes:
        size = int(np.clip(rng.lognormal(mu, sigma), 8, 2048))
        body = bytearray(rng.choice(_LETTERS, size=size))
        if rng.random() < link_ratio:
            url_len = int(np.clip(rng.normal(link_mean, link_std), 8, 120))
            url = b"http://" + bytes(rng.choice(_LETTERS, size=max(1, url_len - 7)))
            anchor = b'<a href="' + url + b'">'
            if len(body) < len(anchor) + 1:
                body.extend(rng.choice(_LETTERS, size=len(anchor)))
            pos = int(rng.integers(0, max(1, len(body) - len(anchor))))
            body[pos : pos + len(anchor)] = anchor
        chunks.append(bytes(body))
        produced += len(chunks[-1])
    return chunks


def clustered_vectors(
    n: int,
    *,
    dim: int = 8,
    k: int = 16,
    seed: int = 0,
    spread: float = 0.15,
) -> tuple[np.ndarray, np.ndarray]:
    """KMeans input: ``n`` float32 vectors around ``k`` true centres.

    Table II: KM input value 32 B (dim 8 x f32), key empty.  Returns
    ``(vectors[n, dim], initial_centroids[k, dim])``.
    """
    rng = np.random.default_rng(seed)
    centres = rng.uniform(-1.0, 1.0, size=(k, dim)).astype(np.float32)
    assign = rng.integers(0, k, size=n)
    vecs = centres[assign] + rng.normal(0, spread, size=(n, dim)).astype(np.float32)
    # Initial centroids: perturbed true centres (deterministic).
    init = centres + rng.normal(0, spread / 2, size=(k, dim)).astype(np.float32)
    return vecs.astype(np.float32), init.astype(np.float32)


def random_matrices(n: int, *, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Matrix-Multiplication input: two dense ``n x n`` float32 matrices."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, size=(n, n)).astype(np.float32)
    b = rng.uniform(-1, 1, size=(n, n)).astype(np.float32)
    return a, b
