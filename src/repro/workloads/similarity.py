"""Similarity Score (SS) — from the Mars benchmark suite.

Beyond the paper's Table I (it evaluates five of Mars's six
workloads); included here to demonstrate framework generality.
Computes the cosine similarity of document feature-vector pairs:
each Map task takes one ``(doc_a, doc_b)`` pair, reads both feature
vectors, and emits the pair id with its similarity score.  No Reduce
phase.

Memory behaviour sits between MM and KM: like MM the vectors live in
a shared constant region (texture-cacheable), like KM each task's
arithmetic re-walks its vectors, so SI helps via the staged indices
and GT via cached vectors.
"""

from __future__ import annotations

import struct

import numpy as np

from ..framework.api import MapReduceSpec
from ..framework.records import KeyValueSet
from .base import ProblemSize, Workload

DIM = 16
VEC_BYTES = 4 * DIM


def make_ss_map(n_docs: int):
    def ss_map(key, value, emit, const) -> None:
        a = key.u32(0)
        b = key.u32(4)
        va = const.f32_array(VEC_BYTES * a, DIM).astype(np.float64)
        vb = const.f32_array(VEC_BYTES * b, DIM).astype(np.float64)
        denom = float(np.linalg.norm(va) * np.linalg.norm(vb))
        score = float(va @ vb) / denom if denom else 0.0
        emit(key.to_bytes(), struct.pack("<f", score))

    return ss_map


class SimilarityScore(Workload):
    code = "SS"
    title = "Similarity Score"
    has_reduce = False

    def __init__(self) -> None:
        self._cache: dict[tuple[int, int], np.ndarray] = {}

    def _vectors(self, n_docs: int, seed: int) -> np.ndarray:
        key = (n_docs, seed)
        if key not in self._cache:
            rng = np.random.default_rng(seed)
            self._cache[key] = rng.uniform(
                0.1, 1.0, size=(n_docs, DIM)
            ).astype(np.float32)
        return self._cache[key]

    def spec_for(self, n_docs: int, seed: int = 0) -> MapReduceSpec:
        vecs = self._vectors(n_docs, seed)
        return MapReduceSpec(
            name=f"similarity{n_docs}",
            map_record=make_ss_map(n_docs),
            const_bytes=vecs.tobytes(),
            stage_values=False,
            io_ratio=0.5,
            working_bytes_per_thread=16,
            cycles_per_record=24.0,
            cycles_per_access=3.0,
            out_bytes_factor=3.0,
            out_records_factor=2.0,
        )

    def spec(self) -> MapReduceSpec:
        return self.spec_for(self.sizes()["small"].value)

    def spec_for_size(self, size: str = "small", *, seed: int = 0,
                      scale: float = 1.0) -> MapReduceSpec:
        return self.spec_for(self.size_value(size, scale), seed)

    def sizes(self) -> dict[str, ProblemSize]:
        # Mars used document sets in the thousands; each doc pairs with
        # a random sample of others.
        return {
            "small": ProblemSize("small", 48, "2K docs"),
            "medium": ProblemSize("medium", 96, "8K docs"),
            "large": ProblemSize("large", 160, "32K docs"),
        }

    def generate(self, size: str = "small", *, seed: int = 0, scale: float = 1.0
                 ) -> KeyValueSet:
        """Pairs: each doc against 8 pseudo-random partners."""
        n = self.size_value(size, scale)
        self._vectors(n, seed)
        rng = np.random.default_rng(seed + 1)
        out = KeyValueSet()
        for a in range(n):
            partners = rng.choice(n, size=min(8, n), replace=False)
            for b in partners:
                out.append(struct.pack("<II", a, int(b)), b"")
        return out

    def expected_scores(self, inp: KeyValueSet, size: str = "small", *,
                        seed: int = 0, scale: float = 1.0) -> dict:
        vecs = self._vectors(self.size_value(size, scale), seed).astype(
            np.float64
        )
        out = {}
        for key, _ in inp:
            a, b = struct.unpack("<II", key)
            denom = np.linalg.norm(vecs[a]) * np.linalg.norm(vecs[b])
            out[(a, b)] = float(vecs[a] @ vecs[b] / denom) if denom else 0.0
        return out
