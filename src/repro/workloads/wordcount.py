"""Word Count (WC): the canonical MapReduce workload.

"Each Map task takes a part of the input and emits a ``<word, 1>``
pair for each word it sees.  Each Reduce task takes one distinct key
(word) and sums all the values sharing the same key" (Section IV-B).

Record shapes match Table II: input key = a text line (32.44 / 2.59
bytes), input value = a 4-byte line index; intermediate key = a word
(5.46 / 2.53), value = the 4-byte constant 1; Map emits ~5 words per
line, and the Zipf vocabulary yields the large (tens:1) Reduce ratio.
"""

from __future__ import annotations

import struct

import numpy as np

from ..framework.api import MapReduceSpec
from ..framework.columns import Column, ColumnBatch
from ..framework.records import KeyValueSet
from .base import ProblemSize, Workload
from .datagen import text_lines

ONE = (1).to_bytes(4, "little")


def wc_map(key, value, emit, const) -> None:
    """Emit ``(word, 1)`` for every word in the line (the key)."""
    line = key.to_bytes()
    for word in line.split(b" "):
        if word:
            emit(word, ONE)


def wc_reduce(key, values, emit, const) -> None:
    """TR reduce: sum the occurrence counts of one word."""
    total = 0
    for v in values:
        total += v.u32()
    emit(key.to_bytes(), struct.pack("<I", total))


def wc_reduce_batch(keys, offsets, values, *, const=None):
    """Vectorized TR reduce: per-word ``reduceat`` count sums.

    Map stays scalar (word splitting is ragged by nature), making WC
    the scalar-map + batch-reduce mixed case.  A sum past ``u32``
    declines to the scalar path so ``struct.pack("<I", ...)`` raises
    the identical overflow error the scalar kernel always raised.
    """
    if values.fixed_width != 4:
        return None
    vals = values.fixed_array("<u4").reshape(-1).astype(np.int64)
    sums = np.add.reduceat(vals, offsets[:-1])
    if sums.size and int(sums.max()) > 0xFFFFFFFF:
        return None
    return ColumnBatch(keys, Column.from_array(sums.astype("<u4")))


def wc_combine(a: bytes, b: bytes) -> bytes:
    """BR combine: add two partial counts."""
    return struct.pack(
        "<I", (struct.unpack("<I", a)[0] + struct.unpack("<I", b)[0]) & 0xFFFFFFFF
    )


def wc_finalize(key: bytes, acc: bytes, count: int) -> tuple[bytes, bytes]:
    return key, acc


class WordCount(Workload):
    code = "WC"
    title = "Word Count"
    has_reduce = True

    def __init__(self, *, vocabulary_size: int = 512, zipf_s: float = 1.05):
        self.vocabulary_size = vocabulary_size
        self.zipf_s = zipf_s

    def spec(self) -> MapReduceSpec:
        return MapReduceSpec(
            name="wordcount",
            map_record=wc_map,
            reduce_record=wc_reduce,
            reduce_batch=wc_reduce_batch,
            combine=wc_combine,
            finalize=wc_finalize,
            io_ratio=0.25,  # WC is output-heavy: favour the output area
            cycles_per_record=24.0,
            cycles_per_access=6.0,
            out_bytes_factor=4.0,
            out_records_factor=16.0,
        )

    def sizes(self) -> dict[str, ProblemSize]:
        # Paper: 16 / 32 / 64 MB documents; scaled ~256x down.
        return {
            "small": ProblemSize("small", 64 * 1024, "16MB"),
            "medium": ProblemSize("medium", 128 * 1024, "32MB"),
            "large": ProblemSize("large", 256 * 1024, "64MB"),
        }

    def generate(self, size: str = "small", *, seed: int = 0, scale: float = 1.0
                 ) -> KeyValueSet:
        nbytes = self.size_value(size, scale)
        lines = text_lines(
            nbytes,
            seed=seed,
            vocabulary_size=self.vocabulary_size,
            zipf_s=self.zipf_s,
        )
        out = KeyValueSet()
        for i, line in enumerate(lines):
            out.append(line, struct.pack("<I", i))
        return out
