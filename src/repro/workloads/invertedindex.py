"""Inverted Index (II): link extraction from html fragments.

"Each Map task takes one part of the input, and searches for a link.
Whenever it finds one, it emits the link as well as the link's
position in the document.  No Reduce phase" (Section IV-B).

Table II shapes: input key = an 8-byte ``(doc_id, chunk_id)`` pair,
input value = the html fragment (63.9 / 123.2 bytes — large variance);
output key = the URL (31.67 / 17.34), output value = an 8-byte
position.  The variance in fragment size is what makes II's compute
rounds uneven across lanes (the paper blames exactly this for SO's
busy-wait overhead on II-M), and the long scans of large values are
why II "benefits significantly and solely from staging input".
"""

from __future__ import annotations

import struct

from ..framework.api import MapReduceSpec
from ..framework.records import KeyValueSet
from .base import ProblemSize, Workload
from .datagen import html_chunks

_ANCHOR = b'<a href="'


def ii_map(key, value, emit, const) -> None:
    """Extract every ``<a href="...">`` URL with its position."""
    text = value.to_bytes()
    doc = key.u32(0)
    start = 0
    while True:
        pos = text.find(_ANCHOR, start)
        if pos < 0:
            break
        url_start = pos + len(_ANCHOR)
        end = text.find(b'"', url_start)
        if end < 0:
            break
        url = text[url_start:end]
        if url:
            emit(url, struct.pack("<II", doc, pos))
        start = end + 1


class InvertedIndex(Workload):
    code = "II"
    title = "Inverted Index"
    has_reduce = False

    def spec(self) -> MapReduceSpec:
        return MapReduceSpec(
            name="invertedindex",
            map_record=ii_map,
            io_ratio=0.65,  # big, variable inputs: favour the input area
            # "long, complex computation phases with conditional
            # branches" (Section IV-D): higher per-access ALU cost.
            cycles_per_record=40.0,
            cycles_per_access=12.0,
            out_bytes_factor=2.0,
            out_records_factor=4.0,
        )

    def sizes(self) -> dict[str, ProblemSize]:
        # Paper: 16 / 32 / 64 MB of html; scaled ~256x down.
        return {
            "small": ProblemSize("small", 64 * 1024, "16MB"),
            "medium": ProblemSize("medium", 128 * 1024, "32MB"),
            "large": ProblemSize("large", 256 * 1024, "64MB"),
        }

    def generate(self, size: str = "small", *, seed: int = 0, scale: float = 1.0
                 ) -> KeyValueSet:
        nbytes = self.size_value(size, scale)
        chunks = html_chunks(nbytes, seed=seed)
        out = KeyValueSet()
        for i, chunk in enumerate(chunks):
            out.append(struct.pack("<II", i // 64, i % 64), chunk)
        return out
