"""Persistent run ledger: one JSONL record per executed job.

Every :func:`repro.backend.core.execute_plan` /
:func:`~repro.backend.core.execute_streamed` invocation appends a
:func:`build_record` line to ``.repro/runs.jsonl`` — workload, mode,
strategy, backend, worker count, input size and digest, simulated
cycles, wall seconds, a KernelStats digest, analysis-cache hit rate,
check-finding count, straggler skew, intermediate-store spill
accounting (policy, runs written, bytes spilled) and columnar-path
accounting (batches, vectorized Map/Reduce counts).  Unlike the hand-regenerated
``BENCH_*.json`` snapshots, the ledger accumulates *every* run, so
``repro-report`` can render performance trajectories over time and
flag regressions against a rolling baseline.

Design constraints:

* **Never fail the job.**  Ledger writes swallow ``OSError`` — a
  read-only working directory degrades to "no ledger", not a crash.
* **Append-only and concurrency-safe.**  Each record is one JSON line
  written with a single ``O_APPEND`` ``write`` syscall, so two
  parallel jobs interleave whole lines, never bytes
  (:func:`read_ledger` additionally skips any malformed line).
* **Opt-out via env.**  ``REPRO_LEDGER=0`` (or ``off``/``false``/
  ``no``) disables recording; ``REPRO_LEDGER_DIR`` points the ledger
  at a different directory (tests and benchmarks use this to keep
  their runs out of the working tree's ledger).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from hashlib import blake2b
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from ..framework.records import KeyValueSet
    from ..gpu.stats import KernelStats

#: Set to ``0``/``off``/``false``/``no`` to disable the ledger.
LEDGER_ENV = "REPRO_LEDGER"
#: Overrides the ledger directory (default ``.repro`` under the cwd).
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"

DEFAULT_DIR = ".repro"
LEDGER_NAME = "runs.jsonl"
#: Schema 2 added the tuner fields (``tuned``, ``tuner_choice``,
#: ``tuner_predicted_cost``, ``tuner_error`` — all null for untuned
#: runs).  :func:`read_ledger` stays version-tolerant: readers use
#: ``.get`` and must accept schema-1 lines with the fields absent.
SCHEMA = 2


def ledger_enabled() -> bool:
    """Is run recording on?  (Default yes; ``$REPRO_LEDGER`` opts out.)"""
    value = os.environ.get(LEDGER_ENV, "").strip().lower()
    return value not in ("0", "off", "false", "no")


def ledger_dir() -> str:
    return os.environ.get(LEDGER_DIR_ENV) or DEFAULT_DIR


def ledger_path() -> str:
    """The ledger file new records append to (honours the env)."""
    return os.path.join(ledger_dir(), LEDGER_NAME)


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------


def digest_input(kvs: "KeyValueSet") -> str:
    """Short stable digest of an input record set.

    Joins the key and value columns through C-level hashing — cheap
    enough to run on every job, and stable across processes (unlike
    ``hash``).  Two runs with the same digest read the same input.
    """
    h = blake2b(digest_size=8)
    h.update(len(kvs).to_bytes(8, "little"))
    h.update(b"\x1f".join(kvs.keys))
    h.update(b"\x1e")
    h.update(b"\x1f".join(kvs.values))
    return h.hexdigest()


def kernel_digest(*stats: "KernelStats") -> str:
    """Short digest over every numeric counter of the job's launches.

    Cycle counts, instruction mixes and stall totals all feed in, so
    any timing-model drift between two runs of the same input changes
    the digest — the ledger-level analogue of the golden-trace pin.
    """
    h = blake2b(digest_size=8)
    for st in stats:
        for f in dataclasses.fields(st):
            value = getattr(st, f.name)
            if isinstance(value, (int, float)):
                h.update(f"{f.name}={value!r};".encode())
        for key in sorted(st.extra):
            h.update(f"extra.{key}={st.extra[key]!r};".encode())
        for cat in sorted(st.stall_cycles):
            h.update(f"stall.{cat}={st.stall_cycles[cat]!r};".encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------


def build_record(plan, inp, backend, result, *, wall_s: float,
                 streamed: bool = False) -> dict:
    """One ledger line for a finished job (plain JSON-able dict)."""
    stats = [result.map_stats]
    if result.reduce_stats is not None and result.strategy is not None:
        stats.append(result.reduce_stats)
    hits = sum(st.analysis_cache_hits for st in stats)
    misses = sum(st.analysis_cache_misses for st in stats)
    lookups = hits + misses
    report = result.check_report
    straggler = result.straggler
    decision = getattr(plan, "tuned", None)
    tuner_choice = tuner_predicted = tuner_error = None
    if decision is not None:
        tuner_choice = decision.choice
        tuner_predicted = round(float(decision.predicted_cost), 6)
        # The relative prediction error — only when the decision's
        # objective matches the unit this run actually measured
        # (cycles on the sim backend, wall seconds elsewhere), so the
        # calibrator never mixes units.
        objective = getattr(decision, "objective", "cycles")
        actual = None
        if objective == "cycles" and backend.name == "sim":
            actual = result.timings.total
        elif objective == "wall" and backend.name != "sim":
            actual = wall_s
        if actual is not None and tuner_predicted and tuner_predicted > 0:
            tuner_error = round(actual / tuner_predicted - 1.0, 4)
    spilled = any("spill_runs" in st.extra for st in stats)
    columnar = any("columnar_batches" in st.extra
                   or "columnar_groups" in st.extra for st in stats)
    return {
        "schema": SCHEMA,
        "ts": round(time.time(), 3),
        "workload": plan.spec.name,
        "mode": plan.mode_label,
        "strategy": getattr(plan.strategy, "value", plan.strategy),
        "engine": plan.engine,
        "backend": backend.name,
        "workers": getattr(backend, "workers", None),
        "streamed": streamed,
        "records_in": len(inp),
        "input_digest": digest_input(inp),
        "output_records": len(result.output),
        "intermediate_records": result.intermediate_count,
        "sim_cycles": result.timings.total,
        "wall_s": round(wall_s, 6),
        "kernel_digest": kernel_digest(*stats),
        "analysis_cache_hit_rate": (
            round(hits / lookups, 4) if lookups else None
        ),
        "check_findings": (
            len(report.findings) if report is not None else None
        ),
        "straggler_skew": (
            round(straggler.max_skew, 3) if straggler is not None else None
        ),
        # Autotuner audit trail (schema 2): all null when the run was
        # not tuned, so fixed-config records stay comparable.
        "tuned": decision is not None,
        "tuner_choice": tuner_choice,
        "tuner_predicted_cost": tuner_predicted,
        "tuner_error": tuner_error,
        # Intermediate-store policy: the plan's explicit choice (None
        # means "default/env"), plus spill accounting when the job
        # actually ran a spilling shuffle.
        "store": plan.store,
        "spill_runs": (
            sum(st.extra.get("spill_runs", 0) for st in stats)
            if spilled else None
        ),
        "spilled_bytes": (
            sum(st.extra.get("spilled_bytes", 0) for st in stats)
            if spilled else None
        ),
        # Columnar execution accounting (None when the job ran the
        # scalar path): Map batch counts and how many of them — plus
        # the Reduce — actually took the vectorized kernels.
        "columnar_batches": (
            sum(st.extra.get("columnar_batches", 0) for st in stats)
            if columnar else None
        ),
        "columnar_map_vectorized": (
            sum(st.extra.get("columnar_map_vectorized", 0) for st in stats)
            if columnar else None
        ),
        "columnar_reduce_vectorized": (
            sum(st.extra.get("columnar_reduce_vectorized", 0)
                for st in stats)
            if columnar else None
        ),
    }


def append_record(record: dict, path: str | None = None) -> None:
    """Append one record as a single atomic line write.

    ``O_APPEND`` plus one ``os.write`` keeps concurrent appenders from
    interleaving within a line; any ``OSError`` (read-only tree, full
    disk) is swallowed — observability must never fail the job.
    """
    if path is None:
        path = ledger_path()
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    try:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
    except OSError:
        pass


def record_run(plan, inp, backend, result, *, wall_s: float,
               streamed: bool = False) -> None:
    """Gate on the env, then build and append one run record."""
    if not ledger_enabled():
        return
    try:
        record = build_record(plan, inp, backend, result, wall_s=wall_s,
                              streamed=streamed)
    except Exception:
        # A malformed result must not take the job down with it.
        return
    append_record(record)


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------


def read_ledger(path: str | None = None) -> list[dict]:
    """All parseable records, in file (= append) order.

    Malformed lines — a torn write from a crashed process, say — are
    skipped rather than fatal; an absent file reads as empty.
    """
    if path is None:
        path = ledger_path()
    records: list[dict] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue
                if isinstance(doc, dict):
                    records.append(doc)
    except OSError:
        return []
    return records


def group_runs(records: Iterable[dict]) -> dict[tuple[str, str], list[dict]]:
    """Group records by ``(workload, backend)``, preserving order."""
    groups: dict[tuple[str, str], list[dict]] = {}
    for rec in records:
        key = (str(rec.get("workload")), str(rec.get("backend")))
        groups.setdefault(key, []).append(rec)
    return groups
