"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and JSONL.

The Chrome format (loadable at https://ui.perfetto.dev) places host
spans on one track (pid 0) and device activity on per-warp tracks of
a second process (pid 1): one thread per traced ``(block, warp)``
lane, named ``block B / warp W``.  Timestamps are simulated cycles
written into the ``ts``/``dur`` microsecond fields — absolute
magnitudes are meaningless, relative ones are exact.

All serialisation is deterministic (sorted keys, insertion-ordered
events, no wall-clock anywhere), so traces and metrics for a fixed
seed are byte-stable across runs.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .tracer import Tracer

HOST_PID = 0
DEVICE_PID = 1

#: tid layout for device tracks: one slot per warp, block-major.
_WARP_SLOTS = 64


def _lane_tid(block: int, warp: int) -> int:
    return 1 + block * _WARP_SLOTS + warp


def to_chrome_trace(tracer: "Tracer") -> dict:
    """Convert a finished trace into a ``trace_event`` JSON object."""
    events: list[dict] = [
        {"ph": "M", "pid": HOST_PID, "tid": 0, "name": "process_name",
         "args": {"name": "host"}},
        {"ph": "M", "pid": HOST_PID, "tid": 0, "name": "thread_name",
         "args": {"name": "job phases"}},
    ]
    lanes = sorted({(e.block, e.warp) for e in tracer.device_events})
    if lanes:
        events.append({"ph": "M", "pid": DEVICE_PID, "tid": 0,
                       "name": "process_name", "args": {"name": "device"}})
        for block, warp in lanes:
            events.append({
                "ph": "M", "pid": DEVICE_PID, "tid": _lane_tid(block, warp),
                "name": "thread_name",
                "args": {"name": f"block {block} / warp {warp}"},
            })

    for sp in tracer.spans:
        events.append({
            "ph": "X", "pid": HOST_PID, "tid": 0, "cat": "host",
            "name": sp.name, "ts": sp.start, "dur": sp.duration,
            "args": dict(sp.attrs),
        })
    for ev in tracer.instants:
        events.append({
            "ph": "i", "s": "t", "pid": HOST_PID, "tid": 0, "cat": "host",
            "name": ev.name, "ts": ev.time, "args": dict(ev.attrs),
        })
    for de in tracer.device_events:
        tid = _lane_tid(de.block, de.warp)
        args = {"block": de.block, "warp": de.warp, "kernel": de.kernel,
                **de.attrs}
        if de.category == "mark":
            events.append({
                "ph": "i", "s": "t", "pid": DEVICE_PID, "tid": tid,
                "cat": "device", "name": de.name or "mark",
                "ts": de.start, "args": args,
            })
        else:
            events.append({
                "ph": "X", "pid": DEVICE_PID, "tid": tid, "cat": "device",
                "name": de.category, "ts": de.start, "dur": de.duration,
                "args": args,
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated GPU cycles"},
    }


def write_chrome_trace(tracer: "Tracer", path: str) -> None:
    """Write the Chrome/Perfetto trace JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(tracer), fh, sort_keys=True,
                  separators=(",", ":"))
        fh.write("\n")


def write_check_json(report, path: str) -> None:
    """Write a sanitizer :class:`~repro.check.CheckReport` as JSON.

    Duck-typed on ``report.to_dict()`` so :mod:`repro.obs` need not
    import :mod:`repro.check`; deterministic like every exporter here
    (sorted keys, no wall-clock).
    """
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, sort_keys=True, indent=1)
        fh.write("\n")


def write_jsonl(tracer: "Tracer", path: str) -> None:
    """Write a compact JSONL event log: one JSON object per line.

    Span records carry their tree position (``depth`` plus the parent
    span's name), device records their lane; the file replays in time
    order within each record class.
    """
    with open(path, "w", encoding="utf-8") as fh:
        for sp in tracer.spans:
            fh.write(json.dumps({
                "type": "span", "name": sp.name, "start": sp.start,
                "end": sp.end, "depth": sp.depth,
                "parent": sp.parent.name if sp.parent else None,
                "attrs": dict(sp.attrs),
            }, sort_keys=True) + "\n")
        for ev in tracer.instants:
            fh.write(json.dumps({
                "type": "instant", "name": ev.name, "time": ev.time,
                "attrs": dict(ev.attrs),
            }, sort_keys=True) + "\n")
        for de in tracer.device_events:
            fh.write(json.dumps({
                "type": "device", "kernel": de.kernel, "block": de.block,
                "warp": de.warp, "category": de.category, "name": de.name,
                "start": de.start, "end": de.end, "attrs": dict(de.attrs),
            }, sort_keys=True) + "\n")
