"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and JSONL.

The Chrome format (loadable at https://ui.perfetto.dev) places host
spans on one track (pid 0), device activity on per-warp tracks of a
second process (pid 1): one thread per traced ``(block, warp)`` lane,
named ``block B / warp W`` — and, when a backend shipped per-shard
worker telemetry, pool-worker activity on per-worker tracks of a
third process (pid 2).

The timeline axis depends on the tracer's clock:

* **sim clock** (the default; every sim-backend trace): ``ts``/
  ``dur`` carry simulated cycles in the microsecond fields — absolute
  magnitudes are meaningless, relative ones are exact.  Serialisation
  is deterministic (sorted keys, insertion-ordered events, no
  wall-clock anywhere), so traces for a fixed seed are byte-stable
  across runs — the golden-trace suite's contract.
* **dual clock** (``Tracer(wall_clock=True)``; what ``repro-trace``
  uses for the fast and parallel backends, whose kernel cycles are
  zero by design): host ``ts``/``dur`` carry wall microseconds
  rebased to the tracer's origin, and each span's ``args`` keeps the
  sim-clock interval (``sim_ts``/``sim_dur``) for cross-reference.

Worker tracks are always wall-based (that is the clock workers live
on); they only exist for parallel runs, so sim traces never change.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .tracer import Tracer

HOST_PID = 0
DEVICE_PID = 1
WORKER_PID = 2

#: tid layout for device tracks: one slot per warp, block-major.
_WARP_SLOTS = 64


def _lane_tid(block: int, warp: int) -> int:
    return 1 + block * _WARP_SLOTS + warp


def _wall_mode(tracer: "Tracer") -> bool:
    """Export on the wall clock?  Only when the tracer opted in *and*
    at least one span carries complete wall stamps (a span-less or
    wall-less trace falls back to the deterministic sim-clock form)."""
    return bool(getattr(tracer, "wall_clock", False)) and any(
        sp.wall_start is not None and sp.wall_end is not None
        for sp in tracer.spans
    )


def to_chrome_trace(tracer: "Tracer") -> dict:
    """Convert a finished trace into a ``trace_event`` JSON object."""
    events: list[dict] = [
        {"ph": "M", "pid": HOST_PID, "tid": 0, "name": "process_name",
         "args": {"name": "host"}},
        {"ph": "M", "pid": HOST_PID, "tid": 0, "name": "thread_name",
         "args": {"name": "job phases"}},
    ]
    lanes = sorted({(e.block, e.warp) for e in tracer.device_events})
    if lanes:
        events.append({"ph": "M", "pid": DEVICE_PID, "tid": 0,
                       "name": "process_name", "args": {"name": "device"}})
        for block, warp in lanes:
            events.append({
                "ph": "M", "pid": DEVICE_PID, "tid": _lane_tid(block, warp),
                "name": "thread_name",
                "args": {"name": f"block {block} / warp {warp}"},
            })
    worker_events = getattr(tracer, "worker_events", ())
    workers = sorted({w.worker for w in worker_events})
    if workers:
        events.append({"ph": "M", "pid": WORKER_PID, "tid": 0,
                       "name": "process_name", "args": {"name": "workers"}})
        for w in workers:
            events.append({
                "ph": "M", "pid": WORKER_PID, "tid": w + 1,
                "name": "thread_name", "args": {"name": f"worker {w}"},
            })

    wall = _wall_mode(tracer)
    origin = getattr(tracer, "wall_origin_ns", 0)
    for sp in tracer.spans:
        if wall and sp.wall_start is not None and sp.wall_end is not None:
            events.append({
                "ph": "X", "pid": HOST_PID, "tid": 0, "cat": "host",
                "name": sp.name,
                "ts": (sp.wall_start - origin) / 1e3,
                "dur": (sp.wall_end - sp.wall_start) / 1e3,
                "args": {**sp.attrs, "sim_ts": sp.start,
                         "sim_dur": sp.duration},
            })
        else:
            events.append({
                "ph": "X", "pid": HOST_PID, "tid": 0, "cat": "host",
                "name": sp.name, "ts": sp.start, "dur": sp.duration,
                "args": dict(sp.attrs),
            })
    for ev in tracer.instants:
        if wall and ev.wall_time is not None:
            events.append({
                "ph": "i", "s": "t", "pid": HOST_PID, "tid": 0,
                "cat": "host", "name": ev.name,
                "ts": (ev.wall_time - origin) / 1e3,
                "args": {**ev.attrs, "sim_ts": ev.time},
            })
        else:
            events.append({
                "ph": "i", "s": "t", "pid": HOST_PID, "tid": 0,
                "cat": "host", "name": ev.name, "ts": ev.time,
                "args": dict(ev.attrs),
            })
    for de in tracer.device_events:
        tid = _lane_tid(de.block, de.warp)
        args = {"block": de.block, "warp": de.warp, "kernel": de.kernel,
                **de.attrs}
        if de.category == "mark":
            events.append({
                "ph": "i", "s": "t", "pid": DEVICE_PID, "tid": tid,
                "cat": "device", "name": de.name or "mark",
                "ts": de.start, "args": args,
            })
        else:
            events.append({
                "ph": "X", "pid": DEVICE_PID, "tid": tid, "cat": "device",
                "name": de.category, "ts": de.start, "dur": de.duration,
                "args": args,
            })
    for we in worker_events:
        events.append({
            "ph": "X", "pid": WORKER_PID, "tid": we.worker + 1,
            "cat": "worker", "name": we.name,
            "ts": (we.start_ns - origin) / 1e3,
            "dur": (we.end_ns - we.start_ns) / 1e3,
            "args": {"worker": we.worker, **we.attrs},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": ("wall microseconds (sim cycles in span args)"
                      if wall else "simulated GPU cycles"),
        },
    }


def write_chrome_trace(tracer: "Tracer", path: str) -> None:
    """Write the Chrome/Perfetto trace JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(tracer), fh, sort_keys=True,
                  separators=(",", ":"))
        fh.write("\n")


def write_check_json(report, path: str) -> None:
    """Write a sanitizer :class:`~repro.check.CheckReport` as JSON.

    Duck-typed on ``report.to_dict()`` so :mod:`repro.obs` need not
    import :mod:`repro.check`; deterministic like every exporter here
    (sorted keys, no wall-clock).
    """
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, sort_keys=True, indent=1)
        fh.write("\n")


def write_jsonl(tracer: "Tracer", path: str) -> None:
    """Write a compact JSONL event log: one JSON object per line.

    Span records carry their tree position (``depth`` plus the parent
    span's name), device records their lane, worker records their
    track; the file replays in time order within each record class.
    Wall-clock fields (``wall_start_ns``/``wall_end_ns``, rebased to
    the tracer's origin) appear only on dual-clock traces, so
    sim-clock logs are byte-identical to the single-clock format.
    """
    origin = getattr(tracer, "wall_origin_ns", 0)
    with open(path, "w", encoding="utf-8") as fh:
        for sp in tracer.spans:
            rec = {
                "type": "span", "name": sp.name, "start": sp.start,
                "end": sp.end, "depth": sp.depth,
                "parent": sp.parent.name if sp.parent else None,
                "attrs": dict(sp.attrs),
            }
            if sp.wall_start is not None and sp.wall_end is not None:
                rec["wall_start_ns"] = sp.wall_start - origin
                rec["wall_end_ns"] = sp.wall_end - origin
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
        for ev in tracer.instants:
            rec = {
                "type": "instant", "name": ev.name, "time": ev.time,
                "attrs": dict(ev.attrs),
            }
            if ev.wall_time is not None:
                rec["wall_ns"] = ev.wall_time - origin
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
        for de in tracer.device_events:
            fh.write(json.dumps({
                "type": "device", "kernel": de.kernel, "block": de.block,
                "warp": de.warp, "category": de.category, "name": de.name,
                "start": de.start, "end": de.end, "attrs": dict(de.attrs),
            }, sort_keys=True) + "\n")
        for we in getattr(tracer, "worker_events", ()):
            fh.write(json.dumps({
                "type": "worker", "worker": we.worker, "name": we.name,
                "wall_start_ns": we.start_ns - origin,
                "wall_end_ns": we.end_ns - origin,
                "attrs": dict(we.attrs),
            }, sort_keys=True) + "\n")
