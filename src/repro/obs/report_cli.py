"""``repro-report`` — render the persistent run ledger.

Reads ``.repro/runs.jsonl`` (see :mod:`repro.obs.ledger`) and renders:

* **trajectory tables** per ``(workload, backend)`` — the most recent
  runs with wall seconds, simulated cycles, record counts and check
  findings, so performance over time is visible without
  hand-regenerating a ``BENCH_*.json``;
* **regression flags** — the latest run of each group is compared
  against a rolling median of the previous comparable runs (same
  mode, strategy, input digest and streaming shape); a wall-clock
  increase beyond ``--threshold`` or *any* simulated-cycle drift is
  flagged (sim cycles are deterministic for a fixed input — drift
  means the timing model changed);
* **backend comparison** — for inputs that ran on more than one
  backend, median wall seconds side by side with speedups against the
  slowest;
* **tuner audit** (``--tuner``) — every autotuned run with the chosen
  configuration, the cost model's prediction, and the measured
  prediction error (``actual/predicted - 1``, recorded only when the
  prediction's unit matches what the run measured), plus the mean
  absolute error per workload — the calibration loop's report card.

Examples::

    repro-report
    repro-report --ledger /tmp/ci/.repro/runs.jsonl --last 5
    repro-report --workload wordcount --strict
    repro-report --tuner
    repro-report --json > report.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .ledger import group_runs, ledger_path, read_ledger


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _comparable_key(rec: dict) -> tuple:
    """Runs that did the same work: same mode/strategy/input/shape."""
    return (rec.get("mode"), rec.get("strategy"),
            rec.get("input_digest"), rec.get("streamed"))


def _flag_regression(runs: list[dict], *, window: int,
                     threshold: float) -> dict | None:
    """Compare the group's latest run against its rolling baseline."""
    latest = runs[-1]
    prior = [r for r in runs[:-1]
             if _comparable_key(r) == _comparable_key(latest)]
    if not prior:
        return None
    baseline = prior[-window:]
    flags: list[str] = []
    base_wall = _median([r.get("wall_s", 0.0) or 0.0 for r in baseline])
    wall = latest.get("wall_s", 0.0) or 0.0
    ratio = (wall / base_wall) if base_wall else None
    if ratio is not None and ratio > 1.0 + threshold:
        flags.append(
            f"wall {wall:.4f}s vs rolling median {base_wall:.4f}s "
            f"({ratio - 1.0:+.0%})"
        )
    prev_cycles = baseline[-1].get("sim_cycles")
    cycles = latest.get("sim_cycles")
    if (isinstance(prev_cycles, (int, float))
            and isinstance(cycles, (int, float)) and prev_cycles):
        if abs(cycles - prev_cycles) / abs(prev_cycles) > 1e-9:
            flags.append(
                f"sim cycles drifted {prev_cycles:g} -> {cycles:g} "
                "(timing model changed?)"
            )
    if not flags:
        return None
    return {
        "baseline_runs": len(baseline),
        "baseline_wall_s": base_wall,
        "wall_s": wall,
        "wall_ratio": ratio,
        "flags": flags,
    }


def analyze(records: list[dict], *, window: int = 5,
            threshold: float = 0.25) -> dict:
    """Fold ledger records into the report's structured form."""
    groups = []
    for (workload, backend), runs in sorted(group_runs(records).items()):
        groups.append({
            "workload": workload,
            "backend": backend,
            "runs": runs,
            "regression": _flag_regression(runs, window=window,
                                           threshold=threshold),
        })

    # Backend comparison: the most recent comparable key per workload
    # that ran on more than one backend.
    by_workload: dict[str, list[dict]] = {}
    for rec in records:
        by_workload.setdefault(str(rec.get("workload")), []).append(rec)
    comparison = []
    for workload in sorted(by_workload):
        runs = by_workload[workload]
        backends_by_key: dict[tuple, dict[str, list[float]]] = {}
        for rec in runs:
            key = _comparable_key(rec)
            backends_by_key.setdefault(key, {}).setdefault(
                str(rec.get("backend")), []
            ).append(rec.get("wall_s", 0.0) or 0.0)
        multi = [(key, b) for key, b in backends_by_key.items()
                 if len(b) >= 2]
        if not multi:
            continue
        # Latest key wins: walk records backwards to find it.
        latest_key = next(
            key for key in (
                _comparable_key(rec) for rec in reversed(runs)
            ) if len(backends_by_key[key]) >= 2
        )
        walls = {name: _median(v[-5:])
                 for name, v in backends_by_key[latest_key].items()}
        slowest = max(walls.values())
        comparison.append({
            "workload": workload,
            "mode": latest_key[0],
            "strategy": latest_key[1],
            "backends": {
                name: {
                    "runs": len(backends_by_key[latest_key][name]),
                    "median_wall_s": wall,
                    "speedup_vs_slowest": (slowest / wall) if wall else None,
                }
                for name, wall in sorted(walls.items())
            },
        })
    return {
        "records": len(records),
        "groups": groups,
        "comparison": comparison,
        "window": window,
        "threshold": threshold,
    }


def analyze_tuner(records: list[dict]) -> dict:
    """Fold the ledger's autotuned runs into the ``--tuner`` report."""
    tuned = [r for r in records if r.get("tuned")]
    by_workload: dict[str, list[float]] = {}
    for rec in tuned:
        error = rec.get("tuner_error")
        if isinstance(error, (int, float)):
            by_workload.setdefault(str(rec.get("workload")), []).append(
                abs(float(error))
            )
    return {
        "tuned_runs": len(tuned),
        "runs": tuned,
        "mean_abs_error": {
            w: sum(errs) / len(errs) for w, errs in sorted(by_workload.items())
        },
    }


def render_tuner(tuner: dict, *, last: int = 20) -> str:
    """Console rendering of :func:`analyze_tuner`'s output."""
    if not tuner["tuned_runs"]:
        return ("no autotuned runs in the ledger — run with mode='auto', "
                "tune=True or $REPRO_AUTOTUNE=1 first")
    lines = [f"{tuner['tuned_runs']} autotuned run(s)", ""]
    lines.append(f"  {'when (UTC)':<19s} {'workload':<12s} {'backend':<9s} "
                 f"{'choice':<22s} {'predicted':>12s} {'error':>8s}")
    for rec in tuner["runs"][-last:]:
        error = rec.get("tuner_error")
        predicted = rec.get("tuner_predicted_cost")
        lines.append(
            f"  {_ts(rec):<19s} {str(rec.get('workload', '-')):<12s} "
            f"{str(rec.get('backend', '-')):<9s} "
            f"{str(rec.get('tuner_choice', '-')):<22s} "
            f"{(f'{predicted:.4g}' if isinstance(predicted, (int, float)) else '-'):>12s} "
            f"{(f'{error:+.1%}' if isinstance(error, (int, float)) else '-'):>8s}"
        )
    if tuner["mean_abs_error"]:
        lines.append("")
        lines.append("  mean |error| per workload "
                     "(prediction vs measurement, matched units):")
        for workload, mae in tuner["mean_abs_error"].items():
            lines.append(f"    {workload:<12s} {mae:.1%}")
    return "\n".join(lines)


def _ts(rec: dict) -> str:
    ts = rec.get("ts")
    if not isinstance(ts, (int, float)):
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(ts))


def _spill_cell(rec: dict) -> str:
    """Compact "runs/bytes" spill column (``-`` = no spilling ran)."""
    runs = rec.get("spill_runs")
    if not isinstance(runs, int):
        return "-"
    nbytes = rec.get("spilled_bytes") or 0
    if nbytes >= 2**20:
        human = f"{nbytes / 2**20:.1f}M"
    elif nbytes >= 2**10:
        human = f"{nbytes / 2**10:.0f}k"
    else:
        human = str(nbytes)
    return f"{runs}/{human}"


def render(analysis: dict, *, last: int = 8) -> str:
    """Console rendering of :func:`analyze`'s output."""
    lines: list[str] = []
    if not analysis["records"]:
        return "ledger is empty — run any job (or repro-trace) first"
    lines.append(f"{analysis['records']} ledger record(s)")
    for group in analysis["groups"]:
        runs = group["runs"]
        lines.append("")
        lines.append(f"== {group['workload']} · {group['backend']} "
                     f"({len(runs)} run(s)) ==")
        lines.append(f"  {'when (UTC)':<19s} {'mode':>5s} {'strat':>5s} "
                     f"{'records':>8s} {'cycles':>14s} {'wall_s':>9s} "
                     f"{'skew':>5s} {'chk':>3s} {'spill':>10s}")
        for rec in runs[-last:]:
            skew = rec.get("straggler_skew")
            findings = rec.get("check_findings")
            lines.append(
                f"  {_ts(rec):<19s} {str(rec.get('mode', '-')):>5s} "
                f"{str(rec.get('strategy') or '-'):>5s} "
                f"{rec.get('records_in', 0):>8d} "
                f"{rec.get('sim_cycles', 0.0):>14.0f} "
                f"{rec.get('wall_s', 0.0):>9.4f} "
                f"{(f'{skew:.2f}' if isinstance(skew, (int, float)) else '-'):>5s} "
                f"{(str(findings) if findings is not None else '-'):>3s} "
                f"{_spill_cell(rec):>10s}"
            )
        reg = group["regression"]
        if reg:
            for flag in reg["flags"]:
                lines.append(f"  REGRESSION: {flag}")
    if analysis["comparison"]:
        lines.append("")
        lines.append("== backend comparison (median wall_s, same input) ==")
        for comp in analysis["comparison"]:
            strategy = comp.get("strategy") or "-"
            lines.append(f"  {comp['workload']} "
                         f"[mode={comp.get('mode')}, strategy={strategy}]:")
            for name, row in comp["backends"].items():
                speed = row["speedup_vs_slowest"]
                lines.append(
                    f"    {name:<10s} {row['median_wall_s']:>9.4f}s  "
                    f"{(f'{speed:5.1f}x' if speed else '     -')}  "
                    f"({row['runs']} run(s))"
                )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(prog="repro-report", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("--ledger", default=None,
                   help="ledger file (default: the active ledger, "
                        "honouring $REPRO_LEDGER_DIR)")
    p.add_argument("--last", type=int, default=8,
                   help="runs shown per trajectory table")
    p.add_argument("--window", type=int, default=5,
                   help="rolling-baseline window for regression flags")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="wall-clock regression threshold (0.25 = +25%%)")
    p.add_argument("--workload", default=None,
                   help="only this workload")
    p.add_argument("--backend", default=None,
                   help="only this backend")
    p.add_argument("--tuner", action="store_true",
                   help="report the autotuned runs instead: choice, "
                        "predicted cost and prediction error per run")
    p.add_argument("--json", action="store_true",
                   help="emit the structured report as JSON")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 when any regression is flagged")
    args = p.parse_args(argv)

    path = args.ledger if args.ledger is not None else ledger_path()
    records = read_ledger(path)
    if args.workload:
        records = [r for r in records
                   if str(r.get("workload")).lower() == args.workload.lower()]
    if args.backend:
        records = [r for r in records
                   if str(r.get("backend")).lower() == args.backend.lower()]
    if args.tuner:
        tuner = analyze_tuner(records)
        tuner["ledger"] = path
        if args.json:
            print(json.dumps(tuner, sort_keys=True, indent=1))
        else:
            print(f"ledger: {path}")
            print(render_tuner(tuner, last=max(args.last, 20)))
        return 0
    analysis = analyze(records, window=args.window,
                       threshold=args.threshold)
    analysis["ledger"] = path
    if args.json:
        print(json.dumps(analysis, sort_keys=True, indent=1))
    else:
        print(f"ledger: {path}")
        print(render(analysis, last=args.last))
    if args.strict and any(g["regression"] for g in analysis["groups"]):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
