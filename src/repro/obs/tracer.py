"""Structured tracing on the simulated clock — and, opt-in, the wall
clock alongside it.

A :class:`Tracer` owns a monotonic *sim-cycle* clock (``now``) and a
stack of open :class:`Span` objects.  Host code opens spans around the
work it performs and advances the clock by the modelled cycle cost of
each step; kernel launches are folded in with :meth:`Tracer.kernel`,
which also ingests the launch's per-warp :class:`~repro.gpu.timeline.
Timeline` (events and instant marks) into absolute job time, so host
phases and device activity render on one timeline.

The sim clock is the primary axis: traces are deterministic for a
fixed seed and byte-stable across runs.  ``Tracer(wall_clock=True)``
additionally stamps every span and instant with
``time.perf_counter_ns()`` — the *dual-clock* mode the fast and
parallel backends use, whose kernel cycles are zero by design and
whose real cost is wall time.  Wall stamps are strictly additive:
with ``wall_clock=False`` (the default, what every sim run uses)
nothing wall-clock-shaped is recorded and exported traces are
byte-identical to the single-clock format.

Cross-process worker activity (the parallel backend's per-shard phase
profiles) lands as :class:`WorkerEvent` records via
:meth:`Tracer.worker_span`; they are inherently wall-clock (forked
children share the parent's ``perf_counter`` epoch on Linux, so their
absolute nanosecond stamps are directly comparable) and render as one
track per worker in the Chrome export.

Framework entry points take ``tracer=None`` and substitute
:data:`NULL_TRACER`, whose methods are all no-ops, so the untraced
hot path stays free of conditionals and allocation.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from ..gpu.stats import KernelStats
    from ..gpu.timeline import Timeline


@dataclass
class Span:
    """One named interval on the job clock, possibly nested.

    ``wall_start``/``wall_end`` are ``perf_counter_ns`` stamps, filled
    only under ``Tracer(wall_clock=True)`` — ``None`` otherwise.
    """

    name: str
    start: float
    end: float = 0.0
    depth: int = 0
    parent: "Span | None" = None
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    wall_start: int | None = None
    wall_end: int | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def wall_duration_ns(self) -> int | None:
        if self.wall_start is None or self.wall_end is None:
            return None
        return self.wall_end - self.wall_start

    def __repr__(self) -> str:  # keep parent out to avoid recursion
        return (
            f"Span({self.name!r}, {self.start:.0f}..{self.end:.0f}, "
            f"depth={self.depth})"
        )


@dataclass(frozen=True)
class InstantEvent:
    """A zero-duration host-side event."""

    name: str
    time: float
    attrs: dict = field(default_factory=dict)
    wall_time: int | None = None


@dataclass(frozen=True)
class WorkerEvent:
    """One wall-clock interval of work done by a pool worker.

    ``worker`` is the stable track id (the shard index for sharded
    phases); ``start_ns``/``end_ns`` are absolute ``perf_counter_ns``
    stamps taken inside the worker process.
    """

    worker: int
    name: str
    start_ns: int
    end_ns: int
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class DeviceEvent:
    """One device-side interval or mark, in absolute job time.

    ``category`` is a :mod:`repro.gpu.timeline` instruction category
    (``compute``/``global_read``/``poll``/...), the coalesced
    ``poll_wait`` episode, or ``mark`` for instant markers raised by
    framework code (overflow flushes, final flushes).
    """

    kernel: str
    block: int
    warp: int
    category: str
    start: float
    end: float
    name: str = ""
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects spans, instants and device events for one job run."""

    def __init__(
        self,
        *,
        kernel_detail: bool = True,
        trace_blocks: set[int] | frozenset[int] | None = frozenset({0}),
        coalesce_polls: bool = True,
        wall_clock: bool = False,
    ):
        #: Current job time in simulated cycles.
        self.now: float = 0.0
        #: Record per-warp timelines for kernel launches?
        self.kernel_detail = kernel_detail
        #: Which blocks to trace at warp granularity (None = all).
        self.trace_blocks = (
            None if trace_blocks is None else set(trace_blocks)
        )
        self.coalesce_polls = coalesce_polls
        #: Stamp spans/instants with ``perf_counter_ns`` too?
        self.wall_clock = wall_clock
        #: Wall origin for exports: worker events and wall-stamped
        #: spans are rebased against this so the exported timeline
        #: starts near zero.  Cheap enough to take unconditionally.
        self.wall_origin_ns: int = time.perf_counter_ns()
        self.roots: list[Span] = []
        self.spans: list[Span] = []  # every span, in open order
        self.instants: list[InstantEvent] = []
        self.device_events: list[DeviceEvent] = []
        self.worker_events: list[WorkerEvent] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    def advance(self, cycles: float) -> None:
        """Advance the job clock by a modelled cost."""
        if cycles > 0:
            self.now += cycles

    # ------------------------------------------------------------------
    # Spans and instants
    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a nested span; closes at the current clock on exit."""
        sp = Span(
            name=name,
            start=self.now,
            depth=len(self._stack),
            parent=self._stack[-1] if self._stack else None,
            attrs={k: v for k, v in attrs.items() if v is not None},
        )
        if self.wall_clock:
            sp.wall_start = time.perf_counter_ns()
        if sp.parent is not None:
            sp.parent.children.append(sp)
        else:
            self.roots.append(sp)
        self.spans.append(sp)
        self._stack.append(sp)
        try:
            yield sp
        finally:
            self._stack.pop()
            sp.end = max(self.now, sp.start)
            if self.wall_clock:
                sp.wall_end = time.perf_counter_ns()

    def instant(self, name: str, **attrs) -> None:
        """Record a zero-duration host event at the current clock."""
        wall = time.perf_counter_ns() if self.wall_clock else None
        self.instants.append(
            InstantEvent(name=name, time=self.now, attrs=attrs,
                         wall_time=wall)
        )

    def worker_span(self, worker: int, name: str, start_ns: int,
                    end_ns: int, **attrs) -> None:
        """Record one wall-clock interval of pool-worker activity.

        Used by the parallel backend to merge per-shard phase profiles
        shipped back from forked workers; each distinct ``worker`` id
        becomes its own track in the Chrome export.
        """
        self.worker_events.append(WorkerEvent(
            worker=worker, name=name, start_ns=start_ns, end_ns=end_ns,
            attrs={k: v for k, v in attrs.items() if v is not None},
        ))

    # ------------------------------------------------------------------
    # Kernel launches
    # ------------------------------------------------------------------

    def make_timeline(self) -> "Timeline | None":
        """A fresh :class:`Timeline` for the next launch (or ``None``
        when kernel detail is off); pass it to ``launch(timeline=...)``
        and hand it back to :meth:`kernel`."""
        if not self.kernel_detail:
            return None
        from ..gpu.timeline import Timeline

        return Timeline(blocks=self.trace_blocks)

    def kernel(
        self,
        name: str,
        stats: "KernelStats",
        timeline: "Timeline | None" = None,
        **attrs,
    ) -> Span:
        """Fold a finished launch into the trace.

        Opens a span of ``stats.cycles`` at the current clock, ingests
        the launch timeline (events offset into job time, consecutive
        polls per lane coalesced into ``poll_wait`` episodes, marks as
        instant device events) and advances the clock.
        """
        with self.span(name, **attrs) as sp:
            sp.attrs.setdefault("cycles", stats.cycles)
            sp.attrs.setdefault("grid_blocks", stats.grid_blocks)
            sp.attrs.setdefault("threads_per_block", stats.threads_per_block)
            sp.attrs.setdefault("instructions", stats.instructions)
            for key in ("flushes", "overflow_flushes"):
                if key in stats.extra:
                    sp.attrs.setdefault(key, stats.extra[key])
            if timeline is not None:
                self._ingest_timeline(name, sp.start, timeline)
            self.advance(stats.cycles)
        return sp

    def _ingest_timeline(
        self, kernel: str, base: float, timeline: "Timeline"
    ) -> None:
        by_lane: dict[tuple[int, int], list] = {}
        for e in timeline.events:
            by_lane.setdefault((e.block, e.warp), []).append(e)
        for (block, warp), events in sorted(by_lane.items()):
            run: list = []  # pending consecutive poll events

            def flush_run() -> None:
                if not run:
                    return
                self.device_events.append(DeviceEvent(
                    kernel=kernel, block=block, warp=warp,
                    category="poll_wait",
                    start=base + run[0].start, end=base + run[-1].end,
                    attrs={"probes": len(run)},
                ))
                run.clear()

            for e in events:
                if self.coalesce_polls and e.category == "poll":
                    run.append(e)
                    continue
                flush_run()
                self.device_events.append(DeviceEvent(
                    kernel=kernel, block=block, warp=warp,
                    category=e.category,
                    start=base + e.start, end=base + e.end,
                ))
            flush_run()
        for m in timeline.marks:
            self.device_events.append(DeviceEvent(
                kernel=kernel, block=m.block, warp=m.warp, category="mark",
                start=base + m.time, end=base + m.time,
                name=m.name, attrs=dict(m.attrs),
            ))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in open order."""
        return [s for s in self.spans if s.name == name]


class NullTracer:
    """No-op stand-in so framework code needs no ``if tracer`` guards."""

    now = 0.0
    kernel_detail = False
    wall_clock = False

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[None]:
        yield None

    def advance(self, cycles: float) -> None:
        pass

    def instant(self, name: str, **attrs) -> None:
        pass

    def worker_span(self, worker, name, start_ns, end_ns, **attrs) -> None:
        pass

    def make_timeline(self) -> None:
        return None

    def kernel(self, name, stats, timeline=None, **attrs) -> None:
        return None


#: Shared no-op tracer used whenever ``tracer=None`` is passed.
NULL_TRACER = NullTracer()
