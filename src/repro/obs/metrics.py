"""Metrics registry: counters, gauges, histograms — and perf diffing.

The registry subsumes the free-form ``KernelStats.extra`` dict: every
numeric :class:`~repro.gpu.stats.KernelStats` field, extra counter and
stall category is absorbed under a stable dotted name, and the derived
quantities of :mod:`repro.analysis.metrics` land beside them as
gauges.  :func:`job_metrics_registry` builds the full registry for one
:class:`~repro.framework.job.JobResult`; serialisation is sorted and
wall-clock-free, so ``metrics.json`` for a fixed seed is byte-stable —
the property the ``repro-trace --baseline`` regression diff relies on.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..gpu.stats import KernelStats

if TYPE_CHECKING:  # pragma: no cover
    from ..framework.job import JobResult
    from ..gpu.config import DeviceConfig


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: Sample-reservoir bound: past this many kept samples the reservoir
#: decimates itself (every other sample, doubled keep-stride), so
#: memory stays bounded while the kept set remains a deterministic
#: function of the observation sequence — no RNG, byte-stable output.
_RESERVOIR_CAP = 2048


@dataclass
class Histogram:
    """Streaming summary of an observed distribution.

    Beyond the running count/total/min/max, a bounded deterministic
    reservoir of samples supports :meth:`percentile` — the p50/p90/p99
    summaries the service-layer latency reporting needs.  Percentiles
    are exact until the reservoir cap, then computed over an
    evenly-strided subsample.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))
    _samples: list[float] = field(default_factory=list, repr=False)
    _stride: int = field(default=1, repr=False)
    _pending: int = field(default=0, repr=False)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self._samples.append(value)
            if len(self._samples) > _RESERVOIR_CAP:
                del self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the kept samples (``q`` in
        [0, 100]); 0.0 for an empty histogram."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "max": 0.0, "mean": 0.0, "min": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0, "total": 0.0}
        return {"count": self.count, "max": self.max, "mean": self.mean,
                "min": self.min, "p50": self.percentile(50),
                "p90": self.percentile(90), "p99": self.percentile(99),
                "total": self.total}


class MetricsRegistry:
    """Named counters, gauges and histograms with get-or-create access."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def absorb_kernel_stats(self, stats: KernelStats, prefix: str) -> None:
        """Fold every numeric counter of a launch under ``prefix``.

        Field discovery is introspective (``dataclasses.fields``), so
        counters added to :class:`KernelStats` later are picked up
        automatically — nothing to hand-maintain here.
        """
        for f in dataclasses.fields(stats):
            value = getattr(stats, f.name)
            if isinstance(value, (int, float)):
                self.counter(f"{prefix}.{f.name}").inc(value)
        for key in sorted(stats.extra):
            value = stats.extra[key]
            # Extras may carry string annotations (the tuner's choice
            # label, for one); counters only fold numbers.
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.counter(f"{prefix}.extra.{key}").inc(value)
        for cat in sorted(stats.stall_cycles):
            self.counter(f"{prefix}.stall_cycles.{cat}").inc(
                stats.stall_cycles[cat]
            )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def as_dict(self) -> dict:
        """Deterministic nested dict (sorted names, plain floats)."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }

    def to_json(self, extra: dict | None = None) -> str:
        """Byte-stable JSON document (optionally with header fields)."""
        doc = {"schema": 1, **(extra or {}), **self.as_dict()}
        return json.dumps(doc, sort_keys=True, indent=2) + "\n"


# ----------------------------------------------------------------------
# Job-level registry
# ----------------------------------------------------------------------


def job_metrics_registry(
    result: "JobResult", config: "DeviceConfig"
) -> MetricsRegistry:
    """The full metrics registry for one finished job."""
    from ..analysis.metrics import derive_metrics

    reg = MetricsRegistry()
    reg.gauge("job.total_cycles").set(result.total_cycles)
    for phase, cycles in result.timings.as_dict().items():
        reg.gauge(f"phase.{phase}").set(cycles)
    reg.counter("job.output_records").inc(len(result.output))
    reg.counter("job.intermediate_records").inc(result.intermediate_count)

    phases = [("map", result.map_stats)]
    if result.strategy is not None:
        phases.append(("reduce", result.reduce_stats))
    for phase, stats in phases:
        reg.absorb_kernel_stats(stats, f"kernel.{phase}")
        derived = derive_metrics(stats, config).as_dict()
        breakdown = derived.pop("stall_breakdown")
        for name, value in derived.items():
            reg.gauge(f"derived.{phase}.{name}").set(value)
        for cat, frac in breakdown.items():
            reg.gauge(f"derived.{phase}.stall_fraction.{cat}").set(frac)
    # Cross-process worker telemetry (parallel backend only): shard
    # wall times as percentile-capable histograms plus the straggler
    # skew.  Wall-clock values vary run to run, so these keys only
    # exist where byte-stable metrics.json never did (sharded runs).
    if result.worker_profiles:
        for p in result.worker_profiles:
            reg.histogram(f"worker.{p.phase}.shard_ms").observe(
                p.wall_ns / 1e6
            )
        if result.straggler is not None:
            for ph in result.straggler.phases:
                reg.gauge(f"worker.{ph.phase}.skew").set(ph.skew)
                reg.gauge(f"worker.{ph.phase}.shards").set(ph.shards)
    return reg


# ----------------------------------------------------------------------
# Regression diffing
# ----------------------------------------------------------------------


def flatten_metrics(doc: dict) -> dict[str, float]:
    """Flatten a metrics document into dotted-name -> value."""
    flat: dict[str, float] = {}
    for kind in ("counters", "gauges"):
        for name, value in doc.get(kind, {}).items():
            flat[f"{kind}.{name}"] = value
    for name, summary in doc.get("histograms", {}).items():
        for stat, value in summary.items():
            flat[f"histograms.{name}.{stat}"] = value
    return flat


@dataclass(frozen=True)
class MetricDelta:
    name: str
    baseline: float | None  # None = metric added
    current: float | None  # None = metric removed

    @property
    def ratio(self) -> float | None:
        if self.baseline in (None, 0) or self.current is None:
            return None
        return self.current / self.baseline

    def render(self) -> str:
        if self.baseline is None:
            return f"+ {self.name} = {self.current:g} (new)"
        if self.current is None:
            return f"- {self.name} (was {self.baseline:g})"
        arrow = f"{self.baseline:g} -> {self.current:g}"
        if self.ratio is not None:
            arrow += f" ({self.ratio - 1.0:+.1%})"
        return f"~ {self.name}: {arrow}"


def diff_metrics(
    baseline: dict, current: dict, *, rel_tol: float = 0.0
) -> list[MetricDelta]:
    """Compare two metrics documents; returns deltas beyond ``rel_tol``.

    ``rel_tol`` is the allowed relative change (0.05 = 5%); additions
    and removals are always reported.
    """
    base = flatten_metrics(baseline)
    cur = flatten_metrics(current)
    deltas: list[MetricDelta] = []
    for name in sorted(set(base) | set(cur)):
        b, c = base.get(name), cur.get(name)
        if b is None or c is None:
            deltas.append(MetricDelta(name, b, c))
            continue
        if b == c:
            continue
        denom = abs(b) if b else 1.0
        if abs(c - b) / denom > rel_tol:
            deltas.append(MetricDelta(name, b, c))
    return deltas
