"""Human-readable views of a trace: span tree and job profile."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..framework.job import JobResult
    from ..gpu.config import DeviceConfig
    from .tracer import Span, Tracer


def render_span_tree(tracer: "Tracer", *, attrs: bool = False) -> str:
    """ASCII tree of the trace's spans with durations and % of root.

    Device events are summarised per kernel span (event and poll-
    episode counts) rather than listed, keeping the tree readable.
    """
    lines: list[str] = []
    for root in tracer.roots:
        total = max(root.duration, 1e-12)
        _render_span(tracer, root, total, lines, attrs)
    return "\n".join(lines) if lines else "(empty trace)"


def _render_span(
    tracer: "Tracer", sp: "Span", total: float,
    lines: list[str], attrs: bool,
) -> None:
    label = f"{'  ' * sp.depth}{sp.name}"
    pct = f"{sp.duration / total:6.1%}" if total else "      "
    line = f"{label:<44s} {sp.duration:>14.0f} cy  {pct}"
    devs = [d for d in tracer.device_events if d.kernel == sp.name]
    if devs:
        polls = sum(1 for d in devs if d.category == "poll_wait")
        marks = sum(1 for d in devs if d.category == "mark")
        line += f"  [{len(devs)} device events"
        if polls:
            line += f", {polls} poll episodes"
        if marks:
            line += f", {marks} marks"
        line += "]"
    if attrs and sp.attrs:
        line += "  " + ", ".join(
            f"{k}={v}" for k, v in sorted(sp.attrs.items())
        )
    lines.append(line)
    for child in sp.children:
        _render_span(tracer, child, total, lines, attrs)


def render_job_profile(result: "JobResult", config: "DeviceConfig") -> str:
    """Phase breakdown plus derived kernel metrics for one job."""
    from ..analysis.metrics import derive_metrics

    timings = result.timings
    total = max(timings.total, 1e-12)
    strategy = getattr(result.strategy, "value", result.strategy)
    lines = [
        f"job {result.spec_name}  mode={getattr(result.mode, 'value', result.mode)}"
        f"  strategy={strategy or '-'}",
        f"total cycles           : {timings.total:.0f}",
        "phase breakdown        :",
    ]
    for phase, cycles in timings.as_dict().items():
        if phase == "total":
            continue
        lines.append(f"  {phase:<8s} {cycles:>14.0f} cy  {cycles / total:6.1%}")
    lines.append("")
    lines.append("Map kernel:")
    lines.append(derive_metrics(result.map_stats, config).render())
    if result.strategy is not None and result.reduce_stats.cycles:
        lines.append("")
        lines.append("Reduce kernel:")
        lines.append(derive_metrics(result.reduce_stats, config).render())
    return "\n".join(lines)
