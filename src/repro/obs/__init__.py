"""``repro.obs`` — unified tracing, profiling and metrics.

The observability layer ties the host-side phases of a job (upload ->
Map -> Shuffle -> Reduce -> download), iterative and streamed drivers,
and per-warp kernel events into one inspectable record:

* :class:`Tracer` — nested spans and instant events on a monotonic
  sim-cycle clock, captured by passing ``tracer=`` to
  :func:`repro.framework.job.run_job` (and the iterative / streamed /
  Mars drivers);
* exporters — Chrome/Perfetto ``trace_event`` JSON and a compact
  JSONL event log (:mod:`repro.obs.exporters`);
* :class:`MetricsRegistry` — counters / gauges / histograms derived
  from :class:`~repro.gpu.stats.KernelStats` and the analysis layer,
  serialised deterministically for perf-regression diffing
  (:mod:`repro.obs.metrics`);
* the ``repro-trace`` CLI (:mod:`repro.obs.cli`) — run any workload
  under any mode/strategy and emit trace + profile + metrics files.
"""

from .exporters import (
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    MetricsRegistry,
    diff_metrics,
    flatten_metrics,
    job_metrics_registry,
)
from .report import render_job_profile, render_span_tree
from .tracer import NULL_TRACER, DeviceEvent, NullTracer, Span, Tracer

__all__ = [
    "DeviceEvent",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "diff_metrics",
    "flatten_metrics",
    "job_metrics_registry",
    "render_job_profile",
    "render_span_tree",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
