"""``repro.obs`` — unified tracing, profiling and metrics.

The observability layer ties the host-side phases of a job (upload ->
Map -> Shuffle -> Reduce -> download), iterative and streamed drivers,
and per-warp kernel events into one inspectable record:

* :class:`Tracer` — nested spans and instant events on a monotonic
  sim-cycle clock, captured by passing ``tracer=`` to
  :func:`repro.framework.job.run_job` (and the iterative / streamed /
  Mars drivers);
* exporters — Chrome/Perfetto ``trace_event`` JSON and a compact
  JSONL event log (:mod:`repro.obs.exporters`);
* :class:`MetricsRegistry` — counters / gauges / histograms derived
  from :class:`~repro.gpu.stats.KernelStats` and the analysis layer,
  serialised deterministically for perf-regression diffing
  (:mod:`repro.obs.metrics`);
* the ``repro-trace`` CLI (:mod:`repro.obs.cli`) — run any workload
  under any mode/strategy and emit trace + profile + metrics files;
* cross-process worker telemetry (:mod:`repro.obs.telemetry`) — the
  parallel backend ships a per-shard phase profile back from each
  worker; the merge surfaces per-worker tracks in the Chrome export
  and a straggler summary on :class:`~repro.framework.job.JobResult`;
* the persistent run ledger (:mod:`repro.obs.ledger`) — every
  executed job appends one JSONL record to ``.repro/runs.jsonl``
  (opt-out with ``REPRO_LEDGER=0``), which the ``repro-report`` CLI
  (:mod:`repro.obs.report_cli`) renders as trajectory tables,
  regression flags and backend comparisons.
"""

from .exporters import (
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .ledger import (
    append_record,
    build_record,
    ledger_enabled,
    ledger_path,
    read_ledger,
    record_run,
)
from .metrics import (
    MetricsRegistry,
    diff_metrics,
    flatten_metrics,
    job_metrics_registry,
)
from .report import render_job_profile, render_span_tree
from .telemetry import (
    PhaseImbalance,
    ShardProfile,
    WorkerSummary,
    summarize_workers,
)
from .tracer import (
    NULL_TRACER,
    DeviceEvent,
    NullTracer,
    Span,
    Tracer,
    WorkerEvent,
)

__all__ = [
    "DeviceEvent",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PhaseImbalance",
    "ShardProfile",
    "Span",
    "Tracer",
    "WorkerEvent",
    "WorkerSummary",
    "append_record",
    "build_record",
    "diff_metrics",
    "flatten_metrics",
    "job_metrics_registry",
    "ledger_enabled",
    "ledger_path",
    "read_ledger",
    "record_run",
    "render_job_profile",
    "render_span_tree",
    "summarize_workers",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
