"""``repro-trace`` — run a workload under full tracing and export.

Runs any named workload under any memory mode / reduce strategy with
the :mod:`repro.obs` tracer attached, then writes three artefacts into
``--out`` (default ``trace_out/``):

* ``trace.json``   — Chrome/Perfetto ``trace_event`` JSON (open at
  https://ui.perfetto.dev): job -> phase -> kernel spans on the host
  track, per-warp activity and flush/poll events on device tracks;
* ``events.jsonl`` — the same record, one JSON object per line;
* ``metrics.json`` — the job's full metrics registry, byte-stable for
  a fixed seed (the perf-regression baseline format).

Examples::

    repro-trace wordcount --mode SIO --strategy TR
    repro-trace WC --mode G --size medium --mps 4
    repro-trace kmeans --mars --out /tmp/km_mars
    repro-trace wordcount --baseline old/metrics.json --tolerance 0.02
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..errors import FrameworkError
from ..framework.job import run_job
from ..framework.modes import MemoryMode, ReduceStrategy, \
    resolve_mode_name, resolve_strategy_name
from ..gpu.config import DeviceConfig
from ..store import parse_budget, resolve_budget
from ..workloads import ALL_WORKLOADS, EXTRA_WORKLOADS, Workload
from ..tune.decide import autotune_enabled as _env_autotune
from .exporters import write_check_json, write_chrome_trace, write_jsonl
from .metrics import diff_metrics, job_metrics_registry
from .report import render_job_profile, render_span_tree
from .tracer import Tracer


def _workload_index() -> dict[str, type[Workload]]:
    index: dict[str, type[Workload]] = {}
    for cls in (*ALL_WORKLOADS, *EXTRA_WORKLOADS):
        index[cls.code.lower()] = cls
        index[cls.__name__.lower()] = cls
        index[cls.title.lower().replace(" ", "")] = cls
    return index


def resolve_workload(name: str) -> Workload:
    """Accepts a code (``WC``), class name or title (``wordcount``).

    Unknown names print the known codes to stderr and exit 2 (the
    argparse convention for bad usage) instead of a traceback.
    """
    index = _workload_index()
    key = name.lower().replace(" ", "").replace("-", "").replace("_", "")
    if key not in index:
        known = sorted({cls.code for cls in index.values()})
        print(
            f"repro-trace: unknown workload {name!r}; "
            f"known codes: {', '.join(known)}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return index[key]()


def _parse_blocks(arg: str) -> set[int] | None:
    if arg == "all":
        return None
    if arg in ("none", ""):
        return set()
    try:
        return {int(b) for b in arg.split(",")}
    except ValueError:
        print(
            f"repro-trace: --blocks expects a comma-separated list of "
            f"block ids, 'all' or 'none'; got {arg!r}",
            file=sys.stderr,
        )
        raise SystemExit(2) from None


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(prog="repro-trace", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("workload",
                   help="workload code or name (WC, wordcount, kmeans, ...)")
    p.add_argument("--mode", default=None,
                   help="memory mode (G, GT, SI, SO, SIO; default SIO) "
                        "or 'auto' to let the cost-model tuner pick")
    p.add_argument("--strategy", default="auto",
                   help="reduce strategy (TR, BR, none); 'auto' = TR "
                        "when the workload has a Reduce phase (default) "
                        "— or, under --mode auto/--autotune, whichever "
                        "the tuner predicts faster")
    p.add_argument("--autotune", action="store_true",
                   help="let the cost-model tuner (repro.tune) pick the "
                        "memory mode, strategy and block size from "
                        "input statistics (same as --mode auto; also "
                        "enabled by $REPRO_AUTOTUNE=1 when no --mode is "
                        "given)")
    p.add_argument("--reduce-mode", default=None,
                   choices=[m.value for m in MemoryMode],
                   help="memory mode for the Reduce phase (default: same as Map)")
    p.add_argument("--size", default="small",
                   choices=["small", "medium", "large"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--mps", type=int, default=0,
                   help="simulate this many MPs instead of the full 30")
    p.add_argument("--threads-per-block", type=int, default=None,
                   help="block size (default 128; under --mode auto an "
                        "explicit value pins it, otherwise the tuner "
                        "picks one)")
    p.add_argument("--shuffle", default="sort",
                   choices=["sort", "hash", "bitonic"])
    p.add_argument("--mars", action="store_true",
                   help="run the Mars two-pass baseline instead")
    p.add_argument("--backend", default=None,
                   choices=["sim", "fast", "parallel", "columnar", "dist"],
                   help="execution backend: 'sim' (cycle-accurate, "
                        "default), 'fast' (functional only — kernel "
                        "cycles read as zero), 'parallel' (fast, "
                        "sharded over a process pool), 'columnar' "
                        "(fast with vectorized batch kernels) or 'dist' "
                        "(fast over socket-connected workers with fault "
                        "tolerance); default honours $REPRO_BACKEND")
    p.add_argument("--columnar", action="store_true",
                   help="run the fast backend's vectorized columnar "
                        "path (same as --backend columnar or "
                        "$REPRO_COLUMNAR=1; incompatible with the sim, "
                        "parallel and dist backends)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for --backend parallel/dist "
                        "(default: $REPRO_WORKERS or the CPU count)")
    p.add_argument("--store", default=None, choices=["memory", "spill"],
                   help="intermediate-store policy for the fast/parallel"
                        "/dist backends: 'memory' (unbounded dict, "
                        "default) or 'spill' (budgeted out-of-core "
                        "shuffle); default honours $REPRO_STORE; ignored "
                        "by the sim backend")
    p.add_argument("--memory-budget", default=None, metavar="SIZE",
                   help="spill budget in bytes, k/m/g suffixes accepted "
                        "(e.g. 64k, 512M); needs --store spill; default "
                        "honours $REPRO_MEMORY_BUDGET")
    p.add_argument("--check", action="store_true",
                   help="run under the repro.check sanitizer (report "
                        "mode) and write check.json; exits 1 on any "
                        "finding (sim backend only)")
    p.add_argument("--blocks", default="0",
                   help="blocks to trace at warp level: comma list, "
                        "'all', or 'none' (default: block 0)")
    p.add_argument("--out", default="trace_out",
                   help="output directory (created if missing)")
    p.add_argument("--baseline",
                   help="previous metrics.json to diff against")
    p.add_argument("--tolerance", type=float, default=0.0,
                   help="relative change tolerated by --baseline diffing")
    p.add_argument("--quiet", action="store_true",
                   help="write files only, skip the console report")
    args = p.parse_args(argv)

    workload = resolve_workload(args.workload)
    # Mode/strategy names validate in exactly one place
    # (repro.framework.modes); unknown names exit 2 with the friendly
    # message instead of an argparse choices dump or a traceback.
    try:
        mode = resolve_mode_name(args.mode, allow_auto=True) \
            if args.mode is not None else None
        strategy = resolve_strategy_name(args.strategy, allow_auto=True)
    except FrameworkError as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    if args.autotune:
        if args.mars:
            print("repro-trace: --autotune tunes the shared-memory "
                  "framework's knobs; it conflicts with --mars",
                  file=sys.stderr)
            raise SystemExit(2)
        if mode not in (None, "auto"):
            print(f"repro-trace: --autotune picks the memory mode "
                  f"itself; it conflicts with --mode "
                  f"{getattr(mode, 'value', mode)} (drop one)",
                  file=sys.stderr)
            raise SystemExit(2)
        mode = "auto"
    if mode is None:
        mode = "auto" if _env_autotune() and not args.mars else MemoryMode.SIO
    if strategy == "auto" and mode != "auto":
        # The historical CLI meaning of 'auto': TR when the workload
        # reduces.  Under mode='auto' it stays 'auto' — the tuner's
        # TR-vs-BR choice, which is output-identical either way.
        strategy = ReduceStrategy.TR if workload.has_reduce else None
    if strategy == "auto" and args.mars:
        strategy = ReduceStrategy.TR if workload.has_reduce else None
    config = DeviceConfig.small(args.mps) if args.mps else DeviceConfig.gtx280()
    inp = workload.generate(args.size, seed=args.seed, scale=args.scale)
    spec = workload.spec_for_size(args.size, seed=args.seed, scale=args.scale)

    backend = args.backend
    backend_name = (args.backend or os.environ.get("REPRO_BACKEND")
                    or "sim").strip().lower()
    if args.columnar:
        if args.backend in ("sim", "parallel", "dist"):
            print("repro-trace: --columnar needs the fast backend "
                  "(--backend fast or columnar)", file=sys.stderr)
            raise SystemExit(2)
        backend = backend_name = "columnar"
    if args.workers is not None and backend not in ("parallel", "dist"):
        print("repro-trace: --workers needs --backend parallel or dist",
              file=sys.stderr)
        raise SystemExit(2)
    if args.memory_budget is not None and args.store != "spill":
        print("repro-trace: --memory-budget needs --store spill",
              file=sys.stderr)
        raise SystemExit(2)
    try:
        memory_budget = parse_budget(args.memory_budget)
        # Validate $REPRO_MEMORY_BUDGET now too: a malformed env var
        # should be a usage error here, not a traceback mid-shuffle.
        resolve_budget(memory_budget)
    except FrameworkError as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    try:
        if backend == "parallel":
            from ..backend import ParallelBackend

            # min_records=0: a traced parallel run should actually
            # shard — the in-process fallback would yield no worker
            # telemetry.
            backend = ParallelBackend(workers=args.workers, min_records=0)
        elif backend == "dist":
            from ..backend import DistributedBackend

            # Same reasoning: a traced dist run should actually cross
            # the socket boundary, whatever the input size.
            backend = DistributedBackend(workers=args.workers,
                                         min_records=0)
        else:
            # Resolve eagerly so a bad $REPRO_BACKEND (parallel:0, a
            # typo'd name) or $REPRO_WORKERS exits 2 with the message,
            # not a traceback from inside the job.
            from ..backend import get_backend

            backend = get_backend(backend)
    except FrameworkError as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        raise SystemExit(2) from None

    blocks = _parse_blocks(args.blocks)
    # The fast and parallel backends report zero kernel cycles, so the
    # sim clock alone would render a flat timeline — capture wall
    # stamps alongside (the sim backend stays on its deterministic
    # single clock, keeping golden traces byte-identical).
    tracer = Tracer(kernel_detail=blocks is None or bool(blocks),
                    trace_blocks=blocks,
                    wall_clock=backend_name != "sim")
    # Report mode: collect every finding rather than raising on the
    # first one — the CLI's exit status carries the verdict.
    check = "report" if args.check else None
    if args.mars:
        from ..mars.framework import run_mars_job

        result = run_mars_job(
            spec, inp, strategy=strategy, config=config,
            threads_per_block=args.threads_per_block or 128, tracer=tracer,
            backend=backend, check=check, store=args.store,
            memory_budget=memory_budget,
        )
    else:
        result = run_job(
            spec, inp, mode=mode, reduce_mode=args.reduce_mode,
            strategy=strategy, config=config,
            threads_per_block=args.threads_per_block,
            shuffle_method=args.shuffle, tracer=tracer,
            backend=backend, check=check, store=args.store,
            memory_budget=memory_budget, tune=False,
        )

    os.makedirs(args.out, exist_ok=True)
    trace_path = os.path.join(args.out, "trace.json")
    jsonl_path = os.path.join(args.out, "events.jsonl")
    metrics_path = os.path.join(args.out, "metrics.json")
    write_chrome_trace(tracer, trace_path)
    write_jsonl(tracer, jsonl_path)
    registry = job_metrics_registry(result, config)
    header = {
        "workload": workload.code,
        "backend": backend_name,
        # Under --autotune the *resolved* mode/strategy land here, so
        # two metrics files only diff clean when the tuner agreed.
        "mode": "Mars" if args.mars
        else getattr(result.mode, "value", str(result.mode)),
        "strategy": getattr(result.strategy, "value", result.strategy),
        "size": args.size,
        "seed": args.seed,
        "scale": args.scale,
        "mps": args.mps or config.mp_count,
    }
    tuner_choice = result.map_stats.extra.get("tuner_choice")
    if tuner_choice is not None:
        header["tuner_choice"] = tuner_choice
        header["tuner_predicted_cost"] = result.map_stats.extra.get(
            "tuner_predicted_cost")
    with open(metrics_path, "w", encoding="utf-8") as fh:
        fh.write(registry.to_json(extra=header))

    check_failed = False
    if args.check:
        report = result.check_report
        if report is None:
            print("repro-trace: --check needs the sim backend; no "
                  "report produced", file=sys.stderr)
        else:
            check_path = os.path.join(args.out, "check.json")
            write_check_json(report, check_path)
            if not args.quiet:
                print(report.render())
                print(f"check   : {check_path}")
            check_failed = not report.ok

    if not args.quiet:
        print(render_job_profile(result, config))
        if result.straggler is not None:
            print()
            print(result.straggler.render())
        print()
        print("span tree:")
        print(render_span_tree(tracer))
        print()
        print(f"trace   : {trace_path}")
        print(f"events  : {jsonl_path}")
        print(f"metrics : {metrics_path}")

    if args.baseline:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        with open(metrics_path, encoding="utf-8") as fh:
            current = json.load(fh)
        deltas = diff_metrics(baseline, current, rel_tol=args.tolerance)
        if deltas:
            print(f"\n{len(deltas)} metric(s) changed beyond "
                  f"tolerance {args.tolerance:g}:")
            for d in deltas:
                print("  " + d.render())
            return 1
        print("\nno metric changes beyond tolerance "
              f"{args.tolerance:g} vs {args.baseline}")
    return 1 if check_failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
