"""Cross-process worker telemetry: shard profiles and straggler math.

The parallel backend's forked workers each record a lightweight
:class:`ShardProfile` for the shard they executed — wall-clock bounds
(``perf_counter_ns``; forked children share the parent's clock epoch,
so stamps are directly comparable), record and emission counts, and
the distinct-key width of any per-shard combine.  Profiles ship back
with the shard results, merge into the parent
:class:`~repro.obs.tracer.Tracer` as per-worker tracks, and aggregate
into a :class:`WorkerSummary` — the max-vs-median shard time and skew
ratio that the distributed-backend roadmap item needs for straggler
detection (the Xeon Phi MapReduce work leans on exactly this
per-thread phase profiling to find imbalance).

Everything here is plain data: profiles cross the process boundary by
pickling, so no field may hold user callables or live handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ShardProfile:
    """One worker's record of executing one shard of one phase.

    ``shard`` doubles as the stable worker-track id: shards are dealt
    to the pool in index order, so shard *i* of a phase is the same
    logical lane across runs regardless of which OS process served it
    (``pid`` records the latter for curiosity, not identity).
    """

    phase: str            # "map" or "reduce"
    shard: int            # shard index == stable worker-track id
    pid: int              # OS pid of the serving pool process
    start_ns: int         # perf_counter_ns at shard start
    end_ns: int           # perf_counter_ns at shard end
    records_in: int       # records (map) or value count (reduce) in
    records_out: int      # records emitted by the user function
    distinct_keys: int = 0  # peak shuffle-key width seen by the shard
    combined: bool = False  # did the shard run a partial combine?
    combine_ns: int = 0     # share of wall_ns spent in the combine
    spill_runs: int = 0     # sorted runs this shard wrote to disk
    spilled_bytes: int = 0  # payload bytes across this shard's runs

    @property
    def wall_ns(self) -> int:
        return self.end_ns - self.start_ns

    def to_dict(self) -> dict:
        return {
            "phase": self.phase, "shard": self.shard, "pid": self.pid,
            "wall_ns": self.wall_ns, "records_in": self.records_in,
            "records_out": self.records_out,
            "distinct_keys": self.distinct_keys,
            "combined": self.combined,
            "combine_ns": self.combine_ns,
            "spill_runs": self.spill_runs,
            "spilled_bytes": self.spilled_bytes,
        }


@dataclass(frozen=True)
class PhaseImbalance:
    """Straggler statistics for one sharded phase."""

    phase: str
    shards: int
    max_ns: int
    median_ns: int
    total_ns: int
    slowest_shard: int
    #: max / median shard wall time; 1.0 = perfectly balanced.
    skew: float

    def to_dict(self) -> dict:
        return {
            "phase": self.phase, "shards": self.shards,
            "max_ns": self.max_ns, "median_ns": self.median_ns,
            "total_ns": self.total_ns,
            "slowest_shard": self.slowest_shard,
            "skew": self.skew,
        }


@dataclass
class WorkerSummary:
    """Aggregated shard profiles for one job: per-phase imbalance."""

    phases: list[PhaseImbalance] = field(default_factory=list)

    @property
    def max_skew(self) -> float:
        return max((p.skew for p in self.phases), default=1.0)

    def phase(self, name: str) -> PhaseImbalance | None:
        for p in self.phases:
            if p.phase == name:
                return p
        return None

    def to_dict(self) -> dict:
        return {"phases": [p.to_dict() for p in self.phases],
                "max_skew": self.max_skew}

    def render(self) -> str:
        """Console table: one line per sharded phase."""
        lines = ["worker imbalance (max vs median shard wall time):"]
        for p in self.phases:
            flag = "  <- straggler" if p.skew >= 1.5 and p.shards > 1 else ""
            lines.append(
                f"  {p.phase:<7s} {p.shards:3d} shards  "
                f"max {p.max_ns / 1e6:9.3f} ms (shard {p.slowest_shard})  "
                f"median {p.median_ns / 1e6:9.3f} ms  "
                f"skew {p.skew:5.2f}x{flag}"
            )
        return "\n".join(lines)


def _median_int(values: list[int]) -> int:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) // 2


def summarize_workers(profiles: list[ShardProfile]) -> WorkerSummary | None:
    """Fold shard profiles into per-phase imbalance statistics.

    Returns ``None`` for an empty profile list (in-process fallback
    runs report no shards).  Phases appear in first-profile order
    (map before reduce, the execution order).
    """
    if not profiles:
        return None
    by_phase: dict[str, list[ShardProfile]] = {}
    for p in profiles:
        by_phase.setdefault(p.phase, []).append(p)
    summary = WorkerSummary()
    for phase, group in by_phase.items():
        walls = [p.wall_ns for p in group]
        max_ns = max(walls)
        median_ns = _median_int(walls)
        slowest = max(group, key=lambda p: (p.wall_ns, -p.shard)).shard
        summary.phases.append(PhaseImbalance(
            phase=phase,
            shards=len(group),
            max_ns=max_ns,
            median_ns=median_ns,
            total_ns=sum(walls),
            slowest_shard=slowest,
            skew=(max_ns / median_ns) if median_ns else 1.0,
        ))
    return summary
