"""Atomics linearizability: global tail reservations must chain.

Every ``atomicAdd`` on a global word returns the value it replaced,
so a correct execution's log for one address — sorted by returned old
value — forms a gap-free chain: each reservation starts exactly where
the previous one ended.  A duplicated old value means two warps were
handed the same reservation (they will overwrite each other's
output); a gap means a reservation was fabricated or lost.

The three output tail counters (key bytes, value bytes, record count)
are exactly such chains; so is the global barrier's monotone arrival
counter.  Zero-delta entries (reads dressed as atomics) are legal
anywhere in the chain.
"""

from __future__ import annotations

from .report import Finding


class AtomicsChecker:
    """Log-and-replay check over one launch's global atomics."""

    def __init__(self, report, config):
        self.report = report
        self.max_findings = config.max_findings
        self._log: dict[int, list[tuple[int, int]]] = {}

    def record(self, addr: int, old: int, delta: int) -> None:
        self._log.setdefault(addr, []).append((old, delta))

    def launch_finished(self) -> None:
        for addr, entries in sorted(self._log.items()):
            self.report.count("atomic_reservations", len(entries))
            if len(entries) < 2:
                continue
            entries.sort()
            expected = entries[0][0]
            for old, delta in entries:
                if old != expected:
                    kind = ("duplicate-reservation" if old < expected
                            else "reservation-gap")
                    what = ("two warps obtained overlapping reservations"
                            if old < expected
                            else "a reservation does not start where the "
                                 "previous one ended")
                    self.report.add(Finding(
                        detector="atomics",
                        kind=kind,
                        message=(f"atomic chain on global address {addr} "
                                 f"broken: old value {old} where {expected} "
                                 f"was expected — {what}"),
                        details={"addr": addr, "old": old,
                                 "expected": expected,
                                 "entries": len(entries)},
                    ), self.max_findings)
                    break
                expected = (old + delta) & 0xFFFFFFFF
