"""Differential fuzzer: random small workloads, sim vs fast vs oracle.

Property-based cross-checking for the whole stack: each case draws a
tiny random workload (map kernel shape, key distribution, record
count), a memory mode, a reduce strategy and tuning knobs, then runs
it on the simulator *with the sanitizer in strict mode*, on the fast
functional backend (three times: once on the default memory store,
once on the spill store under a tiny forced budget, and once through
the columnar execution path under a small batch width), and through
the sequential CPU oracle
(:func:`repro.cpu_ref.reference.reference_job`).  All outputs must
agree after order normalisation — the alternate store policy and the
columnar path must match the scalar fast run byte for byte — and the
sanitizer must report nothing.

The fuzz kernels have no batch implementations, so the columnar leg
exercises exactly the hard part: array-shuffle grouping plus the
per-batch scalar fallback, across ragged keys, empty inputs and burst
emitters.

The generator deliberately over-samples degenerate shapes — empty
inputs, single records, one hot key, zero-output maps, and burst
emitters sized to force mid-kernel collector flushes — because those
are where boundary bugs live.

``--chaos`` switches the executor set: each case runs on the
distributed backend (``dist:2``, splits forced down to 64 bytes) under
a *seeded* fault plan that kills one worker after a pseudorandom
number of records, and must still be byte-identical to the fast
backend — with exactly-once completion accounting read from the
coordinator's event log.  Tiny cases may finish before the kill
threshold; a fault that never fires is a valid draw (the differential
check still ran under an armed plan).

Run standalone::

    python -m repro.check.fuzz --cases 200 --seed 7
    python -m repro.check.fuzz --chaos --cases 100 --seed 11

Every case is derived from ``(seed, index)`` alone, so a failure
report like ``case 137`` reproduces with ``--only 137`` (plus
``--chaos`` if that's the mode that failed).
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from collections import Counter
from dataclasses import dataclass

from ..backend.fast import COLUMNAR_BATCH_ENV
from ..cpu_ref.reference import normalised, reference_job
from ..framework.api import MapReduceSpec
from ..framework.job import run_job
from ..framework.modes import MemoryMode, ReduceStrategy
from ..framework.records import KeyValueSet
from ..gpu.config import DeviceConfig

#: Input sizes, weighted toward the degenerate end.
_SIZES = (0, 0, 1, 1, 2, 3, 7, 16, 33, 64)

#: Key pools: small hot sets plus "unique" (every record its own key).
_KEY_POOLS = (1, 1, 2, 5, "unique")

_MODES = tuple(MemoryMode)
_STRATS = (None, ReduceStrategy.TR, ReduceStrategy.BR)

_KINDS = ("identity", "null", "filter", "burst", "count", "sum")


def _u32(n: int) -> bytes:
    return (n & 0xFFFFFFFF).to_bytes(4, "little")


def _from_u32(b: bytes) -> int:
    return int.from_bytes(b[:4], "little")


# ---- map/reduce kernels ----------------------------------------------------
# All values are 4-byte little-endian u32s so reductions are byte-exact
# integer sums (no float ordering concerns).

def _map_identity(key, value, emit, const):
    emit(key.to_bytes(), value.to_bytes())


def _map_null(key, value, emit, const):
    pass


def _map_filter(key, value, emit, const):
    if _from_u32(value.to_bytes()) % 2 == 0:
        emit(key.to_bytes(), value.to_bytes())


def _map_burst(key, value, emit, const):
    k = key.to_bytes()
    v = value.to_bytes()
    for i in range(6):
        emit(k, _u32(_from_u32(v) + i))


def _reduce_count(key, values, emit, const):
    emit(key.to_bytes(), _u32(len(values)))


def _reduce_sum(key, values, emit, const):
    emit(key.to_bytes(), _u32(sum(_from_u32(v.to_bytes()) for v in values)))


def _combine_count(a: bytes, b: bytes) -> bytes:
    return _u32(_from_u32(a) + _from_u32(b))


def _finalize_count(key: bytes, acc: bytes, count: int) -> tuple[bytes, bytes]:
    return key, _u32(count)


def _combine_sum(a: bytes, b: bytes) -> bytes:
    return _u32(_from_u32(a) + _from_u32(b))


def _finalize_sum(key: bytes, acc: bytes, count: int) -> tuple[bytes, bytes]:
    return key, acc


def _make_spec(kind: str, io_ratio: float | None) -> MapReduceSpec:
    maps = {
        "identity": _map_identity,
        "null": _map_null,
        "filter": _map_filter,
        "burst": _map_burst,
        "count": _map_identity,
        "sum": _map_identity,
    }
    kwargs: dict = {}
    if kind == "count":
        kwargs.update(reduce_record=_reduce_count,
                      combine=_combine_count, finalize=_finalize_count)
    elif kind == "sum":
        kwargs.update(reduce_record=_reduce_sum,
                      combine=_combine_sum, finalize=_finalize_sum)
    if io_ratio is not None:
        kwargs["io_ratio"] = io_ratio
    return MapReduceSpec(name=f"fuzz-{kind}", map_record=maps[kind], **kwargs)


# ---- case generation -------------------------------------------------------

@dataclass(frozen=True)
class FuzzCase:
    index: int
    kind: str
    n_records: int
    key_pool: object
    mode: MemoryMode
    strategy: ReduceStrategy | None
    threads_per_block: int
    io_ratio: float | None

    def describe(self) -> str:
        strat = self.strategy.value if self.strategy else "map-only"
        return (f"case {self.index}: {self.kind} n={self.n_records} "
                f"keys={self.key_pool} {self.mode.value}/{strat} "
                f"tpb={self.threads_per_block} io_ratio={self.io_ratio}")


def draw_case(seed: int, index: int) -> FuzzCase:
    """Derive case ``index`` of run ``seed`` (stateless: any case can
    be regenerated alone)."""
    rng = random.Random((seed << 20) ^ index)
    kind = rng.choice(_KINDS)
    if kind in ("count", "sum"):
        strategy = rng.choice((ReduceStrategy.TR, ReduceStrategy.BR))
    else:
        strategy = None
    mode = rng.choice(_MODES)
    if strategy is ReduceStrategy.BR and mode is MemoryMode.GT:
        mode = MemoryMode.SIO  # BR x GT is illegal by design
    return FuzzCase(
        index=index,
        kind=kind,
        n_records=rng.choice(_SIZES),
        key_pool=rng.choice(_KEY_POOLS),
        mode=mode,
        strategy=strategy,
        threads_per_block=rng.choice((64, 128)),
        io_ratio=rng.choice((None, 0.3, 0.7)),
    )


def build_input(case: FuzzCase) -> KeyValueSet:
    rng = random.Random((case.index << 8) ^ 0xF00D)
    inp = KeyValueSet()
    for i in range(case.n_records):
        if case.key_pool == "unique":
            key = _u32(i)
        else:
            key = _u32(rng.randrange(case.key_pool))
        inp.append(key, _u32(rng.randrange(1 << 16)))
    return inp


# ---- execution -------------------------------------------------------------

@dataclass
class FuzzFailure:
    case: FuzzCase
    reason: str


def run_case(case: FuzzCase, config: DeviceConfig) -> str | None:
    """Run one case across all five executors; None means it passed.

    The fuzz kernels emit only u32 integer values, so every backend —
    including the parallel backend's per-shard partial combine — must
    be byte-exact against the oracle after order normalisation.
    """
    from ..backend.fast import FastBackend
    from ..backend.parallel import ParallelBackend

    spec = _make_spec(case.kind, case.io_ratio)
    inp = build_input(case)
    want = normalised(reference_job(spec, inp, case.strategy))

    common = dict(mode=case.mode, strategy=case.strategy, config=config,
                  threads_per_block=case.threads_per_block)
    sim = run_job(spec, inp, check="strict", **common)
    if normalised(sim.output) != want:
        return (f"sim output diverges from oracle "
                f"({len(sim.output)} vs {len(want)} records)")
    fast = run_job(spec, inp, backend="fast", **common)
    if normalised(fast.output) != want:
        return (f"fast output diverges from oracle "
                f"({len(fast.output)} vs {len(want)} records)")
    # Same backend under the spill store with a budget small enough
    # that nearly every case writes runs: a different intermediate
    # policy must be byte-identical, not merely normalised-equal.
    spill = run_job(spec, inp, backend="fast", store="spill",
                    memory_budget=256, **common)
    if spill.output != fast.output:
        return (f"spill-store output diverges from the memory store "
                f"({len(spill.output)} vs {len(fast.output)} records)")
    par = run_job(spec, inp,
                  backend=ParallelBackend(workers=2, min_records=0),
                  **common)
    if par.output != fast.output:
        return (f"parallel output diverges from fast "
                f"({len(par.output)} vs {len(fast.output)} records)")
    # Columnar execution under a batch width small enough that most
    # cases span several batches.  These kernels declare no batch
    # implementations, so this drives the array shuffle plus the
    # per-batch scalar fallback; output must be byte-identical.
    prev = os.environ.get(COLUMNAR_BATCH_ENV)
    os.environ[COLUMNAR_BATCH_ENV] = "7"
    try:
        col = run_job(spec, inp, backend=FastBackend(columnar=True),
                      **common)
    finally:
        if prev is None:
            os.environ.pop(COLUMNAR_BATCH_ENV, None)
        else:
            os.environ[COLUMNAR_BATCH_ENV] = prev
    if col.output != fast.output:
        return (f"columnar output diverges from fast "
                f"({len(col.output)} vs {len(fast.output)} records)")
    return None


def chaos_plan(seed: int, index: int, n_records: int):
    """The per-case chaos ingredient: one seeded worker kill.

    Derived from ``(seed, index)`` alone so ``--only`` reproduces the
    exact plan.  The kill threshold scales with the case size so the
    fault usually fires mid-run but sometimes legitimately never trips.
    """
    from ..dist import FaultPlan

    return FaultPlan.seeded((seed << 20) ^ index ^ 0xC4A05, workers=2,
                            max_records=max(4, 2 * n_records))


def run_chaos_case(case: FuzzCase, config: DeviceConfig,
                   seed: int) -> str | None:
    """Run one case on dist:2 under a seeded worker kill; None = pass.

    The distributed backend ships plain pairs (no partial combine), so
    even with a worker dying mid-phase its output must be byte-identical
    to the fast backend — and the coordinator's event log must show
    exactly one accepted completion per (phase, shard).
    """
    from ..backend.distributed import DistributedBackend

    spec = _make_spec(case.kind, case.io_ratio)
    inp = build_input(case)
    common = dict(mode=case.mode, strategy=case.strategy, config=config,
                  threads_per_block=case.threads_per_block)
    fast = run_job(spec, inp, backend="fast", **common)
    want = normalised(reference_job(spec, inp, case.strategy))
    if normalised(fast.output) != want:
        return (f"fast output diverges from oracle "
                f"({len(fast.output)} vs {len(want)} records)")
    plan = chaos_plan(seed, case.index, case.n_records)
    backend = DistributedBackend(workers=2, min_records=0, split_bytes=64,
                                 fault_plan=plan)
    dist = run_job(spec, inp, backend=backend, **common)
    if dist.output != fast.output:
        return (f"chaos dist output diverges from fast under "
                f"{plan.describe()} ({len(dist.output)} vs "
                f"{len(fast.output)} records)")
    completes = Counter((e.phase, e.shard) for e in backend.last_events
                        if e.kind == "complete")
    bad = {k: n for k, n in completes.items() if n != 1}
    if bad:
        return f"shards completed != exactly once: {bad}"
    assigned = {(e.phase, e.shard) for e in backend.last_events
                if e.kind == "assign"}
    if assigned != set(completes):
        return (f"assigned/completed shard sets differ: "
                f"{sorted(assigned ^ set(completes))}")
    return None


def run_fuzz(seed: int, cases: int, *, verbose: bool = False,
             only: int | None = None,
             chaos: bool = False) -> list[FuzzFailure]:
    """Run ``cases`` cases (or just ``only``); return the failures."""
    config = DeviceConfig.small(2)
    indices = [only] if only is not None else range(cases)
    failures: list[FuzzFailure] = []
    for i in indices:
        case = draw_case(seed, i)
        try:
            reason = (run_chaos_case(case, config, seed) if chaos
                      else run_case(case, config))
        except Exception as exc:  # noqa: BLE001 — report, keep fuzzing
            reason = f"{type(exc).__name__}: {exc}"
        if reason is not None:
            failures.append(FuzzFailure(case, reason))
            # Cases derive from (seed, index) alone: the printed
            # command reproduces this exact failure in isolation.
            flag = "--chaos " if chaos else ""
            print(f"FAIL {case.describe()}\n     {reason}\n     "
                  f"repro: python -m repro.check.fuzz {flag}"
                  f"--seed {seed} --only {i}", file=sys.stderr)
        elif verbose:
            print(f"ok   {case.describe()}")
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.check.fuzz",
        description="Differential fuzzer: sim (sanitized) vs fast vs "
                    "CPU oracle on random small workloads.")
    ap.add_argument("--cases", type=int, default=200,
                    help="number of cases to run (default 200)")
    ap.add_argument("--seed", type=int, default=7,
                    help="run seed; case i depends only on (seed, i)")
    ap.add_argument("--only", type=int, default=None,
                    help="re-run a single case index from this seed")
    ap.add_argument("--chaos", action="store_true",
                    help="run each case on dist:2 under a seeded worker "
                         "kill instead of the standard executor set")
    ap.add_argument("--verbose", action="store_true",
                    help="print every passing case too")
    args = ap.parse_args(argv)

    failures = run_fuzz(args.seed, args.cases,
                        verbose=args.verbose, only=args.only,
                        chaos=args.chaos)
    ran = 1 if args.only is not None else args.cases
    label = "chaos " if args.chaos else ""
    if failures:
        print(f"{label}fuzz: {len(failures)}/{ran} cases FAILED "
              f"(seed={args.seed})", file=sys.stderr)
        return 1
    print(f"{label}fuzz: {ran} cases passed (seed={args.seed})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
