"""Wait-signal liveness monitoring: deadlock and lost-signal reuse.

Deadlock detection uses the simulator's strongest property: kernel
state only changes when a warp executes an instruction.  The monitor
counts *progress events* on a global tick; a polling warp records the
tick of its last failed probe.  When every registered warp is parked
(polling or at a barrier), at least one is polling, and every poller
has re-probed since the last progress event, no probe can ever
succeed again — that is a conclusive deadlock, caught within one poll
interval instead of after ``MAX_POLL_RETRIES`` probes.

Lost-signal detection watches the flag words that ``WaitSignal``
instances register: raising a signal flag while any *seen* flag of
the same condition is still set means the previous round's handshake
has not finished unwinding — the re-armed signal can be consumed by a
stale waiter and lost (the single-condition reuse hazard described in
:mod:`repro.framework.sync`).
"""

from __future__ import annotations

from .report import Finding

_RUN = 0
_POLL = 1
_BARRIER = 2
_DONE = 3


class _WarpState:
    __slots__ = ("state", "fail_tick")

    def __init__(self):
        self.state = _RUN
        self.fail_tick = -1


class LivenessMonitor:
    """Deadlock + wait-signal protocol monitor for one launch."""

    def __init__(self, report, config):
        self.report = report
        self.max_findings = config.max_findings
        self.tick = 0
        self.warps: dict[tuple[int, int], _WarpState] = {}
        self._parked = 0  # warps in POLL/BARRIER/DONE
        #: Registered WaitSignal conditions, by (block_id, base_off).
        self._conditions: set[tuple[int, int]] = set()
        #: (block_id, signal_flag_off) -> (smem, seen_offs) for O(1)
        #: lookup on the shared-write path.
        self._sig_index: dict[tuple[int, int], tuple] = {}
        self._deadlocked = False

    # -- warp lifecycle ------------------------------------------------

    def register(self, block_id: int, n_warps: int) -> None:
        for w in range(n_warps):
            self.warps[(block_id, w)] = _WarpState()

    def _wake(self, st: _WarpState) -> None:
        if st.state != _RUN:
            self._parked -= 1
            st.state = _RUN

    def progress(self, block_id: int, warp: int) -> None:
        st = self.warps.get((block_id, warp))
        if st is None:
            return
        self.tick += 1
        self._wake(st)

    def barrier_wait(self, block_id: int, warp: int) -> None:
        st = self.warps.get((block_id, warp))
        if st is None or st.state == _BARRIER:
            return
        if st.state == _RUN:
            self._parked += 1
        st.state = _BARRIER

    def barrier_release(self, block_id: int, warp_ids) -> None:
        self.tick += 1
        for w in warp_ids:
            st = self.warps.get((block_id, w))
            if st is not None:
                self._wake(st)

    def retired(self, block_id: int, warp: int) -> None:
        st = self.warps.get((block_id, warp))
        if st is None:
            return
        self.tick += 1
        if st.state == _RUN:
            self._parked += 1
        st.state = _DONE

    # -- deadlock ------------------------------------------------------

    def poll_blocked(self, block_id: int, warp: int) -> bool:
        """A poll probe failed; returns True on conclusive deadlock."""
        st = self.warps.get((block_id, warp))
        if st is None:
            return False
        if st.state == _RUN:
            self._parked += 1
        st.state = _POLL
        st.fail_tick = self.tick
        if self._parked < len(self.warps) or self._deadlocked:
            return False
        # Everyone is parked: deadlock iff every poller has re-probed
        # (and failed) since the last progress event.
        pollers = []
        for key, ws in self.warps.items():
            if ws.state == _POLL:
                if ws.fail_tick != self.tick:
                    return False
                pollers.append(key)
        if not pollers:
            return False  # pure barrier hang; the engine reports it
        self._deadlocked = True
        self.report.add(Finding(
            detector="liveness",
            kind="deadlock",
            message=(f"all {len(self.warps)} warps are parked and "
                     f"{len(pollers)} poll condition(s) can never be "
                     f"satisfied (no runnable warp remains)"),
            block=block_id,
            warp=warp,
            details={"pollers": [list(k) for k in sorted(pollers)],
                     "tick": self.tick},
        ), self.max_findings)
        return True

    def deadlock_reason(self) -> str:
        return ("sanitizer: every warp is polling or at a barrier and no "
                "warp can make progress (wait with no pending signal)")

    def note_deadlock(self, message: str) -> None:
        """The engine's own empty-heap deadlock check fired."""
        if self._deadlocked:
            return
        self._deadlocked = True
        self.report.add(Finding(
            detector="liveness", kind="deadlock", message=message,
        ), self.max_findings)

    # -- wait-signal protocol ------------------------------------------

    def register_waitsignal(self, block_id: int, smem, ws) -> None:
        """Remember a condition's flag geometry (idempotent)."""
        key = (block_id, ws.base_off)
        if key in self._conditions:
            return
        self._conditions.add(key)
        seen_offs = [ws.base_off + 4 * (ws.n_warps + w)
                     for w in ws.wait_group]
        for w in ws.signal_group:
            self._sig_index[(block_id, ws.base_off + 4 * w)] = (
                smem, seen_offs
            )

    def on_smem_write(self, block_id: int, warp: int, off: int,
                      nbytes: int) -> None:
        """Observe flag writes: fires on a raise over stale seen flags.

        Called for every shared write, so the miss path is one dict
        lookup (flag writes are exact 4-byte stores).
        """
        cond = self._sig_index.get((block_id, off))
        if cond is not None:
            smem, seen_offs = cond
            if smem.peek_u32(off) != 1:
                return  # a clear, not a raise
            stale = [s for s in seen_offs if smem.peek_u32(s) != 0]
            if stale:
                self.report.add(Finding(
                    detector="liveness",
                    kind="lost-signal",
                    message=(f"signal flag at offset {off} re-armed while "
                             f"{len(stale)} seen flag(s) from the previous "
                             f"round are still set — the signal can be "
                             f"consumed by a stale waiter and lost"),
                    block=block_id,
                    warp=warp,
                    details={"signal_off": off,
                             "stale_seen_offs": stale},
                ), self.max_findings)
