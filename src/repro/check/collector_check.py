"""Collector invariants: the double-ended stack and the flush protocol.

The checker keeps its own shadow of every :class:`CollectorState`'s
cursors, recomputed from the warp results as they are reserved, and
cross-checks the authoritative shared-memory words after each
reservation:

* ``LEFT_USED + RIGHT_USED`` never exceeds the output area (the stack
  ends must not cross — Figure 4(b));
* each reservation's directory and data intervals are disjoint from
  every other interval of the same epoch;
* a flush's global reservation totals equal the sum of the collected
  warp results, and every :func:`_flush_one` lands in-bounds in the
  output buffers;
* the epoch reset really zeroes all control words;
* at launch end, every record a warp emitted was flushed to global
  memory (nothing lost in the collector).
"""

from __future__ import annotations

from ..framework.collector import (
    ARRIVE,
    DONE,
    LEFT_USED,
    OVF,
    RESERVE_READY,
    RIGHT_USED,
    WR_COUNT,
    WR_TAKEN,
)
from .report import Finding

#: Control words that must read zero after an epoch reset.
_RESET_WORDS = (OVF, ARRIVE, RESERVE_READY, WR_TAKEN, DONE,
                LEFT_USED, RIGHT_USED, WR_COUNT)


class _Shadow:
    """Shadow bookkeeping for one CollectorState."""

    __slots__ = ("state", "block_id", "left", "right", "intervals",
                 "emitted", "flushed")

    def __init__(self, state, block_id: int):
        self.state = state
        self.block_id = block_id
        self.left = 0
        self.right = 0
        #: (lo, hi, label) occupied byte ranges of the current epoch.
        self.intervals: list[tuple[int, int, str]] = []
        self.emitted = 0
        self.flushed = 0


class CollectorChecker:
    """Invariant checks over every collector the launch runs."""

    def __init__(self, report, config):
        self.report = report
        self.max_findings = config.max_findings
        self._shadows: dict[int, _Shadow] = {}

    def _shadow(self, ctx, state) -> _Shadow:
        sh = self._shadows.get(id(state))
        if sh is None:
            sh = _Shadow(state, ctx.block_id)
            self._shadows[id(state)] = sh
        return sh

    # -- reservation ---------------------------------------------------

    def reserved(self, ctx, state, wr, old_left: int, old_right: int) -> None:
        """Called in the same eager step as the shared-atomic reserve."""
        sh = self._shadow(ctx, state)
        layout = state.layout
        cap = layout.output_bytes
        sh.left += wr.left_bytes
        sh.right += wr.right_bytes
        sh.emitted += wr.count
        self.report.count("collector_reservations")

        smem = ctx.smem
        base = layout.flags_off
        got_left = smem.peek_u32(base + LEFT_USED)
        got_right = smem.peek_u32(base + RIGHT_USED)
        if got_left != sh.left or got_right != sh.right:
            self._add(ctx, "cursor-mismatch",
                      f"stack cursors diverged from the reserved sizes: "
                      f"LEFT_USED={got_left} (expected {sh.left}), "
                      f"RIGHT_USED={got_right} (expected {sh.right})",
                      expected_left=sh.left, got_left=got_left,
                      expected_right=sh.right, got_right=got_right)
        if sh.left + sh.right > cap:
            self._add(ctx, "stack-overlap",
                      f"double-ended stack ends crossed: left={sh.left} + "
                      f"right={sh.right} > capacity={cap}",
                      left=sh.left, right=sh.right, capacity=cap)

        out_base = layout.output_off
        dir_iv = (out_base + old_left,
                  out_base + old_left + wr.left_bytes, "dir")
        data_lo = out_base + cap - old_right - wr.right_bytes
        data_iv = (data_lo, data_lo + wr.right_bytes, "data")
        for iv in (dir_iv, data_iv):
            lo, hi, label = iv
            if lo >= hi:
                continue
            for plo, phi, plabel in sh.intervals:
                if lo < phi and plo < hi:
                    self._add(ctx, "interval-overlap",
                              f"warp {ctx.warp_id}'s {label} range "
                              f"[{lo},{hi}) overlaps an earlier {plabel} "
                              f"range [{plo},{phi}) in the output area",
                              range=[lo, hi], overlaps=[plo, phi])
                    break
            sh.intervals.append(iv)

    # -- flush ---------------------------------------------------------

    def flush_reserved(self, ctx, state, wrs, ktot: int, vtot: int,
                       rtot: int) -> None:
        ek = sum(w.key_bytes for w in wrs)
        ev = sum(w.val_bytes for w in wrs)
        er = sum(w.count for w in wrs)
        if (ktot, vtot, rtot) != (ek, ev, er):
            self._add(ctx, "flush-total-mismatch",
                      f"leader reserved (keys={ktot}, vals={vtot}, "
                      f"recs={rtot}) but the collected warp results total "
                      f"(keys={ek}, vals={ev}, recs={er})",
                      reserved=[ktot, vtot, rtot], collected=[ek, ev, er])
        self.report.count("collector_flushes")

    def flush_one(self, ctx, state, wr, kbase: int, vbase: int,
                  rbase: int) -> None:
        sh = self._shadow(ctx, state)
        out = state.out
        if (kbase + wr.key_bytes > out.keys_cap
                or vbase + wr.val_bytes > out.vals_cap
                or rbase + wr.count > out.dir_cap_records):
            self._add(ctx, "flush-out-of-bounds",
                      f"warp result (count={wr.count}) flushes past the "
                      f"output buffers: keys {kbase}+{wr.key_bytes}/"
                      f"{out.keys_cap}, vals {vbase}+{wr.val_bytes}/"
                      f"{out.vals_cap}, recs {rbase}+{wr.count}/"
                      f"{out.dir_cap_records}")
        sh.flushed += wr.count

    def flush_reset(self, ctx, state) -> None:
        """Called right after the last finisher zeroes the control words."""
        sh = self._shadow(ctx, state)
        sh.left = 0
        sh.right = 0
        sh.intervals.clear()
        smem = ctx.smem
        base = state.layout.flags_off
        dirty = [off for off in _RESET_WORDS
                 if smem.peek_u32(base + off) != 0]
        if dirty:
            self._add(ctx, "reset-incomplete",
                      f"epoch reset left control word(s) at offsets "
                      f"{dirty} non-zero; the next epoch inherits stale "
                      f"state", dirty_offsets=dirty)

    # -- launch end ----------------------------------------------------

    def launch_finished(self) -> None:
        for sh in self._shadows.values():
            if sh.emitted != sh.flushed:
                self.report.add(Finding(
                    detector="collector",
                    kind="records-lost",
                    message=(f"collector emitted {sh.emitted} record(s) "
                             f"but flushed {sh.flushed} to global memory"),
                    block=sh.block_id,
                    details={"emitted": sh.emitted, "flushed": sh.flushed},
                ), self.max_findings)

    # ------------------------------------------------------------------

    def _add(self, ctx, kind: str, message: str, **details) -> None:
        self.report.add(Finding(
            detector="collector", kind=kind, message=message,
            block=ctx.block_id, warp=ctx.warp_id, details=details,
        ), self.max_findings)
