"""Sanitizer configuration and the ``$REPRO_CHECK`` environment knob.

The sanitizer is opt-in everywhere: ``run_job(..., check=True)`` (or
any driver's ``check=`` argument), ``--check`` on the CLIs, or
``REPRO_CHECK=1`` in the environment.  ``resolve_check`` maps all of
those spellings onto either ``None`` (off) or a frozen
:class:`CheckConfig`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import FrameworkError

#: Environment variable consulted when a driver's ``check`` is None.
CHECK_ENV = "REPRO_CHECK"

_OFF = {"", "0", "off", "false", "no", "none"}
_STRICT = {"1", "on", "true", "yes", "strict"}
_REPORT = {"report", "warn"}


@dataclass(frozen=True)
class CheckConfig:
    """Which detectors run, and what happens on a finding.

    ``strict=True`` raises :class:`~repro.errors.CheckError` at the
    end of a job with findings; ``strict=False`` only attaches the
    :class:`~repro.check.report.CheckReport` to the
    :class:`~repro.framework.job.JobResult`.
    """

    race: bool = True
    collector: bool = True
    liveness: bool = True
    atomics: bool = True
    strict: bool = True
    #: Cap on recorded findings (detectors keep running but stop
    #: appending; the report is marked ``truncated``).
    max_findings: int = 25


def _from_string(value: str):
    v = value.strip().lower()
    if v in _OFF:
        return None
    if v in _STRICT:
        return CheckConfig()
    if v in _REPORT:
        return CheckConfig(strict=False)
    raise FrameworkError(
        f"unrecognised check setting {value!r}; use one of "
        "0/off, 1/on/strict, report"
    )


def resolve_check(check=None):
    """Normalise a driver's ``check`` argument to CheckConfig | None.

    ``None`` consults ``$REPRO_CHECK``; booleans toggle the default
    config; strings are parsed like the environment variable; a
    :class:`CheckConfig` passes through unchanged.
    """
    if check is None:
        return _from_string(os.environ.get(CHECK_ENV, ""))
    if isinstance(check, CheckConfig):
        return check
    if check is True:
        return CheckConfig()
    if check is False:
        return None
    if isinstance(check, str):
        return _from_string(check)
    raise FrameworkError(
        f"check must be None, bool, str or CheckConfig; got {check!r}"
    )
