"""The sanitizer: wiring between the engine and the four detectors.

A :class:`Sanitizer` is attached to a :class:`repro.gpu.kernel.Device`
as ``device.checker``; each kernel launch then gets its own
:class:`LaunchChecker` (fresh vector clocks and logs per launch, one
shared :class:`~repro.check.report.CheckReport` across the job).

The engine drives the checker from a handful of hook points (current
warp, instruction progress, barrier arrival/release, warp retirement,
global atomics, poll failures); shared-memory traffic arrives through
a per-block observer installed on the block's
:class:`~repro.gpu.memory.SharedMemory`; the framework's protocols
(collector, ``WaitSignal``) report their semantic events through
``ctx.checker`` when one is attached.
"""

from __future__ import annotations

from .atomics_check import AtomicsChecker
from .collector_check import CollectorChecker
from .config import CheckConfig
from .liveness import LivenessMonitor
from .race import RaceDetector
from .report import CheckReport


class _SmemObserver:
    """Forwards one block's shared-memory traffic to the checker."""

    __slots__ = ("ck", "block_id")

    def __init__(self, ck: "LaunchChecker", block_id: int):
        self.ck = ck
        self.block_id = block_id

    def on_read(self, off: int, nbytes: int) -> None:
        self.ck.smem_read(self.block_id, off, nbytes)

    def on_write(self, off: int, nbytes: int) -> None:
        self.ck.smem_write(self.block_id, off, nbytes)

    def on_atomic(self, off: int) -> None:
        self.ck.smem_atomic(self.block_id, off)


class Sanitizer:
    """Job-level checker state: config + the accumulated report."""

    def __init__(self, config: CheckConfig | None = None):
        self.config = config or CheckConfig()
        self.report = CheckReport(strict=self.config.strict)

    def launch_checker(self) -> "LaunchChecker":
        """Fresh per-launch detector state (called by Device.launch)."""
        return LaunchChecker(self.config, self.report)

    def finish(self) -> CheckReport:
        return self.report


class LaunchChecker:
    """Per-launch detector bundle behind the engine's hook points."""

    def __init__(self, config: CheckConfig, report: CheckReport):
        self.config = config
        self.report = report
        self.race = RaceDetector(report, config) if config.race else None
        self.liveness = (LivenessMonitor(report, config)
                         if config.liveness else None)
        self.collector = (CollectorChecker(report, config)
                          if config.collector else None)
        self.atomics = (AtomicsChecker(report, config)
                        if config.atomics else None)
        self._cur_block = 0
        self._cur_warp = 0

    # -- engine hooks --------------------------------------------------

    def block_started(self, blk) -> None:
        if self.race is not None:
            self.race.block_started(blk.block_id, blk.n_warps)
        if self.liveness is not None:
            self.liveness.register(blk.block_id, blk.n_warps)
        if self.race is not None or self.liveness is not None:
            blk.smem.observer = _SmemObserver(self, blk.block_id)

    def set_current(self, warp) -> None:
        """The warp whose instruction the engine is about to execute
        (also covers Poll re-probes, whose ``check()`` reads smem)."""
        self._cur_block = warp.block.block_id
        self._cur_warp = warp.warp_id

    def op_progress(self, warp) -> None:
        if self.liveness is not None:
            self.liveness.progress(warp.block.block_id, warp.warp_id)

    def poll_blocked(self, warp) -> bool:
        if self.liveness is None:
            return False
        return self.liveness.poll_blocked(warp.block.block_id, warp.warp_id)

    def deadlock_reason(self) -> str:
        return self.liveness.deadlock_reason()

    def note_deadlock(self, message: str) -> None:
        if self.liveness is not None:
            self.liveness.note_deadlock(message)

    def barrier_wait(self, warp) -> None:
        if self.liveness is not None:
            self.liveness.barrier_wait(warp.block.block_id, warp.warp_id)

    def barrier_release(self, blk, warps) -> None:
        ids = [w.warp_id for w in warps]
        if self.liveness is not None:
            self.liveness.barrier_release(blk.block_id, ids)
        if self.race is not None:
            self.race.barrier_release(blk.block_id, ids)

    def warp_retired(self, warp) -> None:
        bid = warp.block.block_id
        if self.liveness is not None:
            self.liveness.retired(bid, warp.warp_id)
        if self.race is not None:
            self.race.warp_retired(bid, warp.warp_id)

    def atomic_global(self, addr: int, old: int, delta: int) -> None:
        if self.atomics is not None:
            self.atomics.record(addr, old, delta)

    def launch_finished(self, engine) -> None:
        if self.atomics is not None:
            self.atomics.launch_finished()
        if self.collector is not None:
            self.collector.launch_finished()

    # -- shared-memory observer callbacks ------------------------------

    def smem_read(self, block_id: int, off: int, nbytes: int) -> None:
        if self.race is not None:
            self.race.on_read(block_id, self._cur_warp, off, nbytes)

    def smem_write(self, block_id: int, off: int, nbytes: int) -> None:
        if self.race is not None:
            self.race.on_write(block_id, self._cur_warp, off, nbytes)
        if self.liveness is not None:
            self.liveness.on_smem_write(block_id, self._cur_warp, off, nbytes)

    def smem_atomic(self, block_id: int, off: int) -> None:
        if self.race is not None:
            self.race.on_atomic(block_id, self._cur_warp, off)

    # -- framework hooks (reached through ctx.checker) ------------------

    def declare_sync_range(self, block_id: int, off: int, nbytes: int) -> None:
        if self.race is not None:
            self.race.declare_sync(block_id, off, nbytes)

    def register_waitsignal(self, ctx, ws) -> None:
        if self.liveness is not None:
            self.liveness.register_waitsignal(ctx.block_id, ctx.smem, ws)
        self.declare_sync_range(ctx.block_id, ws.base_off, 8 * ws.n_warps)

    def collector_opened(self, ctx, state) -> None:
        if self.collector is not None:
            self.collector._shadow(ctx, state)

    def collector_reserved(self, ctx, state, wr, old_left, old_right) -> None:
        if self.collector is not None:
            self.collector.reserved(ctx, state, wr, old_left, old_right)

    def collector_flush_reserved(self, ctx, state, wrs, ktot, vtot,
                                 rtot) -> None:
        if self.collector is not None:
            self.collector.flush_reserved(ctx, state, wrs, ktot, vtot, rtot)

    def collector_flush_one(self, ctx, state, wr, kbase, vbase,
                            rbase) -> None:
        if self.collector is not None:
            self.collector.flush_one(ctx, state, wr, kbase, vbase, rbase)

    def collector_flush_reset(self, ctx, state) -> None:
        if self.collector is not None:
            self.collector.flush_reset(ctx, state)
