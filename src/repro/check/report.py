"""Findings and the :class:`CheckReport` the sanitizer produces.

A *finding* is one detected violation — a shared-memory race, a
collector-invariant breach, a liveness failure or an atomics
linearizability violation.  Findings are plain data: deterministic,
JSON-serialisable (see :func:`repro.obs.exporters.write_check_json`)
and cheap to assert on in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CheckError


@dataclass
class Finding:
    """One violation reported by a detector."""

    #: Which detector fired: "race" | "collector" | "liveness" | "atomics".
    detector: str
    #: Machine-readable violation tag, e.g. ``"write-write-race"``.
    kind: str
    #: Human-readable one-line description.
    message: str
    block: int | None = None
    warp: int | None = None
    #: Detector-specific context (offsets, clocks, counters ...).
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "kind": self.kind,
            "message": self.message,
            "block": self.block,
            "warp": self.warp,
            "details": dict(self.details),
        }

    def render(self) -> str:
        where = []
        if self.block is not None:
            where.append(f"block {self.block}")
        if self.warp is not None:
            where.append(f"warp {self.warp}")
        loc = f" [{', '.join(where)}]" if where else ""
        return f"{self.detector}/{self.kind}{loc}: {self.message}"


@dataclass
class CheckReport:
    """Everything one checked job produced.

    ``strict`` mirrors the :class:`~repro.check.config.CheckConfig`
    that ran the job; :meth:`raise_if_findings` turns a non-empty
    strict report into a :class:`~repro.errors.CheckError`.
    """

    findings: list[Finding] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    strict: bool = True
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings

    def count(self, name: str, inc: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + inc

    def add(self, finding: Finding, max_findings: int) -> bool:
        """Record a finding; returns False once the cap is reached."""
        if len(self.findings) >= max_findings:
            self.truncated = True
            return False
        self.findings.append(finding)
        return True

    def summary(self) -> str:
        if self.ok:
            return "check: no findings"
        by_det: dict[str, int] = {}
        for f in self.findings:
            by_det[f.detector] = by_det.get(f.detector, 0) + 1
        parts = ", ".join(f"{n} {d}" for d, n in sorted(by_det.items()))
        more = " (truncated)" if self.truncated else ""
        return f"check: {len(self.findings)} finding(s) ({parts}){more}"

    def render(self) -> str:
        lines = [self.summary()]
        lines.extend("  " + f.render() for f in self.findings)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "strict": self.strict,
            "truncated": self.truncated,
            "findings": [f.to_dict() for f in self.findings],
            "counters": dict(sorted(self.counters.items())),
        }

    def raise_if_findings(self) -> None:
        if self.strict and self.findings:
            raise CheckError(self.summary(), self)
