"""repro.check — an opt-in sanitizer over the simulated GPU.

Four detectors watch a job as the discrete-event engine runs it:

* **race** — GRace-style vector-clock happened-before checking of
  shared-memory accesses between warps (sync edges from barriers,
  shared atomics, and the framework's declared flag words);
* **collector** — the double-ended output stack's invariants
  (``left + right <= capacity``, disjoint reservations, conserving
  flushes, in-bounds stage-out);
* **liveness** — conclusive deadlock detection within one poll
  interval, plus the ``WaitSignal`` lost-signal reuse hazard;
* **atomics** — global tail reservations replayed for linearizability
  (duplicate- and gap-free chains per address).

Enable with ``run_job(..., check=True)`` (any driver), ``--check`` on
``repro-trace``/``repro-bench``, or ``REPRO_CHECK=1``.  Findings form
a :class:`CheckReport` attached to the job result; in strict mode a
non-empty report raises :class:`~repro.errors.CheckError`.  See
``docs/CHECKING.md``.
"""

from ..errors import CheckError
from .config import CHECK_ENV, CheckConfig, resolve_check
from .report import CheckReport, Finding
from .sanitizer import LaunchChecker, Sanitizer

__all__ = [
    "CHECK_ENV",
    "CheckConfig",
    "CheckError",
    "CheckReport",
    "Finding",
    "LaunchChecker",
    "Sanitizer",
    "resolve_check",
]
