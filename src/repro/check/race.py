"""Shared-memory race detection (GRace-style happened-before).

Each warp of a block carries a vector clock; happened-before edges
come from the block barrier (``__syncthreads()``), from shared-memory
atomics, and from the flag words the framework's synchronisation
protocols declare as *sync words* (``WaitSignal`` flags, the
collector's control area).  Two accesses to the same shared-memory
byte race when at least one is a write and neither is ordered before
the other.

Granularity is the 4-byte word with a per-byte mask, so the staging
copies' unaligned chunk boundaries do not alias into false sharing.
The simulator's shared memory is sequentially consistent (reads
always observe the latest write), so treating a plain write to a sync
word as a *release* and a plain read as an *acquire* is sound: the
protocols only ever publish data by writing a flag the consumer
spins on.
"""

from __future__ import annotations

from .report import Finding

_FULL = 0xF  # all four bytes of a word


def _words(off: int, nbytes: int):
    """Yield ``(word_index, byte_mask)`` covering ``[off, off+nbytes)``."""
    if nbytes <= 0:
        return
    first = off >> 2
    last = (off + nbytes - 1) >> 2
    if first == last:
        mask = (((1 << nbytes) - 1) << (off & 3)) & _FULL
        yield first, mask
        return
    head = off & 3
    yield first, (_FULL >> head) << head & _FULL
    for w in range(first + 1, last):
        yield w, _FULL
    yield last, (1 << (((off + nbytes - 1) & 3) + 1)) - 1


class _BlockRaces:
    """Per-block vector clocks and last-access tables."""

    __slots__ = ("n_warps", "vcs", "tokens", "sync_words",
                 "writes", "reads", "retired")

    def __init__(self, n_warps: int):
        self.n_warps = n_warps
        self.vcs = [[0] * n_warps for _ in range(n_warps)]
        for w in range(n_warps):
            self.vcs[w][w] = 1
        #: Release tokens per sync word (the VC its last releaser held).
        self.tokens: dict[int, list[int]] = {}
        self.sync_words: set[int] = set()
        #: word -> {warp: [clock per byte]} of this epoch's accesses.
        #: Per-byte clocks, not (clock, mask): a warp may touch
        #: different bytes of one word at different clocks (unaligned
        #: records straddle words), and merging them under the latest
        #: clock would claim old bytes were written later than they
        #: were — a false race against a warp that synchronised with
        #: the old write but not the new one.
        self.writes: dict[int, dict[int, list[int]]] = {}
        self.reads: dict[int, dict[int, list[int]]] = {}
        #: Clock merged from retired warps (a dead warp's writes are
        #: ordered before everything a barrier releases afterwards).
        self.retired = [0] * n_warps


class RaceDetector:
    """Vector-clock race detector over one launch's blocks."""

    def __init__(self, report, config):
        self.report = report
        self.max_findings = config.max_findings
        self.blocks: dict[int, _BlockRaces] = {}
        self._seen: set[tuple] = set()

    # -- lifecycle -----------------------------------------------------

    def block_started(self, block_id: int, n_warps: int) -> None:
        self.blocks[block_id] = _BlockRaces(n_warps)

    def declare_sync(self, block_id: int, off: int, nbytes: int) -> None:
        st = self.blocks.get(block_id)
        if st is None:
            return
        for word, _ in _words(off, nbytes):
            st.sync_words.add(word)
            # Forget accesses recorded before the range was declared
            # (e.g. the zeroing writes of init_collector).
            st.writes.pop(word, None)
            st.reads.pop(word, None)

    # -- access hooks --------------------------------------------------

    @staticmethod
    def _conflicts(mask: int, clocks: list[int], limit: int) -> bool:
        """Does any byte under ``mask`` carry a clock not ordered
        before us (``> limit``)?"""
        for b in range(4):
            if (mask >> b) & 1 and clocks[b] > limit:
                return True
        return False

    @staticmethod
    def _stamp(table: dict, warp: int, mask: int, clock: int) -> None:
        entry = table.get(warp)
        if entry is None:
            entry = table[warp] = [0, 0, 0, 0]
        for b in range(4):
            if (mask >> b) & 1:
                entry[b] = clock

    def on_read(self, block_id: int, warp: int, off: int, nbytes: int) -> None:
        st = self.blocks.get(block_id)
        if st is None or warp >= st.n_warps:
            return
        vc = st.vcs[warp]
        for word, mask in _words(off, nbytes):
            if word in st.sync_words:
                tok = st.tokens.get(word)
                if tok is not None:  # acquire
                    for i, v in enumerate(tok):
                        if v > vc[i]:
                            vc[i] = v
                continue
            writes = st.writes.get(word)
            if writes:
                for ow, oclocks in writes.items():
                    if ow != warp and self._conflicts(mask, oclocks, vc[ow]):
                        self._record("read-write-race", block_id, word,
                                     warp, ow)
            self._stamp(st.reads.setdefault(word, {}), warp, mask, vc[warp])

    def on_write(self, block_id: int, warp: int, off: int, nbytes: int) -> None:
        st = self.blocks.get(block_id)
        if st is None or warp >= st.n_warps:
            return
        vc = st.vcs[warp]
        for word, mask in _words(off, nbytes):
            if word in st.sync_words:
                self._release(st, warp, word)
                continue
            writes = st.writes.setdefault(word, {})
            for ow, oclocks in writes.items():
                if ow != warp and self._conflicts(mask, oclocks, vc[ow]):
                    self._record("write-write-race", block_id, word, warp, ow)
            reads = st.reads.get(word)
            if reads:
                for ow, oclocks in reads.items():
                    if ow != warp and self._conflicts(mask, oclocks, vc[ow]):
                        self._record("read-write-race", block_id, word,
                                     warp, ow)
            self._stamp(writes, warp, mask, vc[warp])

    def on_atomic(self, block_id: int, warp: int, off: int) -> None:
        """A shared-memory RMW: acquire + release on that word."""
        st = self.blocks.get(block_id)
        if st is None or warp >= st.n_warps:
            return
        word = off >> 2
        vc = st.vcs[warp]
        tok = st.tokens.get(word)
        if tok is not None:
            for i, v in enumerate(tok):
                if v > vc[i]:
                    vc[i] = v
        self._release(st, warp, word)

    # -- HB edges from the engine --------------------------------------

    def barrier_release(self, block_id: int, warp_ids) -> None:
        st = self.blocks.get(block_id)
        if st is None:
            return
        merged = list(st.retired)
        for w in warp_ids:
            for i, v in enumerate(st.vcs[w]):
                if v > merged[i]:
                    merged[i] = v
        for w in warp_ids:
            vc = list(merged)
            vc[w] += 1
            st.vcs[w] = vc
        # The epoch boundary: accesses before the barrier can no
        # longer race with anything after it, so drop the tables.
        st.writes.clear()
        st.reads.clear()

    def warp_retired(self, block_id: int, warp: int) -> None:
        st = self.blocks.get(block_id)
        if st is None:
            return
        for i, v in enumerate(st.vcs[warp]):
            if v > st.retired[i]:
                st.retired[i] = v

    # -- reporting -----------------------------------------------------

    def _release(self, st: _BlockRaces, warp: int, word: int) -> None:
        vc = st.vcs[warp]
        tok = st.tokens.get(word)
        if tok is None:
            st.tokens[word] = list(vc)
        else:
            for i, v in enumerate(vc):
                if v > tok[i]:
                    tok[i] = v
        vc[warp] += 1

    def _record(self, kind: str, block_id: int, word: int,
                warp_a: int, warp_b: int) -> None:
        lo, hi = sorted((warp_a, warp_b))
        key = (kind, block_id, word, lo, hi)
        if key in self._seen:
            return
        self._seen.add(key)
        self.report.count("race_conflicts")
        self.report.add(Finding(
            detector="race",
            kind=kind,
            message=(f"warps {lo} and {hi} access shared word at offset "
                     f"{word * 4} without a happened-before edge"),
            block=block_id,
            warp=warp_a,
            details={"offset": word * 4, "other_warp": warp_b},
        ), self.max_findings)
