"""Exception hierarchy for the repro package.

All errors raised by the simulator and the MapReduce framework derive
from :class:`ReproError` so callers can catch everything from this
package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """Invalid device or framework configuration."""


class AllocationError(ReproError):
    """A memory allocation could not be satisfied."""

    def __init__(self, space: str, requested: int, available: int):
        self.space = space
        self.requested = requested
        self.available = available
        super().__init__(
            f"{space} allocation of {requested} bytes failed "
            f"({available} bytes available)"
        )


class OutOfBoundsError(ReproError):
    """A memory access fell outside an allocated region."""


class LaunchError(ReproError):
    """A kernel launch was mis-configured (grid/block/shared memory)."""


class DeadlockError(ReproError):
    """The engine detected that no warp can ever make progress.

    Raised, for example, when every resident warp is blocked at a
    barrier that can never be completed, or polling a flag that no
    runnable warp can set.
    """


class BarrierDivergenceError(ReproError):
    """``__syncthreads()`` was executed on divergent control paths.

    Real CUDA leaves this undefined (often a hang); the simulator
    detects it and fails loudly, mirroring the constraint that drove
    the paper's custom wait-signal primitive (Section III-C).
    """


class KernelFault(ReproError):
    """A kernel coroutine raised an exception; wraps the original."""


class FrameworkError(ReproError):
    """Invalid use of the MapReduce framework API."""


class CheckError(ReproError):
    """The sanitizer (:mod:`repro.check`) confirmed findings in strict
    mode.  Carries the full :class:`repro.check.CheckReport` as
    ``report`` so callers can inspect or export the findings."""

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report
