"""Runtime calibration: refine the cost model from the run ledger.

The factory constants in :mod:`repro.tune.cost` were fit on one
device configuration and one workload sweep; real runs drift.  Every
tuned run records its predicted cost next to the measured one
(``tuner_predicted_cost`` / ``sim_cycles`` / ``wall_s`` in
``.repro/runs.jsonl``), so this module can close the loop without any
extra measurement:

* :func:`load_calibration` reads the ledger and turns matching
  predicted-vs-actual pairs into bounded multiplicative corrections
  per knob (``mode:G``, ``strategy:BR``, ``backend:parallel`` …) —
  the geometric mean of actual/predicted ratios, clamped so one
  outlier line can never swing a decision by more than 2x;
* :func:`lookup_history` answers the nearest-neighbour question: has
  this exact input (same workload + input digest — or failing that,
  the same workload at a similar size) been run before, and which
  configuration measured fastest?  When the ledger has already swept
  an input, remembering beats modelling.

Everything here is read-only and failure-tolerant: a missing or
corrupt ledger degrades to factory constants, never an error.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from ..obs import ledger as ledger_mod
from .cost import CostConstants

#: A correction is the geometric mean of actual/predicted ratios,
#: clamped to this band so a few bad lines cannot invert a decision.
CORRECTION_MIN = 0.5
CORRECTION_MAX = 2.0

#: Minimum matching ledger lines before a knob gets corrected at all.
MIN_SAMPLES = 2

#: "Similar size" for the nearest-neighbour fallback: record counts
#: within this factor of each other.
NEIGHBOUR_SIZE_FACTOR = 2.0


@dataclass(frozen=True)
class CalibrationState:
    """The ledger's contribution to one tuning decision."""

    #: Knob key -> bounded multiplicative correction (1.0 = factory).
    corrections: dict = field(default_factory=dict)
    #: All parseable ledger records (newest last), for history lookups.
    records: list = field(default_factory=list)
    #: How many predicted-vs-actual pairs informed the corrections.
    samples: int = 0

    def constants(self, base: CostConstants | None = None) -> CostConstants:
        """Factory (or given) constants with these corrections applied."""
        return (base or CostConstants()).with_corrections(self.corrections)


def _actual_cost(rec: dict) -> float | None:
    """The measured quantity the prediction targeted.

    The sim backend's objective is simulated cycles; every functional
    backend's objective is wall seconds.  Mirrors the decision layer.
    """
    if rec.get("backend") == "sim":
        value = rec.get("sim_cycles")
    else:
        value = rec.get("wall_s")
    if isinstance(value, (int, float)) and value > 0:
        return float(value)
    return None


def _knob_keys(rec: dict) -> list[str]:
    """The correction keys one ledger record votes on."""
    keys = []
    mode = rec.get("mode")
    if isinstance(mode, str) and mode:
        keys.append(f"mode:{mode}")
    strategy = rec.get("strategy")
    if isinstance(strategy, str) and strategy:
        keys.append(f"strategy:{strategy}")
    backend = rec.get("backend")
    if isinstance(backend, str) and backend:
        keys.append(f"backend:{backend}")
    return keys


def compute_corrections(records: list[dict]) -> tuple[dict, int]:
    """(corrections, sample count) from predicted-vs-actual pairs.

    Only tuned records carry ``tuner_error`` (and only when the
    prediction's objective matched the unit the run measured — the
    ledger gates that); untuned and pre-tuner (schema 1) lines simply
    contribute nothing — the reader is version-tolerant by ignoring
    what a line does not have.
    """
    votes: dict[str, list[float]] = {}
    samples = 0
    for rec in records:
        if not isinstance(rec, dict) or not rec.get("tuned"):
            continue
        predicted = rec.get("tuner_predicted_cost")
        if not isinstance(predicted, (int, float)) or predicted <= 0:
            continue
        error = rec.get("tuner_error")
        if not isinstance(error, (int, float)):
            continue
        ratio = 1.0 + float(error)
        if not math.isfinite(ratio) or ratio <= 0:
            continue
        samples += 1
        for key in _knob_keys(rec):
            votes.setdefault(key, []).append(ratio)
    corrections = {}
    for key, ratios in votes.items():
        if len(ratios) < MIN_SAMPLES:
            continue
        log_mean = sum(math.log(r) for r in ratios) / len(ratios)
        corrections[key] = min(
            CORRECTION_MAX, max(CORRECTION_MIN, math.exp(log_mean))
        )
    return corrections, samples


#: Parsed-ledger cache: resolved path -> ((mtime, size), CalibrationState).
#: Every job would otherwise re-read and re-parse the whole ledger to
#: make its tuning decision — on a tiny input that parse dominates the
#: job itself (the <5% overhead guard in tests/tune pins this).
_CACHE: dict[str, tuple[tuple, CalibrationState]] = {}


def _ledger_stamp(path: str) -> tuple:
    try:
        st = os.stat(path)
    except OSError:
        return (0.0, -1)
    return (st.st_mtime_ns, st.st_size)


def load_calibration(path: str | None = None) -> CalibrationState:
    """Read the ledger (honouring the env) into a CalibrationState.

    Cached on the file's (mtime, size): repeated decisions against an
    unchanged ledger — every job in a sweep — parse it once.
    """
    resolved = path if path is not None else ledger_mod.ledger_path()
    stamp = _ledger_stamp(resolved)
    cached = _CACHE.get(resolved)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    records = ledger_mod.read_ledger(resolved)
    corrections, samples = compute_corrections(records)
    state = CalibrationState(
        corrections=corrections, records=records, samples=samples
    )
    _CACHE.clear()  # one entry is enough; never grow unboundedly
    _CACHE[resolved] = (stamp, state)
    return state


# ----------------------------------------------------------------------
# Nearest-neighbour history
# ----------------------------------------------------------------------


def _config_key(rec: dict) -> tuple:
    return (
        rec.get("mode"),
        rec.get("strategy"),
        rec.get("backend"),
        rec.get("workers"),
    )


def lookup_history(
    records: list[dict],
    workload: str,
    input_digest: str,
    *,
    records_in: int | None = None,
) -> dict | None:
    """Fastest previously measured record for this input, if any.

    Exact matches (same workload **and** input digest) win; when none
    exist, any run of the same workload within
    :data:`NEIGHBOUR_SIZE_FACTOR` of the record count stands in.
    Within the chosen tier, distinct configurations compete on their
    best measured cost and the winner's record is returned (newest
    first on ties).  ``None`` when the ledger has nothing relevant.
    """
    exact: list[dict] = []
    near: list[dict] = []
    for rec in records:
        if not isinstance(rec, dict) or rec.get("workload") != workload:
            continue
        if _actual_cost(rec) is None:
            continue
        if rec.get("input_digest") == input_digest:
            exact.append(rec)
        elif records_in:
            n = rec.get("records_in")
            if isinstance(n, (int, float)) and n > 0:
                factor = max(n, records_in) / max(1, min(n, records_in))
                if factor <= NEIGHBOUR_SIZE_FACTOR:
                    near.append(rec)
    pool = exact or near
    if not pool:
        return None
    best: dict[tuple, dict] = {}
    for rec in pool:
        key = _config_key(rec)
        cost = _actual_cost(rec)
        prev = best.get(key)
        if prev is None or cost <= _actual_cost(prev):
            best[key] = rec
    return min(best.values(), key=_actual_cost)


def distinct_configs(records: list[dict], workload: str,
                     input_digest: str) -> int:
    """How many distinct configurations the ledger measured for this
    exact input — the decision layer trusts history over the model
    only when the input was actually swept (>= 2 configs)."""
    seen = set()
    for rec in records:
        if not isinstance(rec, dict) or rec.get("workload") != workload:
            continue
        if rec.get("input_digest") != input_digest:
            continue
        if _actual_cost(rec) is None:
            continue
        seen.add(_config_key(rec))
    return len(seen)
