"""Bounded-sample input profiler: the tuner's feature extractor.

``profile_input`` reads an evenly-strided sample of the input —
capped at :data:`SAMPLE_CAP_RECORDS` records *and*
:data:`SAMPLE_CAP_BYTES` bytes, whichever bound hits first — and runs
the workload's Map function over it to measure what the paper's
Table II tabulates by hand: emission density, output:input byte
ratio, emitted-key cardinality and skew.  The resulting
:class:`InputStats` is the only thing the cost model ever sees, so
profiling cost is O(sample), never O(input); the overhead bar (<5% of
a tiny job's wall time, pinned in ``tests/tune``) is what keeps
``--autotune`` safe to leave on.

Cardinality is extrapolated from the sample with a saturation
heuristic: a vocabulary the sample already exhausts (few singleton
keys) stays at the observed distinct count, while an open key space
(mostly singletons) scales with the record count.  Skew is the hottest
sampled key's share of sampled emissions — the feature that separates
the TR-friendly many-small-groups shape from the BR-friendly
few-hot-groups shape (paper Figures 5f–5i).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.accessor import Accessor, AccessTrace

#: Sampling bounds: whichever is reached first ends the sample.
SAMPLE_CAP_RECORDS = 4096
SAMPLE_CAP_BYTES = 1 << 20  # 1 MiB

#: Distinct emitted keys tracked before the counter is frozen (beyond
#: this the key space is "open" and extrapolation takes over).
TRACK_DISTINCT_CAP = 8192


class _CountingTrace(AccessTrace):
    """Counts accessor touches — the profiler's compute-intensity
    signal (a Map that re-reads its input many times, like KMeans's
    distance loop, is compute-bound in a way byte counts can't see)."""

    __slots__ = ("touches",)

    def __init__(self) -> None:
        self.touches = 0

    def touch(self, start: int, nbytes: int) -> None:
        if nbytes <= 0:
            return
        # Count traced words, matching the sim's per-access charge.
        self.touches += (start + nbytes - 1) // 4 - start // 4 + 1


@dataclass(frozen=True)
class InputStats:
    """Measured + extrapolated characteristics of one job input."""

    #: Full input size (records / estimated total bytes — bytes are
    #: exact when the sample covered everything, extrapolated else).
    records: int
    total_bytes: int
    #: How many records the bounded sample actually read.
    sampled: int
    sampled_bytes: int
    #: Input record shape.
    key_bytes_avg: float
    val_bytes_avg: float
    rec_bytes_max: int
    #: Fixed widths in bytes, or None when ragged across the sample.
    fixed_key_width: int | None
    fixed_val_width: int | None
    #: Map behaviour over the sample.
    emissions_per_record: float
    emit_key_bytes: float
    emit_val_bytes: float
    out_in_ratio: float
    #: Emitted-key population: distinct keys in the sample, the
    #: extrapolated group count for the full input, and the hottest
    #: key's share of sampled emissions (1.0 = single-key input).
    distinct_sampled: int
    est_groups: int
    skew: float
    #: Fixed-width emissions with numeric-looking (4/8-byte) values —
    #: the columnar fast path's best case.
    emit_fixed_width: bool
    #: Traced word-accesses the Map makes per record (re-reads count:
    #: KMeans's distance loop touches its point once per centroid).
    accesses_per_record: float = 0.0
    #: The spec's ALU hints, captured at profile time so the cost
    #: model can price compute-bound Maps.
    cycles_per_record_hint: float = 0.0
    cycles_per_access_hint: float = 0.0

    @property
    def compute_per_record(self) -> float:
        """Estimated ALU cycles one thread spends per input record."""
        return self.cycles_per_record_hint \
            + self.cycles_per_access_hint * self.accesses_per_record

    @property
    def rec_bytes_avg(self) -> float:
        return self.key_bytes_avg + self.val_bytes_avg

    @property
    def est_emissions(self) -> float:
        """Extrapolated intermediate record count for the full input."""
        return self.emissions_per_record * self.records

    @property
    def est_intermediate_bytes(self) -> float:
        """Extrapolated intermediate footprint (store ``record_cost``
        accounting: key + value + 16 bytes of directory entry)."""
        per = self.emit_key_bytes + self.emit_val_bytes + 16.0
        return self.est_emissions * per

    @property
    def est_max_group(self) -> float:
        """Expected size of the largest key group — the TR strategy's
        serial chain (one thread owns the whole group)."""
        if self.est_emissions <= 0:
            return 0.0
        uniform = self.est_emissions / max(1, self.est_groups)
        return max(uniform, self.skew * self.est_emissions)

    @property
    def numeric_values(self) -> bool:
        return self.fixed_val_width in (4, 8)

    @property
    def ragged_keys(self) -> bool:
        return self.fixed_key_width is None

    def summary(self) -> dict:
        """Compact JSON-able form (span attrs, ledger, reports)."""
        return {
            "records": self.records,
            "sampled": self.sampled,
            "rec_bytes": round(self.rec_bytes_avg, 1),
            "emissions_per_record": round(self.emissions_per_record, 3),
            "est_groups": self.est_groups,
            "skew": round(self.skew, 4),
            "ragged_keys": self.ragged_keys,
            "numeric_values": self.numeric_values,
        }


def _stride_indices(n: int, cap: int) -> range:
    """Evenly strided deterministic sample positions."""
    if n <= cap:
        return range(n)
    stride = n // cap
    return range(0, stride * cap, stride)


#: Profile memo: (spec name, input digest, caps) -> InputStats.  A
#: sweep prices the same input dozens of times (the autotune benchmark
#: literally does); re-running the sample map each time would make the
#: tuner's overhead proportional to input size on every call instead
#: of once.  Bounded FIFO — stats are tiny, but unbounded growth in a
#: long service process is not.
_PROFILE_CACHE: dict[tuple, InputStats] = {}
_PROFILE_CACHE_CAP = 64


def profile_input(
    spec,
    inp,
    *,
    cap_records: int = SAMPLE_CAP_RECORDS,
    cap_bytes: int = SAMPLE_CAP_BYTES,
) -> InputStats:
    """Profile ``inp`` for ``spec`` under the sampling caps (memoised
    on the input's content digest).

    Empty inputs profile to all-zero stats (every candidate then costs
    the same and the tuner falls back to the paper's default).
    """
    from ..obs.ledger import digest_input

    key = (getattr(spec, "name", None), digest_input(inp), len(inp),
           cap_records, cap_bytes)
    hit = _PROFILE_CACHE.get(key)
    if hit is not None:
        return hit
    stats = _profile_uncached(
        spec, inp, cap_records=cap_records, cap_bytes=cap_bytes
    )
    while len(_PROFILE_CACHE) >= _PROFILE_CACHE_CAP:
        _PROFILE_CACHE.pop(next(iter(_PROFILE_CACHE)))
    _PROFILE_CACHE[key] = stats
    return stats


def _profile_uncached(
    spec,
    inp,
    *,
    cap_records: int,
    cap_bytes: int,
) -> InputStats:
    n = len(inp)
    keys, vals = inp.keys, inp.values
    counter = _CountingTrace()
    const = (Accessor(spec.const_bytes, counter)
             if spec.const_bytes else None)
    map_record = spec.map_record

    sampled = sampled_bytes = 0
    key_b = val_b = rec_max = 0
    fixed_k: int | None = None
    fixed_v: int | None = None
    ragged_k = ragged_v = False
    emissions = 0
    emit_kb = emit_vb = 0
    emit_fixed = True
    emit_w: tuple[int, int] | None = None
    counts: dict[bytes, int] = {}
    counts_frozen = False

    outs: list[tuple[bytes, bytes]] = []

    def emit(k, v) -> None:
        outs.append((bytes(k), bytes(v)))

    for i in _stride_indices(n, cap_records):
        k, v = keys[i], vals[i]
        sampled += 1
        kl, vl = len(k), len(v)
        sampled_bytes += kl + vl
        key_b += kl
        val_b += vl
        rec_max = max(rec_max, kl + vl)
        if fixed_k is None and not ragged_k:
            fixed_k = kl
        elif fixed_k != kl:
            ragged_k = True
        if fixed_v is None and not ragged_v:
            fixed_v = vl
        elif fixed_v != vl:
            ragged_v = True

        outs.clear()
        map_record(Accessor(k, counter), Accessor(v, counter), emit, const)
        emissions += len(outs)
        for ek, ev in outs:
            emit_kb += len(ek)
            emit_vb += len(ev)
            if emit_fixed:
                w = (len(ek), len(ev))
                if emit_w is None:
                    emit_w = w
                elif emit_w != w:
                    emit_fixed = False
            if not counts_frozen:
                counts[ek] = counts.get(ek, 0) + 1
                if len(counts) > TRACK_DISTINCT_CAP:
                    counts_frozen = True
        if sampled_bytes >= cap_bytes:
            break

    if sampled == 0:
        return InputStats(
            records=n, total_bytes=0, sampled=0, sampled_bytes=0,
            key_bytes_avg=0.0, val_bytes_avg=0.0, rec_bytes_max=0,
            fixed_key_width=None, fixed_val_width=None,
            emissions_per_record=0.0, emit_key_bytes=0.0,
            emit_val_bytes=0.0, out_in_ratio=0.0, distinct_sampled=0,
            est_groups=0, skew=0.0, emit_fixed_width=False,
            accesses_per_record=0.0,
            cycles_per_record_hint=getattr(spec, "cycles_per_record", 0.0),
            cycles_per_access_hint=getattr(spec, "cycles_per_access", 0.0),
        )

    distinct = len(counts)
    top = max(counts.values()) if counts else 0
    skew = (top / emissions) if emissions else 0.0
    est_groups = _extrapolate_groups(
        distinct=distinct, sample_emissions=emissions,
        total_emissions=emissions / sampled * n,
        singletons=sum(1 for c in counts.values() if c == 1),
        frozen=counts_frozen,
    )
    return InputStats(
        records=n,
        total_bytes=round(sampled_bytes / sampled * n),
        sampled=sampled,
        sampled_bytes=sampled_bytes,
        key_bytes_avg=key_b / sampled,
        val_bytes_avg=val_b / sampled,
        rec_bytes_max=rec_max,
        fixed_key_width=None if ragged_k else fixed_k,
        fixed_val_width=None if ragged_v else fixed_v,
        emissions_per_record=emissions / sampled,
        emit_key_bytes=(emit_kb / emissions) if emissions else 0.0,
        emit_val_bytes=(emit_vb / emissions) if emissions else 0.0,
        out_in_ratio=(emit_kb + emit_vb) / max(1, sampled_bytes),
        distinct_sampled=distinct,
        est_groups=est_groups,
        skew=skew,
        emit_fixed_width=bool(emissions) and emit_fixed,
        accesses_per_record=counter.touches / sampled,
        cycles_per_record_hint=getattr(spec, "cycles_per_record", 0.0),
        cycles_per_access_hint=getattr(spec, "cycles_per_access", 0.0),
    )


def _extrapolate_groups(*, distinct: int, sample_emissions: float,
                        total_emissions: float, singletons: int,
                        frozen: bool) -> int:
    """Extrapolate sampled distinct keys to a full-input group count.

    Saturated vocabularies (few singletons — the sample keeps
    re-seeing the same keys) stay at the observed count; open key
    spaces (mostly singletons — each record mints fresh keys) scale
    with the input.  A frozen counter means the tracked cap was blown:
    treat the space as open.
    """
    if distinct == 0:
        return 0
    if sample_emissions <= 0:
        return distinct
    singleton_share = singletons / distinct
    if frozen or singleton_share > 0.5:
        scale = total_emissions / sample_emissions
        return max(distinct, int(round(distinct * scale)))
    # Mostly repeated keys: the vocabulary is (nearly) closed.  Add the
    # singleton tail once more as a small-sample correction.
    est = distinct + singletons * 0.5
    return max(distinct, int(round(min(est, total_emissions))))
