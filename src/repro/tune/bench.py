"""``repro-bench autotune`` — the tuner's acceptance benchmark.

Runs a workload matrix (the five synthetic tuner shapes plus the
shipped WC / KM / HG / LR workloads) twice over:

* **tuned** — one ``mode="auto"`` run per case with a *fresh, empty*
  ledger, so the decision comes from the cost model alone (no history
  echo from the sweep below);
* **fixed sweep** — every legal (mode, strategy, block size)
  combination, measured.

From those it derives the two acceptance gates this repo commits to
in ``BENCH_autotune.json`` (checked by ``scripts/perf_gate.py``):

1. **per-case**: each tuned run costs at most ``PER_CASE_BAR`` (1.10)
   times the best *measured* fixed configuration of that case;
2. **totals**: summed over the matrix, the tuned policy is cheaper
   than *every* fixed single-mode policy (run everything in G, in GT,
   … at the default block size) — the "one mode fits all" strawman
   the paper's per-workload mode tables argue against.

Costs are simulated cycles on a fixed small device: deterministic,
machine-neutral, and exactly the objective the tuner optimises.
"""

from __future__ import annotations

import json
import os
import tempfile

from ..framework.job import run_job
from ..framework.modes import ALL_MODES, MemoryMode, ReduceStrategy
from ..gpu.config import DeviceConfig
from ..obs.ledger import LEDGER_DIR_ENV
from ..workloads import Histogram, KMeans, LinearRegression, WordCount
from .synthetic import SYNTHETIC_CASES, synthetic_case

#: Per-case acceptance bar: tuned cost / best measured fixed cost.
PER_CASE_BAR = 1.10

#: Block sizes the fixed sweep measures (the tuner's own candidates).
SWEEP_TPBS = (64, 128, 256)

#: Default artefact path (committed at the repo root).
DEFAULT_OUT = "BENCH_autotune.json"

#: Real workloads in the matrix, with a scale that keeps one full
#: sweep in CI-friendly time on the small device.
_REAL = (
    (WordCount, 0.4),
    (KMeans, 0.4),
    (Histogram, 0.4),
    (LinearRegression, 0.4),
)


def bench_cases(seed: int = 0):
    """Yield ``(name, spec, inp, has_reduce)`` for the matrix."""
    for name in SYNTHETIC_CASES:
        spec, inp = synthetic_case(name, seed=seed)
        yield name, spec, inp, True
    for cls, scale in _REAL:
        w = cls()
        inp = w.generate("small", seed=seed, scale=scale)
        spec = w.spec_for_size("small", seed=seed, scale=scale)
        yield w.code, spec, inp, w.has_reduce


def _strategies(has_reduce):
    return (ReduceStrategy.TR, ReduceStrategy.BR) if has_reduce else (None,)


def _fresh_ledger_env():
    """Context: point the ledger at a throwaway directory.

    Each case's tuned run gets its own empty ledger (via
    :meth:`isolate`), so the decision under test is the factory cost
    model's — not calibration echo from earlier cases or history
    override from the fixed sweep's records.  This is also what makes
    the artefact reproducible: the same tree produces the same
    BENCH_autotune.json regardless of the local ledger's contents.
    """

    class _Ctx:
        def __enter__(self):
            self.prev = os.environ.get(LEDGER_DIR_ENV)
            return self

        def isolate(self):
            os.environ[LEDGER_DIR_ENV] = tempfile.mkdtemp(
                prefix="repro-tune-bench-")

        def __exit__(self, *exc):
            if self.prev is None:
                os.environ.pop(LEDGER_DIR_ENV, None)
            else:
                os.environ[LEDGER_DIR_ENV] = self.prev
            return False

    return _Ctx()


def run_autotune_bench(
    *,
    seed: int = 0,
    mps: int = 4,
    out_path: str | None = DEFAULT_OUT,
    progress=None,
) -> dict:
    """Measure the matrix and return (and optionally write) the report."""
    config = DeviceConfig.small(mps)
    cases = list(bench_cases(seed))
    report_cases = []
    fixed_policy_totals: dict[str, float] = {m.value: 0.0 for m in ALL_MODES}
    tuned_total = 0.0
    per_case_ok = True

    with _fresh_ledger_env() as env:
        for name, spec, inp, has_reduce in cases:
            env.isolate()
            if progress:
                progress(f"case {name}: tuned run")
            tuned = run_job(
                spec, inp, mode="auto",
                strategy="auto" if has_reduce else None, config=config,
            )
            tuned_cycles = tuned.timings.total
            tuned_total += tuned_cycles

            fixed: dict[str, float] = {}
            for strat in _strategies(has_reduce):
                for mode in ALL_MODES:
                    if strat is ReduceStrategy.BR \
                            and mode is MemoryMode.GT:
                        continue
                    for tpb in SWEEP_TPBS:
                        label = (f"{mode.value}/"
                                 f"{strat.value if strat else '-'}@{tpb}")
                        if progress:
                            progress(f"case {name}: fixed {label}")
                        res = run_job(spec, inp, mode=mode, strategy=strat,
                                      config=config, threads_per_block=tpb)
                        fixed[label] = res.timings.total
                        if tpb == 128:
                            # The single-mode policies run everything
                            # at the default block size; reduce cases
                            # contribute their TR cost (the classic
                            # one-thread-per-key default).
                            if strat in (None, ReduceStrategy.TR):
                                fixed_policy_totals[mode.value] += \
                                    res.timings.total

            best_label = min(fixed, key=fixed.get)
            ratio = tuned_cycles / fixed[best_label]
            per_case_ok = per_case_ok and ratio <= PER_CASE_BAR
            extra = tuned.map_stats.extra
            report_cases.append({
                "case": name,
                "records": len(inp),
                "tuned_choice": extra.get("tuner_choice"),
                "tuner_source": extra.get("tuner_source"),
                "tuned_cycles": round(tuned_cycles, 1),
                "predicted_cycles": round(
                    float(extra.get("tuner_predicted_cost") or 0.0), 1),
                "best_fixed": best_label,
                "best_fixed_cycles": round(fixed[best_label], 1),
                "ratio_to_best": round(ratio, 4),
                "fixed": {k: round(v, 1) for k, v in sorted(fixed.items())},
            })

    beats_every_mode = all(
        tuned_total < total for total in fixed_policy_totals.values()
    )
    report = {
        "schema": 1,
        "seed": seed,
        "device": f"small({mps})",
        "per_case_bar": PER_CASE_BAR,
        "cases": report_cases,
        "totals": {
            "tuned": round(tuned_total, 1),
            "fixed_modes": {
                k: round(v, 1) for k, v in fixed_policy_totals.items()
            },
        },
        "gates": {
            "per_case_within_bar": per_case_ok,
            "tuned_beats_every_fixed_mode": beats_every_mode,
        },
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


def check_report(report: dict) -> list[str]:
    """Gate failures in a report (empty = all gates pass)."""
    problems = []
    gates = report.get("gates", {})
    if not gates.get("per_case_within_bar"):
        bar = report.get("per_case_bar", PER_CASE_BAR)
        for case in report.get("cases", []):
            if case.get("ratio_to_best", 0) > bar:
                problems.append(
                    f"case {case['case']}: tuned {case['tuned_choice']} is "
                    f"{case['ratio_to_best']:.3f}x the best fixed config "
                    f"{case['best_fixed']} (bar {bar})"
                )
    if not gates.get("tuned_beats_every_fixed_mode"):
        totals = report.get("totals", {})
        tuned = totals.get("tuned")
        for mode, total in sorted(totals.get("fixed_modes", {}).items()):
            if tuned is not None and total <= tuned:
                problems.append(
                    f"fixed mode {mode} total {total} <= tuned {tuned}"
                )
    return problems


def render_report(report: dict) -> str:
    lines = ["autotune benchmark (cycles, tuned vs fixed sweep)", ""]
    lines.append(f"{'case':14s} {'tuned choice':16s} {'tuned':>12s} "
                 f"{'best fixed':>16s} {'ratio':>7s}")
    for case in report.get("cases", []):
        lines.append(
            f"{case['case']:14s} {str(case['tuned_choice']):16s} "
            f"{case['tuned_cycles']:>12.0f} "
            f"{case['best_fixed']:>9s} {case['best_fixed_cycles']:>6.0f} "
            f"{case['ratio_to_best']:>7.3f}"
        )
    totals = report.get("totals", {})
    lines.append("")
    lines.append(f"tuned total : {totals.get('tuned'):.0f}")
    for mode, total in sorted(totals.get("fixed_modes", {}).items()):
        lines.append(f"fixed {mode:4s}  : {total:.0f}")
    problems = check_report(report)
    lines.append("")
    if problems:
        lines.append("GATES FAILED:")
        lines.extend(f"  {p}" for p in problems)
    else:
        lines.append("gates: per-case <= "
                     f"{report.get('per_case_bar')}x best fixed; tuned "
                     "total beats every fixed mode  [OK]")
    return "\n".join(lines)
