"""Analytic cost model: price a candidate configuration from stats.

The model follows the paper's access-cost structure (Section IV):
every Map candidate pays a per-record base, a per-input-byte read
charge whose rate depends on where the bytes come from (global /
texture-cached / staged-to-shared), a per-emission charge whose rate
depends on where output goes (global atomic append vs. shared-memory
staging + block flush), and the staging taxes the evaluation isolates
— the helper-warp prefetch for staged input, the wait-signal sync for
staged output.  Reduce is priced per strategy: TR's serial chain is
the *largest* key group (one thread owns a whole group — the paper's
Figure 5f–5i crossover with cardinality and skew), while BR tree-folds
groups block-by-block and pays per group launched.  Shuffle and the
PCIe transfers use the same models for every mode, so they only move
absolute error, never the choice.

Every rate below is a **calibration constant**: the factory defaults
were fit by least squares over a measured sweep of the eight shipped
workloads (``scripts/calibrate_tuner.py`` reproduces and prints them),
and :mod:`repro.tune.calibrate` refines them at runtime from matching
run-ledger records.  Wall-clock rates price the functional backends
(fast / parallel:N / columnar / dist:N) plus the spill-budget knob for
the execution-level decision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..framework.modes import MemoryMode, ReduceStrategy, \
    effective_reduce_mode
from .profiler import InputStats

#: Directory bytes charged per record by the transfer model
#: (mirrors ``repro.framework.records.DIR_PER_RECORD``).
DIR_PER_RECORD = 16


@dataclass(frozen=True)
class Candidate:
    """One point of the configuration space the tuner prices."""

    mode: MemoryMode = MemoryMode.SIO
    strategy: ReduceStrategy | None = None
    threads_per_block: int = 128
    #: Execution substrate ("sim", "fast", "parallel", "columnar",
    #: "dist") — only the wall objective distinguishes these.
    backend: str = "sim"
    workers: int | None = None
    columnar: bool = False
    store: str | None = None
    memory_budget: int | None = None
    split_bytes: int | None = None

    def label(self) -> str:
        """Compact human/ledger form, e.g. ``SO/BR@128 fast+spill``."""
        strat = self.strategy.value if self.strategy else "-"
        text = f"{self.mode.value}/{strat}@{self.threads_per_block}"
        backend = self.backend
        if self.workers:
            backend += f":{self.workers}"
        text += f" {backend}"
        if self.store == "spill":
            text += "+spill"
        return text


# ----------------------------------------------------------------------
# Calibration constants
# ----------------------------------------------------------------------

#: Map coefficients per mode: (per_record, per_input_byte,
#: per_emission, per_output_byte, per_overflowed_emission,
#: per_compute_cycle).  ``per_overflowed_emission`` only bites
#: staged-output modes: when one block's staged emissions exceed the
#: shared-memory staging area, every emission pays it scaled by how
#: far over capacity the block runs (flush storms — the reason G
#: beats SIO on emission-heavy Map phases).  ``per_compute_cycle``
#: multiplies the profiler's ALU estimate; staged-input modes carry a
#: higher rate because helper warps prefetching input subtract from
#: compute capacity (the KMeans-vs-WordCount split).  Factory-fit —
#: see module docstring.
_FACTORY_MAP: dict[str, tuple] = {
    "G":   (2.3, 0.135, 5.6, 0.000, 0.0, 0.055),
    "GT":  (1.7, 0.118, 5.5, 0.000, 0.0, 0.056),
    "SI":  (0.0, 0.016, 7.3, 0.000, 0.0, 0.114),
    "SO":  (12.2, 0.215, 0.0, 0.051, 0.2, 0.103),
    "SIO": (5.2, 0.119, 2.0, 0.078, 0.1, 0.107),
}

#: Reduce coefficients per strategy, keyed by the *effective* Reduce
#: memory mode (TR cannot stage input: SI runs as G, SIO as SO; BR
#: cannot use GT): (per_group, per_value, per_max_group_value,
#: per_value_byte).  Staged Reduce modes are priced separately
#: because staging large key groups is where SIO loses WC/KM to G —
#: a Map-phase model alone cannot see it.
_FACTORY_TR: dict[str, tuple] = {
    "G":  (0.0, 0.000, 298.456, 0.020),
    "GT": (0.0, 0.000, 315.196, 0.000),
    "SO": (0.0, 0.000, 330.952, 0.000),
}
_FACTORY_BR: dict[str, tuple] = {
    "G":   (160.5, 0.000, 0.518, 0.094),
    "SI":  (555.1, 0.000, 6.384, 0.086),
    "SO":  (597.6, 0.000, 5.145, 0.292),
    "SIO": (619.9, 0.000, 5.964, 0.120),
}


@dataclass(frozen=True)
class CostConstants:
    """Every rate the model uses, in one calibratable bundle."""

    #: mode value -> (per_record, per_in_byte, per_emission,
    #: per_out_byte, per_overflowed_emission, per_compute_cycle)
    map_modes: dict = field(default_factory=lambda: dict(_FACTORY_MAP))
    #: effective reduce-mode value -> (per_group, per_value,
    #: per_max_group_value, per_value_byte), per strategy
    reduce_tr: dict = field(default_factory=lambda: dict(_FACTORY_TR))
    reduce_br: dict = field(default_factory=lambda: dict(_FACTORY_BR))
    #: Shuffle: per intermediate record, linear + n·log2(n) sort term.
    shuffle_per_rec: float = 34.2
    shuffle_per_rec_log: float = 0.0
    #: Block-size sensitivity: staged-output flush amortization (cost
    #: multiplier ∝ 128/tpb on the emission term), global atomic
    #: contention (∝ tpb/128, weak), and the overflow penalty when a
    #: block's staged emissions no longer fit the shared-memory
    #: staging area (bigger blocks stage more per flush — the WC-vs-II
    #: crossover at 256 threads).
    tpb_flush_gain: float = 0.3
    tpb_atomic_pain: float = 0.02
    #: Fraction of ``shared_mem_per_mp`` available to output staging
    #: (the overflow feature's capacity reference).
    stage_capacity_frac: float = 0.5
    #: Device the cycle constants were fit on (kernel work scales with
    #: the MP count relative to this).
    mp_count_ref: int = 4
    #: PCIe model mirror (exact values come from the DeviceConfig).
    #: Wall-clock rates (seconds) for the execution-level decision.
    host_per_record: float = 1.6e-6
    host_per_emission: float = 1.1e-6
    host_per_group: float = 1.3e-6
    host_per_byte: float = 4.0e-9
    columnar_map_discount: float = 0.25
    columnar_reduce_discount: float = 0.2
    columnar_per_batch: float = 2.5e-4
    columnar_scalar_tax: float = 1.35
    parallel_fixed: float = 0.035
    parallel_per_worker: float = 0.012
    parallel_ship_per_byte: float = 2.0e-8
    dist_fixed: float = 0.25
    dist_per_worker: float = 0.08
    dist_ship_per_byte: float = 2.5e-7
    spill_per_byte: float = 1.2e-8
    #: Per-(knob) multiplicative corrections learned from the ledger
    #: ({"mode:G": 1.03, "backend:fast": 0.97, ...}); bounded by the
    #: calibrator, 1.0 when no history exists.
    corrections: dict = field(default_factory=dict)

    def corrected(self, key: str) -> float:
        return self.corrections.get(key, 1.0)

    def with_corrections(self, corrections: dict) -> "CostConstants":
        return replace(self, corrections=dict(corrections))


# ----------------------------------------------------------------------
# Cycle model (sim objective)
# ----------------------------------------------------------------------


def stage_overflow(stats: InputStats, tpb: int, config,
                   constants: CostConstants) -> float:
    """How far one block's staged emissions exceed shared capacity.

    0.0 while a block's worth of emissions fits the staging area;
    beyond that, the excess ratio (1.0 = twice over capacity).  This
    is the feature the overflow coefficient multiplies — it grows
    with block size and with emission density, which is exactly the
    WC-at-256-threads flush-storm regime.
    """
    per_emit_bytes = stats.emit_key_bytes + stats.emit_val_bytes \
        + DIR_PER_RECORD
    staged = stats.emissions_per_record * tpb * per_emit_bytes
    capacity = getattr(config, "shared_mem_per_mp", 16384) \
        * constants.stage_capacity_frac
    if capacity <= 0 or staged <= capacity:
        return 0.0
    return staged / capacity - 1.0


def _transfer_cycles(nbytes: float, records: float, config) -> float:
    t = config.timing
    total = nbytes + DIR_PER_RECORD * records
    if total <= 0:
        return 0.0
    return t.pcie_setup_cycles + total / t.pcie_bytes_per_cycle


def estimate_cycles(
    stats: InputStats,
    cand: Candidate,
    config,
    constants: CostConstants | None = None,
) -> float:
    """Predicted end-to-end simulated cycles for ``cand``.

    The per-phase structure mirrors ``PhaseTimings``: io_in + map
    (+ shuffle + reduce + io_out when the job has a Reduce phase).
    """
    c = constants or CostConstants()
    n = float(stats.records)
    in_bytes = n * stats.rec_bytes_avg
    e = stats.est_emissions
    out_bytes = e * (stats.emit_key_bytes + stats.emit_val_bytes)
    mp_scale = c.mp_count_ref / max(1, getattr(config, "mp_count", 4))
    tpb = cand.threads_per_block

    mode = cand.mode
    per_rec, per_in, per_emit, per_out, per_ovf, per_cmp = \
        c.map_modes[mode.value]
    tpb = max(32, tpb)
    overflow_cost = 0.0
    if mode.stages_output:
        flush_adj = 1.0 + c.tpb_flush_gain * (128.0 / tpb - 1.0)
        overflow_cost = per_ovf * e * stage_overflow(stats, tpb, config, c)
    else:
        flush_adj = 1.0 + c.tpb_atomic_pain * (tpb / 128.0 - 1.0)
    map_cost = (
        per_rec * n + per_in * in_bytes
        + (per_emit * e + per_out * out_bytes) * flush_adj
        + overflow_cost
        + per_cmp * n * stats.compute_per_record
    ) * mp_scale * c.corrected(f"mode:{mode.value}")

    io_in = _transfer_cycles(in_bytes, n, config)
    if cand.strategy is None:
        io_out = _transfer_cycles(out_bytes, e, config)
        return io_in + map_cost + io_out

    log_e = math.log2(e) if e > 1 else 0.0
    shuffle = (c.shuffle_per_rec * e + c.shuffle_per_rec_log * e * log_e) \
        * mp_scale

    groups = float(max(1, stats.est_groups)) if e else 0.0
    values = e
    val_bytes = values * stats.emit_val_bytes
    max_group = stats.est_max_group
    red_mode = effective_reduce_mode(mode, cand.strategy).value
    if cand.strategy is ReduceStrategy.TR:
        table = c.reduce_tr
        key = "strategy:TR"
    else:
        table = c.reduce_br
        key = "strategy:BR"
    g_c, v_c, m_c, b_c = table.get(red_mode) or table["G"]
    reduce_cost = (
        g_c * groups + v_c * values + m_c * max_group + b_c * val_bytes
    ) * mp_scale * c.corrected(key)

    # Reduce output: one record per group, key + a value-sized payload.
    red_out_bytes = groups * (stats.emit_key_bytes + stats.emit_val_bytes)
    io_out = _transfer_cycles(red_out_bytes, groups, config)
    return io_in + map_cost + shuffle + reduce_cost + io_out


# ----------------------------------------------------------------------
# Wall model (execution objective)
# ----------------------------------------------------------------------


def estimate_wall(
    stats: InputStats,
    cand: Candidate,
    spec,
    *,
    cpu_count: int = 1,
    constants: CostConstants | None = None,
) -> float:
    """Predicted wall seconds on a functional backend.

    Prices the fast scalar loop, the columnar discounts (only when the
    workload actually ships batch kernels *and* the input profile is
    vectorizable), the parallel pool's fork+ship overheads against its
    ideal speedup, the dist coordinator's socket hop, and the spill
    store's per-byte write+merge charge when the candidate budgets the
    shuffle.
    """
    c = constants or CostConstants()
    n = float(stats.records)
    e = stats.est_emissions
    groups = float(max(1, stats.est_groups)) if e else 0.0
    in_bytes = n * stats.rec_bytes_avg
    inter_bytes = e * (stats.emit_key_bytes + stats.emit_val_bytes)

    map_s = c.host_per_record * n + c.host_per_emission * e \
        + c.host_per_byte * in_bytes
    shuffle_s = c.host_per_emission * e + c.host_per_byte * inter_bytes
    reduce_s = (c.host_per_group * groups + c.host_per_emission * e) \
        if cand.strategy is not None else 0.0

    if cand.backend == "columnar" or cand.columnar:
        batches = max(1.0, math.ceil(n / 8192.0))
        if spec is not None and getattr(spec, "map_batch", None) is not None \
                and not stats.ragged_keys:
            map_s *= c.columnar_map_discount
        else:
            map_s *= c.columnar_scalar_tax
        if spec is not None and getattr(spec, "reduce_batch", None) is not None \
                and cand.strategy is ReduceStrategy.TR \
                and stats.emit_fixed_width:
            reduce_s *= c.columnar_reduce_discount
        total = map_s + shuffle_s + reduce_s + c.columnar_per_batch * batches
        total *= c.corrected("backend:columnar")
    elif cand.backend in ("parallel", "dist"):
        workers = max(1, cand.workers or cpu_count)
        speedup = float(min(workers, max(1, cpu_count)))
        compute = (map_s + reduce_s) / speedup + shuffle_s
        if cand.backend == "parallel":
            total = compute + c.parallel_fixed \
                + c.parallel_per_worker * workers \
                + c.parallel_ship_per_byte * inter_bytes
        else:
            total = compute + c.dist_fixed + c.dist_per_worker * workers \
                + c.dist_ship_per_byte * (in_bytes + 2 * inter_bytes)
        total *= c.corrected(f"backend:{cand.backend}")
    else:
        total = (map_s + shuffle_s + reduce_s) * c.corrected("backend:fast")

    if cand.store == "spill":
        budget = float(cand.memory_budget or 0)
        over = max(0.0, stats.est_intermediate_bytes - budget)
        total += c.spill_per_byte * over
    return total


class CostModel:
    """Convenience bundle: constants + the two objectives."""

    def __init__(self, constants: CostConstants | None = None):
        self.constants = constants or CostConstants()

    def cycles(self, stats: InputStats, cand: Candidate, config) -> float:
        return estimate_cycles(stats, cand, config, self.constants)

    def wall(self, stats: InputStats, cand: Candidate, spec, *,
             cpu_count: int = 1) -> float:
        return estimate_wall(stats, cand, spec, cpu_count=cpu_count,
                             constants=self.constants)
