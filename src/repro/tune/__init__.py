"""``repro.tune`` — the cost-model autotuner.

The paper's own Figures 5–8 show that no single configuration wins
everywhere: the best memory mode (G/GT/SI/SO/SIO) and reduce strategy
(TR/BR) cross over with key cardinality, value width and skew, and the
repo has since grown more performance knobs (backend, columnar
batching, spill budget, worker count, split bytes) that used to be
picked by hand.  This package picks them from input statistics:

* :mod:`repro.tune.profiler` — a cheap bounded-sample input profiler
  producing :class:`InputStats` (record count, size distribution, key
  cardinality estimate, value width, skew, numeric-vs-ragged
  detection);
* :mod:`repro.tune.cost` — an analytic cost model pricing each
  candidate configuration with the paper's shared-vs-global
  access-cost structure plus per-knob calibration constants;
* :mod:`repro.tune.calibrate` — refines those constants from matching
  ``.repro/runs.jsonl`` ledger records and answers nearest-neighbour
  history lookups for inputs the ledger has already seen;
* :mod:`repro.tune.decide` — the decision layer: profile, consult
  history, price candidates, return a :class:`TunerDecision` that the
  backends' ``resolve_auto`` and the drivers' ``tune=True`` path
  apply;
* :mod:`repro.tune.bench` — the ``repro-bench autotune`` workload
  matrix: tuned choice vs. the exhaustive fixed sweep, emitting
  ``BENCH_autotune.json``.
"""

from __future__ import annotations

from .calibrate import CalibrationState, load_calibration, lookup_history
from .cost import Candidate, CostConstants, CostModel, estimate_cycles
from .decide import (
    AUTOTUNE_ENV,
    TunerDecision,
    autotune_enabled,
    decide_execution,
    decide_modes,
)
from .profiler import InputStats, profile_input

__all__ = [
    "AUTOTUNE_ENV",
    "CalibrationState",
    "Candidate",
    "CostConstants",
    "CostModel",
    "InputStats",
    "TunerDecision",
    "autotune_enabled",
    "decide_execution",
    "decide_modes",
    "estimate_cycles",
    "load_calibration",
    "lookup_history",
    "profile_input",
]
