"""The decision layer: profile, consult history, price, choose.

Two entry points, one per objective:

* :func:`decide_modes` — the **cycles** objective.  Prices every legal
  (memory mode, reduce strategy, block size) combination with
  :func:`repro.tune.cost.estimate_cycles` and returns the cheapest.
  This is what ``SimBackend.resolve_auto`` (and the fast backend, for
  mode-labelling parity) applies when a plan says ``mode="auto"``.
* :func:`decide_execution` — the **wall-clock** objective.  Also picks
  the execution substrate (fast / parallel:N / columnar), the spill
  budget, and the columnar toggle with
  :func:`repro.tune.cost.estimate_wall`.  This is what
  ``run_job(tune=True)`` / ``$REPRO_AUTOTUNE`` applies before a
  backend is even constructed.

Both consult the run ledger first (:mod:`repro.tune.calibrate`): its
corrections always apply, and when the exact input has already been
*swept* (>= :data:`HISTORY_MIN_CONFIGS` distinct configurations
measured for the same workload + digest) the measured winner overrides
the model — remembering beats modelling.  The returned
:class:`TunerDecision` carries the choice, the predicted cost, and a
JSON-able summary that the drivers put into KernelStats extras, trace
span attributes and the run ledger.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from ..framework.modes import ALL_MODES, AUTO, MemoryMode, ReduceStrategy
from ..obs.ledger import digest_input
from .calibrate import CalibrationState, distinct_configs, load_calibration, \
    lookup_history
from .cost import Candidate, estimate_cycles, estimate_wall
from .profiler import InputStats, profile_input

#: Truthy values turn the tuner on for every job (drivers honour it).
AUTOTUNE_ENV = "REPRO_AUTOTUNE"

#: History overrides the model only when the ledger measured at least
#: this many distinct configurations of the exact same input.
HISTORY_MIN_CONFIGS = 2

#: Block sizes the cycles objective explores when none is pinned.
TPB_CANDIDATES = (64, 128, 256)

#: Spill ceiling: estimated intermediate footprints beyond this are
#: planned with the spillable store and this budget (overridable).
DEFAULT_MEMORY_CEILING = 256 << 20

#: Worker-pool sizes the wall objective explores.
_POOL_SIZES = (2, 4, 8)


def autotune_enabled(environ=None) -> bool:
    """Is ``$REPRO_AUTOTUNE`` set to a truthy value?"""
    env = os.environ if environ is None else environ
    value = str(env.get(AUTOTUNE_ENV, "")).strip().lower()
    return value in ("1", "on", "true", "yes")


@dataclass(frozen=True)
class TunerDecision:
    """One resolved choice, with everything needed to audit it."""

    mode: MemoryMode
    strategy: ReduceStrategy | None
    threads_per_block: int = 128
    #: Execution substrate — ``None`` when only modes were decided
    #: (the cycles objective never moves a job off its backend).
    backend: str | None = None
    workers: int | None = None
    columnar: bool | None = None
    store: str | None = None
    memory_budget: int | None = None
    #: Model output: predicted cost of the chosen candidate, in the
    #: objective's unit (cycles or seconds).
    predicted_cost: float = 0.0
    objective: str = "cycles"
    #: ``model`` (cost model picked) or ``history`` (ledger sweep of
    #: this exact input overrode the model).
    source: str = "model"
    #: How many candidates were priced.
    considered: int = 0
    stats: InputStats | None = None

    @property
    def choice(self) -> str:
        """Compact label, e.g. ``SO/BR@128`` or ``G/TR@128 parallel:4``."""
        strat = self.strategy.value if self.strategy else "-"
        text = f"{self.mode.value}/{strat}@{self.threads_per_block}"
        if self.backend:
            backend = self.backend
            if self.workers:
                backend += f":{self.workers}"
            text += f" {backend}"
            if self.columnar:
                text += "+columnar"
            if self.store == "spill":
                text += "+spill"
        return text

    def summary(self) -> dict:
        """JSON-able form for span attrs / KernelStats / the ledger."""
        out = {
            "choice": self.choice,
            "predicted_cost": round(float(self.predicted_cost), 6),
            "objective": self.objective,
            "source": self.source,
            "considered": self.considered,
        }
        if self.stats is not None:
            out["input"] = self.stats.summary()
        return out


# ----------------------------------------------------------------------
# Candidate enumeration
# ----------------------------------------------------------------------


def _strategies(spec, pinned):
    """``None`` pins map-only (``run_job``'s meaning of ``None``); a
    :class:`ReduceStrategy` pins itself; ``"auto"`` lets the tuner
    explore TR vs BR (map-only when the spec has no Reduce)."""
    if isinstance(pinned, ReduceStrategy):
        return (pinned,)
    if getattr(spec, "reduce_record", None) is None:
        return (None,)
    if pinned == AUTO:
        return (ReduceStrategy.TR, ReduceStrategy.BR)
    return (None,)


def _mode_candidates(spec, *, strategy, threads_per_block):
    tpbs = (threads_per_block,) if threads_per_block else TPB_CANDIDATES
    for strat in _strategies(spec, strategy):
        for mode in ALL_MODES:
            if strat is ReduceStrategy.BR and mode is MemoryMode.GT:
                continue  # texture cache incoherent with in-place BR
            for tpb in tpbs:
                yield Candidate(mode=mode, strategy=strat,
                                threads_per_block=tpb)


def _history_candidate(calibration, spec, inp, candidates):
    """The ledger's measured winner, if this exact input was swept and
    the winning configuration is one we are allowed to pick."""
    digest = digest_input(inp)
    if distinct_configs(calibration.records, spec.name, digest) \
            < HISTORY_MIN_CONFIGS:
        return None
    rec = lookup_history(calibration.records, spec.name, digest,
                         records_in=len(inp))
    if rec is None:
        return None
    for cand in candidates:
        if cand.mode.value != rec.get("mode"):
            continue
        strat = cand.strategy.value if cand.strategy else None
        if strat != rec.get("strategy"):
            continue
        if cand.backend != "sim" and cand.backend != rec.get("backend"):
            continue
        return cand
    return None


# ----------------------------------------------------------------------
# Objectives
# ----------------------------------------------------------------------


def decide_modes(
    spec,
    inp,
    *,
    config,
    strategy: ReduceStrategy | str | None = "auto",
    threads_per_block: int | None = None,
    calibration: CalibrationState | None = None,
    stats: InputStats | None = None,
) -> TunerDecision:
    """Pick (mode, strategy, block size) by predicted simulated cycles.

    ``strategy="auto"`` (the default) explores TR vs BR; ``None`` pins
    a map-only job; a :class:`ReduceStrategy` pins itself.  A concrete
    ``threads_per_block`` pins the block size, ``None`` explores
    :data:`TPB_CANDIDATES`.
    """
    stats = stats or profile_input(spec, inp)
    calibration = calibration if calibration is not None \
        else load_calibration()
    constants = calibration.constants()
    candidates = list(_mode_candidates(
        spec, strategy=strategy, threads_per_block=threads_per_block))
    priced = {
        cand: estimate_cycles(stats, cand, config, constants)
        for cand in candidates
    }
    pick = min(priced, key=priced.get)
    source = "model"
    hist = _history_candidate(calibration, spec, inp, candidates)
    if hist is not None and hist is not pick:
        pick, source = hist, "history"
    return TunerDecision(
        mode=pick.mode,
        strategy=pick.strategy,
        threads_per_block=pick.threads_per_block,
        predicted_cost=priced[pick],
        objective="cycles",
        source=source,
        considered=len(candidates),
        stats=stats,
    )


def _execution_candidates(spec, stats, *, cpu_count, memory_ceiling,
                          allow_dist):
    store = None
    budget = None
    if stats.est_intermediate_bytes > memory_ceiling:
        store, budget = "spill", int(memory_ceiling)
    base = dict(store=store, memory_budget=budget)
    yield Candidate(backend="fast", **base)
    batched = getattr(spec, "map_batch", None) is not None \
        or getattr(spec, "reduce_batch", None) is not None
    if batched:
        yield Candidate(backend="columnar", columnar=True, **base)
    pools = sorted({w for w in (*_POOL_SIZES, cpu_count)
                    if 1 < w <= max(cpu_count, 2)})
    for workers in pools:
        yield Candidate(backend="parallel", workers=workers, **base)
        if allow_dist:
            yield Candidate(backend="dist", workers=workers, **base)


def decide_execution(
    spec,
    inp,
    *,
    strategy: ReduceStrategy | str | None = "auto",
    cpu_count: int | None = None,
    memory_ceiling: int = DEFAULT_MEMORY_CEILING,
    allow_dist: bool = False,
    calibration: CalibrationState | None = None,
    stats: InputStats | None = None,
    config=None,
) -> TunerDecision:
    """Pick the execution substrate (and budget) by predicted wall time,
    then fill in modes with the cycles objective for a complete plan.

    ``strategy`` carries ``run_job``'s semantics: ``None`` means the
    job is Map-only (the tuner never adds a Reduce phase), an enum
    pins it, ``"auto"`` lets the cycles objective pick TR vs BR.

    Called by ``run_job(tune=True)`` / ``$REPRO_AUTOTUNE`` *before*
    the backend is constructed — the one place backend choice can
    still change.
    """
    stats = stats or profile_input(spec, inp)
    calibration = calibration if calibration is not None \
        else load_calibration()
    constants = calibration.constants()
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    has_reduce = getattr(spec, "reduce_record", None) is not None \
        and strategy is not None

    candidates = list(_execution_candidates(
        spec, stats, cpu_count=cpu_count, memory_ceiling=memory_ceiling,
        allow_dist=allow_dist))
    # The wall objective needs a strategy to price Reduce: use TR as
    # the pricing baseline when the choice is open (strategy choice
    # itself belongs to the cycles objective below and does not move
    # wall cost materially).
    if isinstance(strategy, ReduceStrategy):
        pricing = strategy
    else:
        pricing = ReduceStrategy.TR if has_reduce else None
    priced = {
        cand: estimate_wall(
            stats, replace(cand, strategy=pricing), spec,
            cpu_count=cpu_count, constants=constants)
        for cand in candidates
    }
    pick = min(priced, key=priced.get)
    source = "model"
    hist = _history_candidate(calibration, spec, inp, candidates)
    if hist is not None and hist is not pick:
        pick, source = hist, "history"

    if config is None:
        from ..gpu.config import DeviceConfig
        config = DeviceConfig.small(4)
    modes = decide_modes(spec, inp, config=config, strategy=strategy,
                         calibration=calibration, stats=stats)
    return TunerDecision(
        mode=modes.mode,
        strategy=modes.strategy,
        threads_per_block=modes.threads_per_block,
        backend=pick.backend,
        workers=pick.workers,
        columnar=pick.columnar or None,
        store=pick.store,
        memory_budget=pick.memory_budget,
        predicted_cost=priced[pick],
        objective="wall",
        source=source,
        considered=len(candidates) + modes.considered,
        stats=stats,
    )
