"""Synthetic tuner workloads: the decision table's input shapes.

Five deliberately extreme input/emission shapes — uniform key space,
hot-key skew, wide values, ragged text keys, numeric fixed-width —
that between them exercise every feature the profiler extracts and
every crossover the cost model must capture (paper Figures 5–8: mode
vs. record size and emission density, TR vs. BR with cardinality and
skew).  The factory calibration fits on them alongside the real
workloads, the golden decision table pins the tuner's choice for each
against an exhaustive measured sweep, and the ``repro-bench autotune``
matrix runs them beside WC/KM/HG/LR.

Everything is deterministic for a fixed seed; specs are plain
:class:`MapReduceSpec` bundles with both TR and BR reduce functions so
the strategy dimension stays open for the tuner.
"""

from __future__ import annotations

import struct

from ..framework.api import MapReduceSpec
from ..framework.records import KeyValueSet


def _u32(x: int) -> bytes:
    return struct.pack("<I", x & 0xFFFFFFFF)


def _sum_map(key, value, emit, const):
    emit(key.to_bytes(), value.to_bytes())


def _sum_reduce(key, values, emit, const):
    total = 0
    for v in values:
        total += struct.unpack("<I", v.to_bytes()[:4])[0]
    emit(key.to_bytes(), _u32(total))


def _sum_combine(a, b):
    return _u32(struct.unpack("<I", a[:4])[0] + struct.unpack("<I", b[:4])[0])


def _sum_finalize(key, acc, count):
    return key, bytes(acc)


def _first_byte_map(key, value, emit, const):
    k = key.to_bytes()
    emit(k[:1] if k else b"\x00", _u32(len(value)))


def _word_map(key, value, emit, const):
    for w in key.to_bytes().split(b" "):
        if w:
            emit(w, _u32(1))


def _sum_spec(name: str) -> MapReduceSpec:
    return MapReduceSpec(
        name=name, map_record=_sum_map, reduce_record=_sum_reduce,
        combine=_sum_combine, finalize=_sum_finalize,
    )


def _lcg(seed: int):
    state = (seed * 2654435761 + 12345) & 0xFFFFFFFF

    def step() -> int:
        nonlocal state
        state = (state * 1664525 + 1013904223) & 0xFFFFFFFF
        return state

    return step


# ----------------------------------------------------------------------
# The five shapes
# ----------------------------------------------------------------------


def uniform_input(n: int = 768, *, seed: int = 0) -> KeyValueSet:
    """Open key space, ~1 value per group: the TR-friendly shape."""
    rnd = _lcg(seed)
    kvs = KeyValueSet()
    for _ in range(n):
        kvs.append(_u32(rnd()), _u32(1))
    return kvs


def hotkey_input(n: int = 768, *, seed: int = 0,
                 hot_share: float = 0.8) -> KeyValueSet:
    """One dominant key owns ``hot_share`` of the records: maximal
    skew, the BR-friendly shape (TR serializes the hot group)."""
    rnd = _lcg(seed)
    kvs = KeyValueSet()
    cut = int(hot_share * 1000)
    for _ in range(n):
        if rnd() % 1000 < cut:
            kvs.append(b"HOT!", _u32(1))
        else:
            kvs.append(_u32(rnd() % 17), _u32(1))
    return kvs


def widevalue_input(n: int = 256, *, seed: int = 0,
                    width: int = 256) -> KeyValueSet:
    """Few groups, 256-byte values: staging pressure on the input
    side, big per-value read charges in Reduce."""
    rnd = _lcg(seed)
    kvs = KeyValueSet()
    for _ in range(n):
        group = rnd() % 8
        payload = bytes((rnd() & 0xFF for _ in range(width)))
        kvs.append(_u32(group), payload)
    return kvs


def raggedkey_input(n: int = 512, *, seed: int = 0) -> KeyValueSet:
    """Variable-length text keys, word-splitting Map: the ragged
    heavy-emitter shape (WC-like without being WC)."""
    rnd = _lcg(seed)
    words = [b"alpha", b"be", b"gamma!", b"dd", b"epsilonlong",
             b"ze", b"eta", b"theta--", b"io", b"kappa"]
    kvs = KeyValueSet()
    for _ in range(n):
        k = b" ".join(words[rnd() % len(words)]
                      for _ in range(2 + rnd() % 4))
        kvs.append(k, b"")
    return kvs


def numfixed_input(n: int = 1024, *, seed: int = 0) -> KeyValueSet:
    """Fixed 4-byte numeric keys and values over a small closed key
    space: the columnar fast path's best case."""
    rnd = _lcg(seed)
    kvs = KeyValueSet()
    for _ in range(n):
        kvs.append(_u32(rnd() % 64), _u32(rnd() % 1000))
    return kvs


#: name -> (spec, input factory).  ``widevalue`` reduces the value
#: *length*, not content, so values stay 4-byte fixed on the way out.
def _widevalue_spec() -> MapReduceSpec:
    return MapReduceSpec(
        name="widevalue", map_record=_first_byte_map,
        reduce_record=_sum_reduce, combine=_sum_combine,
        finalize=_sum_finalize,
    )


def _ragged_spec() -> MapReduceSpec:
    return MapReduceSpec(
        name="raggedkey", map_record=_word_map,
        reduce_record=_sum_reduce, combine=_sum_combine,
        finalize=_sum_finalize,
    )


SYNTHETIC_CASES: dict[str, tuple] = {
    "uniform": (lambda: _sum_spec("uniform"), uniform_input),
    "hotkey": (lambda: _sum_spec("hotkey"), hotkey_input),
    "widevalue": (_widevalue_spec, widevalue_input),
    "raggedkey": (_ragged_spec, raggedkey_input),
    "numfixed": (lambda: _sum_spec("numfixed"), numfixed_input),
}


def synthetic_case(name: str, *, seed: int = 0, scale: float = 1.0):
    """(spec, input) for one named shape, scaled."""
    spec_fn, gen = SYNTHETIC_CASES[name]
    import inspect

    default_n = inspect.signature(gen).parameters["n"].default
    return spec_fn(), gen(max(8, int(default_n * scale)), seed=seed)
