"""``repro.store`` — pluggable intermediate-store policies.

The paper's contribution is choosing where intermediate Map output
lives on the device (shared vs global memory, modes G/GT/SI/SO/SIO);
this package makes the *host-side* analogue of that decision pluggable
for the functional backends: an :class:`IntermediateStore` receives
Map emissions, and yields key-sorted groups into Reduce.

* ``"memory"`` — :class:`MemoryStore`: the historical unbounded dict
  group-by (default; byte-identical output and behaviour).
* ``"spill"``  — :class:`SpillStore`: tracks an approximate byte
  budget, spills sorted runs to temp files past it, merge-streams
  groups back through a k-way heap merge.  Peak tracked memory stays
  bounded, enabling intermediates ≫ RAM.

Select per job (``run_job(..., store="spill", memory_budget=...)``),
per process with ``$REPRO_STORE`` / ``$REPRO_MEMORY_BUDGET``, or on
the CLIs with ``--store`` / ``--memory-budget``.  The cycle-accurate
sim backend models the *device* intermediate tiers and ignores the
host store policy.
"""

from __future__ import annotations

import os

from ..errors import FrameworkError
from .base import IntermediateStore, StoreStats, record_cost
from .memory import MemoryStore
from .spill import (
    DEFAULT_BUDGET,
    SPILL_DIR_ENV,
    SpillStore,
    merge_runs,
    resolve_spill_root,
)

#: Environment variable naming the default store policy.
STORE_ENV = "REPRO_STORE"
#: Environment variable giving the default spill budget (bytes;
#: ``k``/``m``/``g`` suffixes accepted).
BUDGET_ENV = "REPRO_MEMORY_BUDGET"

#: Registry of the shipped store policies, by name.
STORES: dict[str, type[IntermediateStore]] = {
    MemoryStore.name: MemoryStore,
    SpillStore.name: SpillStore,
}

_SUFFIX = {"k": 2**10, "m": 2**20, "g": 2**30}


def parse_budget(text: str | int | None) -> int | None:
    """``"65536"``, ``"64k"``, ``"512M"``, ``"1g"`` -> bytes.

    Rejects non-positive budgets (including plain ints — a literal
    ``0`` used to slip through unvalidated) and malformed numbers like
    ``"1.5m"`` with a :class:`~repro.errors.FrameworkError`; both CLIs
    surface that as the documented exit-2 usage error.
    """
    if text is None:
        return None
    if isinstance(text, int):
        if text < 1:
            raise FrameworkError(
                f"memory budget must be positive, got {text!r}"
            )
        return text
    raw = text.strip().lower()
    if not raw:
        return None
    mult = 1
    if raw[-1] in _SUFFIX:
        mult = _SUFFIX[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(raw) * mult
    except ValueError:
        raise FrameworkError(
            f"bad memory budget {text!r}; expected bytes with an "
            "optional k/m/g suffix (e.g. 65536, 64k, 512M)"
        ) from None
    if value < 1:
        raise FrameworkError(f"memory budget must be positive, got {text!r}")
    return value


def resolve_store_name(name: str | None = None) -> str:
    """Resolve a store request to a registry name.

    ``None`` consults ``$REPRO_STORE`` (default ``"memory"``); unknown
    names raise with the known set listed.
    """
    if name is None:
        name = os.environ.get(STORE_ENV) or MemoryStore.name
    name = name.strip().lower()
    if name not in STORES:
        known = ", ".join(sorted(STORES))
        raise FrameworkError(
            f"unknown store {name!r}; known stores: {known}"
        )
    return name


def resolve_budget(budget: int | None = None) -> int | None:
    """``None`` consults ``$REPRO_MEMORY_BUDGET`` (suffixes allowed)."""
    if budget is not None:
        return budget
    return parse_budget(os.environ.get(BUDGET_ENV))


def open_store(name: str | None = None, budget: int | None = None,
               **kwargs) -> IntermediateStore:
    """Build a live store for one shuffle hop.

    ``name``/``budget`` fall back to the environment; the budget only
    applies to the spill store (a budget with ``store="memory"`` is
    legal and ignored — the memory store is unbounded by design).
    """
    name = resolve_store_name(name)
    if name == SpillStore.name:
        return SpillStore(resolve_budget(budget), **kwargs)
    return MemoryStore()


__all__ = [
    "BUDGET_ENV",
    "DEFAULT_BUDGET",
    "IntermediateStore",
    "MemoryStore",
    "SPILL_DIR_ENV",
    "STORES",
    "STORE_ENV",
    "SpillStore",
    "StoreStats",
    "merge_runs",
    "open_store",
    "parse_budget",
    "record_cost",
    "resolve_budget",
    "resolve_spill_root",
    "resolve_store_name",
]
