"""The :class:`IntermediateStore` protocol.

Where intermediate key/value data lives between Map and Reduce is a
*policy*, not a fixed part of the execution path — the paper's whole
contribution is exactly this decision at the device tier (shared
memory vs global memory, modes G/GT/SI/SO/SIO), and Greiner & Jacob's
parallel-external-memory analysis gives the cost framework for the
host-side analogue: when the working set exceeds a memory budget,
write sorted runs and merge-stream them back.

A store receives the Map phase's emissions one ``(key, value)`` pair
at a time (:meth:`~IntermediateStore.emit`), is sealed with
:meth:`~IntermediateStore.finalize`, and then yields the grouped,
key-sorted intermediate exactly once via
:meth:`~IntermediateStore.iter_groups`.  Two implementations ship:

* :class:`~repro.store.memory.MemoryStore` — the historical unbounded
  in-process dict group-by.  Output byte-identical to the fast
  backend's original dict shuffle.
* :class:`~repro.store.spill.SpillStore` — tracks an approximate byte
  budget, spills sorted runs to temp files when the budget would be
  exceeded, and merge-streams groups back through a k-way heap merge
  so peak tracked memory stays bounded.

Both yield groups sorted by key bytes with values in emission order,
so downstream Reduce output is identical regardless of policy.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator

#: Approximate per-record bookkeeping cost charged by the budget
#: accounting, matching the framework's directory footprint per record
#: (two ``(offset, length)`` u32 entries — see
#: :data:`repro.framework.records.DIR_PER_RECORD`).
RECORD_OVERHEAD = 16


def record_cost(key: bytes, value: bytes) -> int:
    """Approximate bytes one record occupies in a store buffer."""
    return len(key) + len(value) + RECORD_OVERHEAD


@dataclass
class StoreStats:
    """Accounting one store accumulates over its lifetime.

    ``peak_bytes`` is the store's *own tracked* buffer high-water mark
    (the quantity the spill budget bounds), not a process RSS claim.
    """

    #: Records emitted into the store.
    emitted_records: int = 0
    #: Approximate bytes emitted (sum of :func:`record_cost`).
    emitted_bytes: int = 0
    #: High-water mark of the in-memory buffer, in tracked bytes.
    peak_bytes: int = 0
    #: Sorted runs written to disk.
    spill_runs: int = 0
    #: Payload bytes written across all spilled runs.
    spilled_bytes: int = 0
    #: Sequences fed to the k-way merge (disk runs + in-memory tail).
    merge_fan_in: int = 0

    def as_extra(self) -> dict[str, int]:
        """Spill accounting as ``KernelStats.extra`` counters."""
        return {
            "spill_runs": self.spill_runs,
            "spilled_bytes": self.spilled_bytes,
            "spill_merge_fan_in": self.merge_fan_in,
            "store_peak_bytes": self.peak_bytes,
        }


class IntermediateStore(abc.ABC):
    """One Map->Reduce hop's intermediate key/value data."""

    #: Registry name ("memory", "spill").
    name: str = "?"

    def __init__(self) -> None:
        self.stats = StoreStats()
        self._finalized = False

    # -- writing -------------------------------------------------------

    @abc.abstractmethod
    def emit(self, key: bytes, value: bytes) -> None:
        """Add one record.  Both arguments must already be ``bytes``."""

    def emit_many(self, pairs) -> None:
        emit = self.emit
        for k, v in pairs:
            emit(k, v)

    def emit_columns(self, cols) -> None:
        """Add a batch in columnar form (a
        :class:`~repro.framework.columns.ColumnBatch`).  The default
        unrolls to scalar emits; stores may override with a vectorized
        path, but accounting and grouped output must stay identical to
        emitting the same records one at a time."""
        self.emit_many(cols.iter_pairs())

    # -- sealing and reading -------------------------------------------

    def finalize(self) -> None:
        """Seal the store: no further emits; groups may now be read."""
        self._finalized = True

    @abc.abstractmethod
    def iter_groups(self) -> Iterator[tuple[bytes, list[bytes]]]:
        """Yield ``(key, [value, ...])`` groups sorted by key bytes,
        values in emission order.  Single consumption: a spilling store
        streams runs off disk and cannot rewind."""

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release buffers and any temp files.  Idempotent; safe to
        call mid-write (error cleanup must leave no run files behind)."""

    def __len__(self) -> int:
        return self.stats.emitted_records

    def __enter__(self) -> "IntermediateStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
