"""The spillable out-of-core store: sorted runs + k-way heap merge.

Greiner & Jacob's parallel-external-memory analysis of MapReduce
models the shuffle as exactly this: when the intermediate working set
exceeds the memory budget *M*, write key-sorted runs of ~*M* bytes and
merge them back in one streaming pass.  :class:`SpillStore` is the
host-side implementation:

* **emit** appends to an in-memory buffer whose approximate byte size
  (:func:`~repro.store.base.record_cost`) is tracked; when adding a
  record would push the buffer past the budget, the buffer is sorted
  by key (stable, preserving emission order of equal keys) and written
  to a temp run file first — so the tracked buffer never exceeds
  ``max(budget, one record)``;
* **iter_groups** merges the disk runs plus the in-memory tail with
  ``heapq.merge``.  Every sequence is key-sorted and the merge items
  carry ``(key, run_index, value)``, with runs numbered in creation
  (= chronological) order — equal keys therefore pop in run order, and
  within a run in emission order, so each group's value list is in
  global emission order: byte-identical to
  :class:`~repro.store.memory.MemoryStore`;
* a group is materialised one at a time — one hot key whose values
  exceed the budget still streams through the merge correctly (the
  group list lives outside the tracked buffer, which stays bounded).

Run files live in a private temp directory (honouring
``$REPRO_SPILL_DIR``) and are removed by :meth:`~SpillStore.close`,
which every execution path reaches via ``try/finally`` — a failed job
leaves no orphaned runs behind.

Run format: repeated ``u32 klen, u32 vlen, key, value`` records,
little-endian, key-sorted within the file.
"""

from __future__ import annotations

import heapq
import os
import shutil
import struct
import tempfile
from typing import Iterator

from ..errors import FrameworkError
from .base import RECORD_OVERHEAD, IntermediateStore, record_cost

#: Default budget when spilling is requested without an explicit one.
DEFAULT_BUDGET = 64 * 2**20

#: Environment variable naming the directory run files live under.
SPILL_DIR_ENV = "REPRO_SPILL_DIR"

_HEADER = struct.Struct("<II")


def resolve_spill_root() -> str | None:
    """Validated ``$REPRO_SPILL_DIR`` (or None for the system default).

    A missing or unwritable directory raises a
    :class:`~repro.errors.FrameworkError` naming the path — callers
    check at *store open* so a bad setting fails before any work runs,
    not on the first spilled run mid-shuffle, and no half-created temp
    directories are left behind.
    """
    root = os.environ.get(SPILL_DIR_ENV)
    if not root:
        return None
    if not os.path.isdir(root):
        raise FrameworkError(
            f"$REPRO_SPILL_DIR={root!r} is not an existing directory"
        )
    if not os.access(root, os.W_OK | os.X_OK):
        raise FrameworkError(
            f"$REPRO_SPILL_DIR={root!r} is not writable"
        )
    return root


class SpillStore(IntermediateStore):
    """Budgeted store: spill sorted runs, merge-stream them back."""

    name = "spill"

    def __init__(self, budget: int | None = None, *,
                 spill_dir: str | None = None, prefix: str = "run",
                 own_dir: bool | None = None) -> None:
        """``budget`` is the tracked in-memory byte bound (default
        :data:`DEFAULT_BUDGET`).  ``spill_dir`` places run files in an
        existing directory the caller owns (the parallel backend gives
        each job one shared dir); by default the store creates — and on
        :meth:`close` removes — its own temp dir.  ``prefix`` namespaces
        this store's run files within a shared dir."""
        super().__init__()
        if budget is None:
            budget = DEFAULT_BUDGET
        if budget < 1:
            raise ValueError(f"spill budget must be >= 1 byte, got {budget}")
        self.budget = budget
        self._buffer: list[tuple[bytes, bytes]] = []
        self._buffer_bytes = 0
        self._runs: list[str] = []
        self._prefix = prefix
        self._dir = spill_dir
        # Fail on a bad $REPRO_SPILL_DIR here, at store open, not on
        # the first spilled run mid-shuffle.
        self._root = resolve_spill_root() if spill_dir is None else None
        self._own_dir = (spill_dir is None) if own_dir is None else own_dir
        self._closed = False

    # -- writing -------------------------------------------------------

    def emit(self, key: bytes, value: bytes) -> None:
        cost = record_cost(key, value)
        if self._buffer and self._buffer_bytes + cost > self.budget:
            self._spill_run()
        self._buffer.append((key, value))
        self._buffer_bytes += cost
        st = self.stats
        st.emitted_records += 1
        st.emitted_bytes += cost
        if self._buffer_bytes > st.peak_bytes:
            st.peak_bytes = self._buffer_bytes

    def emit_columns(self, cols) -> None:
        """Columnar emit with scalar-identical budget semantics.

        The per-record rule ("spill before appending the record that
        would overflow a non-empty buffer") is replayed over the whole
        batch with one cumulative-cost array: each ``searchsorted``
        finds the longest prefix that still fits, so the loop runs
        once per *spill*, not once per record.  Buffer contents, spill
        points, run files and all accounting come out byte-identical
        to emitting the pairs one at a time.
        """
        import numpy as np

        n = len(cols)
        if n == 0:
            return
        costs = cols.keys.lengths + cols.values.lengths + RECORD_OVERHEAD
        cum = np.cumsum(costs)
        kl = cols.keys.tolist()
        vl = cols.values.tolist()
        buf = self._buffer
        bb = self._buffer_bytes
        budget = self.budget
        st = self.stats
        i = 0
        while i < n:
            prev = int(cum[i - 1]) if i else 0
            if not buf:
                # An empty buffer always accepts the next record, even
                # one larger than the whole budget (the scalar rule).
                buf.append((kl[i], vl[i]))
                bb += int(costs[i])
                if bb > st.peak_bytes:
                    st.peak_bytes = bb
                i += 1
                if i >= n:
                    break
                prev = int(cum[i - 1])
            # Longest prefix i..j-1 with bb + (cum[j-1] - prev) <= budget.
            j = int(np.searchsorted(cum, budget - bb + prev, side="right"))
            if j > i:
                buf.extend(zip(kl[i:j], vl[i:j]))
                bb += int(cum[j - 1]) - prev
                if bb > st.peak_bytes:
                    st.peak_bytes = bb
                i = j
            if i < n:
                # Next record would overflow a non-empty buffer: spill.
                self._buffer_bytes = bb
                self._spill_run()
                buf = self._buffer
                bb = 0
        self._buffer_bytes = bb
        st.emitted_records += n
        st.emitted_bytes += int(cum[-1])

    def _ensure_dir(self) -> str:
        if self._dir is None:
            self._dir = tempfile.mkdtemp(
                prefix="repro-spill-", dir=self._root
            )
        return self._dir

    def _spill_run(self) -> None:
        """Sort the buffer and write it out as one run file."""
        run_dir = self._ensure_dir()
        path = os.path.join(
            run_dir, f"{self._prefix}-{len(self._runs):06d}.run"
        )
        pairs = sorted(self._buffer, key=_pair_key)  # stable: emission
        written = 0
        with open(path, "wb") as fh:
            write, pack = fh.write, _HEADER.pack
            for k, v in pairs:
                write(pack(len(k), len(v)))
                write(k)
                write(v)
                written += 8 + len(k) + len(v)
        self._runs.append(path)
        self.stats.spill_runs += 1
        self.stats.spilled_bytes += written
        self._buffer = []
        self._buffer_bytes = 0

    def flush_runs(self) -> list[str]:
        """Force the tail buffer to disk and return every run path.

        Used by pool workers: the coordinator merges the returned runs
        directly (files outlive the worker's store object), so nothing
        but paths crosses the process boundary.  The caller owns the
        files from here on.
        """
        if self._buffer:
            self._spill_run()
        self.finalize()
        runs, self._runs = self._runs, []
        return runs

    # -- reading -------------------------------------------------------

    @property
    def run_count(self) -> int:
        return len(self._runs)

    def iter_groups(self) -> Iterator[tuple[bytes, list[bytes]]]:
        if not self._finalized:
            self.finalize()
        sequences: list = [
            _read_run(path, idx) for idx, path in enumerate(self._runs)
        ]
        if self._buffer:
            tail = sorted(self._buffer, key=_pair_key)
            idx = len(sequences)
            sequences.append((k, idx, v) for k, v in tail)
        self.stats.merge_fan_in = len(sequences)
        try:
            key = None
            values: list[bytes] = []
            for k, _idx, v in heapq.merge(*sequences):
                if k != key:
                    if key is not None:
                        yield key, values
                    key = k
                    values = [v]
                else:
                    values.append(v)
            if key is not None:
                yield key, values
        finally:
            self.close()

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._buffer = []
        self._buffer_bytes = 0
        runs, self._runs = self._runs, []
        for path in runs:
            try:
                os.unlink(path)
            except OSError:
                pass
        if self._own_dir and self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None

    def __del__(self):  # last-resort cleanup; close() is the contract
        try:
            self.close()
        except Exception:
            pass


def _pair_key(pair: tuple[bytes, bytes]) -> bytes:
    return pair[0]


def _read_run(path: str, idx: int) -> Iterator[tuple[bytes, int, bytes]]:
    """Stream one run file as ``(key, run_index, value)`` merge items."""
    with open(path, "rb") as fh:
        read = fh.read
        unpack = _HEADER.unpack
        while True:
            header = read(8)
            if not header:
                return
            klen, vlen = unpack(header)
            yield read(klen), idx, read(vlen)


def merge_runs(run_groups: list[list[str]]
               ) -> Iterator[tuple[bytes, list[bytes]]]:
    """Merge-stream groups out of externally produced run files.

    ``run_groups`` is a list of run-path lists, one per producer
    (shard), each list in chronological order — the coordinator-side
    half of the parallel backend's per-shard spill.  Ordering matches
    the non-spilled shuffle: producers merge in list order, so equal
    keys accumulate values shard-by-shard in emission order.  The
    caller owns (and cleans up) the files.
    """
    sequences = []
    for paths in run_groups:
        for path in paths:
            sequences.append(_read_run(path, len(sequences)))
    key = None
    values: list[bytes] = []
    for k, _idx, v in heapq.merge(*sequences):
        if k != key:
            if key is not None:
                yield key, values
            key = k
            values = [v]
        else:
            values.append(v)
    if key is not None:
        yield key, values
