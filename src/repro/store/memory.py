"""The unbounded in-process store: today's dict shuffle, extracted.

Behaviour is exactly the fast backend's original group-by — a dict of
value lists keyed by key bytes, built in emission order and read back
sorted — so the default execution path stays byte-identical to the
pre-store tree.

Columnar emissions (:meth:`MemoryStore.emit_columns`) are retained as
column chunks instead of being unrolled into the dict; a purely
columnar store can then group with one vectorized argsort
(:meth:`MemoryStore.column_groups`).  Mixed scalar + columnar
emissions degrade gracefully: the chunks drain into the dict and the
classic sorted-items path serves the groups — same bytes either way.
"""

from __future__ import annotations

from typing import Iterator

from .base import IntermediateStore, record_cost

#: Per-record budget-accounting overhead (see :func:`record_cost`).
_OVERHEAD = 16


class MemoryStore(IntermediateStore):
    """Group in an unbounded dict; sort once at read time."""

    name = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._groups: dict[bytes, list[bytes]] = {}
        self._columns: list = []  # ColumnBatch chunks, emission order

    def emit(self, key: bytes, value: bytes) -> None:
        if self._columns:
            self._drain_columns()
        bucket = self._groups.get(key)
        if bucket is None:
            self._groups[key] = [value]
        else:
            bucket.append(value)
        st = self.stats
        st.emitted_records += 1
        st.emitted_bytes += record_cost(key, value)
        if st.emitted_bytes > st.peak_bytes:
            st.peak_bytes = st.emitted_bytes

    def emit_columns(self, cols) -> None:
        n = len(cols)
        if n == 0:
            return
        if self._groups:
            # Scalar emissions already landed: keep one authoritative
            # representation (the dict) rather than interleaving two.
            super().emit_columns(cols)
            return
        self._columns.append(cols)
        st = self.stats
        st.emitted_records += n
        st.emitted_bytes += cols.key_bytes + cols.val_bytes + _OVERHEAD * n
        if st.emitted_bytes > st.peak_bytes:
            st.peak_bytes = st.emitted_bytes

    def _drain_columns(self) -> None:
        """Unroll retained column chunks into the dict (mixed mode)."""
        chunks, self._columns = self._columns, []
        for cols in chunks:
            for key, value in cols.iter_pairs():
                bucket = self._groups.get(key)
                if bucket is None:
                    self._groups[key] = [value]
                else:
                    bucket.append(value)

    @property
    def group_count(self) -> int:
        if self._columns:
            self._drain_columns()
        return len(self._groups)

    def column_groups(self):
        """Vectorized group-by over retained column chunks.

        Returns a :class:`~repro.framework.columns.GroupedColumns`
        (same groups, same order, same bytes as :meth:`iter_groups`),
        or ``None`` when scalar emissions forced the dict
        representation — callers then use :meth:`iter_groups`.
        """
        if self._groups:
            return None
        if not self._finalized:
            self.finalize()
        from ..framework.columns import ColumnBatch, GroupedColumns

        chunks = self._columns
        if chunks:
            batch = ColumnBatch.concat(chunks)
        else:
            batch = ColumnBatch.from_lists([], [])
        self.stats.merge_fan_in = 1 if len(batch) else 0
        return GroupedColumns.from_batch(batch, stats=self.stats)

    def iter_groups(self) -> Iterator[tuple[bytes, list[bytes]]]:
        if not self._finalized:
            self.finalize()
        if self._columns:
            self._drain_columns()
        self.stats.merge_fan_in = 1 if self._groups else 0
        yield from sorted(self._groups.items())

    def close(self) -> None:
        self._groups = {}
        self._columns = []
