"""The unbounded in-process store: today's dict shuffle, extracted.

Behaviour is exactly the fast backend's original group-by — a dict of
value lists keyed by key bytes, built in emission order and read back
sorted — so the default execution path stays byte-identical to the
pre-store tree.
"""

from __future__ import annotations

from typing import Iterator

from .base import IntermediateStore, record_cost


class MemoryStore(IntermediateStore):
    """Group in an unbounded dict; sort once at read time."""

    name = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._groups: dict[bytes, list[bytes]] = {}

    def emit(self, key: bytes, value: bytes) -> None:
        bucket = self._groups.get(key)
        if bucket is None:
            self._groups[key] = [value]
        else:
            bucket.append(value)
        st = self.stats
        st.emitted_records += 1
        st.emitted_bytes += record_cost(key, value)
        if st.emitted_bytes > st.peak_bytes:
            st.peak_bytes = st.emitted_bytes

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def iter_groups(self) -> Iterator[tuple[bytes, list[bytes]]]:
        if not self._finalized:
            self.finalize()
        self.stats.merge_fan_in = 1 if self._groups else 0
        yield from sorted(self._groups.items())

    def close(self) -> None:
        self._groups = {}
