"""Reproduction of *Using Shared Memory to Accelerate MapReduce on
Graphics Processing Units* (Feng Ji & Xiaosong Ma, IPDPS 2011).

Layout
------
``repro.gpu``
    Discrete-event SIMT GPU timing simulator (the GTX 280 substitute).
``repro.framework``
    The paper's MapReduce framework: shared-memory staging areas,
    thread-role partitioning, wait-signal synchronisation, hierarchical
    result collection, memory-usage modes G/GT/SI/SO/SIO, and TR/BR
    reduction.
``repro.backend``
    Pluggable execution backends behind one phase-sequencing core:
    ``sim`` (the cycle-accurate simulator) and ``fast`` (functional
    executor for correctness runs and development loops).
``repro.mars``
    The Mars baseline: two-pass (count + prefix-scan + real) execution.
``repro.workloads``
    The five evaluation workloads (Table I): Word Count, Matrix
    Multiplication, String Match, Inverted Index, KMeans — plus the
    synthetic data generators matching Table II's record statistics.
``repro.cpu_ref``
    Sequential reference MapReduce used as the correctness oracle.
``repro.analysis``
    Renderers for every table and figure in the paper's evaluation.
"""

__version__ = "1.0.0"

from .errors import ReproError

__all__ = ["ReproError", "__version__"]
