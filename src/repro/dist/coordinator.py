"""Coordinator: fault-tolerant task scheduling over socket workers.

The :class:`Cluster` owns a set of worker processes connected over
localhost TCP and drives them through the MapReduce master loop:

* **spawn** — workers are forked (so user Map/Reduce closures arrive
  by memory inheritance; see :mod:`repro.dist.worker`) and dial back
  to the coordinator's listening socket, identifying themselves with
  a ``hello`` frame;
* **assign** — each phase's tasks are dispatched one-at-a-time per
  worker (a worker is only ever sent a task while it is idle and
  blocked in ``recv``, so a large task frame can never deadlock
  against a worker trying to reply);
* **survive** — a torn connection means a dead worker: its in-flight
  task is re-queued with ``attempt + 1`` and runs elsewhere; if every
  worker is dead, a replacement is spawned under a fresh index (fresh
  index = fresh fault state, so a scripted kill cannot re-trip);
* **speculate** — a task outliving ``straggler_factor ×`` the median
  completed-task duration (floored at ``min_straggle_s``) is
  speculatively duplicated on an idle worker, the paper-lineage
  MapReduce backup-task trick;
* **dedupe** — every phase runs under a monotonically increasing
  *epoch*; task frames carry it and workers echo it back, so a reply
  is accepted only when its epoch matches the running phase and its
  shard is still open.  Late twins (speculation losers, slow replies
  from a phase — even a same-named one in a later streamed batch —
  that already finished) are recorded as ``duplicate`` events and
  dropped, which is what keeps retried/speculated runs byte-identical
  to a faultless one.

Scheduling is dynamic by default (first idle worker wins — fastest on
a real machine, but completion order races).  ``deterministic=True``
pins the assignment function — task ``shard`` with ``attempt`` goes
to ``alive[(shard + attempt) % len(alive)]`` — so the golden-trace
suite can pin exact assign/retry orderings under a scripted
:class:`~repro.dist.faults.FaultPlan`.

A worker reporting a *kernel* error (the user's Map/Reduce raised) is
not a fault to retry — the same code would fail identically anywhere
— so the coordinator aborts the job with a
:class:`~repro.errors.FrameworkError` instead of burning attempts.
"""

from __future__ import annotations

import multiprocessing
import selectors
import socket
import statistics
import time
from collections import deque
from dataclasses import dataclass

from ..errors import FrameworkError
from . import worker as worker_mod
from .faults import FaultPlan
from .wire import FrameReader, recv_msg, send_msg

#: A shard is abandoned after this many attempts (initial + retries).
DEFAULT_MAX_ATTEMPTS = 4

#: Speculate when an in-flight task exceeds this multiple of the
#: median completed-task duration for the phase...
DEFAULT_STRAGGLER_FACTOR = 3.0

#: ...but never before this many seconds (tiny tasks finish in
#: microseconds; a microsecond-scale threshold would speculate
#: everything on a loaded CI machine).
DEFAULT_MIN_STRAGGLE_S = 0.25

#: How long to wait for a freshly spawned worker's ``hello``.
HELLO_TIMEOUT_S = 15.0

#: How long :meth:`Cluster.shutdown` waits for a worker to exit
#: before escalating to ``terminate`` and then ``kill``.
REAP_TIMEOUT_S = 5.0

#: Select-loop tick while a phase is incomplete: bounds straggler
#: detection latency without busy-waiting.
_TICK_S = 0.02


@dataclass(frozen=True)
class DistEvent:
    """One scheduling decision or observation, in occurrence order.

    ``kind`` is one of ``assign`` / ``complete`` / ``retry`` /
    ``speculate`` / ``duplicate`` / ``worker_dead`` / ``respawn``.
    ``worker`` and ``shard`` are ``-1`` where not applicable (an idle
    worker dying has no shard).
    """

    kind: str
    phase: str
    shard: int
    attempt: int
    worker: int

    def as_dict(self) -> dict:
        return {"kind": self.kind, "phase": self.phase,
                "shard": self.shard, "attempt": self.attempt,
                "worker": self.worker}


@dataclass
class _Task:
    phase: str
    shard: int
    attempt: int
    payload: dict
    epoch: int = 0


class _WorkerHandle:
    """Coordinator-side view of one worker process."""

    __slots__ = ("idx", "proc", "sock", "reader", "task", "started",
                 "pid", "alive")

    def __init__(self, idx: int, proc) -> None:
        self.idx = idx
        self.proc = proc
        self.sock: socket.socket | None = None
        self.reader = FrameReader()
        self.task: _Task | None = None
        self.started = 0.0
        self.pid = 0
        self.alive = False


class Cluster:
    """A pool of socket-connected worker processes plus the scheduler
    state needed to drive phases across them fault-tolerantly."""

    def __init__(self, workers: int, fault_plan: FaultPlan | None = None,
                 *, deterministic: bool = False,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 straggler_factor: float = DEFAULT_STRAGGLER_FACTOR,
                 min_straggle_s: float = DEFAULT_MIN_STRAGGLE_S):
        if workers < 1:
            raise FrameworkError("cluster needs at least one worker")
        self.workers = workers
        self.fault_plan = fault_plan or FaultPlan.none()
        self.deterministic = deterministic
        self.max_attempts = max_attempts
        self.straggler_factor = straggler_factor
        self.min_straggle_s = min_straggle_s
        #: Scheduling decisions in order — the golden-trace payload.
        self.events: list[DistEvent] = []
        #: Aggregate counters surfaced as kernel-stats extras.
        self.counters = {
            "map_tasks": 0, "reduce_tasks": 0, "retries": 0,
            "speculated": 0, "duplicates": 0, "worker_deaths": 0,
            "respawns": 0,
        }
        self._handles: dict[int, _WorkerHandle] = {}
        self._listener: socket.socket | None = None
        self._selector: selectors.BaseSelector | None = None
        self._next_idx = workers
        self._started = False
        self._closed = False
        #: Current phase epoch; bumped at every :meth:`run_phase` so
        #: stale replies from an earlier phase can never be mistaken
        #: for this one's (same-named phases included).
        self._epoch = 0
        #: Dispatch counter: every task send gets a unique token, so
        #: twin attempts of one (shard, attempt) never share worker-
        #: side spill file names.
        self._seq = 0

    # -- lifecycle -------------------------------------------------------

    def start(self, spec, strategy, is_mars) -> None:
        """Install the job spec and fork + connect the worker set."""
        if self._started:
            raise FrameworkError("cluster already started")
        self._started = True
        worker_mod.configure(spec, strategy, is_mars)
        self._mp = multiprocessing.get_context("fork")
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(self.workers + 4)
        self._listener.settimeout(HELLO_TIMEOUT_S)
        self._port = self._listener.getsockname()[1]
        self._selector = selectors.DefaultSelector()
        for idx in range(self.workers):
            self._fork(idx)
        for _ in range(self.workers):
            self._greet()

    def _fork(self, idx: int) -> None:
        proc = self._mp.Process(
            target=worker_mod.worker_main,
            args=(self._port, idx, self.fault_plan.for_worker(idx)),
            daemon=True,
        )
        proc.start()
        self._handles[idx] = _WorkerHandle(idx, proc)

    def _greet(self) -> None:
        """Accept one worker connection and match it to its handle."""
        try:
            conn, _ = self._listener.accept()
        except (socket.timeout, OSError) as exc:
            raise FrameworkError(
                f"worker failed to connect within {HELLO_TIMEOUT_S}s"
            ) from exc
        conn.settimeout(HELLO_TIMEOUT_S)
        try:
            hello = recv_msg(conn)
        except Exception as exc:
            conn.close()
            raise FrameworkError("worker handshake failed") from exc
        conn.settimeout(None)
        h = self._handles[hello["worker"]]
        h.sock = conn
        h.pid = hello["pid"]
        h.alive = True
        self._selector.register(conn, selectors.EVENT_READ, h)

    def shutdown(self) -> None:
        """Release every socket and reap every worker process.

        Idempotent, and called on every exit path (the backend's
        ``close`` runs under the execution core's ``try/finally``), so
        a raising kernel cannot orphan processes or leak FDs.
        """
        if self._closed:
            return
        self._closed = True
        for h in self._handles.values():
            if h.sock is not None:
                if h.alive:
                    try:
                        send_msg(h.sock, {"type": "shutdown"})
                    except OSError:
                        pass
                try:
                    self._selector.unregister(h.sock)
                except (KeyError, ValueError):
                    pass
                try:
                    h.sock.close()
                except OSError:
                    pass
                h.sock = None
            h.alive = False
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        for h in self._handles.values():
            p = h.proc
            p.join(REAP_TIMEOUT_S)
            if p.is_alive():
                p.terminate()
                p.join(1.0)
            if p.is_alive():
                p.kill()
                p.join(1.0)
            # Release the Process object's own pipe FDs.
            p.close()

    # -- the phase loop --------------------------------------------------

    def run_phase(self, phase: str, tasks) -> dict[int, dict]:
        """Drive one phase's tasks to completion; returns the accepted
        result message per shard (exactly one, whatever faults fired).

        ``tasks`` is any iterable of ``(shard, payload)``.  A lazy
        iterator is pulled from only as workers come free, so a
        streamed task source (the out-of-core reduce) is materialised
        one in-flight payload at a time, never wholesale.
        """
        if self._closed:
            raise FrameworkError("cluster is shut down")
        self._epoch += 1
        epoch = self._epoch
        it = iter(tasks)
        pending: deque[_Task] = deque()
        done: dict[int, dict] = {}
        total = 0
        exhausted = False
        durations: list[float] = []
        speculated: set[int] = set()

        def pull() -> None:
            # Buffer just enough tasks to feed every idle worker.
            nonlocal total, exhausted
            if exhausted:
                return
            want = max(1, sum(1 for h in self._alive() if h.task is None))
            while len(pending) < want:
                try:
                    shard, payload = next(it)
                except StopIteration:
                    exhausted = True
                    return
                pending.append(_Task(phase, shard, 0, payload, epoch))
                total += 1

        pull()
        while not (exhausted and not pending and len(done) >= total):
            self._ensure_workers(phase, not exhausted or len(done) < total)
            pull()
            self._assign(pending, done)
            events = self._selector.select(_TICK_S)
            for key, _mask in events:
                self._service(key.data, phase, pending, done, durations)
            self._check_stragglers(phase, pending, done, durations,
                                   speculated)
        return done

    # -- scheduling ------------------------------------------------------

    def _alive(self) -> list[_WorkerHandle]:
        return [h for h in self._handles.values() if h.alive]

    def _ensure_workers(self, phase: str, needed: bool) -> None:
        """Respawn a replacement when the whole worker set has died
        with work outstanding.  Replacements get fresh indices, so a
        cumulative-record fault scripted for a dead index stays dead
        with it."""
        if not needed or self._alive():
            return
        idx = self._next_idx
        self._next_idx += 1
        self._fork(idx)
        self._greet()
        self.counters["respawns"] += 1
        self.events.append(DistEvent("respawn", phase, -1, -1, idx))

    def _assign(self, pending: deque[_Task], done: dict) -> None:
        if not pending:
            return
        alive = sorted(h.idx for h in self._alive())
        if not alive:
            return
        idle = {h.idx: h for h in self._alive() if h.task is None}
        if not idle:
            return
        if self.deterministic:
            # Pinned placement: the task waits for its designated
            # worker.  Stable across runs -> golden-traceable.
            deferred: deque[_Task] = deque()
            while pending:
                t = pending.popleft()
                target = alive[(t.shard + t.attempt) % len(alive)]
                h = idle.pop(target, None)
                if h is None:
                    deferred.append(t)
                else:
                    self._dispatch(h, t, pending, done)
            pending.extend(deferred)
        else:
            while pending and idle:
                h = idle.pop(min(idle))
                self._dispatch(h, pending.popleft(), pending, done)

    def _dispatch(self, h: _WorkerHandle, t: _Task, pending: deque,
                  done: dict) -> None:
        h.task = t
        h.started = time.perf_counter()
        self.counters[f"{t.phase}_tasks"] += 1
        self.events.append(
            DistEvent("assign", t.phase, t.shard, t.attempt, h.idx)
        )
        self._seq += 1
        msg = {"type": t.phase, "shard": t.shard, "attempt": t.attempt,
               "epoch": t.epoch, "seq": self._seq}
        msg.update(t.payload)
        try:
            send_msg(h.sock, msg)
        except OSError:
            # Died between select rounds; the death handler re-queues
            # the task we just pinned on the handle.
            self._on_worker_death(h, t.phase, pending, done)

    def _service(self, h: _WorkerHandle, phase: str, pending: deque,
                 done: dict, durations: list[float]) -> None:
        try:
            data = h.sock.recv(1 << 16)
        except OSError:
            data = b""
        if not data:
            self._on_worker_death(h, phase, pending, done)
            return
        h.reader.feed(data)
        for msg in h.reader.frames():
            self._on_message(h, msg, phase, done, durations)

    def _on_message(self, h: _WorkerHandle, msg: dict, phase: str,
                    done: dict, durations: list[float]) -> None:
        kind = msg.get("type")
        if kind not in ("result", "error"):
            raise FrameworkError(
                f"unexpected frame from worker {h.idx}: {kind!r}"
            )
        shard, attempt = msg.get("shard", -1), msg.get("attempt", -1)
        msg_phase = msg.get("phase")
        epoch = msg.get("epoch", -1)
        # Free the worker first: whatever the verdict on the reply,
        # the worker is idle again once it has replied.
        if (h.task is not None and h.task.shard == shard
                and h.task.phase == msg_phase and h.task.epoch == epoch):
            elapsed = time.perf_counter() - h.started
            h.task = None
        else:
            elapsed = None
        if epoch != self._epoch or msg_phase != phase or shard in done:
            # A speculation loser, a retry twin, or a stale reply from
            # a phase that already completed (the epoch is what tells a
            # later same-named phase — streamed batches renumber shards
            # from 0 — apart from the one this reply belongs to):
            # exactly-once means it must be dropped, not merged.  A
            # stale *error* is dropped too: the work it reports on is
            # no longer owned by any phase.
            self.counters["duplicates"] += 1
            self.events.append(
                DistEvent("duplicate", msg_phase, shard, attempt, h.idx)
            )
            return
        if kind == "error":
            raise FrameworkError(
                f"worker {h.idx} failed {msg_phase} shard "
                f"{shard}: {msg.get('message')}"
            )
        done[shard] = msg
        if elapsed is not None:
            durations.append(elapsed)
        self.events.append(
            DistEvent("complete", msg_phase, shard, attempt, h.idx)
        )

    def _on_worker_death(self, h: _WorkerHandle, phase: str,
                         pending: deque, done: dict) -> None:
        if not h.alive:
            return
        h.alive = False
        if h.sock is not None:
            try:
                self._selector.unregister(h.sock)
            except (KeyError, ValueError):
                pass
            try:
                h.sock.close()
            except OSError:
                pass
            h.sock = None
        h.proc.join(0.5)
        self.counters["worker_deaths"] += 1
        t, h.task = h.task, None
        self.events.append(DistEvent(
            "worker_dead", phase,
            t.shard if t is not None else -1,
            t.attempt if t is not None else -1,
            h.idx,
        ))
        if t is None or t.epoch != self._epoch or t.shard in done:
            # No task, or a task from a phase that already returned:
            # never re-queue a stale payload into the current phase.
            return
        nxt = t.attempt + 1
        if nxt >= self.max_attempts:
            raise FrameworkError(
                f"shard {t.shard} ({phase}) failed on {nxt} workers; "
                "giving up"
            )
        self.counters["retries"] += 1
        self.events.append(
            DistEvent("retry", phase, t.shard, nxt, h.idx)
        )
        pending.append(_Task(phase, t.shard, nxt, t.payload, t.epoch))

    def _check_stragglers(self, phase: str, pending: deque, done: dict,
                          durations: list[float],
                          speculated: set[int]) -> None:
        """Speculatively duplicate any in-flight task that has outlived
        the straggler threshold, MapReduce backup-task style."""
        busy = [h for h in self._alive()
                if h.task is not None and h.task.epoch == self._epoch
                and h.task.shard not in done
                and h.task.shard not in speculated
                # A backup copy runs as attempt+1; keep the configured
                # attempt ceiling uniform between retry and speculation.
                and h.task.attempt + 1 < self.max_attempts]
        if not busy:
            return
        threshold = self.min_straggle_s
        if durations:
            threshold = max(threshold,
                            self.straggler_factor
                            * statistics.median(durations))
        now = time.perf_counter()
        for h in busy:
            if now - h.started < threshold:
                continue
            idle = [g for g in self._alive()
                    if g.task is None and g.idx != h.idx]
            if not idle:
                continue
            target = min(idle, key=lambda g: g.idx)
            t = h.task
            self.counters["speculated"] += 1
            self.events.append(
                DistEvent("speculate", phase, t.shard, t.attempt + 1,
                          target.idx)
            )
            speculated.add(t.shard)
            self._dispatch(
                target,
                _Task(phase, t.shard, t.attempt + 1, t.payload, t.epoch),
                pending, done,
            )
