"""Distributed execution machinery: coordinator, workers, wire, faults.

This package holds everything the
:class:`~repro.backend.distributed.DistributedBackend` needs to cross
the process boundary the MapReduce way — a coordinator scheduling
tasks over socket-connected worker processes, surviving worker death
by re-execution and stragglers by speculation — plus the
:class:`FaultPlan` hook that makes every failure mode scriptable from
tests.  Nothing here imports :mod:`repro.backend`; the dependency
points one way.
"""

from .coordinator import (
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_MIN_STRAGGLE_S,
    DEFAULT_STRAGGLER_FACTOR,
    Cluster,
    DistEvent,
)
from .faults import KILL_EXIT, FaultPlan, WorkerFault
from .wire import ConnectionClosed, FrameReader, decode, encode

__all__ = [
    "Cluster",
    "ConnectionClosed",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_MIN_STRAGGLE_S",
    "DEFAULT_STRAGGLER_FACTOR",
    "DistEvent",
    "FaultPlan",
    "FrameReader",
    "KILL_EXIT",
    "WorkerFault",
    "decode",
    "encode",
]
