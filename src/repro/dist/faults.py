"""Deterministic fault injection for the distributed backend.

A :class:`FaultPlan` scripts what goes wrong during a job, so every
failure mode the coordinator must survive — worker death mid-task,
dropped connections, stragglers — is reproducible from tests instead
of waiting for the network to misbehave.  Faults are carried to each
worker at spawn time (plain data, fork-safe) and tripped by the
worker itself:

* ``kill``  — the worker calls ``os._exit`` after processing its
  N-th record, killing the process mid-task (the hardest case: the
  TCP socket tears, any spill runs are left half-written);
* ``drop``  — the worker closes its coordinator connection after its
  N-th record and exits cleanly (same observable loss, different
  shutdown path);
* ``delay`` — the worker sleeps before replying to a matching task,
  turning it into a straggler the coordinator should speculatively
  re-execute.

``kill``/``drop`` thresholds count *cumulative* records processed by
that worker across tasks and phases, so a single plan expresses
"worker 1 dies after 40 records" regardless of task boundaries.
:meth:`FaultPlan.seeded` derives one kill from a seed — the chaos
fuzzer's per-case ingredient.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Exit status a ``kill`` fault dies with (visible in worker reaping).
KILL_EXIT = 73

_KINDS = ("kill", "drop", "delay")


@dataclass(frozen=True)
class WorkerFault:
    """One scripted misbehaviour of one worker."""

    worker: int                 # worker index the fault applies to
    kind: str                   # "kill" | "drop" | "delay"
    after_records: int = 0      # kill/drop: cumulative records first
    phase: str | None = None    # restrict to "map"/"reduce" (None: any)
    shard: int | None = None    # delay: only this shard (None: every)
    seconds: float = 0.0        # delay: sleep before replying

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def to_wire(self) -> dict:
        return {
            "worker": self.worker, "kind": self.kind,
            "after_records": self.after_records, "phase": self.phase,
            "shard": self.shard, "seconds": self.seconds,
        }

    @classmethod
    def from_wire(cls, doc: dict) -> "WorkerFault":
        return cls(worker=doc["worker"], kind=doc["kind"],
                   after_records=doc["after_records"], phase=doc["phase"],
                   shard=doc["shard"], seconds=doc["seconds"])


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of scripted worker faults (composable with +)."""

    faults: tuple[WorkerFault, ...] = ()

    # -- constructors ---------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def kill(cls, worker: int, after_records: int,
             phase: str | None = None) -> "FaultPlan":
        """Kill ``worker`` (``os._exit``) after it has processed
        ``after_records`` records."""
        return cls((WorkerFault(worker=worker, kind="kill",
                                after_records=max(1, after_records),
                                phase=phase),))

    @classmethod
    def drop(cls, worker: int, after_records: int,
             phase: str | None = None) -> "FaultPlan":
        """Make ``worker`` drop its coordinator connection after
        ``after_records`` records and exit."""
        return cls((WorkerFault(worker=worker, kind="drop",
                                after_records=max(1, after_records),
                                phase=phase),))

    @classmethod
    def delay(cls, worker: int, seconds: float, shard: int | None = None,
              phase: str | None = None) -> "FaultPlan":
        """Make ``worker`` sleep ``seconds`` before replying to the
        matching task(s) — a scripted straggler."""
        return cls((WorkerFault(worker=worker, kind="delay",
                                seconds=seconds, shard=shard, phase=phase),))

    @classmethod
    def seeded(cls, seed: int, workers: int = 2,
               max_records: int = 16) -> "FaultPlan":
        """One pseudorandom kill, derived from ``seed`` alone.

        The chaos fuzzer's per-case plan: kill a random worker after a
        random (small) number of records.  Tiny cases may finish
        before the threshold — a fault that never fires is a valid
        draw; the differential check still ran under an armed plan.
        """
        rng = random.Random(seed)
        return cls.kill(worker=rng.randrange(max(1, workers)),
                        after_records=rng.randint(1, max(1, max_records)))

    # -- composition and queries ---------------------------------------

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return FaultPlan(self.faults + other.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def for_worker(self, worker: int) -> tuple[WorkerFault, ...]:
        """The faults scripted for one worker index."""
        return tuple(f for f in self.faults if f.worker == worker)

    def describe(self) -> list[dict]:
        """Plain-data rendering (golden fixtures, ledger, debugging)."""
        return [f.to_wire() for f in self.faults]
