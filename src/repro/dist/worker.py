"""Worker process: executes Map/Reduce tasks received over a socket.

One worker = one OS process, forked by the coordinator and connected
back over localhost TCP (:mod:`repro.dist.wire` frames).  The
Map/Reduce user functions reach the worker by fork inheritance —
:func:`configure` is called in the coordinator process immediately
before each fork, so arbitrary closures (test kernels included) never
cross the wire; only shard payloads and results do.

Task execution mirrors the parallel backend's pool workers: the same
emit validation, the same accessor memoisation, the same per-shard
:class:`~repro.obs.telemetry.ShardProfile` wall-clock bounds — but
with the :class:`~repro.dist.faults.WorkerFault` hooks threaded
through the record loops so a scripted kill/drop/delay trips at a
deterministic record count.  A worker never retries or dedupes
anything: it is deliberately dumb and mortal, per the MapReduce
"workers assumed faulty" design — all recovery logic lives in the
coordinator.

User-kernel exceptions are *reported*, not fatal: the worker sends an
``error`` reply and keeps serving.  A deterministic kernel bug would
fail identically on every retry, so the coordinator aborts the job on
such a reply instead of burning attempts.
"""

from __future__ import annotations

import os
import socket
import time

from ..errors import FrameworkError
from ..framework.modes import ReduceStrategy
from ..gpu.accessor import Accessor, AccessTrace
from ..store import SpillStore
from .faults import KILL_EXIT, WorkerFault
from .wire import ConnectionClosed, recv_msg, send_msg


class _NullTrace(AccessTrace):
    """No-op access trace (the fast backend's trick, kept local so the
    dist package never imports :mod:`repro.backend` — that would be a
    circular import)."""

    __slots__ = ()

    def touch(self, start: int, nbytes: int) -> None:
        return


_NULL_TRACE = _NullTrace()


def _accessor(data: bytes) -> Accessor:
    return Accessor(data, _NULL_TRACE)


# ----------------------------------------------------------------------
# Fork-inherited job state
# ----------------------------------------------------------------------

_SPEC = None
_STRATEGY: ReduceStrategy | None = None
_IS_MARS = False


def configure(spec, strategy, is_mars) -> None:
    """Install the job's spec in this process; call in the coordinator
    immediately before forking so children inherit it."""
    global _SPEC, _STRATEGY, _IS_MARS
    _SPEC = spec
    _STRATEGY = strategy
    _IS_MARS = is_mars


# ----------------------------------------------------------------------
# Fault machinery
# ----------------------------------------------------------------------


class _DropConnection(Exception):
    """Internal control flow for a scripted ``drop`` fault."""


class _FaultState:
    """Per-worker fault bookkeeping: cumulative record count and the
    scripted trip points."""

    __slots__ = ("records", "trips", "delays")

    def __init__(self, faults: tuple[WorkerFault, ...]):
        self.records = 0
        self.trips = [f for f in faults if f.kind in ("kill", "drop")]
        self.delays = [f for f in faults if f.kind == "delay"]

    def tick(self, phase: str) -> None:
        """Count one processed record; trip any matured kill/drop."""
        self.records += 1
        for f in self.trips:
            if f.phase is not None and f.phase != phase:
                continue
            if self.records >= f.after_records:
                if f.kind == "kill":
                    # Die hard, mid-task: no farewell frame, no atexit,
                    # the socket tears and any spill run stays partial.
                    os._exit(KILL_EXIT)
                raise _DropConnection

    def delay_for(self, phase: str, shard: int | None) -> float:
        return sum(
            f.seconds for f in self.delays
            if (f.phase is None or f.phase == phase)
            and (f.shard is None or f.shard == shard)
        )


# ----------------------------------------------------------------------
# Emit closures (same validation contract as the other backends)
# ----------------------------------------------------------------------


def _collecting_emit(out: list[tuple[bytes, bytes]]):
    append = out.append

    def emit(k, v) -> None:
        if type(k) is not bytes or type(v) is not bytes:
            if not isinstance(k, (bytes, bytearray)) or not isinstance(
                v, (bytes, bytearray)
            ):
                raise FrameworkError("keys and values must be bytes")
            k, v = bytes(k), bytes(v)
        append((k, v))

    return emit


def _store_emit(store: SpillStore):
    emit_kv = store.emit

    def emit(k, v) -> None:
        if type(k) is not bytes or type(v) is not bytes:
            if not isinstance(k, (bytes, bytearray)) or not isinstance(
                v, (bytes, bytearray)
            ):
                raise FrameworkError("keys and values must be bytes")
            k, v = bytes(k), bytes(v)
        emit_kv(k, v)

    return emit


# ----------------------------------------------------------------------
# Task execution
# ----------------------------------------------------------------------


def _profile(t0: int, records_in: int, records_out: int,
             distinct_keys: int = 0, **extra) -> dict:
    doc = {
        "pid": os.getpid(), "start_ns": t0,
        "end_ns": time.perf_counter_ns(), "records_in": records_in,
        "records_out": records_out, "distinct_keys": distinct_keys,
    }
    doc.update(extra)
    return doc


def _run_map(msg: dict, state: _FaultState) -> dict:
    shard, attempt = msg["shard"], msg["attempt"]
    pairs = msg["pairs"]
    spec = _SPEC
    t0 = time.perf_counter_ns()
    const = _accessor(spec.const_bytes) if spec.const_bytes else None
    map_record = spec.map_record
    reply = {"type": "result", "phase": "map", "shard": shard,
             "attempt": attempt, "epoch": msg.get("epoch")}

    spill = msg.get("spill")
    if spill is not None:
        run_dir, budget = spill
        # Dispatch-scoped run prefix: the coordinator's seq token is
        # unique per task send, so a killed attempt's partial files —
        # or a twin's (a speculated copy and a death-requeued retry
        # can share (shard, attempt)) — can never collide with, or be
        # merged as, the accepted execution's runs.
        store = SpillStore(
            budget, spill_dir=run_dir,
            prefix=f"s{shard:04d}a{attempt:02d}d{msg.get('seq', 0):06d}",
            own_dir=False)
        emit = _store_emit(store)
        if state.trips:
            for k, v in pairs:
                state.tick("map")
                map_record(_accessor(k), _accessor(v), emit, const)
        else:
            for k, v in pairs:
                map_record(_accessor(k), _accessor(v), emit, const)
        runs = store.flush_runs()
        st = store.stats
        reply["spilled"] = {
            "runs": runs, "emitted": st.emitted_records,
            "peak_bytes": st.peak_bytes, "spill_runs": st.spill_runs,
            "spilled_bytes": st.spilled_bytes,
        }
        reply["profile"] = _profile(
            t0, len(pairs), st.emitted_records,
            spill_runs=st.spill_runs, spilled_bytes=st.spilled_bytes,
        )
        return reply

    out: list[tuple[bytes, bytes]] = []
    emit = _collecting_emit(out)
    if state.trips:
        for k, v in pairs:
            state.tick("map")
            map_record(_accessor(k), _accessor(v), emit, const)
    else:
        for k, v in pairs:
            map_record(_accessor(k), _accessor(v), emit, const)
    reply["pairs"] = out
    reply["profile"] = _profile(t0, len(pairs), len(out),
                                len({k for k, _ in out}))
    return reply


def _run_reduce(msg: dict, state: _FaultState) -> dict:
    shard, attempt = msg["shard"], msg["attempt"]
    groups = msg["groups"]
    spec = _SPEC
    t0 = time.perf_counter_ns()
    out: list[tuple[bytes, bytes]] = []
    emit = _collecting_emit(out)
    const = _accessor(spec.const_bytes) if spec.const_bytes else None
    n_values = 0
    ticking = bool(state.trips)

    if _STRATEGY is ReduceStrategy.BR and not _IS_MARS:
        combine, finalize = spec.combine, spec.finalize
        for key, values in groups:
            n_values += len(values)
            if ticking:
                for _ in values:
                    state.tick("reduce")
            acc = values[0]
            for v in values[1:]:
                acc = combine(acc, v)
            k_out, v_out = finalize(key, acc, len(values))
            out.append((bytes(k_out), bytes(v_out)))
    else:
        reduce_record = spec.reduce_record
        cache: dict[bytes, Accessor] = {}

        def acc_of(data: bytes) -> Accessor:
            a = cache.get(data)
            if a is None:
                a = _accessor(data)
                cache[data] = a
            return a

        for key, values in groups:
            n_values += len(values)
            if ticking:
                for _ in values:
                    state.tick("reduce")
            reduce_record(acc_of(key), [acc_of(v) for v in values],
                          emit, const)

    return {
        "type": "result", "phase": "reduce", "shard": shard,
        "attempt": attempt, "epoch": msg.get("epoch"), "pairs": out,
        "profile": _profile(t0, n_values, len(out), len(groups)),
    }


# ----------------------------------------------------------------------
# Main loop
# ----------------------------------------------------------------------


def worker_main(port: int, worker_id: int,
                faults: tuple[WorkerFault, ...] = ()) -> None:
    """Connect back to the coordinator and serve tasks until told to
    shut down, the connection dies, or a scripted fault trips."""
    state = _FaultState(tuple(faults))
    try:
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    except OSError:
        return
    sock.settimeout(None)
    try:
        send_msg(sock, {"type": "hello", "worker": worker_id,
                        "pid": os.getpid()})
        while True:
            msg = recv_msg(sock)
            kind = msg.get("type")
            if kind == "shutdown":
                return
            if kind not in ("map", "reduce"):
                send_msg(sock, {"type": "error", "shard": msg.get("shard"),
                                "attempt": msg.get("attempt"),
                                "phase": kind, "epoch": msg.get("epoch"),
                                "message": f"unknown task type {kind!r}"})
                continue
            try:
                reply = (_run_map(msg, state) if kind == "map"
                         else _run_reduce(msg, state))
            except _DropConnection:
                # Scripted drop: no reply, close the socket, exit 0.
                return
            except Exception as exc:  # user kernel error: report it
                reply = {"type": "error", "phase": kind,
                         "shard": msg.get("shard"),
                         "attempt": msg.get("attempt"),
                         "epoch": msg.get("epoch"),
                         "message": f"{type(exc).__name__}: {exc}"}
            pause = state.delay_for(kind, msg.get("shard"))
            if pause > 0:
                time.sleep(pause)
            send_msg(sock, reply)
    except (ConnectionClosed, OSError):
        # Coordinator went away (job done, job failed, or shutdown
        # race): nothing left to serve.
        return
    finally:
        try:
            sock.close()
        except OSError:
            pass
