"""Length-prefixed JSON frames over a stream socket.

The distributed backend's coordinator and workers speak a minimal
message protocol: each frame is a 4-byte big-endian payload length
followed by a UTF-8 JSON document.  ``bytes`` values (record keys and
values, the only binary payload) are encoded as ``{"__b64__": ...}``
wrappers and restored on decode, so messages round-trip arbitrary
nested dict/list/str/int/float/bool/bytes structures — the subset the
task and result messages use.

Two consumption styles match the two sides of the connection:

* workers block on one socket — :func:`recv_msg` reads exactly one
  frame (raising :class:`ConnectionClosed` on a clean or torn EOF);
* the coordinator multiplexes many sockets under ``selectors`` —
  a per-connection :class:`FrameReader` is fed whatever bytes arrived
  and yields only the complete frames buffered so far.

JSON-with-base64 was chosen over a binary codec deliberately: the
container ships no msgpack, frames stay printable for debugging, and
the backend's contract is byte-identical *output*, not wire
compactness (the honest single-host benchmark prices the overhead).
"""

from __future__ import annotations

import base64
import json
import socket
import struct
from typing import Any, Iterator

#: Sanity cap on a single frame (1 GiB): a corrupt length prefix
#: should fail loudly, not attempt a giant allocation.
MAX_FRAME = 1 << 30

_HDR = struct.Struct(">I")


class ConnectionClosed(Exception):
    """The peer closed the connection (mid-frame or between frames)."""


def _pack(obj: Any) -> Any:
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return {"__b64__": base64.b64encode(bytes(obj)).decode("ascii")}
    if isinstance(obj, (list, tuple)):
        return [_pack(x) for x in obj]
    if isinstance(obj, dict):
        return {k: _pack(v) for k, v in obj.items()}
    return obj


def _unpack(obj: Any) -> Any:
    if isinstance(obj, dict):
        if len(obj) == 1 and "__b64__" in obj:
            return base64.b64decode(obj["__b64__"])
        return {k: _unpack(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_unpack(x) for x in obj]
    return obj


def encode(msg: Any) -> bytes:
    """One wire frame: length prefix + JSON payload."""
    payload = json.dumps(_pack(msg), separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ValueError(f"frame too large: {len(payload)} bytes")
    return _HDR.pack(len(payload)) + payload


def decode(payload: bytes) -> Any:
    """Inverse of the payload half of :func:`encode`."""
    return _unpack(json.loads(payload.decode("utf-8")))


def send_msg(sock: socket.socket, msg: Any) -> None:
    """Send one message; propagates ``OSError`` on a dead peer."""
    sock.sendall(encode(msg))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionClosed(
                f"peer closed with {n - len(buf)} bytes outstanding"
            )
        buf.extend(chunk)
    return bytes(buf)


def recv_msg(sock: socket.socket) -> Any:
    """Block until one complete frame arrives; decode it."""
    (length,) = _HDR.unpack(_recv_exact(sock, _HDR.size))
    if length > MAX_FRAME:
        raise ConnectionClosed(f"bad frame length {length}")
    return decode(_recv_exact(sock, length))


class FrameReader:
    """Incremental frame decoder for a multiplexed (select) loop.

    Feed it whatever ``recv`` returned; iterate :meth:`frames` for the
    messages completed so far.  Partial frames stay buffered across
    feeds, so the coordinator never blocks waiting for a slow writer.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    def frames(self) -> Iterator[Any]:
        while True:
            if len(self._buf) < _HDR.size:
                return
            (length,) = _HDR.unpack(self._buf[: _HDR.size])
            if length > MAX_FRAME:
                raise ConnectionClosed(f"bad frame length {length}")
            end = _HDR.size + length
            if len(self._buf) < end:
                return
            payload = bytes(self._buf[_HDR.size:end])
            del self._buf[:end]
            yield decode(payload)
