"""Experiment runners for every figure in the paper's evaluation.

Each ``fig*`` function runs the corresponding experiment on the
simulator and returns plain data (dicts of series) that the report
renderer and the pytest benches both consume.

* Figure 5(a-e): Map kernel time vs. threads/block for G/GT/SI/SO/SIO.
* Figure 5(f-i): Reduce kernel time for WC/KM under TR and BR.
* Figure 6:      end-to-end stacked phase breakdown incl. Mars.
* Figure 7:      Map/Reduce kernel speedup over Mars per mode.
* Figure 8:      yield vs. never-yield busy waiting for SIO Map.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError
from ..framework.api import MapReduceSpec
from ..framework.job import PhaseTimings, run_job
from ..framework.map_engine import build_map_runtime, launch_map
from ..framework.modes import ALL_MODES, MemoryMode, ReduceStrategy
from ..framework.records import DeviceRecordSet, KeyValueSet
from ..framework.reduce_engine import build_reduce_runtime, launch_reduce
from ..framework.shuffle import GroupedDeviceSet, shuffle
from ..gpu.config import DeviceConfig
from ..gpu.kernel import Device
from ..gpu.stats import KernelStats
from ..mars.framework import run_mars_job
from ..workloads.base import Workload

#: Thread-block sizes swept in Figure 5 (the paper uses 64...512).
BLOCK_SIZES = (64, 128, 256, 512)

#: Modes in figure order.
MAP_MODES = ALL_MODES


def spec_of(workload: Workload, seed: int, size: str = "small",
            scale: float = 1.0) -> MapReduceSpec:
    return workload.spec_for_size(size, seed=seed, scale=scale)


# ----------------------------------------------------------------------
# Figure 5 (a-e): Map kernels
# ----------------------------------------------------------------------


@dataclass
class MapSweepResult:
    workload: str
    size: str
    block_sizes: tuple[int, ...]
    #: mode -> [cycles per block size] (None where the mode cannot run).
    series: dict[str, list[float | None]] = field(default_factory=dict)
    stats: dict[tuple[str, int], KernelStats] = field(default_factory=dict)

    def best_mode(self, block: int) -> str:
        i = self.block_sizes.index(block)
        valid = {m: s[i] for m, s in self.series.items() if s[i] is not None}
        return min(valid, key=valid.get)

    def speedup(self, mode_a: str, mode_b: str, block: int) -> float:
        """cycles(mode_b) / cycles(mode_a) at the given block size."""
        i = self.block_sizes.index(block)
        return self.series[mode_b][i] / self.series[mode_a][i]


def run_map_kernel(
    workload: Workload,
    mode: MemoryMode,
    *,
    size: str = "small",
    threads_per_block: int = 128,
    config: DeviceConfig | None = None,
    seed: int = 0,
    scale: float = 1.0,
    yield_sync: bool = True,
    io_ratio: float | None = None,
) -> KernelStats:
    """Run only the Map kernel of one workload under one mode."""
    cfg = config or DeviceConfig.gtx280()
    dev = Device(cfg)
    inp = workload.generate(size, seed=seed, scale=scale)
    spec = spec_of(workload, seed, size, scale)
    d_in = DeviceRecordSet.upload(dev.gmem, inp)
    rt = build_map_runtime(
        dev, spec, mode, d_in,
        threads_per_block=threads_per_block,
        yield_sync=yield_sync,
        io_ratio=io_ratio,
    )
    return launch_map(dev, rt)


def fig5_map_sweep(
    workload: Workload,
    *,
    size: str = "small",
    block_sizes: tuple[int, ...] = BLOCK_SIZES,
    modes: tuple[MemoryMode, ...] = MAP_MODES,
    config: DeviceConfig | None = None,
    seed: int = 0,
    scale: float = 1.0,
) -> MapSweepResult:
    """Figure 5(a-e): one workload's Map kernel across modes x blocks."""
    res = MapSweepResult(
        workload=workload.code, size=size, block_sizes=tuple(block_sizes)
    )
    for mode in modes:
        ys: list[float | None] = []
        for tpb in block_sizes:
            try:
                st = run_map_kernel(
                    workload, mode, size=size, threads_per_block=tpb,
                    config=config, seed=seed, scale=scale,
                )
                ys.append(st.cycles)
                res.stats[(mode.value, tpb)] = st
            except ReproError:
                # e.g. SO/SIO need >= 2 warps; oversized layouts.
                ys.append(None)
        res.series[mode.value] = ys
    return res


# ----------------------------------------------------------------------
# Figure 5 (f-i): Reduce kernels
# ----------------------------------------------------------------------


@dataclass
class ReduceSweepResult:
    workload: str
    strategy: str
    size: str
    block_sizes: tuple[int, ...]
    series: dict[str, list[float | None]] = field(default_factory=dict)


def prepare_grouped(
    workload: Workload,
    *,
    size: str = "small",
    seed: int = 0,
    scale: float = 1.0,
    config: DeviceConfig | None = None,
) -> tuple[Device, MapReduceSpec, GroupedDeviceSet]:
    """Run Map (G mode) + shuffle once; reuse for reduce sweeps."""
    cfg = config or DeviceConfig.gtx280()
    dev = Device(cfg)
    inp = workload.generate(size, seed=seed, scale=scale)
    spec = spec_of(workload, seed, size, scale)
    d_in = DeviceRecordSet.upload(dev.gmem, inp)
    rt = build_map_runtime(dev, spec, MemoryMode.G, d_in, threads_per_block=128)
    launch_map(dev, rt)
    shuf = shuffle(dev.gmem, rt.out.as_record_set(), cfg)
    return dev, spec, shuf.grouped


def run_reduce_kernel(
    dev: Device,
    spec: MapReduceSpec,
    grouped: GroupedDeviceSet,
    mode: MemoryMode,
    strategy: ReduceStrategy,
    *,
    threads_per_block: int = 128,
    yield_sync: bool = True,
) -> KernelStats:
    rt = build_reduce_runtime(
        dev, spec, mode, strategy, grouped,
        threads_per_block=threads_per_block, yield_sync=yield_sync,
    )
    return launch_reduce(dev, rt)


def fig5_reduce_sweep(
    workload: Workload,
    strategy: ReduceStrategy,
    *,
    size: str = "small",
    block_sizes: tuple[int, ...] = BLOCK_SIZES,
    modes: tuple[MemoryMode, ...] = MAP_MODES,
    config: DeviceConfig | None = None,
    seed: int = 0,
    scale: float = 1.0,
) -> ReduceSweepResult:
    """Figure 5(f-i): WC/KM Reduce kernels across modes x blocks."""
    dev, spec, grouped = prepare_grouped(
        workload, size=size, seed=seed, scale=scale, config=config
    )
    res = ReduceSweepResult(
        workload=workload.code,
        strategy=strategy.value,
        size=size,
        block_sizes=tuple(block_sizes),
    )
    for mode in modes:
        ys: list[float | None] = []
        for tpb in block_sizes:
            try:
                st = run_reduce_kernel(
                    dev, spec, grouped, mode, strategy, threads_per_block=tpb
                )
                ys.append(st.cycles)
            except ReproError:
                ys.append(None)  # e.g. GT x BR is impossible
        res.series[mode.value] = ys
    return res


# ----------------------------------------------------------------------
# Figure 6: end-to-end breakdown
# ----------------------------------------------------------------------


@dataclass
class EndToEndRow:
    workload: str
    size: str
    system: str  # "Mars" or a MemoryMode value
    timings: PhaseTimings


def fig6_end_to_end(
    workload: Workload,
    *,
    sizes: tuple[str, ...] = ("small", "medium", "large"),
    config: DeviceConfig | None = None,
    threads_per_block: int = 128,
    seed: int = 0,
    scale: float = 1.0,
) -> list[EndToEndRow]:
    """Figure 6: stacked phase times for Mars + the five modes."""
    cfg = config or DeviceConfig.gtx280()
    strategy = ReduceStrategy.TR if workload.has_reduce else None
    rows: list[EndToEndRow] = []
    for size in sizes:
        inp = workload.generate(size, seed=seed, scale=scale)
        spec = spec_of(workload, seed, size, scale)
        # Figures are cycle-count artifacts: always simulate, whatever
        # $REPRO_BACKEND says (functional backends report zero kernel
        # cycles, which would make every ratio here meaningless).
        mars = run_mars_job(
            spec, inp, strategy=strategy, config=cfg,
            threads_per_block=threads_per_block, backend="sim",
        )
        rows.append(EndToEndRow(workload.code, size, "Mars", mars.timings))
        for mode in MAP_MODES:
            try:
                r = run_job(
                    spec, inp, mode=mode, strategy=strategy, config=cfg,
                    threads_per_block=threads_per_block, backend="sim",
                )
            except ReproError:
                continue
            rows.append(EndToEndRow(workload.code, size, mode.value, r.timings))
    return rows


# ----------------------------------------------------------------------
# Figure 7: speedup over Mars
# ----------------------------------------------------------------------


@dataclass
class SpeedupRow:
    workload: str
    phase: str  # "map" or "reduce"
    #: mode -> speedup of that phase over Mars's same phase.
    speedups: dict[str, float]


def fig7_speedup_over_mars(
    workload: Workload,
    *,
    size: str = "small",
    config: DeviceConfig | None = None,
    threads_per_block: int = 128,
    seed: int = 0,
    scale: float = 1.0,
) -> list[SpeedupRow]:
    """Figure 7: per-mode Map (and TR Reduce) speedup over Mars."""
    cfg = config or DeviceConfig.gtx280()
    strategy = ReduceStrategy.TR if workload.has_reduce else None
    inp = workload.generate(size, seed=seed, scale=scale)
    spec = spec_of(workload, seed, size, scale)
    mars = run_mars_job(
        spec, inp, strategy=strategy, config=cfg,
        threads_per_block=threads_per_block, backend="sim",
    )
    map_sp: dict[str, float] = {}
    red_sp: dict[str, float] = {}
    for mode in MAP_MODES:
        try:
            r = run_job(
                spec, inp, mode=mode, strategy=strategy, config=cfg,
                threads_per_block=threads_per_block, backend="sim",
            )
        except ReproError:
            continue
        map_sp[mode.value] = mars.timings.map / r.timings.map
        if strategy is not None and r.timings.reduce > 0:
            red_sp[mode.value] = mars.timings.reduce / r.timings.reduce
    rows = [SpeedupRow(workload.code, "map", map_sp)]
    if red_sp:
        rows.append(SpeedupRow(workload.code, "reduce", red_sp))
    return rows


# ----------------------------------------------------------------------
# Figure 8: yield vs never-yield busy waiting
# ----------------------------------------------------------------------


@dataclass
class YieldRow:
    workload: str
    block_size: int
    cycles_spin: float
    cycles_yield: float

    @property
    def improvement_pct(self) -> float:
        """Kernel-time improvement of yielding over spinning."""
        return 100.0 * (self.cycles_spin - self.cycles_yield) / self.cycles_spin


def fig8_yield_sweep(
    workload: Workload,
    *,
    size: str = "small",
    block_sizes: tuple[int, ...] = BLOCK_SIZES,
    config: DeviceConfig | None = None,
    seed: int = 0,
    scale: float = 1.0,
) -> list[YieldRow]:
    """Figure 8: SIO Map kernel with and without the yield operation."""
    rows: list[YieldRow] = []
    for tpb in block_sizes:
        try:
            spin = run_map_kernel(
                workload, MemoryMode.SIO, size=size, threads_per_block=tpb,
                config=config, seed=seed, scale=scale, yield_sync=False,
            )
            yld = run_map_kernel(
                workload, MemoryMode.SIO, size=size, threads_per_block=tpb,
                config=config, seed=seed, scale=scale, yield_sync=True,
            )
        except ReproError:
            continue
        rows.append(YieldRow(workload.code, tpb, spin.cycles, yld.cycles))
    return rows
