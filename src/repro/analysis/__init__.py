"""``repro.analysis`` — regeneration of every table and figure in the
paper's evaluation (Tables I-II, Figures 5-8)."""

from . import figures, metrics, report, sensitivity, tables, validation
from .figures import (
    fig5_map_sweep,
    fig5_reduce_sweep,
    fig6_end_to_end,
    fig7_speedup_over_mars,
    fig8_yield_sweep,
    run_map_kernel,
)
from .tables import measure_table2_row, table1

__all__ = [
    "fig5_map_sweep",
    "fig5_reduce_sweep",
    "fig6_end_to_end",
    "fig7_speedup_over_mars",
    "fig8_yield_sweep",
    "figures",
    "metrics",
    "sensitivity",
    "validation",
    "measure_table2_row",
    "report",
    "run_map_kernel",
    "table1",
    "tables",
]
