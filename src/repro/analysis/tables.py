"""Table I and Table II regeneration.

Table I lists the workloads and problem sizes; Table II reports, for
the *large* problem size, the mean/stddev of record sizes at each
stage plus the input:output record-count ratios of the Map and Reduce
phases.  Here both are *measured* from the actual generated inputs and
the CPU-reference Map/Shuffle, so the benches can print measured rows
next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cpu_ref.reference import reference_map, reference_shuffle
from ..framework.records import KeyValueSet
from ..workloads.base import SIZES, Workload


@dataclass(frozen=True)
class SizeStat:
    """mean / stddev of a record-size population."""

    mean: float
    std: float

    def __str__(self) -> str:
        return f"{self.mean:.2f} / {self.std:.2f}"

    @classmethod
    def of(cls, sizes: list[int]) -> "SizeStat":
        if not sizes:
            return cls(0.0, 0.0)
        arr = np.array(sizes, dtype=float)
        return cls(float(arr.mean()), float(arr.std()))


@dataclass
class Table2Row:
    """One workload's measured characteristics (Table II)."""

    code: str
    input_key: SizeStat
    input_val: SizeStat
    map_ratio: float
    inter_key: SizeStat | None
    inter_val: SizeStat | None
    reduce_ratio: float | None
    output_key: SizeStat
    output_val: SizeStat


def table1(workloads: list[Workload]) -> list[tuple[str, str]]:
    """Workload name -> problem-size string, one row per workload."""
    return [w.table1_row() for w in workloads]


def measure_table2_row(
    workload: Workload, size: str = "large", *, seed: int = 0, scale: float = 1.0
) -> Table2Row:
    """Measure one Table II row from generated data + reference run."""
    inp = workload.generate(size, seed=seed, scale=scale)
    spec = workload.spec_for_size(size, seed=seed, scale=scale)
    inter = reference_map(spec, inp)
    in_k = SizeStat.of([len(k) for k in inp.keys])
    in_v = SizeStat.of([len(v) for v in inp.values])
    map_ratio = len(inp) / max(1, len(inter))

    if workload.has_reduce:
        grouped = reference_shuffle(inter)
        from ..cpu_ref.reference import reference_reduce
        from ..framework.modes import ReduceStrategy

        out = reference_reduce(spec, grouped, ReduceStrategy.TR)
        reduce_ratio = len(inter) / max(1, len(out))
        it_k = SizeStat.of([len(k) for k in inter.keys])
        it_v = SizeStat.of([len(v) for v in inter.values])
    else:
        out = inter
        reduce_ratio = None
        it_k = it_v = None

    return Table2Row(
        code=workload.code,
        input_key=in_k,
        input_val=in_v,
        map_ratio=map_ratio,
        inter_key=it_k,
        inter_val=it_v,
        reduce_ratio=reduce_ratio,
        output_key=SizeStat.of([len(k) for k in out.keys]),
        output_val=SizeStat.of([len(v) for v in out.values]),
    )


#: The paper's Table II values, for side-by-side printing.
PAPER_TABLE2 = {
    "WC": dict(input_key="32.44 / 2.59", input_val="4 / 0", map_ratio="1:4.98",
               inter_key="5.46 / 2.53", inter_val="4 / 0", reduce_ratio="68.21:1",
               output_key="9.01 / 3.11", output_val="4 / 0"),
    "MM": dict(input_key="8192 / 0", input_val="8192 / 0", map_ratio="1:1",
               inter_key="-", inter_val="-", reduce_ratio="-",
               output_key="8 / 0", output_val="4 / 0"),
    "SM": dict(input_key="44.52 / 2.68", input_val="4 / 0", map_ratio="3.83:1",
               inter_key="-", inter_val="-", reduce_ratio="-",
               output_key="4 / 0", output_val="4 / 0"),
    "II": dict(input_key="8 / 0", input_val="63.9 / 123.2", map_ratio="7.94:1",
               inter_key="-", inter_val="-", reduce_ratio="-",
               output_key="31.67 / 17.34", output_val="8 / 0"),
    "KM": dict(input_key="0 / 0", input_val="32 / 0", map_ratio="1:1",
               inter_key="4 / 0", inter_val="32 / 0", reduce_ratio="69905:1",
               output_key="4 / 0", output_val="32 / 0"),
}


def map_ratio_str(r: float) -> str:
    """Format a Map in:out record ratio the way the paper does."""
    if r >= 1:
        return f"{r:.2f}:1"
    return f"1:{1 / r:.2f}"


def input_stats(inp: KeyValueSet) -> dict:
    return inp.record_stats()
