"""Sensitivity analysis: how robust are the paper's findings to the
simulator's calibration knobs?

A reproduction on a timing model owes the reader an answer to "would
the conclusions change if your constants are off?".  Each sweep here
varies one knob across a wide range and re-measures a headline
comparison; the benches print the resulting curves and the tests
assert the *conclusion* (sign of the comparison) is stable across the
plausible range.

Used by ``benchmarks/test_ablations.py`` and
``tests/analysis/test_sensitivity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..framework.modes import MemoryMode
from ..gpu.config import DeviceConfig
from ..workloads.base import Workload
from .figures import run_map_kernel


@dataclass
class SweepPoint:
    value: float
    cycles: dict[str, float] = field(default_factory=dict)

    def ratio(self, a: str, b: str) -> float:
        """cycles(b) / cycles(a) — how much faster mode ``a`` is."""
        return self.cycles[b] / self.cycles[a]


@dataclass
class SensitivityResult:
    knob: str
    workload: str
    modes: tuple[str, ...]
    points: list[SweepPoint] = field(default_factory=list)

    def ratios(self, a: str, b: str) -> list[tuple[float, float]]:
        return [(p.value, p.ratio(a, b)) for p in self.points]

    def conclusion_stable(self, a: str, b: str, threshold: float = 1.0
                          ) -> bool:
        """Does mode ``a`` stay faster than ``b`` at every point?"""
        return all(r > threshold for _, r in self.ratios(a, b))

    def render(self) -> str:
        header = f"sensitivity: {self.knob} — {self.workload} Map cycles"
        lines = [header]
        for p in self.points:
            cells = ", ".join(f"{m}={p.cycles[m]:.0f}" for m in self.modes)
            lines.append(f"  {self.knob}={p.value:g}: {cells}")
        return "\n".join(lines)


def sweep_timing_knob(
    workload: Workload,
    knob: str,
    values: tuple[float, ...],
    *,
    modes: tuple[MemoryMode, ...] = (MemoryMode.G, MemoryMode.SIO),
    size: str = "small",
    scale: float = 1.0,
    threads_per_block: int = 128,
    base: DeviceConfig | None = None,
) -> SensitivityResult:
    """Sweep one :class:`TimingParams` field and re-run Map kernels."""
    base = base or DeviceConfig.gtx280()
    res = SensitivityResult(
        knob=knob, workload=workload.code, modes=tuple(m.value for m in modes)
    )
    for v in values:
        cfg = base.with_timing(**{knob: type(getattr(base.timing, knob))(v)})
        point = SweepPoint(value=float(v))
        for mode in modes:
            st = run_map_kernel(
                workload, mode, size=size, scale=scale, config=cfg,
                threads_per_block=threads_per_block,
            )
            point.cycles[mode.value] = st.cycles
        res.points.append(point)
    return res


def sweep_mp_count(
    workload: Workload,
    counts: tuple[int, ...] = (4, 8, 15, 30),
    *,
    modes: tuple[MemoryMode, ...] = (MemoryMode.G, MemoryMode.SIO),
    size: str = "small",
    scale: float = 1.0,
) -> SensitivityResult:
    """Vary the MP count: conclusions should not depend on simulating
    the full 30-MP device."""
    res = SensitivityResult(
        knob="mp_count", workload=workload.code,
        modes=tuple(m.value for m in modes),
    )
    for n in counts:
        cfg = DeviceConfig.small(n)
        point = SweepPoint(value=float(n))
        for mode in modes:
            st = run_map_kernel(workload, mode, size=size, scale=scale,
                                config=cfg)
            point.cycles[mode.value] = st.cycles
        res.points.append(point)
    return res
