"""Plain-text renderers for the regenerated tables and figures.

The benches tee these through pytest's output so EXPERIMENTS.md can
quote paper-vs-measured side by side.  All renderers take the data
objects produced by :mod:`repro.analysis.figures` /
:mod:`repro.analysis.tables` and return strings.
"""

from __future__ import annotations

from typing import Sequence

from .figures import (
    EndToEndRow,
    MapSweepResult,
    ReduceSweepResult,
    SpeedupRow,
    YieldRow,
)
from .tables import PAPER_TABLE2, Table2Row, map_ratio_str


def _fmt(v: float | None, width: int = 10) -> str:
    if v is None:
        return "-".rjust(width)
    if v >= 1e6:
        return f"{v / 1e6:.2f}M".rjust(width)
    if v >= 1e3:
        return f"{v / 1e3:.1f}K".rjust(width)
    return f"{v:.1f}".rjust(width)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def line(cells):
        return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    sep = "-+-".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


def render_table1(rows: list[tuple[str, str]]) -> str:
    return render_table(
        ["Workload", "Problem Size (paper scale)"],
        [list(r) for r in rows],
    )


def render_table2(measured: list[Table2Row]) -> str:
    headers = [
        "WL", "src", "InKey", "InVal", "MapRatio",
        "IntKey", "IntVal", "RedRatio", "OutKey", "OutVal",
    ]
    rows = []
    for m in measured:
        paper = PAPER_TABLE2[m.code]
        rows.append([
            m.code, "paper", paper["input_key"], paper["input_val"],
            paper["map_ratio"], paper["inter_key"], paper["inter_val"],
            paper["reduce_ratio"], paper["output_key"], paper["output_val"],
        ])
        rows.append([
            m.code, "ours", str(m.input_key), str(m.input_val),
            map_ratio_str(m.map_ratio),
            str(m.inter_key) if m.inter_key else "-",
            str(m.inter_val) if m.inter_val else "-",
            f"{m.reduce_ratio:.2f}:1" if m.reduce_ratio else "-",
            str(m.output_key), str(m.output_val),
        ])
    return render_table(headers, rows)


def render_map_sweep(res: MapSweepResult) -> str:
    headers = ["threads/block"] + list(res.series.keys())
    rows = []
    for i, tpb in enumerate(res.block_sizes):
        rows.append([str(tpb)] + [_fmt(res.series[m][i]) for m in res.series])
    title = f"Fig 5 Map kernel cycles — {res.workload} ({res.size})"
    return f"{title}\n{render_table(headers, rows)}"


def render_reduce_sweep(res: ReduceSweepResult) -> str:
    headers = ["threads/block"] + list(res.series.keys())
    rows = []
    for i, tpb in enumerate(res.block_sizes):
        rows.append([str(tpb)] + [_fmt(res.series[m][i]) for m in res.series])
    title = (
        f"Fig 5 Reduce kernel cycles — {res.workload}-{res.strategy} ({res.size})"
    )
    return f"{title}\n{render_table(headers, rows)}"


def render_end_to_end(rows: list[EndToEndRow]) -> str:
    headers = ["WL", "size", "system", "io_in", "map", "shuffle",
               "reduce", "io_out", "total"]
    body = []
    for r in rows:
        t = r.timings
        body.append([
            r.workload, r.size, r.system,
            _fmt(t.io_in), _fmt(t.map), _fmt(t.shuffle),
            _fmt(t.reduce), _fmt(t.io_out), _fmt(t.total),
        ])
    return f"Fig 6 end-to-end breakdown (cycles)\n{render_table(headers, body)}"


def render_speedups(rows: list[SpeedupRow]) -> str:
    modes = sorted({m for r in rows for m in r.speedups})
    headers = ["WL", "phase"] + modes
    body = [
        [r.workload, r.phase]
        + [f"{r.speedups[m]:.2f}x" if m in r.speedups else "-" for m in modes]
        for r in rows
    ]
    return f"Fig 7 speedup over Mars\n{render_table(headers, body)}"


def render_yield(rows: list[YieldRow]) -> str:
    headers = ["WL", "threads/block", "spin", "yield", "improvement"]
    body = [
        [r.workload, str(r.block_size), _fmt(r.cycles_spin),
         _fmt(r.cycles_yield), f"{r.improvement_pct:+.1f}%"]
        for r in rows
    ]
    return f"Fig 8 yield vs never-yield busy wait (SIO Map)\n{render_table(headers, body)}"
