"""``repro-bench`` — command-line runner for the paper's experiments.

Examples::

    repro-bench table2
    repro-bench fig5-map --workload WC --size medium
    repro-bench fig6 --workload KM
    repro-bench fig7
    repro-bench fig8 --workload II
    repro-bench validate                # oracle conformance matrix
    repro-bench validate --autotune     # tuner's pick vs the oracle
    repro-bench autotune                # tuned-vs-fixed benchmark + gates
    repro-bench profile --workload WC   # per-mode derived metrics
    repro-bench all --size small
    repro-bench table2 --profile        # host-side cProfile of the run
    repro-bench fig7 --profile fig7.pstats --profile-top 30

All experiments run on the full simulated GTX 280 unless ``--mps``
shrinks the device for speed.

``--profile`` wraps any command in :mod:`cProfile` and prints the
hottest host functions (the ``profile`` *command*, by contrast,
reports simulated per-mode metrics).  See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..framework.modes import ReduceStrategy
from ..gpu.config import DeviceConfig
from ..workloads import (
    ALL_WORKLOADS,
    Histogram,
    InvertedIndex,
    KMeans,
    LinearRegression,
    MatrixMultiplication,
    SimilarityScore,
    StringMatch,
    WordCount,
)
from . import figures, report, tables
from .metrics import compare_modes, derive_metrics
from .validation import validate_all

_BY_CODE = {
    "WC": WordCount,
    "MM": MatrixMultiplication,
    "SM": StringMatch,
    "II": InvertedIndex,
    "KM": KMeans,
    # Extras beyond Table I (Mars/Phoenix suites).
    "SS": SimilarityScore,
    "HG": Histogram,
    "LR": LinearRegression,
}


def _workloads(arg: str | None):
    if arg is None:
        return [cls() for cls in ALL_WORKLOADS]
    out = []
    for code in arg.split(","):
        cls = _BY_CODE.get(code.strip().upper())
        if cls is None:
            known = ", ".join(_BY_CODE)
            print(f"repro-bench: unknown workload code {code.strip()!r}; "
                  f"known codes: {known}", file=sys.stderr)
            raise SystemExit(2)
        out.append(cls())
    return out


def _config(args) -> DeviceConfig:
    if args.mps:
        return DeviceConfig.small(args.mps)
    return DeviceConfig.gtx280()


def cmd_table1(args) -> None:
    print(report.render_table1(tables.table1(_workloads(args.workload))))


def cmd_table2(args) -> None:
    rows = [
        tables.measure_table2_row(w, args.size, scale=args.scale)
        for w in _workloads(args.workload)
    ]
    print(report.render_table2(rows))


def cmd_fig5_map(args) -> None:
    for w in _workloads(args.workload):
        res = figures.fig5_map_sweep(
            w, size=args.size, config=_config(args), scale=args.scale
        )
        print(report.render_map_sweep(res))
        print()


def cmd_fig5_reduce(args) -> None:
    for w in _workloads(args.workload or "WC,KM"):
        if not w.has_reduce:
            continue
        for strat in (ReduceStrategy.TR, ReduceStrategy.BR):
            res = figures.fig5_reduce_sweep(
                w, strat, size=args.size, config=_config(args), scale=args.scale
            )
            print(report.render_reduce_sweep(res))
            print()


def cmd_fig6(args) -> None:
    rows = []
    for w in _workloads(args.workload):
        rows += figures.fig6_end_to_end(
            w, sizes=(args.size,), config=_config(args), scale=args.scale
        )
    print(report.render_end_to_end(rows))


def cmd_fig7(args) -> None:
    rows = []
    for w in _workloads(args.workload):
        rows += figures.fig7_speedup_over_mars(
            w, size=args.size, config=_config(args), scale=args.scale
        )
    print(report.render_speedups(rows))


def cmd_fig8(args) -> None:
    rows = []
    for w in _workloads(args.workload):
        rows += figures.fig8_yield_sweep(
            w, size=args.size, config=_config(args), scale=args.scale
        )
    print(report.render_yield(rows))


def cmd_validate(args) -> None:
    from ..errors import FrameworkError
    from ..store import parse_budget, resolve_budget

    backend = args.backend
    try:
        if args.workers is not None:
            if backend == "dist":
                from ..backend import DistributedBackend

                backend = DistributedBackend(workers=args.workers)
            else:
                from ..backend import ParallelBackend

                backend = ParallelBackend(workers=args.workers)
        # parse_budget used to escape as a raw traceback on input like
        # "1.5m"; surface it (and a malformed $REPRO_MEMORY_BUDGET or
        # a bad $REPRO_BACKEND) as the documented exit-2 usage error.
        memory_budget = parse_budget(args.memory_budget)
        resolve_budget(memory_budget)
        if isinstance(backend, str) or backend is None:
            from ..backend import get_backend

            if backend is not None or os.environ.get("REPRO_BACKEND"):
                backend = get_backend(backend)
    except FrameworkError as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        raise SystemExit(2) from None

    rep = validate_all(
        _workloads(args.workload), size=args.size, scale=args.scale,
        config=_config(args) if args.mps else None,
        backend=backend,
        store=args.store,
        memory_budget=memory_budget,
        mode=args.mode,
    )
    print(rep.render())
    if not rep.passed:
        raise SystemExit(1)


def cmd_autotune(args) -> None:
    from ..tune.bench import check_report, render_report, run_autotune_bench

    report = run_autotune_bench(
        mps=args.mps or 4,
        out_path=args.out,
        progress=(lambda msg: print(f"  {msg}", file=sys.stderr))
        if args.verbose else None,
    )
    print(render_report(report))
    if args.out:
        print(f"\nwrote {args.out}")
    if check_report(report):
        raise SystemExit(1)


def cmd_profile(args) -> None:
    from ..framework.modes import ALL_MODES

    cfg = _config(args)
    for w in _workloads(args.workload):
        metrics = {}
        for mode in ALL_MODES:
            try:
                st = figures.run_map_kernel(
                    w, mode, size=args.size, scale=args.scale, config=cfg
                )
            except Exception:
                continue
            metrics[mode.value] = derive_metrics(st, cfg)
        print(f"{w.title} Map-kernel profile ({args.size}):")
        print(compare_modes(metrics))
        print()


def cmd_all(args) -> None:
    cmd_table1(args)
    print()
    cmd_table2(args)
    print()
    cmd_fig5_map(args)
    cmd_fig5_reduce(args)
    cmd_fig6(args)
    print()
    cmd_fig7(args)
    print()
    cmd_fig8(args)


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(prog="repro-bench", description=__doc__)
    p.add_argument("command", choices=[
        "table1", "table2", "fig5-map", "fig5-reduce", "fig6", "fig7",
        "fig8", "validate", "profile", "autotune", "all",
    ])
    p.add_argument("--workload",
                   help="comma-separated codes (WC,MM,SM,II,KM,SS,HG,LR)")
    p.add_argument("--mode", default=None, metavar="MODE",
                   help="restrict 'validate' to one memory mode "
                        "(G/GT/SI/SO/SIO, or 'auto' for the cost-model "
                        "tuner); default runs the full matrix")
    p.add_argument("--autotune", action="store_true",
                   help="validate with the cost-model tuner picking the "
                        "mode (shorthand for --mode auto)")
    p.add_argument("--out", default="BENCH_autotune.json", metavar="FILE",
                   help="artefact path for the 'autotune' command "
                        "(empty string to skip writing)")
    p.add_argument("--verbose", action="store_true",
                   help="progress lines on stderr for the 'autotune' "
                        "command")
    p.add_argument("--size", default="small", choices=["small", "medium", "large"])
    p.add_argument("--scale", type=float, default=1.0,
                   help="multiply problem sizes (1.0 = scaled defaults)")
    p.add_argument("--mps", type=int, default=0,
                   help="simulate this many MPs instead of the full 30")
    p.add_argument("--backend", default=None,
                   choices=["sim", "fast", "parallel", "columnar", "dist"],
                   help="execution backend for 'validate' (timing "
                        "commands always simulate)")
    p.add_argument("--columnar", action="store_true",
                   help="shorthand for --backend columnar (the fast "
                        "backend's vectorized path) on 'validate'")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for --backend parallel/dist")
    p.add_argument("--store", default=None, choices=["memory", "spill"],
                   help="intermediate-store policy for 'validate' with a "
                        "functional backend (see repro.store); default "
                        "honours $REPRO_STORE")
    p.add_argument("--memory-budget", default=None, metavar="SIZE",
                   help="spill budget (bytes; k/m/g suffixes) for "
                        "--store spill; default honours "
                        "$REPRO_MEMORY_BUDGET")
    p.add_argument("--check", action="store_true",
                   help="run every simulated job under the repro.check "
                        "sanitizer (strict: the first finding aborts "
                        "the command with a CheckError)")
    p.add_argument("--profile", nargs="?", const="repro-bench.pstats",
                   default=None, metavar="FILE",
                   help="run the command under cProfile: write pstats "
                        "to FILE (default repro-bench.pstats) and "
                        "print the hottest functions")
    p.add_argument("--profile-top", type=int, default=20, metavar="N",
                   help="number of hot functions to list with --profile")
    args = p.parse_args(argv)
    if args.mode is not None:
        from ..errors import FrameworkError
        from ..framework.modes import resolve_mode_name

        try:
            args.mode = resolve_mode_name(args.mode, allow_auto=True)
        except FrameworkError as exc:
            print(f"repro-bench: {exc}", file=sys.stderr)
            return 2
    if args.autotune:
        if args.mode not in (None, "auto"):
            print("repro-bench: --autotune picks the memory mode itself; "
                  f"it conflicts with --mode {args.mode.value} (drop one)",
                  file=sys.stderr)
            return 2
        args.mode = "auto"
    if args.mode is not None and args.command != "validate":
        print("repro-bench: --mode/--autotune only apply to 'validate' "
              "(the 'autotune' command benchmarks the tuner itself)",
              file=sys.stderr)
        return 2
    if args.check:
        os.environ["REPRO_CHECK"] = "1"
    if args.columnar:
        if args.backend in ("sim", "parallel", "dist"):
            print("repro-bench: --columnar needs the fast backend "
                  "(--backend fast or columnar)", file=sys.stderr)
            return 2
        args.backend = "columnar"
    if args.backend and args.command != "validate":
        print("repro-bench: --backend only applies to 'validate' — every "
              "timing command needs the cycle-accurate simulator",
              file=sys.stderr)
        return 2
    if args.workers is not None and args.backend not in ("parallel",
                                                         "dist"):
        print("repro-bench: --workers needs --backend parallel or dist",
              file=sys.stderr)
        return 2
    if (args.store or args.memory_budget) and args.command != "validate":
        print("repro-bench: --store/--memory-budget only apply to "
              "'validate' (the timing commands always simulate, and the "
              "sim backend models the device's own intermediate tiers)",
              file=sys.stderr)
        return 2
    if args.memory_budget is not None and args.store != "spill":
        print("repro-bench: --memory-budget needs --store spill",
              file=sys.stderr)
        return 2
    cmd = {
        "table1": cmd_table1,
        "table2": cmd_table2,
        "fig5-map": cmd_fig5_map,
        "fig5-reduce": cmd_fig5_reduce,
        "fig6": cmd_fig6,
        "fig7": cmd_fig7,
        "fig8": cmd_fig8,
        "validate": cmd_validate,
        "profile": cmd_profile,
        "autotune": cmd_autotune,
        "all": cmd_all,
    }[args.command]
    if args.profile is None:
        cmd(args)
        return 0
    # Wall-clock profiling of the command itself (where does the
    # *simulator* spend host time — not simulated cycles; those are
    # what the 'profile' command reports).
    import cProfile
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    try:
        cmd(args)
    finally:
        prof.disable()
        prof.dump_stats(args.profile)
        st = pstats.Stats(prof, stream=sys.stdout)
        print(f"\n--- hottest {args.profile_top} functions "
              f"(cumulative; full dump: {args.profile}) ---")
        st.sort_stats("cumulative").print_stats(args.profile_top)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
