"""Conformance validation: the full workload x mode x strategy matrix
against the CPU reference oracle.

A reproduction's first duty is functional correctness; this module
runs every legal combination and reports a conformance matrix.  Used
by ``repro-bench validate`` and the release checklist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cpu_ref.reference import normalised, reference_job
from ..errors import ReproError
from ..framework.job import run_job
from ..framework.modes import ALL_MODES, MemoryMode, ReduceStrategy
from ..gpu.config import DeviceConfig
from ..workloads.base import Workload


@dataclass
class ValidationCase:
    workload: str
    mode: str
    strategy: str
    passed: bool
    detail: str = ""


@dataclass
class ValidationReport:
    cases: list[ValidationCase] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.cases)

    @property
    def counts(self) -> tuple[int, int]:
        ok = sum(1 for c in self.cases if c.passed)
        return ok, len(self.cases)

    def render(self) -> str:
        ok, total = self.counts
        lines = [f"conformance: {ok}/{total} cases match the oracle"]
        for c in self.cases:
            mark = "PASS" if c.passed else "FAIL"
            line = f"  [{mark}] {c.workload:3s} {c.mode:4s} {c.strategy:5s}"
            if c.detail:
                line += f"  ({c.detail})"
            lines.append(line)
        return "\n".join(lines)


def outputs_match(got, want, *, float32_values: bool = False) -> bool:
    """Order-normalised equality, with float32 tolerance when the
    workload's values are vectors whose summation order may differ."""
    a, b = normalised(got), normalised(want)
    if not float32_values:
        return a == b
    if len(a) != len(b):
        return False
    for (ka, va), (kb, vb) in zip(a, b):
        if ka != kb or len(va) != len(vb) or len(va) % 4:
            return False
        fa = np.frombuffer(va, dtype="<f4")
        fb = np.frombuffer(vb, dtype="<f4")
        if not np.allclose(fa, fb, rtol=1e-4, atol=1e-5):
            return False
    return True


def validate_workload(
    workload: Workload,
    *,
    size: str = "small",
    scale: float = 1.0,
    seed: int = 0,
    config: DeviceConfig | None = None,
    threads_per_block: int = 128,
    backend=None,
    store: str | None = None,
    memory_budget: int | None = None,
    mode: MemoryMode | str | None = None,
) -> ValidationReport:
    """Run every legal (mode, strategy) combination for one workload.

    ``store``/``memory_budget`` thread the intermediate-store policy
    through to every job (see :func:`repro.framework.job.run_job`) —
    ``repro-bench validate --store spill`` proves the out-of-core
    shuffle against the oracle across the whole matrix.
    ``mode`` restricts the matrix to one memory mode — including the
    string ``"auto"``, which proves the cost-model tuner's pick against
    the oracle (the case label then records what it resolved to).
    """
    cfg = config or DeviceConfig.small(2)
    inp = workload.generate(size, seed=seed, scale=scale)
    spec = workload.spec_for_size(size, seed=seed, scale=scale)
    float_vals = workload.code in ("KM", "SS", "LR")

    strategies: list[ReduceStrategy | None] = [None]
    if workload.has_reduce:
        strategies = [ReduceStrategy.TR, ReduceStrategy.BR]

    modes = ALL_MODES if mode is None else (mode,)
    report = ValidationReport()
    for strategy in strategies:
        ref = reference_job(spec, inp, strategy)
        for m in modes:
            if strategy is ReduceStrategy.BR and m is MemoryMode.GT:
                continue  # illegal combination by design
            name = strategy.value if strategy else "map"
            label = getattr(m, "value", str(m))
            try:
                res = run_job(
                    spec, inp, mode=m, strategy=strategy, config=cfg,
                    # auto keeps the block size open for the tuner too
                    threads_per_block=None if m == "auto"
                    else threads_per_block,
                    backend=backend,
                    store=store, memory_budget=memory_budget,
                )
            except ReproError as exc:
                report.cases.append(ValidationCase(
                    workload.code, label, name, False, repr(exc)[:60]
                ))
                continue
            if m == "auto":
                label = f"auto>{getattr(res.mode, 'value', res.mode)}"
            ok = outputs_match(res.output, ref, float32_values=float_vals)
            detail = "" if ok else (
                f"{len(res.output)} records vs {len(ref)} expected"
            )
            report.cases.append(ValidationCase(
                workload.code, label, name, ok, detail
            ))
    return report


def validate_all(
    workloads: list[Workload],
    *,
    size: str = "small",
    scale: float = 1.0,
    config: DeviceConfig | None = None,
    backend=None,
    store: str | None = None,
    memory_budget: int | None = None,
    mode: MemoryMode | str | None = None,
) -> ValidationReport:
    report = ValidationReport()
    for wl in workloads:
        report.cases.extend(
            validate_workload(
                wl, size=size, scale=scale, config=config, backend=backend,
                store=store, memory_budget=memory_budget, mode=mode,
            ).cases
        )
    return report
