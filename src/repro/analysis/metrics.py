"""Derived performance metrics from kernel statistics.

Turns raw :class:`~repro.gpu.stats.KernelStats` counters into the
quantities a GPU performance engineer actually reasons about —
achieved bandwidth, occupancy, atomic pressure, instruction mix —
and renders a profile report.  Used by tests, benches and the
``repro-bench profile`` command.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.config import WARP_SIZE, DeviceConfig
from ..gpu.stats import KernelStats


@dataclass(frozen=True)
class KernelMetrics:
    """Derived metrics for one launch."""

    cycles: float
    #: Achieved DRAM bandwidth as a fraction of the device peak.
    bandwidth_utilisation: float
    #: Useful bytes / bytes moved (coalescing efficiency proxy).
    bytes_per_transaction: float
    #: Resident warps per MP relative to the architectural maximum.
    occupancy: float
    #: Global atomics issued per kilocycle (contention pressure).
    atomics_per_kcycle: float
    #: Fraction of issued instructions that were busy-wait probes.
    poll_fraction: float
    #: Fraction of warp wait time per category (from the profiler).
    stall_breakdown: dict[str, float]

    def as_dict(self) -> dict:
        """Flat mapping for the metrics registry / JSON export
        (:func:`repro.obs.metrics.job_metrics_registry`)."""
        return {
            "cycles": self.cycles,
            "bandwidth_utilisation": self.bandwidth_utilisation,
            "bytes_per_transaction": self.bytes_per_transaction,
            "occupancy": self.occupancy,
            "atomics_per_kcycle": self.atomics_per_kcycle,
            "poll_fraction": self.poll_fraction,
            "stall_breakdown": dict(sorted(self.stall_breakdown.items())),
        }

    def render(self) -> str:
        lines = [
            f"cycles                 : {self.cycles:.0f}",
            f"bandwidth utilisation  : {self.bandwidth_utilisation:.1%}",
            f"bytes per transaction  : {self.bytes_per_transaction:.1f}",
            f"occupancy              : {self.occupancy:.1%}",
            f"global atomics/kcycle  : {self.atomics_per_kcycle:.2f}",
            f"poll fraction          : {self.poll_fraction:.1%}",
        ]
        if self.stall_breakdown:
            top = sorted(self.stall_breakdown.items(), key=lambda kv: -kv[1])
            lines.append("wait-time breakdown    : " + ", ".join(
                f"{k} {v:.0%}" for k, v in top[:5]
            ))
        return "\n".join(lines)


def derive_metrics(stats: KernelStats, config: DeviceConfig) -> KernelMetrics:
    """Compute derived metrics for a finished launch."""
    t = config.timing
    cycles = max(1.0, stats.cycles)

    peak_bytes_per_cycle = t.txn_bytes / t.txn_service_cycles
    achieved = stats.global_transactions * t.txn_bytes / cycles
    bandwidth_utilisation = min(1.0, achieved / peak_bytes_per_cycle)

    bytes_per_txn = (
        stats.global_bytes / stats.global_transactions
        if stats.global_transactions
        else 0.0
    )

    warps_per_block = max(1, stats.threads_per_block // WARP_SIZE)
    resident_warps = warps_per_block * stats.blocks_per_mp
    max_warps = config.max_threads_per_mp // WARP_SIZE
    occupancy = min(1.0, resident_warps / max_warps) if max_warps else 0.0

    atomics_per_kcycle = 1000.0 * stats.atomics_global / cycles
    poll_fraction = (
        stats.polls / stats.instructions if stats.instructions else 0.0
    )
    return KernelMetrics(
        cycles=stats.cycles,
        bandwidth_utilisation=bandwidth_utilisation,
        bytes_per_transaction=bytes_per_txn,
        occupancy=occupancy,
        atomics_per_kcycle=atomics_per_kcycle,
        poll_fraction=poll_fraction,
        stall_breakdown=stats.stall_breakdown(),
    )


def compare_modes(
    metrics: dict[str, KernelMetrics], reference: str = "G"
) -> str:
    """Render a mode-vs-mode metric comparison table."""
    if reference not in metrics:
        reference = next(iter(metrics))
    ref = metrics[reference]
    header = (
        f"{'mode':6s} {'cycles':>12s} {'vs ' + reference:>8s} "
        f"{'bw util':>8s} {'occup':>7s} {'atom/kcy':>9s} {'polls':>7s}"
    )
    lines = [header, "-" * len(header)]
    for name, m in metrics.items():
        rel = ref.cycles / m.cycles if m.cycles else float("inf")
        lines.append(
            f"{name:6s} {m.cycles:>12.0f} {rel:>7.2f}x "
            f"{m.bandwidth_utilisation:>8.1%} {m.occupancy:>7.1%} "
            f"{m.atomics_per_kcycle:>9.2f} {m.poll_fraction:>7.1%}"
        )
    return "\n".join(lines)
