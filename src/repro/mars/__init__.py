"""``repro.mars`` — the Mars two-pass baseline (He et al., PACT'08 design)."""

from .count_pass import CountArrays
from .framework import mars_map_phase, mars_reduce_phase, run_mars_job
from .scan import ScanResult, device_exclusive_scan, multi_scan

__all__ = [
    "CountArrays",
    "ScanResult",
    "device_exclusive_scan",
    "mars_map_phase",
    "mars_reduce_phase",
    "multi_scan",
    "run_mars_job",
]
