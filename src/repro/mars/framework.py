"""The Mars baseline: two-pass MapReduce without atomics.

Mars (He et al., PACT'08) predates GPU atomics, so every phase with
variable-sized output runs twice (Section II-B):

1. **MapCount / ReduceCount** — compute each task's output sizes;
2. **prefix scan** — device-wide exclusive scan of the sizes gives
   every task its private output offsets;
3. **the real pass** — re-reads the input, re-runs the user function,
   and writes results to the precomputed offsets with no
   synchronisation at all.

Host<->device transfers and the shuffle are shared with our framework
("Our framework and Mars share the same data transmission ... as well
as the same shuffle phase", Section IV-F).  Reduction is thread-level
only ("Mars supports only thread-level reduction").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FrameworkError
from ..framework.api import MapReduceSpec
from ..framework.job import JobResult
from ..framework.map_engine import (
    MapRuntime,
    _charge_dir_reads,
    _replay,
    _replay_const,
    build_map_runtime,
)
from ..framework.modes import MemoryMode, ReduceStrategy
from ..framework.records import (
    DIR_ENTRY,
    DeviceRecordSet,
    KeyValueSet,
    OutputBuffers,
)
from ..framework.shuffle import GroupedDeviceSet
from ..framework.staging import Tile, plan_tiles_unstaged
from ..obs.tracer import NULL_TRACER, Tracer
from ..gpu.accessor import Accessor, AccessTrace
from ..gpu.config import WARP_SIZE, DeviceConfig
from ..gpu.instructions import GlobalWrite
from ..gpu.kernel import Device, WarpCtx
from ..gpu.stats import KernelStats
from .count_pass import CountArrays, MarsCountRuntime, mars_map_count_kernel
from .scan import multi_scan


@dataclass
class MarsRealRuntime:
    """Runtime of a real (second) pass: offsets from the scans."""

    rt: MapRuntime
    key_offs_out: np.ndarray
    val_offs_out: np.ndarray
    rec_offs_out: np.ndarray


# ----------------------------------------------------------------------
# Map phase
# ----------------------------------------------------------------------


def mars_map_phase(
    device: Device,
    spec: MapReduceSpec,
    d_in: DeviceRecordSet,
    *,
    threads_per_block: int = 128,
    tracer: Tracer | None = None,
) -> tuple[DeviceRecordSet, KernelStats]:
    """MapCount -> scan -> Map; returns (intermediate, merged stats)."""
    tr = tracer if tracer is not None else NULL_TRACER
    rt = build_map_runtime(
        device, spec, MemoryMode.G, d_in, threads_per_block=threads_per_block
    )

    # Pass 1: MapCount.
    n = d_in.count
    counts_addr = device.gmem.alloc(12 * max(1, n), f"mars.counts.{spec.name}")
    crt = MarsCountRuntime(
        rt=rt, counts=CountArrays.zeros(n), counts_addr=counts_addr
    )
    tl = tr.make_timeline()
    count_stats = device.launch(
        mars_map_count_kernel,
        grid=rt.grid,
        block=threads_per_block,
        smem_bytes=rt.layout.smem_bytes,
        args=(crt,),
        timeline=tl,
    )
    tr.kernel("map_count_kernel", count_stats, timeline=tl)

    # Prefix scans over the three size arrays.
    scans, scan_cycles = multi_scan(
        [crt.counts.key_bytes, crt.counts.val_bytes, crt.counts.records],
        device.config,
    )
    kscan, vscan, rscan = scans
    with tr.span("prefix_scan"):
        tr.advance(scan_cycles)

    # Pass 2: the real Map, writing at the scanned offsets.
    rrt = MarsRealRuntime(
        rt=rt,
        key_offs_out=kscan.offsets,
        val_offs_out=vscan.offsets,
        rec_offs_out=rscan.offsets,
    )
    tl = tr.make_timeline()
    real_stats = device.launch(
        mars_real_map_kernel,
        grid=rt.grid,
        block=threads_per_block,
        smem_bytes=rt.layout.smem_bytes,
        args=(rrt,),
        timeline=tl,
    )
    tr.kernel("map_real_kernel", real_stats, timeline=tl)
    # Publish the totals (done by the host in Mars).
    gm = device.gmem
    gm.write_u32(rt.out.key_tail, kscan.total)
    gm.write_u32(rt.out.val_tail, vscan.total)
    gm.write_u32(rt.out.rec_count, rscan.total)
    rt.out.check_reservation(kscan.total, vscan.total, rscan.total)

    merged = count_stats.merge(real_stats)
    merged.cycles = count_stats.cycles + scan_cycles + real_stats.cycles
    merged.count("mars_scan_cycles", int(scan_cycles))
    return rt.out.as_record_set(), merged


def mars_real_map_kernel(ctx: WarpCtx, rrt: MarsRealRuntime):
    """Second Map pass: re-read, re-compute, write without atomics."""
    rt = rrt.rt
    for t_i in range(ctx.block_id, len(rt.tiles), rt.grid):
        tile = rt.tiles[t_i]
        yield from _real_rounds(ctx, rrt, tile)
        yield from ctx.barrier()


def _real_rounds(ctx: WarpCtx, rrt: MarsRealRuntime, tile: Tile):
    rt = rrt.rt
    spec = rt.spec
    out = rt.out
    nw = ctx.warps_per_block
    r = 0
    while True:
        base_rec = tile.start + (r * nw + ctx.warp_id) * WARP_SIZE
        if base_rec >= tile.end:
            break
        recs = list(range(base_rec, min(base_rec + WARP_SIZE, tile.end)))

        yield from _charge_dir_reads(ctx, rt, None, recs)

        key_traces: list[AccessTrace] = []
        val_traces: list[AccessTrace] = []
        const_traces: list[AccessTrace] = []
        warp_kb = warp_vb = warp_nr = 0
        for rec in recs:
            key_acc = Accessor(rt.record_key(rec))
            val_acc = Accessor(rt.record_val(rec))
            const_acc = Accessor(rt.const_data) if rt.const_data else None
            ko = int(rrt.key_offs_out[rec])
            vo = int(rrt.val_offs_out[rec])
            ro = int(rrt.rec_offs_out[rec])
            state = {"ko": ko, "vo": vo, "ro": ro}

            def emit(k: bytes, v: bytes, _s=state) -> None:
                k, v = bytes(k), bytes(v)
                gm = ctx.gmem
                gm.write(out.keys_addr + _s["ko"], k)
                gm.write(out.vals_addr + _s["vo"], v)
                gm.write_u32(out.key_dir_addr + DIR_ENTRY * _s["ro"], _s["ko"])
                gm.write_u32(out.key_dir_addr + DIR_ENTRY * _s["ro"] + 4, len(k))
                gm.write_u32(out.val_dir_addr + DIR_ENTRY * _s["ro"], _s["vo"])
                gm.write_u32(out.val_dir_addr + DIR_ENTRY * _s["ro"] + 4, len(v))
                _s["ko"] += len(k)
                _s["vo"] += len(v)
                _s["ro"] += 1

            spec.map_record(key_acc, val_acc, emit, const_acc)
            warp_kb += state["ko"] - ko
            warp_vb += state["vo"] - vo
            warp_nr += state["ro"] - ro
            key_traces.append(key_acc.trace)
            val_traces.append(val_acc.trace)
            const_traces.append(const_acc.trace if const_acc else AccessTrace())

        yield from _replay(ctx, rt, None, recs, key_traces, which="key")
        yield from _replay(ctx, rt, None, recs, val_traces, which="val")
        if rt.const_data:
            yield from _replay_const(ctx, rt, const_traces)
        max_steps = max(
            len(k) + len(v) + len(c)
            for k, v, c in zip(key_traces, val_traces, const_traces)
        )
        yield from ctx.compute(
            spec.cycles_per_record + spec.cycles_per_access * max_steps
        )
        # Output writes: tasks of a warp own contiguous reserved
        # ranges (the scan is over consecutive task ids), so the
        # stores coalesce.
        if warp_kb:
            yield GlobalWrite(
                addr=out.keys_addr + int(rrt.key_offs_out[recs[0]]), nbytes=warp_kb
            )
        if warp_vb:
            yield GlobalWrite(
                addr=out.vals_addr + int(rrt.val_offs_out[recs[0]]), nbytes=warp_vb
            )
        if warp_nr:
            ro0 = int(rrt.rec_offs_out[recs[0]])
            yield GlobalWrite(addr=out.key_dir_addr + DIR_ENTRY * ro0,
                              nbytes=DIR_ENTRY * warp_nr)
            yield GlobalWrite(addr=out.val_dir_addr + DIR_ENTRY * ro0,
                              nbytes=DIR_ENTRY * warp_nr)
        r += 1


# ----------------------------------------------------------------------
# Reduce phase (thread-level only, like Mars)
# ----------------------------------------------------------------------


@dataclass
class MarsReduceRuntime:
    spec: MapReduceSpec
    grouped: GroupedDeviceSet
    out: OutputBuffers
    tiles: list[Tile]
    grid: int
    const_data: bytes | None
    const_addr: int
    #: counting pass output
    counts: CountArrays | None = None
    counts_addr: int = 0
    #: real pass offsets
    key_offs_out: np.ndarray | None = None
    val_offs_out: np.ndarray | None = None
    rec_offs_out: np.ndarray | None = None
    count_only: bool = True


def mars_reduce_phase(
    device: Device,
    spec: MapReduceSpec,
    grouped: GroupedDeviceSet,
    *,
    threads_per_block: int = 128,
    tracer: Tracer | None = None,
) -> tuple[DeviceRecordSet, KernelStats]:
    """ReduceCount -> scan -> Reduce (thread-level)."""
    tr = tracer if tracer is not None else NULL_TRACER
    if spec.reduce_record is None:
        raise FrameworkError(f"{spec.name}: Mars reduce needs a TR reduce fn")
    gm = device.gmem
    n = grouped.n_groups
    payload = int(grouped.key_lens.sum() + grouped.val_lens.sum()) if n else 0
    kcap, vcap, rcap = spec.output_capacity(None, payload=payload, count=max(1, n))
    out = OutputBuffers.allocate(
        gm, key_capacity=kcap, val_capacity=vcap, record_capacity=rcap,
        label=f"mars_red_out.{spec.name}",
    )
    const_addr = 0
    if spec.const_bytes:
        const_addr = gm.alloc(len(spec.const_bytes), f"mars_red_const.{spec.name}")
        gm.write(const_addr, spec.const_bytes)
    tiles = plan_tiles_unstaged(n, threads_per_block)
    occ = device.config.blocks_per_mp(threads_per_block, 1024)
    grid = max(1, min(len(tiles), device.config.mp_count * occ))
    rrt = MarsReduceRuntime(
        spec=spec, grouped=grouped, out=out, tiles=tiles, grid=grid,
        const_data=spec.const_bytes, const_addr=const_addr,
        counts=CountArrays.zeros(n),
        counts_addr=gm.alloc(12 * max(1, n), f"mars.red_counts.{spec.name}"),
    )
    if n == 0:
        return out.as_record_set(), KernelStats()

    tl = tr.make_timeline()
    count_stats = device.launch(
        mars_reduce_kernel, grid=grid, block=threads_per_block,
        smem_bytes=1024, args=(rrt,), timeline=tl,
    )
    tr.kernel("reduce_count_kernel", count_stats, timeline=tl)
    scans, scan_cycles = multi_scan(
        [rrt.counts.key_bytes, rrt.counts.val_bytes, rrt.counts.records],
        device.config,
    )
    kscan, vscan, rscan = scans
    with tr.span("prefix_scan"):
        tr.advance(scan_cycles)
    rrt.count_only = False
    rrt.key_offs_out = kscan.offsets
    rrt.val_offs_out = vscan.offsets
    rrt.rec_offs_out = rscan.offsets
    tl = tr.make_timeline()
    real_stats = device.launch(
        mars_reduce_kernel, grid=grid, block=threads_per_block,
        smem_bytes=1024, args=(rrt,), timeline=tl,
    )
    tr.kernel("reduce_real_kernel", real_stats, timeline=tl)
    gm.write_u32(out.key_tail, kscan.total)
    gm.write_u32(out.val_tail, vscan.total)
    gm.write_u32(out.rec_count, rscan.total)
    out.check_reservation(kscan.total, vscan.total, rscan.total)

    merged = count_stats.merge(real_stats)
    merged.cycles = count_stats.cycles + scan_cycles + real_stats.cycles
    merged.count("mars_scan_cycles", int(scan_cycles))
    return out.as_record_set(), merged


def mars_reduce_kernel(ctx: WarpCtx, rrt: MarsReduceRuntime):
    """Both ReduceCount and the real Reduce (selected by count_only)."""
    spec = rrt.spec
    grp = rrt.grouped
    out = rrt.out
    nw = ctx.warps_per_block
    for t_i in range(ctx.block_id, len(rrt.tiles), rrt.grid):
        tile = rrt.tiles[t_i]
        r = 0
        while True:
            base_g = tile.start + (r * nw + ctx.warp_id) * WARP_SIZE
            if base_g >= tile.end:
                break
            gs = list(range(base_g, min(base_g + WARP_SIZE, tile.end)))
            yield from ctx.gtouch_read(
                [(grp.key_dir_addr + DIR_ENTRY * g, DIR_ENTRY) for g in gs]
            )
            yield from ctx.gtouch_read(
                [(grp.group_dir_addr + DIR_ENTRY * g, DIR_ENTRY) for g in gs]
            )
            streams: list[list[tuple[int, int]]] = []
            warp_kb = warp_vb = warp_nr = 0
            for g in gs:
                key_acc = Accessor(grp.group_key(g))
                geom = grp.group_value_geometry(g)
                val_accs = [Accessor(grp.gmem.read(a, ln)) for a, ln in geom]
                const_acc = Accessor(rrt.const_data) if rrt.const_data else None

                if rrt.count_only:
                    kb = vb = nr = 0

                    def emit(k: bytes, v: bytes) -> None:
                        nonlocal kb, vb, nr
                        kb += len(k)
                        vb += len(v)
                        nr += 1

                    spec.reduce_record(key_acc, val_accs, emit, const_acc)
                    rrt.counts.key_bytes[g] = kb
                    rrt.counts.val_bytes[g] = vb
                    rrt.counts.records[g] = nr
                    ctx.gmem.write_u32(rrt.counts_addr + 12 * g, kb)
                    ctx.gmem.write_u32(rrt.counts_addr + 12 * g + 4, vb)
                    ctx.gmem.write_u32(rrt.counts_addr + 12 * g + 8, nr)
                else:
                    state = {
                        "ko": int(rrt.key_offs_out[g]),
                        "vo": int(rrt.val_offs_out[g]),
                        "ro": int(rrt.rec_offs_out[g]),
                    }
                    ko0, vo0, ro0 = state["ko"], state["vo"], state["ro"]

                    def emit(k: bytes, v: bytes, _s=state) -> None:
                        k, v = bytes(k), bytes(v)
                        gm = ctx.gmem
                        gm.write(out.keys_addr + _s["ko"], k)
                        gm.write(out.vals_addr + _s["vo"], v)
                        gm.write_u32(out.key_dir_addr + DIR_ENTRY * _s["ro"], _s["ko"])
                        gm.write_u32(
                            out.key_dir_addr + DIR_ENTRY * _s["ro"] + 4, len(k)
                        )
                        gm.write_u32(out.val_dir_addr + DIR_ENTRY * _s["ro"], _s["vo"])
                        gm.write_u32(
                            out.val_dir_addr + DIR_ENTRY * _s["ro"] + 4, len(v)
                        )
                        _s["ko"] += len(k)
                        _s["vo"] += len(v)
                        _s["ro"] += 1

                    spec.reduce_record(key_acc, val_accs, emit, const_acc)
                    warp_kb += state["ko"] - ko0
                    warp_vb += state["vo"] - vo0
                    warp_nr += state["ro"] - ro0

                stream: list[tuple[int, int]] = []
                kbase = grp.keys_addr + int(grp.key_offs[g])
                stream += [(kbase + 4 * w, 4) for w in key_acc.trace.words]
                vstart = int(grp.group_starts[g])
                for j, (acc, (a, _ln)) in enumerate(zip(val_accs, geom)):
                    stream.append(
                        (grp.val_dir_addr + DIR_ENTRY * (vstart + j), DIR_ENTRY)
                    )
                    stream += [(a + 4 * w, 4) for w in acc.trace.words]
                if const_acc is not None:
                    stream += [
                        (rrt.const_addr + 4 * w, 4) for w in const_acc.trace.words
                    ]
                streams.append(stream)

            from ..framework.map_engine import chunk_steps

            n_steps = max((len(s) for s in streams), default=0)
            raw = [
                [s[k] for s in streams if k < len(s)] for k in range(n_steps)
            ]
            for step in chunk_steps(raw, ctx.timing.memory_parallelism):
                yield from ctx.gtouch_read(step)
            yield from ctx.compute(
                spec.cycles_per_record + spec.cycles_per_access * n_steps
            )
            if not rrt.count_only:
                if warp_kb:
                    yield GlobalWrite(
                        addr=out.keys_addr + int(rrt.key_offs_out[gs[0]]),
                        nbytes=warp_kb,
                    )
                if warp_vb:
                    yield GlobalWrite(
                        addr=out.vals_addr + int(rrt.val_offs_out[gs[0]]),
                        nbytes=warp_vb,
                    )
                if warp_nr:
                    ro0 = int(rrt.rec_offs_out[gs[0]])
                    yield GlobalWrite(
                        addr=out.key_dir_addr + DIR_ENTRY * ro0,
                        nbytes=DIR_ENTRY * warp_nr,
                    )
                    yield GlobalWrite(
                        addr=out.val_dir_addr + DIR_ENTRY * ro0,
                        nbytes=DIR_ENTRY * warp_nr,
                    )
            r += 1
        yield from ctx.barrier()


# ----------------------------------------------------------------------
# End-to-end Mars job
# ----------------------------------------------------------------------


def run_mars_job(
    spec: MapReduceSpec,
    inp: KeyValueSet,
    *,
    strategy: ReduceStrategy | None = None,
    config: DeviceConfig | None = None,
    device: Device | None = None,
    threads_per_block: int = 128,
    tracer: Tracer | None = None,
    backend=None,
    check=None,
    store: str | None = None,
    memory_budget: int | None = None,
) -> JobResult:
    """Run a complete Mars-style job (two-pass Map, two-pass Reduce).

    ``strategy`` may only be None or TR — "Mars supports only
    thread-level reduction" (Section IV-F).  ``tracer`` records the
    two-pass structure: each phase span holds its count-pass kernel,
    prefix-scan and real-pass kernel as children.
    ``backend`` selects the execution substrate (see
    :func:`repro.framework.job.run_job`); under ``"fast"`` the job
    runs functionally (single-pass on the host — the two-pass
    structure is a timing artefact the fast backend does not model);
    ``store``/``memory_budget`` pick the functional backends'
    intermediate-store policy exactly as in ``run_job``.
    """
    if strategy is ReduceStrategy.BR:
        raise FrameworkError("Mars supports only thread-level reduction (TR)")
    spec.validate()
    # Local import: repro.backend imports framework modules that in
    # turn are imported by this one.
    from ..backend import ENGINE_MARS, JobPlan, execute_plan, get_backend

    plan = JobPlan(
        spec=spec,
        mode=MemoryMode.G,
        strategy=strategy,
        engine=ENGINE_MARS,
        config=config,
        device=device,
        threads_per_block=threads_per_block,
        check=check,
        store=store,
        memory_budget=memory_budget,
    ).normalised()
    return execute_plan(plan, inp, get_backend(backend), tracer)
