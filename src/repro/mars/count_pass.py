"""Mars's first pass: MapCount / ReduceCount kernels.

"The first pass, MapCount or ReduceCount, is only used to compute the
output sizes of each task" (Section II-B).  The kernel runs the *same*
user function with an emit callback that only tallies sizes, so it
pays the full input-reading and compute cost of the real pass, then
stores three 32-bit counts per task (key bytes, value bytes, record
count) with perfectly coalesced writes — no atomics anywhere, which is
precisely Mars's trade: an extra full pass instead of contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..framework.map_engine import MapRuntime, _charge_dir_reads, _replay, _replay_const
from ..gpu.accessor import Accessor, AccessTrace
from ..gpu.config import WARP_SIZE
from ..gpu.kernel import WarpCtx
from ..framework.staging import Tile


@dataclass
class CountArrays:
    """Per-task output sizes produced by a count pass."""

    key_bytes: np.ndarray
    val_bytes: np.ndarray
    records: np.ndarray

    @classmethod
    def zeros(cls, n: int) -> "CountArrays":
        return cls(
            key_bytes=np.zeros(n, dtype=np.int64),
            val_bytes=np.zeros(n, dtype=np.int64),
            records=np.zeros(n, dtype=np.int64),
        )


@dataclass
class MarsCountRuntime:
    """Runtime for the MapCount kernel: a G-mode MapRuntime plus the
    count output arrays (device-resident + host mirror)."""

    rt: MapRuntime
    counts: CountArrays
    counts_addr: int  # 12 bytes per task in global memory


def mars_map_count_kernel(ctx: WarpCtx, crt: MarsCountRuntime):
    """One warp of MapCount: one task per thread, grid-stride tiles."""
    rt = crt.rt
    for t_i in range(ctx.block_id, len(rt.tiles), rt.grid):
        tile = rt.tiles[t_i]
        yield from _count_rounds(ctx, crt, tile)
        yield from ctx.barrier()


def _count_rounds(ctx: WarpCtx, crt: MarsCountRuntime, tile: Tile):
    rt = crt.rt
    spec = rt.spec
    nw = ctx.warps_per_block
    r = 0
    while True:
        base_rec = tile.start + (r * nw + ctx.warp_id) * WARP_SIZE
        if base_rec >= tile.end:
            break
        recs = list(range(base_rec, min(base_rec + WARP_SIZE, tile.end)))

        yield from _charge_dir_reads(ctx, rt, None, recs)

        key_traces: list[AccessTrace] = []
        val_traces: list[AccessTrace] = []
        const_traces: list[AccessTrace] = []
        for rec in recs:
            key_acc = Accessor(rt.record_key(rec))
            val_acc = Accessor(rt.record_val(rec))
            const_acc = Accessor(rt.const_data) if rt.const_data else None
            kb = vb = n = 0

            def emit(k: bytes, v: bytes) -> None:
                nonlocal kb, vb, n
                kb += len(k)
                vb += len(v)
                n += 1

            spec.map_record(key_acc, val_acc, emit, const_acc)
            crt.counts.key_bytes[rec] = kb
            crt.counts.val_bytes[rec] = vb
            crt.counts.records[rec] = n
            ctx.gmem.write_u32(crt.counts_addr + 12 * rec, kb)
            ctx.gmem.write_u32(crt.counts_addr + 12 * rec + 4, vb)
            ctx.gmem.write_u32(crt.counts_addr + 12 * rec + 8, n)
            key_traces.append(key_acc.trace)
            val_traces.append(val_acc.trace)
            const_traces.append(const_acc.trace if const_acc else AccessTrace())

        yield from _replay(ctx, rt, None, recs, key_traces, which="key")
        yield from _replay(ctx, rt, None, recs, val_traces, which="val")
        if rt.const_data:
            yield from _replay_const(ctx, rt, const_traces)
        max_steps = max(
            len(k) + len(v) + len(c)
            for k, v, c in zip(key_traces, val_traces, const_traces)
        )
        yield from ctx.compute(
            spec.cycles_per_record + spec.cycles_per_access * max_steps
        )
        # Coalesced store of the three counts (12 B per consecutive task).
        from ..gpu.instructions import GlobalWrite

        yield GlobalWrite(addr=crt.counts_addr + 12 * recs[0], nbytes=12 * len(recs))
        r += 1
