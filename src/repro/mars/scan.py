"""Mars's device-wide exclusive prefix scan.

Between its two passes, Mars runs "a prefix summing operation ...
across all threads with output size values in order to find their own
starting output address" (Section II-B).  The scan is performed
functionally with NumPy (exactly) and charged with the analytic
three-kernel scan cost model shared with the framework
(:func:`repro.framework.prefix_sum.device_scan_cycles`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..framework.prefix_sum import device_scan_cycles
from ..gpu.config import DeviceConfig


@dataclass(frozen=True)
class ScanResult:
    """Exclusive prefix sums plus totals and modelled cost."""

    offsets: np.ndarray
    total: int
    cycles: float


def device_exclusive_scan(sizes: np.ndarray, config: DeviceConfig) -> ScanResult:
    """Exclusive scan of per-task sizes -> per-task start offsets."""
    sizes = np.asarray(sizes, dtype=np.int64)
    offsets = np.zeros_like(sizes)
    if len(sizes):
        np.cumsum(sizes[:-1], out=offsets[1:])
    total = int(sizes.sum())
    cycles = device_scan_cycles(len(sizes), config.timing, config.mp_count)
    return ScanResult(offsets=offsets, total=total, cycles=cycles)


def multi_scan(
    size_arrays: list[np.ndarray], config: DeviceConfig
) -> tuple[list[ScanResult], float]:
    """Scan several size arrays (key bytes, value bytes, record counts).

    Mars scans each output-size component; the passes are independent
    kernels, so cycles add.
    """
    results = [device_exclusive_scan(a, config) for a in size_arrays]
    return results, sum(r.cycles for r in results)
