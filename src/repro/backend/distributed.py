"""Distributed execution backend: coordinator + socket workers.

Runs the fast-backend phase logic across worker *processes connected
by sockets* — the MapReduce master/worker shape, scaled down to one
host so the whole fault-tolerance story is testable in CI:

* **Map** — the input is cut into M tasks by a GFS-style byte split
  (:data:`DEFAULT_SPLIT_BYTES` per task, ``$REPRO_SPLIT_BYTES`` to
  override), deliberately finer than the worker count so scheduling,
  re-execution and speculation have real granularity to work with.
* **Shuffle** — runs in the coordinator, delegating to the fast
  backend's store-based group-by (split outputs are concatenated in
  split order first, so group order matches a single-process run).
* **Reduce** — the sorted group list is partitioned into
  R = workers x 2 contiguous key ranges dispatched like map tasks;
  outputs concatenate in range order.

Workers ship **plain pairs** — unlike the parallel backend there is
no per-shard partial combine, so output is *byte-identical* to
:class:`~repro.backend.fast.FastBackend` for every workload,
including floating-point BR folds.  That identity is the invariant
the whole fault story hangs on: a worker can die mid-task, the shard
re-runs elsewhere, a straggler gets speculatively duplicated, and the
coordinator's first-result-wins dedupe (per ``(phase, shard)``)
guarantees the retried run's bytes equal the faultless run's bytes.
The differential suite and the chaos fuzzer assert exactly that.

Fault tolerance, speculation and the scriptable
:class:`~repro.dist.faults.FaultPlan` live in :mod:`repro.dist`; this
module adapts them to the :class:`ExecutionBackend` protocol — split
sizing, handle plumbing, spill-store wiring, ShardProfile telemetry,
and the ``close()`` contract that reaps every worker process and
socket on every exit path (including a raising kernel).

Like the parallel backend, tiny inputs (below ``min_records``) skip
the cluster and run in-process — socket round-trips on a 50-record
job cost far more than the job.  Timing semantics match the fast
backend: transfers are model-costed, kernel cycles read as zero.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import time
from typing import Any

from ..dist import Cluster, FaultPlan
from ..errors import FrameworkError
from ..framework.host import shard_slices
from ..framework.records import KeyValueSet
from ..gpu.stats import KernelStats
from ..obs.telemetry import ShardProfile
from ..store import (
    DEFAULT_BUDGET,
    IntermediateStore,
    StoreStats,
    merge_runs,
    record_cost,
    resolve_budget,
    resolve_spill_root,
)
from .base import ExecutionBackend
from .fast import FastBackend, FastContext, StoreGroups
from .parallel import (
    DEFAULT_MIN_RECORDS,
    _MapOutput,
    _SpilledRuns,
    _spill_active,
    default_workers,
)
from .plan import JobPlan

#: GFS-style split size: map tasks are cut at this many input bytes
#: (key + value + per-record overhead), so M tracks data volume, not
#: worker count — the paper-lineage "many more tasks than workers"
#: rule that gives retry and speculation their granularity.
DEFAULT_SPLIT_BYTES = 64 << 10

#: Environment override for the split size, in bytes.
SPLIT_BYTES_ENV = "REPRO_SPLIT_BYTES"

#: Reduce tasks per worker (R = workers x this).
REDUCES_PER_WORKER = 2

#: Groups per reduce task when the grouped intermediate is a lazy
#: spill-merge stream (consumed in contiguous chunks).
STREAM_REDUCE_BATCH = 1024


def resolve_split_bytes(split_bytes: int | None = None) -> int:
    """Explicit argument, else ``$REPRO_SPLIT_BYTES``, else default."""
    if split_bytes is not None:
        if split_bytes < 1:
            raise FrameworkError("split_bytes must be >= 1")
        return split_bytes
    raw = os.environ.get(SPLIT_BYTES_ENV)
    if not raw:
        return DEFAULT_SPLIT_BYTES
    try:
        n = int(raw)
    except ValueError:
        raise FrameworkError(
            f"${SPLIT_BYTES_ENV} must be an integer, got {raw!r}"
        ) from None
    if n < 1:
        raise FrameworkError(f"${SPLIT_BYTES_ENV} must be >= 1, got {raw!r}")
    return n


class DistContext:
    """Per-job state: the inner fast context plus the worker cluster."""

    __slots__ = ("fast", "workers", "min_records", "cluster", "profiles",
                 "spill_dirs")

    def __init__(self, fast: FastContext, workers: int, min_records: int):
        self.fast = fast
        self.workers = workers
        self.min_records = min_records
        #: The socket-worker cluster, created on first real use.
        self.cluster: Cluster | None = None
        #: Accepted-result shard profiles, in phase order.
        self.profiles: list[ShardProfile] = []
        #: Coordinator-owned spill directories (workers write run files
        #: into them); removed wholesale in :meth:`close`, which also
        #: sweeps any partial runs a killed attempt left behind.
        self.spill_dirs: list[str] = []

    @property
    def plan(self) -> JobPlan:
        return self.fast.plan

    @plan.setter
    def plan(self, plan: JobPlan) -> None:
        self.fast.plan = plan

    @property
    def config(self):
        return self.fast.config


class DistributedBackend(ExecutionBackend):
    """Coordinator/worker execution over localhost sockets, with
    retry, speculation and scriptable fault injection."""

    name = "dist"

    def __init__(self, workers: int | None = None,
                 min_records: int | None = None,
                 fault_plan: FaultPlan | None = None,
                 *, deterministic: bool = False,
                 split_bytes: int | None = None,
                 straggler_factor: float | None = None,
                 min_straggle_s: float | None = None):
        if workers is not None and workers < 1:
            raise FrameworkError("workers must be >= 1")
        self.workers = workers if workers is not None else default_workers()
        self.min_records = (DEFAULT_MIN_RECORDS if min_records is None
                            else max(0, min_records))
        self.fault_plan = fault_plan or FaultPlan.none()
        self.deterministic = deterministic
        self.split_bytes = resolve_split_bytes(split_bytes)
        self.straggler_factor = straggler_factor
        self.min_straggle_s = min_straggle_s
        #: Scheduling events of the most recently closed job (golden
        #: traces read these after ``run_job`` returns).
        self.last_events: list = []
        #: Scheduler counters of the most recently closed job.
        self.last_counters: dict[str, int] = {}
        # Pinned scalar inner executor, like the parallel backend.
        self._fast = FastBackend(columnar=False)

    # -- lifecycle -----------------------------------------------------

    def open(self, plan: JobPlan) -> DistContext:
        return DistContext(
            fast=self._fast.open(plan),
            workers=self.workers,
            min_records=self.min_records,
        )

    def close(self, ctx: DistContext) -> None:
        """Tear down the job: reap the cluster (workers + sockets) on
        every exit path, then release stores and spill directories."""
        cluster, ctx.cluster = ctx.cluster, None
        if cluster is not None:
            self.last_events = list(cluster.events)
            self.last_counters = dict(cluster.counters)
            cluster.shutdown()
        self._fast.close(ctx.fast)
        dirs, ctx.spill_dirs = ctx.spill_dirs, []
        for d in dirs:
            shutil.rmtree(d, ignore_errors=True)

    def resolve_auto(self, ctx, plan, inp):
        return self._fast.resolve_auto(ctx.fast, plan, inp)

    # -- cluster management --------------------------------------------

    def _cluster_for(self, ctx: DistContext, n_records: int
                     ) -> Cluster | None:
        """The job's cluster, started on first use — or None when the
        input is too small or the platform cannot fork."""
        if n_records < ctx.min_records:
            return ctx.cluster  # may exist from an earlier, larger batch
        if ctx.cluster is None:
            if "fork" not in multiprocessing.get_all_start_methods():
                return None
            plan = ctx.plan
            kwargs: dict[str, Any] = {}
            if self.straggler_factor is not None:
                kwargs["straggler_factor"] = self.straggler_factor
            if self.min_straggle_s is not None:
                kwargs["min_straggle_s"] = self.min_straggle_s
            cluster = Cluster(ctx.workers, self.fault_plan,
                              deterministic=self.deterministic, **kwargs)
            cluster.start(plan.spec, plan.strategy, plan.is_mars)
            ctx.cluster = cluster
        return ctx.cluster

    # -- transfers and conversions (delegate to fast) -------------------

    def upload_input(self, ctx, kvs, label):
        return self._fast.upload_input(ctx.fast, kvs, label)

    def download_output(self, ctx, handle):
        return self._fast.download_output(ctx.fast, self._as_kvs(handle))

    def to_host(self, ctx, handle):
        return self._as_kvs(handle)

    def stage_intermediate(self, ctx, kvs, label):
        return kvs

    def record_count(self, ctx, handle) -> int:
        if isinstance(handle, (_MapOutput, _SpilledRuns)):
            return handle.emit_count
        return len(handle)

    def stream_sink(self, ctx):
        return self._fast.stream_sink(ctx.fast)

    def absorb_batch(self, ctx, sink, handle) -> None:
        if isinstance(sink, IntermediateStore):
            sink.emit_many(self.to_host(ctx, handle))
        else:
            super().absorb_batch(ctx, sink, handle)

    @staticmethod
    def _as_kvs(handle) -> KeyValueSet:
        if isinstance(handle, KeyValueSet):
            return handle
        if isinstance(handle, _MapOutput):
            if handle.pairs is None:
                raise FrameworkError(
                    "combined intermediate cannot be read back as records"
                )
            return handle.pairs
        raise FrameworkError(f"not a host-readable handle: {type(handle)!r}")

    # -- split sizing ---------------------------------------------------

    def _split_slices(self, d_in: KeyValueSet) -> list[tuple[int, int]]:
        """Contiguous map splits of at most ``split_bytes`` input bytes
        each (always >= 1 record per split, >= 1 split)."""
        n = len(d_in)
        if n == 0:
            return [(0, 0)]
        keys, vals = d_in.keys, d_in.values
        limit = self.split_bytes
        slices: list[tuple[int, int]] = []
        lo = 0
        acc = 0
        for i in range(n):
            c = record_cost(keys[i], vals[i])
            if acc > 0 and acc + c > limit:
                slices.append((lo, i))
                lo = i
                acc = 0
            acc += c
        slices.append((lo, n))
        return slices

    def _spill_config(self, ctx, *, batch) -> tuple[str, int] | None:
        """Worker spill settings for one distributed Map, or None.
        Same contract as the parallel backend: single-shot jobs with a
        Reduce tail under the spill store; budget split across
        workers."""
        plan = ctx.plan
        if batch is not None or plan.strategy is None \
                or not _spill_active(plan):
            return None
        run_dir = tempfile.mkdtemp(
            prefix="repro-dist-spill-", dir=resolve_spill_root()
        )
        ctx.spill_dirs.append(run_dir)
        budget = resolve_budget(plan.memory_budget) or DEFAULT_BUDGET
        return run_dir, max(1, budget // ctx.workers)

    # -- phases ---------------------------------------------------------

    def map_phase(self, ctx, d_in, tr, *, batch=None):
        cluster = self._cluster_for(ctx, len(d_in))
        if cluster is None:
            return self._fast.map_phase(ctx.fast, d_in, tr, batch=batch)

        spill = self._spill_config(ctx, batch=batch)
        slices = self._split_slices(d_in)
        keys, vals = d_in.keys, d_in.values
        tasks = []
        for shard, (lo, hi) in enumerate(slices):
            payload: dict[str, Any] = {
                "pairs": list(zip(keys[lo:hi], vals[lo:hi]))
            }
            if spill is not None:
                payload["spill"] = list(spill)
            tasks.append((shard, payload))

        before = dict(cluster.counters)
        results = cluster.run_phase("map", tasks)
        self._record_profiles(ctx, tr, results, len(slices), "map")

        if spill is not None:
            run_lists = [results[s]["spilled"]["runs"]
                         for s in range(len(slices))]
            docs = [results[s]["spilled"] for s in range(len(slices))]
            emit_count = sum(d["emitted"] for d in docs)
            handle: Any = _SpilledRuns(
                run_lists=run_lists,
                emit_count=emit_count,
                peak_bytes=sum(d["peak_bytes"] for d in docs),
                spill_runs=sum(len(r) for r in run_lists),
                spilled_bytes=sum(d["spilled_bytes"] for d in docs),
            )
        else:
            out = KeyValueSet()
            append = out.append_unchecked
            for s in range(len(slices)):  # split order = input order
                for k, v in results[s]["pairs"]:
                    append(k, v)
            emit_count = len(out)
            handle = _MapOutput(pairs=out, combined=None,
                                emit_count=emit_count)
        stats = self._phase_stats(ctx, cluster, before,
                                  records_in=len(d_in),
                                  records_out=emit_count,
                                  tasks=len(slices))
        attrs = {"batch": batch} if batch is not None else {}
        tr.kernel("map_kernel", stats, **attrs)
        return handle, stats

    def shuffle_phase(self, ctx, inter, tr, label):
        if isinstance(inter, _SpilledRuns):
            with tr.span("shuffle_exec", records=inter.emit_count) as sp:
                if sp is not None:
                    sp.attrs["spill_runs"] = inter.stats.spill_runs
                    sp.attrs["spilled_bytes"] = inter.stats.spilled_bytes
                inter.stats.merge_fan_in = sum(
                    len(runs) for runs in inter.run_lists
                )
            grouped = StoreGroups(merge_runs(inter.run_lists), inter.stats)
            return grouped, 0.0, None
        if isinstance(inter, IntermediateStore):
            return self._fast.shuffle_phase(ctx.fast, inter, tr, label)
        return self._fast.shuffle_phase(ctx.fast, self._as_kvs(inter), tr,
                                        label)

    def reduce_phase(self, ctx, grouped, tr, *, include_grid=True):
        cluster = ctx.cluster
        if cluster is None:
            # The map ran in-process (tiny input / no fork): finish the
            # job the same way.
            return self._fast.reduce_phase(ctx.fast, grouped, tr,
                                           include_grid=include_grid)
        # Same legality checks as every other backend's reduce.
        plan = ctx.plan
        spec = plan.spec
        from ..framework.modes import ReduceStrategy, effective_reduce_mode
        if plan.is_mars and spec.reduce_record is None:
            raise FrameworkError(f"{spec.name}: Mars reduce needs a TR "
                                 "reduce fn")
        if not plan.is_mars:
            effective_reduce_mode(plan.reduce_mode, plan.strategy)
            if (plan.strategy is ReduceStrategy.TR
                    and spec.reduce_record is None):
                raise FrameworkError(
                    f"workload {spec.name} has no TR reduce function"
                )

        lazy = isinstance(grouped, StoreGroups)
        n_groups = n_values = 0
        if lazy:
            # A merge stream has unknown length: cut it into contiguous
            # fixed-size chunks (chunk order = sorted key order) that
            # the cluster pulls one at a time as workers come free, so
            # the grouped intermediate is materialised per in-flight
            # task, never per job — the out-of-core store stays
            # out-of-core end to end.  Group/value totals are read back
            # from the accepted task profiles afterwards.
            def chunked():
                shard = 0
                chunk: list = []
                for key, values in grouped:
                    chunk.append([key, list(values)])
                    if len(chunk) >= STREAM_REDUCE_BATCH:
                        yield shard, {"groups": chunk}
                        shard += 1
                        chunk = []
                if chunk:
                    yield shard, {"groups": chunk}

            tasks: Any = chunked()
        else:
            groups = (grouped.groups if hasattr(grouped, "groups")
                      else grouped)
            n_groups = len(groups)
            n_values = sum(len(values) for _, values in groups)
            n_ranges = max(1, min(n_groups,
                                  ctx.workers * REDUCES_PER_WORKER))
            tasks = [
                (shard, {"groups": [[k, list(vs)]
                                    for k, vs in groups[lo:hi]]})
                for shard, (lo, hi) in enumerate(
                    shard_slices(n_groups, n_ranges))
            ]

        before = dict(cluster.counters)
        results = cluster.run_phase("reduce", tasks)
        n_tasks = len(results)
        self._record_profiles(ctx, tr, results, n_tasks, "reduce")
        if lazy:
            n_groups = sum(r["profile"]["distinct_keys"]
                           for r in results.values())
            n_values = sum(r["profile"]["records_in"]
                           for r in results.values())

        out = KeyValueSet()
        append = out.append_unchecked
        for s in range(n_tasks):  # range order = sorted key order
            for k, v in results[s]["pairs"]:
                append(k, v)
        stats = self._phase_stats(ctx, cluster, before,
                                  records_in=n_values,
                                  records_out=len(out), tasks=n_tasks)
        if n_tasks:
            stats.count("dist_groups", n_groups)
            if lazy and grouped.stats is not None:
                for name, v in grouped.stats.as_extra().items():
                    stats.count(name, v)
        tr.kernel("reduce_kernel", stats)
        return out, stats

    # -- telemetry ------------------------------------------------------

    def _record_profiles(self, ctx: DistContext, tr, results: dict,
                         n: int, phase: str) -> None:
        """Convert accepted results' profile docs into ShardProfiles
        and merge them into the tracer as worker tracks."""
        for shard in range(n):
            doc = results[shard].get("profile")
            if not doc:
                continue
            p = ShardProfile(
                phase=phase, shard=shard, pid=doc["pid"],
                start_ns=doc["start_ns"], end_ns=doc["end_ns"],
                records_in=doc["records_in"],
                records_out=doc["records_out"],
                distinct_keys=doc.get("distinct_keys", 0),
                spill_runs=doc.get("spill_runs", 0),
                spilled_bytes=doc.get("spilled_bytes", 0),
            )
            ctx.profiles.append(p)
            tr.worker_span(
                p.shard, f"{p.phase}_shard", p.start_ns, p.end_ns,
                pid=p.pid, records_in=p.records_in,
                records_out=p.records_out, distinct_keys=p.distinct_keys,
                spill_runs=p.spill_runs if p.spill_runs else None,
                spilled_bytes=p.spilled_bytes if p.spill_runs else None,
            )

    def finish_telemetry(self, ctx: DistContext):
        return ctx.profiles or None

    @staticmethod
    def _phase_stats(ctx, cluster: Cluster, before: dict[str, int], *,
                     records_in: int, records_out: int,
                     tasks: int) -> KernelStats:
        """Zero cycles (functional backend), throughput counters, the
        task-grid shape, and this phase's fault-recovery activity."""
        stats = KernelStats(threads_per_block=ctx.plan.threads_per_block)
        stats.count("fast_records_in", records_in)
        stats.count("fast_records_out", records_out)
        stats.count("dist_tasks", tasks)
        stats.count("dist_workers", cluster.workers)
        for key in ("retries", "speculated", "duplicates",
                    "worker_deaths", "respawns"):
            delta = cluster.counters[key] - before.get(key, 0)
            if delta:
                stats.count(f"dist_{key}", delta)
        return stats
