"""Sharded multi-process execution backend.

Runs the :class:`~repro.backend.fast.FastBackend` phase logic across a
``multiprocessing`` worker pool, mirroring the sharded many-core
MapReduce designs in the related work (Lu et al.'s Xeon Phi runtime):

* **Map** — the input is split into contiguous, balanced shards
  (:func:`repro.framework.host.shard_slices`); each worker maps its
  shard independently.  For block-level (BR) reductions the worker
  also runs a **per-shard partial combine**: because ``spec.combine``
  is associative by contract, each shard collapses its emissions to
  one ``(accumulator, count)`` per distinct key before anything
  crosses the process boundary — the same traffic-shrinking trick the
  paper applies to its slow memory tier.
* **Shuffle** — the coordinator merges the per-shard results (plain
  pairs, or partial accumulators in shard order) and groups by key,
  sorted by key bytes exactly like the fast backend and the device's
  sort-based shuffle.
* **Reduce** — the sorted group list is partitioned into contiguous
  key ranges, one per worker; each worker reduces its range and the
  coordinator concatenates the outputs in range order.

Because shards are contiguous, per-key value lists preserve emission
order and the merged output preserves group order, so the output is
**record-identical to the fast backend** (and therefore to the
simulator up to the usual order normalisation).  Floating-point BR
combines are the one caveat: partial combining regroups the fold, so
float accumulators can differ in the last bit — exactly the tolerance
the cross-backend differential suite already applies.

Workers are forked (``multiprocessing`` ``fork`` context), so user
Map/Reduce functions — including test closures — reach the pool
without pickling; only shard data and results cross the process
boundary.  Tiny inputs skip the pool entirely and execute in-process
(pool dispatch overhead would dominate); platforms without ``fork``
degrade the same way.  Timing semantics match the fast backend:
transfers are model-costed, kernel cycles read as zero.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import time
from functools import reduce as _fold
from itertools import islice
from typing import Any

from ..errors import FrameworkError
from ..framework.host import host_download_cost, shard_slices
from ..framework.modes import ReduceStrategy, effective_reduce_mode
from ..framework.records import KeyValueSet
from ..gpu.accessor import Accessor
from ..gpu.stats import KernelStats
from ..obs.telemetry import ShardProfile
from ..store import (
    DEFAULT_BUDGET,
    IntermediateStore,
    SpillStore,
    StoreStats,
    merge_runs,
    resolve_budget,
    resolve_spill_root,
    resolve_store_name,
)
from .base import ExecutionBackend
from .fast import NULL_TRACE, FastBackend, FastContext, StoreGroups
from .plan import JobPlan

#: Environment variable giving the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Below this many records a phase runs in-process: forking and
#: round-tripping shards through the pool costs more than the work.
DEFAULT_MIN_RECORDS = 2048

#: Groups per Reduce chunk when consuming a lazy spill-merge stream —
#: bounds how much of the grouped intermediate is materialised at once.
SPILL_REDUCE_BATCH = 1024


def default_workers() -> int:
    """``$REPRO_WORKERS`` if set, else the machine's CPU count."""
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            n = int(env)
        except ValueError:
            raise FrameworkError(
                f"${WORKERS_ENV} must be an integer, got {env!r}"
            ) from None
        if n < 1:
            # A zero/negative count used to be silently clamped to 1;
            # treat it as the configuration mistake it is.
            raise FrameworkError(
                f"${WORKERS_ENV} must be >= 1, got {env!r}"
            )
        return n
    return os.cpu_count() or 1


def _accessor(data: bytes) -> Accessor:
    return Accessor(data, NULL_TRACE)


def _spill_active(plan: JobPlan) -> bool:
    """Does this plan (or the environment) select the spill store?"""
    return resolve_store_name(plan.store) == SpillStore.name


# ----------------------------------------------------------------------
# Worker-side state and entry points
# ----------------------------------------------------------------------
# The pool is created with the "fork" start method and an initializer,
# so the spec (with arbitrary user callables) reaches workers by memory
# inheritance, never by pickling.  Only shard payloads (bytes tuples)
# and results travel through the task queues.

_WORKER_SPEC = None
_WORKER_STRATEGY = None
_WORKER_IS_MARS = False


def _init_worker(spec, strategy, is_mars) -> None:
    global _WORKER_SPEC, _WORKER_STRATEGY, _WORKER_IS_MARS
    _WORKER_SPEC = spec
    _WORKER_STRATEGY = strategy
    _WORKER_IS_MARS = is_mars


def _collecting_emit(out: list[tuple[bytes, bytes]]):
    append = out.append

    def emit(k, v) -> None:
        if type(k) is not bytes or type(v) is not bytes:
            # Validate and copy bytearray/memoryview emits, like the
            # simulator's collector and the fast backend do.
            if not isinstance(k, (bytes, bytearray)) or not isinstance(
                v, (bytes, bytearray)
            ):
                raise FrameworkError("keys and values must be bytes")
            k, v = bytes(k), bytes(v)
        append((k, v))

    return emit


def _store_emit(store: SpillStore):
    """An emit closure that validates like :func:`_collecting_emit`
    but lands records straight in a spill store, so a shard's Map
    output never accumulates unbounded in worker memory."""
    emit_kv = store.emit

    def emit(k, v) -> None:
        if type(k) is not bytes or type(v) is not bytes:
            if not isinstance(k, (bytes, bytearray)) or not isinstance(
                v, (bytes, bytearray)
            ):
                raise FrameworkError("keys and values must be bytes")
            k, v = bytes(k), bytes(v)
        emit_kv(k, v)

    return emit


def _map_shard(task) -> tuple:
    """Map one shard; optionally partial-combine or spill its emissions.

    Returns ``("pairs", emitted, profile)``; under a BR partial
    combine, ``("combined", n_emitted, [(key, (acc, count)), ...],
    profile)`` with keys in first-emission order; under a spill store,
    ``("spilled", (run_paths, n_emitted, peak_bytes), profile)`` with
    every emission flushed to key-sorted run files the coordinator
    merges (and owns from here on).  The
    :class:`~repro.obs.telemetry.ShardProfile` records the shard's
    wall-clock bounds and throughput for the coordinator's per-worker
    tracks and straggler summary.
    """
    shard, pairs, do_combine, spill = task
    spec = _WORKER_SPEC
    t0 = time.perf_counter_ns()
    const = _accessor(spec.const_bytes) if spec.const_bytes else None
    map_record = spec.map_record
    if spill is not None:
        run_dir, budget = spill
        store = SpillStore(budget, spill_dir=run_dir,
                           prefix=f"shard{shard:04d}", own_dir=False)
        emit = _store_emit(store)
        for k, v in pairs:
            map_record(_accessor(k), _accessor(v), emit, const)
        runs = store.flush_runs()
        st = store.stats
        t1 = time.perf_counter_ns()
        profile = ShardProfile(
            phase="map", shard=shard, pid=os.getpid(),
            start_ns=t0, end_ns=t1, records_in=len(pairs),
            records_out=st.emitted_records,
            spill_runs=st.spill_runs, spilled_bytes=st.spilled_bytes,
        )
        return ("spilled", (runs, st.emitted_records, st.peak_bytes),
                profile)
    out: list[tuple[bytes, bytes]] = []
    emit = _collecting_emit(out)
    for k, v in pairs:
        map_record(_accessor(k), _accessor(v), emit, const)
    if not do_combine:
        t1 = time.perf_counter_ns()
        profile = ShardProfile(
            phase="map", shard=shard, pid=os.getpid(),
            start_ns=t0, end_ns=t1, records_in=len(pairs),
            records_out=len(out), distinct_keys=len({k for k, _ in out}),
        )
        return ("pairs", out, profile)
    t_combine = time.perf_counter_ns()
    combine = spec.combine
    acc: dict[bytes, tuple[bytes, int]] = {}
    for k, v in out:
        cur = acc.get(k)
        acc[k] = (v, 1) if cur is None else (combine(cur[0], v), cur[1] + 1)
    t1 = time.perf_counter_ns()
    profile = ShardProfile(
        phase="map", shard=shard, pid=os.getpid(),
        start_ns=t0, end_ns=t1, records_in=len(pairs),
        records_out=len(out), distinct_keys=len(acc),
        combined=True, combine_ns=t1 - t_combine,
    )
    return ("combined", len(out), list(acc.items()), profile)


def _reduce_range(task) -> tuple[list[tuple[bytes, bytes]], ShardProfile]:
    """Reduce one contiguous range of key groups.

    ``(shard, "plain", groups)`` carries ``(key, [value, ...])``
    groups and runs the strategy exactly like the fast backend;
    ``(shard, "combined", groups)`` carries ``(key, [(acc, count),
    ...])`` partial combines (in shard order) and finishes the BR
    fold.  Returns ``(records, profile)``.
    """
    shard, kind, groups = task
    spec = _WORKER_SPEC
    t0 = time.perf_counter_ns()
    out: list[tuple[bytes, bytes]] = []
    emit = _collecting_emit(out)
    const = _accessor(spec.const_bytes) if spec.const_bytes else None
    if kind == "combined":
        n_values = sum(c for _, parts in groups for _, c in parts)
        combine, finalize = spec.combine, spec.finalize
        for key, parts in groups:
            acc = _fold(combine, (a for a, _ in parts))
            k_out, v_out = finalize(key, acc, sum(c for _, c in parts))
            out.append((bytes(k_out), bytes(v_out)))
        return out, _reduce_profile(shard, t0, n_values, len(groups), out)
    n_values = sum(len(values) for _, values in groups)
    if _WORKER_STRATEGY is ReduceStrategy.BR and not _WORKER_IS_MARS:
        combine, finalize = spec.combine, spec.finalize
        for key, values in groups:
            acc = _fold(combine, values)
            k_out, v_out = finalize(key, acc, len(values))
            out.append((bytes(k_out), bytes(v_out)))
        return out, _reduce_profile(shard, t0, n_values, len(groups), out)
    reduce_record = spec.reduce_record
    cache: dict[bytes, Accessor] = {}

    def acc_of(data: bytes) -> Accessor:
        a = cache.get(data)
        if a is None:
            a = _accessor(data)
            cache[data] = a
        return a

    for key, values in groups:
        reduce_record(acc_of(key), [acc_of(v) for v in values], emit, const)
    return out, _reduce_profile(shard, t0, n_values, len(groups), out)


def _reduce_profile(shard: int, t0: int, n_values: int, n_groups: int,
                    out: list) -> ShardProfile:
    return ShardProfile(
        phase="reduce", shard=shard, pid=os.getpid(),
        start_ns=t0, end_ns=time.perf_counter_ns(),
        records_in=n_values, records_out=len(out),
        distinct_keys=n_groups,
    )


# ----------------------------------------------------------------------
# Coordinator-side handles
# ----------------------------------------------------------------------


class _MapOutput:
    """Map-phase handle: shard results still in per-shard form."""

    __slots__ = ("pairs", "combined", "emit_count")

    def __init__(self, pairs: KeyValueSet | None,
                 combined: list[list] | None, emit_count: int):
        #: Flat emissions in input order (None under partial combine).
        self.pairs = pairs
        #: Per-shard ``[(key, (acc, count)), ...]`` lists, shard order.
        self.combined = combined
        #: Records the user Map emitted (before any combining).
        self.emit_count = emit_count


class _CombinedGroups:
    """Shuffle-phase handle for partially combined intermediates."""

    __slots__ = ("groups",)

    def __init__(self, groups: list[tuple[bytes, list[tuple[bytes, int]]]]):
        self.groups = groups

    def __len__(self) -> int:
        return len(self.groups)


class _SpilledRuns:
    """Map-phase handle when shards spilled: per-shard run-file lists.

    ``run_lists`` is one chronological run-path list per shard, in
    shard order — exactly the producer layout
    :func:`repro.store.spill.merge_runs` needs to reconstruct global
    emission order for equal keys.  ``stats`` aggregates the workers'
    spill accounting (``peak_bytes`` sums the per-worker highs: the
    shards buffer concurrently, so the sum is the job's tracked peak).
    """

    __slots__ = ("run_lists", "emit_count", "stats")

    def __init__(self, run_lists: list[list[str]], emit_count: int,
                 peak_bytes: int, spill_runs: int, spilled_bytes: int):
        self.run_lists = run_lists
        self.emit_count = emit_count
        self.stats = StoreStats(
            emitted_records=emit_count, peak_bytes=peak_bytes,
            spill_runs=spill_runs, spilled_bytes=spilled_bytes,
        )


class ParallelContext:
    """Per-job state: the inner fast context plus the worker pool."""

    __slots__ = ("fast", "workers", "min_records", "pool", "profiles",
                 "spill_dirs")

    def __init__(self, fast: FastContext, workers: int, min_records: int):
        self.fast = fast
        self.workers = workers
        self.min_records = min_records
        self.pool = None
        #: Shard profiles shipped back from pool workers, in phase
        #: order; harvested by :meth:`ParallelBackend.finish_telemetry`.
        self.profiles: list[ShardProfile] = []
        #: Coordinator-owned spill directories (shared by the shard
        #: stores); removed wholesale in :meth:`ParallelBackend.close`,
        #: so even a failed job leaves no run files behind.
        self.spill_dirs: list[str] = []

    # The execution core reads/writes ``ctx.plan`` and reads
    # ``ctx.config``; keep the inner fast context authoritative.
    @property
    def plan(self) -> JobPlan:
        return self.fast.plan

    @plan.setter
    def plan(self, plan: JobPlan) -> None:
        self.fast.plan = plan

    @property
    def config(self):
        return self.fast.config


class ParallelBackend(ExecutionBackend):
    """Shard fast-backend execution across a process pool."""

    name = "parallel"

    def __init__(self, workers: int | None = None,
                 min_records: int | None = None):
        if workers is not None and workers < 1:
            raise FrameworkError("workers must be >= 1")
        self.workers = workers if workers is not None else default_workers()
        self.min_records = (DEFAULT_MIN_RECORDS if min_records is None
                            else max(0, min_records))
        # Pinned scalar: pool workers run the record-at-a-time path, so
        # parallel output never changes shape under $REPRO_COLUMNAR.
        self._fast = FastBackend(columnar=False)

    # -- lifecycle -----------------------------------------------------

    def open(self, plan: JobPlan) -> ParallelContext:
        return ParallelContext(
            fast=self._fast.open(plan),
            workers=self.workers,
            min_records=self.min_records,
        )

    def close(self, ctx: ParallelContext) -> None:
        if ctx.pool is not None:
            ctx.pool.close()
            ctx.pool.join()
            ctx.pool = None
        self._fast.close(ctx.fast)
        dirs, ctx.spill_dirs = ctx.spill_dirs, []
        for d in dirs:
            shutil.rmtree(d, ignore_errors=True)

    def resolve_auto(self, ctx, plan, inp):
        return self._fast.resolve_auto(ctx.fast, plan, inp)

    # -- pool management -----------------------------------------------

    def _pool_for(self, ctx: ParallelContext, n_records: int):
        """The job's pool, created on first use — or None when the
        input is too small, only one worker is configured, or the
        platform cannot fork."""
        if (ctx.workers < 2 or n_records < ctx.min_records
                or n_records < ctx.workers):
            return ctx.pool  # may exist from an earlier, larger batch
        if ctx.pool is None:
            if "fork" not in multiprocessing.get_all_start_methods():
                return None
            plan = ctx.plan
            ctx.pool = multiprocessing.get_context("fork").Pool(
                ctx.workers,
                initializer=_init_worker,
                initargs=(plan.spec, plan.strategy, plan.is_mars),
            )
        return ctx.pool

    # -- transfers and conversions (delegate to fast) -------------------

    def upload_input(self, ctx, kvs, label):
        return self._fast.upload_input(ctx.fast, kvs, label)

    def download_output(self, ctx, handle):
        return self._fast.download_output(ctx.fast, self._as_kvs(handle))

    def to_host(self, ctx, handle):
        return self._as_kvs(handle)

    def stage_intermediate(self, ctx, kvs, label):
        return kvs

    def record_count(self, ctx, handle) -> int:
        if isinstance(handle, (_MapOutput, _SpilledRuns)):
            return handle.emit_count
        return len(handle)

    # -- streamed sink (delegate to the store-aware fast logic) ---------

    def stream_sink(self, ctx):
        return self._fast.stream_sink(ctx.fast)

    def absorb_batch(self, ctx, sink, handle) -> None:
        if isinstance(sink, IntermediateStore):
            sink.emit_many(self.to_host(ctx, handle))
        else:
            super().absorb_batch(ctx, sink, handle)

    @staticmethod
    def _as_kvs(handle) -> KeyValueSet:
        if isinstance(handle, KeyValueSet):
            return handle
        if isinstance(handle, _MapOutput):
            if handle.pairs is None:
                raise FrameworkError(
                    "partially combined intermediate cannot be read back "
                    "as records"
                )
            return handle.pairs
        raise FrameworkError(f"not a host-readable handle: {type(handle)!r}")

    # -- phases ---------------------------------------------------------

    def _want_combine(self, plan: JobPlan, *, streamed: bool) -> bool:
        """Partial combine applies to single-shot BR jobs with a
        combiner.  The streamed driver flattens batch outputs into one
        host record set between Map and Shuffle, so partial
        accumulators cannot survive that hop.  A spilling job also
        skips it: run files carry plain pairs, and the full BR fold in
        Reduce keeps the output byte-identical to the fast backend
        (partial combining would regroup float folds)."""
        return (not streamed and not plan.is_mars
                and plan.strategy is ReduceStrategy.BR
                and plan.spec.combine is not None
                and not _spill_active(plan))

    def _spill_config(self, ctx, *, batch) -> tuple[str, int] | None:
        """Worker spill settings for one pooled Map, or None.

        Per-shard spill applies to single-shot jobs with a Reduce
        tail: strategy-``None`` jobs download the Map output directly,
        and streamed batches flow into the coordinator's sink store
        instead.  The budget splits evenly across workers (shards
        buffer concurrently, so the per-job bound is preserved).
        """
        plan = ctx.plan
        if batch is not None or plan.strategy is None \
                or not _spill_active(plan):
            return None
        # resolve_spill_root() validates $REPRO_SPILL_DIR (exists,
        # writable) so a bad setting fails here with a clear error
        # instead of surfacing as an OSError inside a pool worker.
        run_dir = tempfile.mkdtemp(
            prefix="repro-spill-", dir=resolve_spill_root()
        )
        ctx.spill_dirs.append(run_dir)
        budget = resolve_budget(plan.memory_budget) or DEFAULT_BUDGET
        return run_dir, max(1, budget // ctx.workers)

    def map_phase(self, ctx, d_in, tr, *, batch=None):
        plan = ctx.plan
        pool = self._pool_for(ctx, len(d_in))
        if pool is None:
            return self._fast.map_phase(ctx.fast, d_in, tr, batch=batch)

        do_combine = self._want_combine(plan, streamed=batch is not None)
        spill = self._spill_config(ctx, batch=batch)
        slices = shard_slices(len(d_in), ctx.workers)
        keys, vals = d_in.keys, d_in.values
        tasks = [(shard, list(zip(keys[lo:hi], vals[lo:hi])), do_combine,
                  spill)
                 for shard, (lo, hi) in enumerate(slices)]
        results = pool.map(_map_shard, tasks, chunksize=1)
        self._record_profiles(ctx, tr, [r[-1] for r in results])

        if spill is not None:
            emit_count = sum(r[1][1] for r in results)
            handle = _SpilledRuns(
                run_lists=[r[1][0] for r in results],
                emit_count=emit_count,
                peak_bytes=sum(r[1][2] for r in results),
                spill_runs=sum(len(r[1][0]) for r in results),
                spilled_bytes=sum(p.spilled_bytes
                                  for _, _, p in results),
            )
            stats = self._phase_stats(ctx, records_in=len(d_in),
                                      records_out=emit_count,
                                      shards=len(slices))
            attrs = {"batch": batch} if batch is not None else {}
            tr.kernel("map_kernel", stats, **attrs)
            return handle, stats
        if do_combine:
            emit_count = sum(r[1] for r in results)
            handle = _MapOutput(pairs=None,
                                combined=[r[2] for r in results],
                                emit_count=emit_count)
        else:
            out = KeyValueSet()
            append = out.append_unchecked
            for _, pairs, _profile in results:
                for k, v in pairs:
                    append(k, v)
            emit_count = len(out)
            handle = _MapOutput(pairs=out, combined=None,
                                emit_count=emit_count)
        stats = self._phase_stats(ctx, records_in=len(d_in),
                                  records_out=emit_count,
                                  shards=len(slices))
        if do_combine:
            stats.count("parallel_combined_out",
                        sum(len(r[2]) for r in results))
        attrs = {"batch": batch} if batch is not None else {}
        tr.kernel("map_kernel", stats, **attrs)
        return handle, stats

    def shuffle_phase(self, ctx, inter, tr, label):
        if isinstance(inter, _SpilledRuns):
            # Per-shard runs: merge-stream them shard-major, exactly
            # the group order the in-memory shuffle would produce.
            with tr.span("shuffle_exec", records=inter.emit_count) as sp:
                if sp is not None:
                    sp.attrs["spill_runs"] = inter.stats.spill_runs
                    sp.attrs["spilled_bytes"] = inter.stats.spilled_bytes
                inter.stats.merge_fan_in = sum(
                    len(runs) for runs in inter.run_lists
                )
            grouped = StoreGroups(merge_runs(inter.run_lists), inter.stats)
            return grouped, 0.0, None
        if isinstance(inter, IntermediateStore):
            # Streamed sink store: the fast logic finalizes it.
            return self._fast.shuffle_phase(ctx.fast, inter, tr, label)
        if isinstance(inter, _MapOutput) and inter.combined is not None:
            merged: dict[bytes, list[tuple[bytes, int]]] = {}
            for shard in inter.combined:  # shard order = emission order
                for key, part in shard:
                    bucket = merged.get(key)
                    if bucket is None:
                        merged[key] = [part]
                    else:
                        bucket.append(part)
            grouped = _CombinedGroups(sorted(merged.items()))
            return grouped, 0.0, len(grouped)
        return self._fast.shuffle_phase(ctx.fast, self._as_kvs(inter), tr,
                                        label)

    def reduce_phase(self, ctx, grouped, tr, *, include_grid=True):
        plan = ctx.plan
        spec = plan.spec
        # Same legality checks as the fast backend and the sim's
        # reduce engine.
        if plan.is_mars and spec.reduce_record is None:
            raise FrameworkError(f"{spec.name}: Mars reduce needs a TR "
                                 "reduce fn")
        if not plan.is_mars:
            effective_reduce_mode(plan.reduce_mode, plan.strategy)
            if (plan.strategy is ReduceStrategy.TR
                    and spec.reduce_record is None):
                raise FrameworkError(
                    f"workload {spec.name} has no TR reduce function"
                )

        if isinstance(grouped, StoreGroups):
            return self._reduce_stream(ctx, grouped, tr)

        combined = isinstance(grouped, _CombinedGroups)
        groups = grouped.groups if combined else grouped
        n_values = (sum(c for _, parts in groups for _, c in parts)
                    if combined
                    else sum(len(values) for _, values in groups))
        pool = ctx.pool if len(groups) >= ctx.workers else None
        kind = "combined" if combined else "plain"

        if pool is None:
            results = [_reduce_range_inproc(ctx, kind, groups)]
            n_ranges = 1
        else:
            slices = shard_slices(len(groups), ctx.workers)
            tasks = [(shard, kind, groups[lo:hi])
                     for shard, (lo, hi) in enumerate(slices)]
            results = pool.map(_reduce_range, tasks, chunksize=1)
            n_ranges = len(slices)
            self._record_profiles(ctx, tr, [p for _, p in results])

        out = KeyValueSet()
        append = out.append_unchecked
        for chunk, _profile in results:  # range order = sorted key order
            for k, v in chunk:
                append(k, v)
        stats = self._phase_stats(ctx, records_in=n_values,
                                  records_out=len(out), shards=n_ranges)
        if combined:
            stats.count("parallel_combined_in", len(groups))
        tr.kernel("reduce_kernel", stats)
        return out, stats

    def _reduce_stream(self, ctx, grouped: StoreGroups, tr):
        """Reduce a lazy group stream in bounded key-ordered batches.

        The stream's length is unknown up front, so instead of one
        contiguous range per worker the groups are consumed in
        fixed-size chunks fed through ``pool.imap`` (ordered), keeping
        at most a few chunks of groups materialised at a time.  Chunk
        outputs concatenate in chunk order = sorted key order, so the
        output matches the eager path exactly.
        """
        out = KeyValueSet()
        append = out.append_unchecked
        pool = ctx.pool

        def tasks():
            it = iter(grouped)
            shard = 0
            while True:
                chunk = list(islice(it, SPILL_REDUCE_BATCH))
                if not chunk:
                    return
                yield (shard, "plain", chunk)
                shard += 1

        if pool is None:
            plan = ctx.plan
            _init_worker(plan.spec, plan.strategy, plan.is_mars)
            try:
                results_iter = map(_reduce_range, tasks())
                n_values, n_ranges, profiles = self._drain_reduce(
                    results_iter, append
                )
            finally:
                _init_worker(None, None, False)
        else:
            results_iter = pool.imap(_reduce_range, tasks(), chunksize=1)
            n_values, n_ranges, profiles = self._drain_reduce(
                results_iter, append
            )
            self._record_profiles(ctx, tr, profiles)

        stats = self._phase_stats(ctx, records_in=n_values,
                                  records_out=len(out), shards=n_ranges)
        if grouped.stats is not None:
            for name, v in grouped.stats.as_extra().items():
                stats.count(name, v)
        tr.kernel("reduce_kernel", stats)
        return out, stats

    @staticmethod
    def _drain_reduce(results_iter, append):
        n_values = n_ranges = 0
        profiles = []
        for chunk_out, profile in results_iter:
            n_ranges += 1
            n_values += profile.records_in
            for k, v in chunk_out:
                append(k, v)
            profiles.append(profile)
        return n_values, n_ranges, profiles

    # -- telemetry ------------------------------------------------------

    @staticmethod
    def _record_profiles(ctx: ParallelContext, tr,
                         profiles: list[ShardProfile]) -> None:
        """Bank shard profiles on the context and merge them into the
        tracer as per-worker tracks (shard index = track id)."""
        ctx.profiles.extend(profiles)
        for p in profiles:
            tr.worker_span(
                p.shard, f"{p.phase}_shard", p.start_ns, p.end_ns,
                pid=p.pid, records_in=p.records_in,
                records_out=p.records_out, distinct_keys=p.distinct_keys,
                combine_ns=p.combine_ns if p.combined else None,
                spill_runs=p.spill_runs if p.spill_runs else None,
                spilled_bytes=p.spilled_bytes if p.spill_runs else None,
            )

    def finish_telemetry(self, ctx: ParallelContext):
        """Shard profiles collected this job (empty -> None: in-process
        fallback runs have no cross-process telemetry to report)."""
        return ctx.profiles or None

    @staticmethod
    def _phase_stats(ctx, *, records_in: int, records_out: int,
                     shards: int) -> KernelStats:
        """Like the fast backend's: zero cycles, throughput counters
        only, plus the sharding shape."""
        stats = KernelStats(threads_per_block=ctx.plan.threads_per_block)
        stats.count("fast_records_in", records_in)
        stats.count("fast_records_out", records_out)
        stats.count("parallel_shards", shards)
        stats.count("parallel_workers", ctx.workers)
        return stats


def _reduce_range_inproc(ctx: ParallelContext, kind: str, groups):
    """Run a reduce range in-process using the worker entry point."""
    plan = ctx.plan
    _init_worker(plan.spec, plan.strategy, plan.is_mars)
    try:
        return _reduce_range((0, kind, groups))
    finally:
        _init_worker(None, None, False)
