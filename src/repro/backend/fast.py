"""Fast functional execution backend (no warp-level simulation).

Runs the *same* user Map/Reduce functions as the simulator, but
directly on the host: Map is a tight loop over the records, Shuffle a
dict group-by sorted by key bytes (matching the device's sort-based
shuffle), Reduce a loop over the key sets under either strategy.
Output is record-identical to :class:`~repro.backend.sim.SimBackend`
(up to the record reordering the sim's atomic appends legitimately
introduce — the cross-backend differential suite normalises by
sorting, like every other equivalence check in this repo).

Two tricks keep it orders of magnitude faster than both the simulator
and the naive CPU oracle:

* user functions receive :class:`~repro.gpu.accessor.Accessor` views
  carrying a shared *null* access trace — ``touch`` is a no-op, so no
  per-word trace lists are built only to be thrown away;
* value accessors are memoised by payload bytes in the Reduce loop
  (real workloads repeat values massively — Word Count's ``1``\\ s),
  eliminating most allocation.

What timings mean here: ``io_in``/``io_out`` are the same affine PCIe
transfer model the simulator charges (the data really would move);
``map``/``shuffle``/``reduce`` cycles are **zero** — this backend
measures *functional* behaviour and wall-clock throughput, never
kernel time.  Use the sim backend for any figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce as _fold

from ..errors import FrameworkError
from ..framework.host import host_download_cost, host_upload_cost
from ..framework.modes import ReduceStrategy, effective_reduce_mode
from ..framework.records import KeyValueSet
from ..gpu.accessor import Accessor, AccessTrace
from ..gpu.config import DeviceConfig
from ..gpu.stats import KernelStats
from ..store import (
    IntermediateStore,
    MemoryStore,
    SpillStore,
    open_store,
    resolve_store_name,
)
from .base import ExecutionBackend
from .plan import JobPlan


class _NullTrace(AccessTrace):
    """An access trace that records nothing (shared by all accessors)."""

    __slots__ = ()

    def touch(self, start: int, nbytes: int) -> None:
        return


#: One shared no-op trace: accessors built on it never allocate lists.
NULL_TRACE = _NullTrace()


def _accessor(data: bytes) -> Accessor:
    return Accessor(data, NULL_TRACE)


@dataclass
class FastContext:
    """Per-job state of a fast run: the transfer-model config plus any
    live intermediate stores (closed by :meth:`FastBackend.close`, so
    a failed job still releases spill files)."""

    plan: JobPlan
    config: DeviceConfig
    stores: list[IntermediateStore] = field(default_factory=list)


class StoreGroups:
    """Lazy grouped-intermediate handle: streams ``(key, values)``
    groups out of a spilling store (or any key-sorted group iterator).

    Unlike the eager ``list`` the memory path returns, this is
    single-consumption and has no length until drained — Reduce counts
    groups as it streams them.  ``stats`` exposes the producing
    store's :class:`~repro.store.base.StoreStats` so the reduce phase
    can fold spill accounting into its :class:`KernelStats`.
    """

    __slots__ = ("stats", "_it")

    def __init__(self, source, stats=None):
        if isinstance(source, IntermediateStore):
            self.stats = source.stats
            self._it = source.iter_groups()
        else:
            self.stats = stats
            self._it = source

    def __iter__(self):
        return iter(self._it)


class FastBackend(ExecutionBackend):
    """Execute functionally on the host, skipping the simulator."""

    name = "fast"

    def open(self, plan: JobPlan) -> FastContext:
        cfg = plan.config
        if cfg is None and plan.device is not None:
            cfg = plan.device.config
        return FastContext(plan=plan, config=cfg or DeviceConfig.gtx280())

    def close(self, ctx) -> None:
        stores, ctx.stores = ctx.stores, []
        for store in stores:
            store.close()

    def resolve_auto(self, ctx, plan, inp):
        """Memory modes are a timing choice the fast backend does not
        model; 'auto' resolves to the paper's full design (SIO) with
        no probing."""
        from dataclasses import replace

        from ..framework.modes import MemoryMode

        return replace(plan, mode=MemoryMode.SIO).normalised()

    # -- transfers (model-costed, data stays host-side) ----------------

    def upload_input(self, ctx, kvs, label):
        return kvs, host_upload_cost(kvs, ctx.config).cycles

    def download_output(self, ctx, handle):
        return handle, host_download_cost(handle, ctx.config).cycles

    def to_host(self, ctx, handle):
        return handle

    def stage_intermediate(self, ctx, kvs, label):
        return kvs

    def record_count(self, ctx, handle) -> int:
        return len(handle)

    # -- phases --------------------------------------------------------

    def map_phase(self, ctx, d_in, tr, *, batch=None):
        spec = ctx.plan.spec
        out = KeyValueSet()
        emit = _emit_into(out)
        const = _accessor(spec.const_bytes) if spec.const_bytes else None
        map_record = spec.map_record
        # Host-execution sub-span: zero sim cycles by design, but under
        # a dual-clock tracer it carries the real wall time of the loop
        # — this is what makes `repro-trace --backend fast` non-empty.
        with tr.span("map_exec", records=len(d_in)) as sp:
            for k, v in d_in:
                map_record(_accessor(k), _accessor(v), emit, const)
            if sp is not None:
                sp.attrs["emitted"] = len(out)
        stats = _phase_stats(ctx, records_in=len(d_in), records_out=len(out))
        attrs = {"batch": batch} if batch is not None else {}
        tr.kernel("map_kernel", stats, **attrs)
        return out, stats

    def shuffle_phase(self, ctx, inter, tr, label):
        plan = ctx.plan
        if isinstance(inter, IntermediateStore):
            # Streamed sink: the batches already emitted into the store.
            store = inter
            with tr.span("shuffle_exec", records=len(store)) as sp:
                return self._grouped_from(ctx, store, sp)
        with tr.span("shuffle_exec", records=len(inter)) as sp:
            store = open_store(plan.store, plan.memory_budget)
            ctx.stores.append(store)
            store.emit_many(inter)
            return self._grouped_from(ctx, store, sp)

    def _grouped_from(self, ctx, store, sp):
        """Finalize a filled store into the grouped handle.

        Memory stores drain eagerly into the historical sorted list
        (exact group count, byte-identical default path); spill stores
        hand back a lazy :class:`StoreGroups` stream with the group
        count unknown until Reduce drains it.
        """
        store.finalize()
        if isinstance(store, MemoryStore):
            grouped = list(store.iter_groups())
            if sp is not None:
                sp.attrs["groups"] = len(grouped)
            return grouped, 0.0, len(grouped)
        if sp is not None:
            sp.attrs["spill_runs"] = store.stats.spill_runs
            sp.attrs["spilled_bytes"] = store.stats.spilled_bytes
        return StoreGroups(store), 0.0, None

    def reduce_phase(self, ctx, grouped, tr, *, include_grid=True):
        plan = ctx.plan
        spec = plan.spec
        strategy = plan.strategy
        if plan.is_mars and spec.reduce_record is None:
            raise FrameworkError(
                f"{spec.name}: Mars reduce needs a TR reduce fn"
            )
        if not plan.is_mars:
            # Same legality checks as the sim's reduce engine (BR x GT
            # is rejected; TR without a reduce fn is rejected).
            effective_reduce_mode(plan.reduce_mode, strategy)
            if strategy is ReduceStrategy.TR and spec.reduce_record is None:
                raise FrameworkError(
                    f"workload {spec.name} has no TR reduce function"
                )
        out = KeyValueSet()
        emit = _emit_into(out)
        const = _accessor(spec.const_bytes) if spec.const_bytes else None
        lazy = isinstance(grouped, StoreGroups)
        span_attrs = {} if lazy else {"groups": len(grouped)}
        n_in = n_groups = 0
        with tr.span("reduce_exec", **span_attrs) as sp:
            if strategy is ReduceStrategy.BR and not plan.is_mars:
                combine, finalize = spec.combine, spec.finalize
                for key, values in grouped:
                    n_groups += 1
                    n_in += len(values)
                    acc = _fold(combine, values)
                    k_out, v_out = finalize(key, acc, len(values))
                    out.append(bytes(k_out), bytes(v_out))
            else:
                reduce_record = spec.reduce_record
                cache: dict[bytes, Accessor] = {}

                def acc_of(data: bytes) -> Accessor:
                    a = cache.get(data)
                    if a is None:
                        a = _accessor(data)
                        cache[data] = a
                    return a

                for key, values in grouped:
                    n_groups += 1
                    n_in += len(values)
                    reduce_record(
                        acc_of(key), [acc_of(v) for v in values], emit, const
                    )
            if sp is not None:
                sp.attrs["emitted"] = len(out)
                if lazy:
                    sp.attrs["groups"] = n_groups
        stats = _phase_stats(ctx, records_in=n_in, records_out=len(out))
        if lazy and grouped.stats is not None:
            for name, v in grouped.stats.as_extra().items():
                stats.count(name, v)
        tr.kernel("reduce_kernel", stats)
        return out, stats

    # -- streamed sink ---------------------------------------------------

    def stream_sink(self, ctx):
        """Spill-aware streamed accumulator: when the plan (or env)
        selects the spill store and the job has a Reduce tail, batch
        Map output goes straight into a budgeted store instead of an
        unbounded host record set.  Strategy-``None`` jobs keep the
        record set — their sink *is* the job output."""
        plan = ctx.plan
        if plan.strategy is not None and \
                resolve_store_name(plan.store) == SpillStore.name:
            store = open_store("spill", plan.memory_budget)
            ctx.stores.append(store)
            return store
        return KeyValueSet()

    def absorb_batch(self, ctx, sink, handle) -> None:
        if isinstance(sink, IntermediateStore):
            sink.emit_many(self.to_host(ctx, handle))
        else:
            super().absorb_batch(ctx, sink, handle)


def _emit_into(out: KeyValueSet):
    fast_append = out.append_unchecked
    checked_append = out.append

    def emit(k: bytes, v: bytes) -> None:
        if type(k) is bytes and type(v) is bytes:
            fast_append(k, v)
        else:
            # bytearray/memoryview emits: validate and copy like the
            # simulator's collector does.
            checked_append(k, v)

    return emit


def _phase_stats(ctx, *, records_in: int, records_out: int) -> KernelStats:
    """Placeholder stats: the fast backend does not model kernel time,
    so ``cycles`` is zero and only throughput counters are filled."""
    stats = KernelStats(threads_per_block=ctx.plan.threads_per_block)
    stats.count("fast_records_in", records_in)
    stats.count("fast_records_out", records_out)
    return stats
