"""Fast functional execution backend (no warp-level simulation).

Runs the *same* user Map/Reduce functions as the simulator, but
directly on the host: Map is a tight loop over the records, Shuffle a
dict group-by sorted by key bytes (matching the device's sort-based
shuffle), Reduce a loop over the key sets under either strategy.
Output is record-identical to :class:`~repro.backend.sim.SimBackend`
(up to the record reordering the sim's atomic appends legitimately
introduce — the cross-backend differential suite normalises by
sorting, like every other equivalence check in this repo).

Two tricks keep it orders of magnitude faster than both the simulator
and the naive CPU oracle:

* user functions receive :class:`~repro.gpu.accessor.Accessor` views
  carrying a shared *null* access trace — ``touch`` is a no-op, so no
  per-word trace lists are built only to be thrown away;
* value accessors are memoised by payload bytes in the Reduce loop
  (real workloads repeat values massively — Word Count's ``1``\\ s),
  eliminating most allocation.

What timings mean here: ``io_in``/``io_out`` are the same affine PCIe
transfer model the simulator charges (the data really would move);
``map``/``shuffle``/``reduce`` cycles are **zero** — this backend
measures *functional* behaviour and wall-clock throughput, never
kernel time.  Use the sim backend for any figure.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import reduce as _fold

from ..errors import FrameworkError
from ..framework.columns import ColumnBatch, GroupedColumns
from ..framework.host import host_download_cost, host_upload_cost
from ..framework.modes import ReduceStrategy, effective_reduce_mode
from ..framework.records import KeyValueSet
from ..gpu.accessor import Accessor, AccessTrace
from ..gpu.config import DeviceConfig
from ..gpu.stats import KernelStats
from ..store import (
    IntermediateStore,
    MemoryStore,
    SpillStore,
    open_store,
    resolve_store_name,
)
from .base import ExecutionBackend
from .plan import JobPlan

#: Environment variable turning the columnar path on process-wide
#: (``1``/``true``/``yes``/``on``) when neither the plan nor the
#: backend instance decides.
COLUMNAR_ENV = "REPRO_COLUMNAR"

#: Environment variable overriding the records-per-batch width.
COLUMNAR_BATCH_ENV = "REPRO_COLUMNAR_BATCH"

#: Default columnar Map batch width, in records.
DEFAULT_BATCH_RECORDS = 8192


def columnar_env_enabled() -> bool:
    """Does ``$REPRO_COLUMNAR`` request the columnar path?"""
    return os.environ.get(COLUMNAR_ENV, "").strip().lower() in (
        "1", "true", "yes", "on"
    )


def _batch_records() -> int:
    raw = os.environ.get(COLUMNAR_BATCH_ENV)
    if not raw:
        return DEFAULT_BATCH_RECORDS
    try:
        n = int(raw)
    except ValueError:
        raise FrameworkError(
            f"${COLUMNAR_BATCH_ENV} must be an integer, got {raw!r}"
        ) from None
    if n < 1:
        raise FrameworkError(
            f"${COLUMNAR_BATCH_ENV} must be >= 1, got {raw!r}"
        )
    return n


class _NullTrace(AccessTrace):
    """An access trace that records nothing (shared by all accessors)."""

    __slots__ = ()

    def touch(self, start: int, nbytes: int) -> None:
        return


#: One shared no-op trace: accessors built on it never allocate lists.
NULL_TRACE = _NullTrace()


def _accessor(data: bytes) -> Accessor:
    return Accessor(data, NULL_TRACE)


@dataclass
class FastContext:
    """Per-job state of a fast run: the transfer-model config plus any
    live intermediate stores (closed by :meth:`FastBackend.close`, so
    a failed job still releases spill files)."""

    plan: JobPlan
    config: DeviceConfig
    stores: list[IntermediateStore] = field(default_factory=list)
    #: Columnar execution resolved for this job (plan -> backend ->
    #: ``$REPRO_COLUMNAR``); see :meth:`FastBackend.map_phase`.
    columnar: bool = False
    #: Records per columnar Map batch.
    batch_records: int = DEFAULT_BATCH_RECORDS


class StoreGroups:
    """Lazy grouped-intermediate handle: streams ``(key, values)``
    groups out of a spilling store (or any key-sorted group iterator).

    Unlike the eager ``list`` the memory path returns, this is
    single-consumption and has no length until drained — Reduce counts
    groups as it streams them.  ``stats`` exposes the producing
    store's :class:`~repro.store.base.StoreStats` so the reduce phase
    can fold spill accounting into its :class:`KernelStats`.
    """

    __slots__ = ("stats", "_it")

    def __init__(self, source, stats=None):
        if isinstance(source, IntermediateStore):
            self.stats = source.stats
            self._it = source.iter_groups()
        else:
            self.stats = stats
            self._it = source

    def __iter__(self):
        return iter(self._it)


class FastBackend(ExecutionBackend):
    """Execute functionally on the host, skipping the simulator.

    ``columnar=True`` switches Map/Shuffle/Reduce onto the vectorized
    columnar path (:mod:`repro.framework.columns`): input records are
    batched into array columns, workloads with ``map_batch`` /
    ``reduce_batch`` run whole batches through numpy, the shuffle is a
    stable argsort + group-boundary scan instead of the dict group-by,
    and workloads without batch kernels fall back to the scalar API
    per batch.  ``columnar=None`` (the default) consults the job plan,
    then ``$REPRO_COLUMNAR``.  Output stays byte-identical for integer
    workloads and bit-equal in practice for the float ones (batch
    kernels preserve the scalar operation order).
    """

    name = "fast"

    def __init__(self, columnar: bool | None = None):
        self.columnar = columnar

    def _columnar_enabled(self, plan: JobPlan) -> bool:
        if plan.columnar is not None:
            return bool(plan.columnar)
        if self.columnar is not None:
            return bool(self.columnar)
        return columnar_env_enabled()

    def open(self, plan: JobPlan) -> FastContext:
        cfg = plan.config
        if cfg is None and plan.device is not None:
            cfg = plan.device.config
        return FastContext(
            plan=plan,
            config=cfg or DeviceConfig.gtx280(),
            columnar=self._columnar_enabled(plan),
            batch_records=_batch_records(),
        )

    def close(self, ctx) -> None:
        stores, ctx.stores = ctx.stores, []
        for store in stores:
            store.close()

    def resolve_auto(self, ctx, plan, inp):
        """Memory modes are a timing label for the fast backend, not a
        semantics choice — but 'auto' still routes through the same
        cost-model tuner as the sim backend so the chosen (mode,
        strategy, block size) labels match across backends and the
        differential suite can compare runs one-to-one."""
        from dataclasses import replace

        from ..tune import decide_modes

        decision = decide_modes(
            plan.spec, inp, config=ctx.config,
            strategy=plan.strategy,
            threads_per_block=plan.threads_per_block,
        )
        return replace(
            plan, mode=decision.mode, strategy=decision.strategy,
            threads_per_block=decision.threads_per_block, tuned=decision,
        ).normalised()

    # -- transfers (model-costed, data stays host-side) ----------------

    def upload_input(self, ctx, kvs, label):
        return kvs, host_upload_cost(kvs, ctx.config).cycles

    def download_output(self, ctx, handle):
        return handle, host_download_cost(handle, ctx.config).cycles

    def to_host(self, ctx, handle):
        return handle

    def stage_intermediate(self, ctx, kvs, label):
        return kvs

    def record_count(self, ctx, handle) -> int:
        return len(handle)

    # -- phases --------------------------------------------------------

    def map_phase(self, ctx, d_in, tr, *, batch=None):
        if ctx.columnar and batch is None:
            # Streamed batches (batch is not None) keep the scalar Map:
            # their sink is record-oriented; the columnar path picks
            # the stream back up at the Shuffle.
            return self._map_phase_columnar(ctx, d_in, tr)
        spec = ctx.plan.spec
        out = KeyValueSet()
        emit = _emit_into(out)
        const = _accessor(spec.const_bytes) if spec.const_bytes else None
        map_record = spec.map_record
        # Host-execution sub-span: zero sim cycles by design, but under
        # a dual-clock tracer it carries the real wall time of the loop
        # — this is what makes `repro-trace --backend fast` non-empty.
        with tr.span("map_exec", records=len(d_in)) as sp:
            for k, v in d_in:
                map_record(_accessor(k), _accessor(v), emit, const)
            if sp is not None:
                sp.attrs["emitted"] = len(out)
        stats = _phase_stats(ctx, records_in=len(d_in), records_out=len(out))
        attrs = {"batch": batch} if batch is not None else {}
        tr.kernel("map_kernel", stats, **attrs)
        return out, stats

    def _map_phase_columnar(self, ctx, d_in, tr):
        """Columnar Map: batch the input into columns, run the
        workload's ``map_batch`` per batch (scalar fallback for
        batches it declines or when no batch kernel exists), and hand
        the Shuffle one concatenated :class:`ColumnBatch`."""
        plan = ctx.plan
        spec = plan.spec
        n = len(d_in)
        width = ctx.batch_records
        map_batch = spec.map_batch
        map_record = spec.map_record
        const_bytes = spec.const_bytes
        const = _accessor(const_bytes) if const_bytes else None
        parts: list[ColumnBatch] = []
        vec = fallback = 0
        with tr.span("map_exec", records=n) as sp:
            keys, vals = d_in.keys, d_in.values
            for lo in range(0, n, width):
                hi = min(lo + width, n)
                res = None
                if map_batch is not None:
                    cols = ColumnBatch.from_lists(keys[lo:hi], vals[lo:hi])
                    res = map_batch(cols, const=const_bytes)
                    if res is not None and not isinstance(res, ColumnBatch):
                        raise FrameworkError(
                            f"{spec.name}.map_batch must return a "
                            f"ColumnBatch or None, got {type(res)!r}"
                        )
                if res is None:
                    part = KeyValueSet()
                    emit = _emit_into(part)
                    for i in range(lo, hi):
                        map_record(_accessor(keys[i]), _accessor(vals[i]),
                                   emit, const)
                    res = ColumnBatch.from_kvs(part)
                    fallback += 1
                else:
                    vec += 1
                parts.append(res)
            out = (ColumnBatch.concat(parts) if parts
                   else ColumnBatch.from_lists([], []))
            if sp is not None:
                sp.attrs["emitted"] = len(out)
                sp.attrs["columnar_batches"] = vec + fallback
                sp.attrs["vectorized_batches"] = vec
        stats = _phase_stats(ctx, records_in=n, records_out=len(out))
        stats.count("columnar_batches", vec + fallback)
        stats.count("columnar_map_vectorized", vec)
        stats.count("columnar_map_fallback", fallback)
        stats.count("columnar_batch_records", min(width, n) if n else 0)
        tr.kernel("map_kernel", stats)
        if plan.strategy is None:
            # Map-only job: the Map output *is* the job output, which
            # downstream consumers read as a host record set.
            return out.to_kvs(), stats
        return out, stats

    def shuffle_phase(self, ctx, inter, tr, label):
        plan = ctx.plan
        if isinstance(inter, IntermediateStore):
            # Streamed sink: the batches already emitted into the store.
            store = inter
            with tr.span("shuffle_exec", records=len(store)) as sp:
                return self._grouped_from(ctx, store, sp)
        if ctx.columnar:
            if not isinstance(inter, ColumnBatch):
                # Streamed tail: the sink is a host record set — lift
                # it into columns so the vectorized group-by applies.
                inter = ColumnBatch.from_kvs(inter)
            with tr.span("shuffle_exec", records=len(inter)) as sp:
                store = open_store(plan.store, plan.memory_budget)
                ctx.stores.append(store)
                store.emit_columns(inter)
                return self._grouped_from(ctx, store, sp)
        with tr.span("shuffle_exec", records=len(inter)) as sp:
            store = open_store(plan.store, plan.memory_budget)
            ctx.stores.append(store)
            store.emit_many(inter)
            return self._grouped_from(ctx, store, sp)

    def _grouped_from(self, ctx, store, sp):
        """Finalize a filled store into the grouped handle.

        Memory stores drain eagerly into the historical sorted list
        (exact group count, byte-identical default path); spill stores
        hand back a lazy :class:`StoreGroups` stream with the group
        count unknown until Reduce drains it.
        """
        store.finalize()
        if isinstance(store, MemoryStore):
            if ctx.columnar:
                cg = store.column_groups()
                if cg is not None:
                    if sp is not None:
                        sp.attrs["groups"] = len(cg)
                        sp.attrs["vectorized"] = cg.vectorized
                    return cg, 0.0, len(cg)
            grouped = list(store.iter_groups())
            if sp is not None:
                sp.attrs["groups"] = len(grouped)
            return grouped, 0.0, len(grouped)
        if sp is not None:
            sp.attrs["spill_runs"] = store.stats.spill_runs
            sp.attrs["spilled_bytes"] = store.stats.spilled_bytes
        return StoreGroups(store), 0.0, None

    def reduce_phase(self, ctx, grouped, tr, *, include_grid=True):
        plan = ctx.plan
        spec = plan.spec
        strategy = plan.strategy
        if plan.is_mars and spec.reduce_record is None:
            raise FrameworkError(
                f"{spec.name}: Mars reduce needs a TR reduce fn"
            )
        if not plan.is_mars:
            # Same legality checks as the sim's reduce engine (BR x GT
            # is rejected; TR without a reduce fn is rejected).
            effective_reduce_mode(plan.reduce_mode, strategy)
            if strategy is ReduceStrategy.TR and spec.reduce_record is None:
                raise FrameworkError(
                    f"workload {spec.name} has no TR reduce function"
                )
        out = KeyValueSet()
        emit = _emit_into(out)
        const = _accessor(spec.const_bytes) if spec.const_bytes else None
        lazy = isinstance(grouped, StoreGroups)
        columnar = isinstance(grouped, GroupedColumns)
        span_attrs = {} if lazy else {"groups": len(grouped)}
        n_in = n_groups = 0
        vec_reduce = 0
        with tr.span("reduce_exec", **span_attrs) as sp:
            if (columnar and spec.reduce_batch is not None
                    and (plan.is_mars
                         or strategy is ReduceStrategy.TR)):
                res = spec.reduce_batch(
                    grouped.keys, grouped.offsets, grouped.values,
                    const=spec.const_bytes,
                )
                if res is not None:
                    if not isinstance(res, ColumnBatch):
                        raise FrameworkError(
                            f"{spec.name}.reduce_batch must return a "
                            f"ColumnBatch or None, got {type(res)!r}"
                        )
                    out = res.to_kvs()
                    n_groups = len(grouped)
                    n_in = grouped.n_values
                    vec_reduce = 1
            if vec_reduce:
                pass  # vectorized Reduce produced the output above
            elif strategy is ReduceStrategy.BR and not plan.is_mars:
                combine, finalize = spec.combine, spec.finalize
                for key, values in grouped:
                    n_groups += 1
                    n_in += len(values)
                    acc = _fold(combine, values)
                    k_out, v_out = finalize(key, acc, len(values))
                    out.append(bytes(k_out), bytes(v_out))
            else:
                reduce_record = spec.reduce_record
                cache: dict[bytes, Accessor] = {}

                def acc_of(data: bytes) -> Accessor:
                    a = cache.get(data)
                    if a is None:
                        a = _accessor(data)
                        cache[data] = a
                    return a

                for key, values in grouped:
                    n_groups += 1
                    n_in += len(values)
                    reduce_record(
                        acc_of(key), [acc_of(v) for v in values], emit, const
                    )
            if sp is not None:
                sp.attrs["emitted"] = len(out)
                if lazy:
                    sp.attrs["groups"] = n_groups
        stats = _phase_stats(ctx, records_in=n_in, records_out=len(out))
        if lazy and grouped.stats is not None:
            for name, v in grouped.stats.as_extra().items():
                stats.count(name, v)
        if columnar:
            stats.count("columnar_groups", n_groups)
            stats.count("columnar_reduce_vectorized", vec_reduce)
        tr.kernel("reduce_kernel", stats)
        return out, stats

    # -- streamed sink ---------------------------------------------------

    def stream_sink(self, ctx):
        """Spill-aware streamed accumulator: when the plan (or env)
        selects the spill store and the job has a Reduce tail, batch
        Map output goes straight into a budgeted store instead of an
        unbounded host record set.  Strategy-``None`` jobs keep the
        record set — their sink *is* the job output."""
        plan = ctx.plan
        if plan.strategy is not None and \
                resolve_store_name(plan.store) == SpillStore.name:
            store = open_store("spill", plan.memory_budget)
            ctx.stores.append(store)
            return store
        return KeyValueSet()

    def absorb_batch(self, ctx, sink, handle) -> None:
        if isinstance(sink, IntermediateStore):
            sink.emit_many(self.to_host(ctx, handle))
        else:
            super().absorb_batch(ctx, sink, handle)


class ColumnarBackend(FastBackend):
    """The fast backend pinned to the columnar path.

    Registered as ``"columnar"`` so CLIs and ``$REPRO_BACKEND`` can
    select vectorized execution by name; equivalent to
    ``FastBackend(columnar=True)``.
    """

    name = "columnar"

    def __init__(self):
        super().__init__(columnar=True)


def _emit_into(out: KeyValueSet):
    fast_append = out.append_unchecked
    checked_append = out.append

    def emit(k: bytes, v: bytes) -> None:
        if type(k) is bytes and type(v) is bytes:
            fast_append(k, v)
        else:
            # bytearray/memoryview emits: validate and copy like the
            # simulator's collector does.
            checked_append(k, v)

    return emit


def _phase_stats(ctx, *, records_in: int, records_out: int) -> KernelStats:
    """Placeholder stats: the fast backend does not model kernel time,
    so ``cycles`` is zero and only throughput counters are filled."""
    stats = KernelStats(threads_per_block=ctx.plan.threads_per_block)
    stats.count("fast_records_in", records_in)
    stats.count("fast_records_out", records_out)
    return stats
