"""The :class:`ExecutionBackend` protocol.

A backend supplies the five phase primitives the execution core
(:mod:`repro.backend.core`) sequences into a job: charged input
upload, Map, Shuffle, Reduce, and charged output download — plus the
uncharged host/device conversions the streamed driver needs between
its batched Map and the Shuffle.

Three implementations ship:

* :class:`repro.backend.sim.SimBackend` — the cycle-accurate
  discrete-event simulator (the paper's numbers).  Intermediate
  handles are :class:`~repro.framework.records.DeviceRecordSet`
  images in simulated global memory.
* :class:`repro.backend.fast.FastBackend` — a dict-based functional
  executor that skips warp-level simulation entirely.  Handles are
  plain host :class:`~repro.framework.records.KeyValueSet` objects;
  only the host<->device transfer model is costed.
* :class:`repro.backend.parallel.ParallelBackend` — the fast
  executor sharded across a ``multiprocessing`` worker pool, with a
  per-shard partial combine and a key-range-partitioned Reduce.
  Handles are host record sets or the backend's private shard
  summaries.

Handles are deliberately opaque to the core: it only ever passes them
back into the same backend.
"""

from __future__ import annotations

import abc
from typing import Any

from ..framework.records import KeyValueSet
from ..gpu.stats import KernelStats
from .plan import JobPlan


class ExecutionBackend(abc.ABC):
    """Phase primitives one execution substrate must provide."""

    #: Registry name ("sim", "fast").
    name: str = "?"

    # -- lifecycle -----------------------------------------------------

    @abc.abstractmethod
    def open(self, plan: JobPlan) -> Any:
        """Create the per-job execution context (device, config, ...)."""

    def resolve_auto(self, ctx: Any, plan: JobPlan, inp: KeyValueSet
                     ) -> JobPlan:
        """Resolve ``mode='auto'`` into a concrete plan."""
        raise NotImplementedError(
            f"backend {self.name!r} does not support mode='auto'"
        )

    def close(self, ctx: Any) -> None:
        """Release per-job execution resources.

        Called exactly once by the execution core when the job finishes
        (normally or with an error).  The default is a no-op; backends
        owning OS resources (the parallel backend's worker pool)
        override it.
        """

    # -- charged transfers ---------------------------------------------

    @abc.abstractmethod
    def upload_input(self, ctx: Any, kvs: KeyValueSet, label: str
                     ) -> tuple[Any, float]:
        """Stage the input; returns ``(handle, upload_cycles)``."""

    @abc.abstractmethod
    def download_output(self, ctx: Any, handle: Any
                        ) -> tuple[KeyValueSet, float]:
        """Retire a phase output to the host; returns
        ``(record_set, download_cycles)``."""

    # -- uncharged conversions (streamed driver) ------------------------

    @abc.abstractmethod
    def to_host(self, ctx: Any, handle: Any) -> KeyValueSet:
        """Read a phase output back without charging a transfer."""

    @abc.abstractmethod
    def stage_intermediate(self, ctx: Any, kvs: KeyValueSet, label: str
                           ) -> Any:
        """Re-stage a host-resident intermediate without charging a
        transfer (the streamed driver's pre-Shuffle hop)."""

    @abc.abstractmethod
    def record_count(self, ctx: Any, handle: Any) -> int:
        """Number of records behind a handle."""

    # -- phases ---------------------------------------------------------

    @abc.abstractmethod
    def map_phase(self, ctx: Any, d_in: Any, tr, *, batch: int | None = None
                  ) -> tuple[Any, KernelStats]:
        """Run Map over ``d_in``; returns ``(intermediate, stats)``.
        ``batch`` tags the kernel span when streaming."""

    @abc.abstractmethod
    def shuffle_phase(self, ctx: Any, inter: Any, tr, label: str
                      ) -> tuple[Any, float, int]:
        """Group the intermediate by key; returns
        ``(grouped_handle, cycles, n_groups)``."""

    @abc.abstractmethod
    def reduce_phase(self, ctx: Any, grouped: Any, tr, *,
                     include_grid: bool = True
                     ) -> tuple[Any, KernelStats]:
        """Run Reduce over the grouped sets; returns ``(out, stats)``."""

    # -- streamed sink ---------------------------------------------------
    # The streamed driver accumulates batched Map output into a "sink"
    # between Map and Shuffle.  The defaults reproduce the historical
    # behaviour exactly (an unbounded host record set); store-aware
    # backends override them to route batches into a budgeted
    # :class:`~repro.store.base.IntermediateStore` instead.

    def stream_sink(self, ctx: Any) -> Any:
        """Create the accumulator batched Map output is absorbed into."""
        return KeyValueSet()

    def absorb_batch(self, ctx: Any, sink: Any, handle: Any) -> None:
        """Fold one batch's Map output handle into the sink."""
        for k, v in self.to_host(ctx, handle):
            sink.append(k, v)

    def sink_count(self, ctx: Any, sink: Any) -> int:
        """Records accumulated in the sink so far."""
        return len(sink)

    # -- checking -------------------------------------------------------

    def finish_check(self, ctx: Any):
        """Detach the sanitizer and return its
        :class:`~repro.check.CheckReport`, or None when this backend
        did not run one (the default: only the sim backend simulates
        the machine state the detectors watch)."""
        return None

    # -- telemetry ------------------------------------------------------

    def finish_telemetry(self, ctx: Any):
        """Per-shard :class:`~repro.obs.telemetry.ShardProfile` list
        collected during the job, or None when this backend has no
        cross-process workers to profile (the default: only the
        parallel backend ships work to other processes)."""
        return None
