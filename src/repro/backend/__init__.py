"""``repro.backend`` — pluggable execution backends behind one core.

The framework's phases (upload -> Map -> Shuffle -> Reduce ->
download; Section IV-C's five memory modes x two reduce strategies)
are orthogonal to *how* they execute.  A
:class:`~repro.backend.plan.JobPlan` describes a job; an
:class:`~repro.backend.base.ExecutionBackend` executes its phases:

* ``"sim"``  — :class:`SimBackend`: the cycle-accurate discrete-event
  simulator.  Use it for every timing figure; it is the paper.
* ``"fast"`` — :class:`FastBackend`: a dict-based functional executor
  that skips warp-level simulation.  Orders of magnitude faster; use
  it for correctness runs, large inputs and development loops.
* ``"parallel"`` — :class:`ParallelBackend`: the fast executor
  sharded across a ``multiprocessing`` pool with per-shard partial
  combining and a key-range-partitioned Reduce.  ``"parallel:N"``
  pins the worker count; plain ``"parallel"`` honours
  ``$REPRO_WORKERS`` and defaults to the CPU count.
* ``"columnar"`` — :class:`ColumnarBackend`: the fast executor pinned
  to the vectorized columnar path (batched numpy Map/Shuffle/Reduce
  via each workload's ``map_batch``/``reduce_batch`` kernels, scalar
  fallback otherwise).  Equivalent to ``FastBackend(columnar=True)``
  or ``$REPRO_COLUMNAR=1``.
* ``"dist"`` — :class:`DistributedBackend`: the fast executor run as
  a coordinator over socket-connected worker processes, with
  GFS-style map splits, worker-death re-execution, speculative
  straggler duplicates, and scriptable fault injection
  (:class:`repro.dist.FaultPlan`).  ``"dist:N"`` pins the worker
  count, like ``"parallel:N"``.

Select per call (``run_job(..., backend="fast")``), or process-wide
with the ``REPRO_BACKEND`` environment variable (read when a driver is
called with ``backend=None``).
"""

from __future__ import annotations

import os

from ..errors import FrameworkError
from .base import ExecutionBackend
from .core import execute_plan, execute_streamed
from .distributed import DistributedBackend
from .fast import ColumnarBackend, FastBackend
from .parallel import ParallelBackend
from .plan import ENGINE_MARS, ENGINE_SHARED, BatchPolicy, JobPlan
from .sim import SimBackend

#: Registry of the shipped backends, by name.
BACKENDS: dict[str, type[ExecutionBackend]] = {
    SimBackend.name: SimBackend,
    FastBackend.name: FastBackend,
    ParallelBackend.name: ParallelBackend,
    ColumnarBackend.name: ColumnarBackend,
    DistributedBackend.name: DistributedBackend,
}

#: Environment variable consulted when ``backend=None``.
BACKEND_ENV = "REPRO_BACKEND"


def get_backend(backend: str | ExecutionBackend | None = None
                ) -> ExecutionBackend:
    """Resolve a backend argument to a live instance.

    ``None`` consults ``$REPRO_BACKEND`` (default ``"sim"``); strings
    are looked up in :data:`BACKENDS`; instances pass through.
    ``"parallel:N"`` / ``"dist:N"`` pin the worker count of the
    parallel / distributed backend.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or "sim"
    if isinstance(backend, str) and ":" in backend:
        base, _, raw = backend.partition(":")
        if base in ("parallel", "dist"):
            try:
                n = int(raw)
            except ValueError:
                raise FrameworkError(
                    f"bad worker count in backend {backend!r}; expected "
                    f"'{base}:<int>'"
                ) from None
            if n < 1:
                # Used to be silently clamped to 1 by max(); surface
                # the mistake instead — ":0" is a typo, not a request.
                raise FrameworkError(
                    f"worker count must be >= 1 in backend {backend!r}"
                )
            return (ParallelBackend(workers=n) if base == "parallel"
                    else DistributedBackend(workers=n))
    try:
        return BACKENDS[backend]()
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise FrameworkError(
            f"unknown backend {backend!r}; known backends: {known}"
        ) from None


__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "BatchPolicy",
    "ColumnarBackend",
    "DistributedBackend",
    "ENGINE_MARS",
    "ENGINE_SHARED",
    "ExecutionBackend",
    "FastBackend",
    "JobPlan",
    "ParallelBackend",
    "SimBackend",
    "execute_plan",
    "execute_streamed",
    "get_backend",
]
