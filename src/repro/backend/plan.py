"""The :class:`JobPlan`: one lowered description of a MapReduce job.

Every driver front-end (``run_job``, ``run_streamed_job``,
``IterativeJob.run``, ``run_mars_job``) reduces its arguments to a
``JobPlan`` — spec + memory modes + reduce strategy + device
configuration + batching policy — and hands it to
:func:`repro.backend.core.execute_plan`, which walks the paper's phase
sequence (upload -> Map -> Shuffle -> Reduce -> download) against a
pluggable :class:`~repro.backend.base.ExecutionBackend`.

The plan also centralises the presentation details that used to be
copy-pasted per driver: staging labels, tracer span attributes, and
the ``JobResult.mode`` label ("Mars" for the two-pass baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import FrameworkError
from ..framework.api import MapReduceSpec
from ..framework.modes import AUTO, MemoryMode, ReduceStrategy, \
    resolve_mode_name, resolve_strategy_name
from ..gpu.config import DeviceConfig

#: Engine selectors: the paper's single-pass shared-memory framework
#: vs. the Mars two-pass (count / scan / write) baseline.
ENGINE_SHARED = "shared"
ENGINE_MARS = "mars"


@dataclass(frozen=True)
class BatchPolicy:
    """Streamed execution: split the input into batches, optionally
    overlapping batch ``i+1``'s upload with batch ``i``'s Map kernel
    (paper Section III-A)."""

    n_batches: int = 4
    overlap: bool = True

    def validate(self) -> None:
        if self.n_batches <= 0:
            raise FrameworkError("n_batches must be positive")


@dataclass
class JobPlan:
    """Everything needed to execute one MapReduce job, minus the input."""

    spec: MapReduceSpec
    mode: MemoryMode | str = MemoryMode.SIO
    reduce_mode: MemoryMode | str | None = None
    #: ``None`` = Map-only job; a :class:`ReduceStrategy` pins it;
    #: ``"auto"`` (only with ``mode="auto"``) lets the tuner pick TR
    #: or BR from the input's cardinality and skew.
    strategy: ReduceStrategy | str | None = None
    engine: str = ENGINE_SHARED
    config: DeviceConfig | None = None
    device: object | None = None  # repro.gpu.kernel.Device
    #: ``None`` defaults to 128 at normalisation — except under
    #: ``mode="auto"``, where it stays open for the tuner to choose.
    threads_per_block: int | None = None
    yield_sync: bool = True
    io_ratio: float | None = None
    #: ``None`` means "engine default" — the Shuffle call is made with
    #: no explicit method, exactly as the Mars and streamed drivers
    #: always did.  ``run_job`` passes its ``shuffle_method`` through.
    shuffle_method: str | None = None
    batching: BatchPolicy | None = None
    #: Sanitizer request: None (consult ``$REPRO_CHECK``), bool, a
    #: string like the env var, or a :class:`repro.check.CheckConfig`.
    #: Resolved by the backend at ``open``; the fast backend has no
    #: simulated device to check and ignores it.
    check: object = None
    #: Intermediate-store policy for the functional backends:
    #: ``"memory"`` (unbounded dict, the default behaviour),
    #: ``"spill"`` (budgeted out-of-core shuffle) or ``None`` to
    #: consult ``$REPRO_STORE``.  The sim backend models the device's
    #: own intermediate tiers and ignores this.
    store: str | None = None
    #: Approximate in-memory byte budget for ``store="spill"``
    #: (``None`` consults ``$REPRO_MEMORY_BUDGET``, then the spill
    #: default).  Ignored by the memory store, which is unbounded.
    memory_budget: int | None = None
    #: Columnar execution request for the fast backend: ``True``/
    #: ``False`` pin the path, ``None`` defers to the backend instance
    #: and then ``$REPRO_COLUMNAR``.  The sim and parallel backends
    #: ignore this (the parallel backend's inner fast executor is
    #: pinned scalar so worker output never depends on the env).
    columnar: bool | None = None
    #: The :class:`repro.tune.TunerDecision` that produced this plan,
    #: set by the backends' ``resolve_auto`` / ``run_job(tune=True)``.
    #: ``None`` for untuned plans — the ledger records them as such.
    tuned: object | None = None

    # ------------------------------------------------------------------
    # Normalisation
    # ------------------------------------------------------------------

    def normalised(self) -> "JobPlan":
        """Coerce string modes to enums and default the Reduce mode.

        ``mode="auto"`` is left untouched — it is resolved against a
        live backend context by :func:`repro.backend.core.execute_plan`
        (both backends route it through the cost-model tuner,
        :mod:`repro.tune`).  ``strategy="auto"`` and an unset
        ``threads_per_block`` are only legal alongside it: they are the
        knobs the tuner fills in.
        """
        if self.engine not in (ENGINE_SHARED, ENGINE_MARS):
            raise FrameworkError(f"unknown engine {self.engine!r}")
        store = self.store
        if store is not None:
            # Validate eagerly (same friendly error surface as modes);
            # None is left open for the backend's env consultation.
            from ..store import resolve_store_name

            store = resolve_store_name(store)
        if self.memory_budget is not None and self.memory_budget < 1:
            raise FrameworkError(
                f"memory_budget must be positive, got {self.memory_budget}"
            )
        mode = resolve_mode_name(self.mode, allow_auto=True)
        strategy = resolve_strategy_name(self.strategy, allow_auto=True)
        if strategy == AUTO and mode != AUTO:
            raise FrameworkError(
                "strategy 'auto' requires mode='auto' (the tuner picks "
                "both together); pin TR or BR with an explicit mode"
            )
        tpb = self.threads_per_block
        if tpb is None and mode != AUTO:
            tpb = 128
        reduce_mode = self.reduce_mode
        if reduce_mode is None:
            # With mode="auto" the Reduce mode stays undecided until the
            # backend resolves the plan against a live context.
            reduce_mode = mode if mode != AUTO else None
        else:
            reduce_mode = resolve_mode_name(reduce_mode)
        return replace(self, mode=mode, reduce_mode=reduce_mode,
                       strategy=strategy, threads_per_block=tpb,
                       store=store)

    # ------------------------------------------------------------------
    # Presentation (labels + tracer span attributes)
    # ------------------------------------------------------------------

    @property
    def is_mars(self) -> bool:
        return self.engine == ENGINE_MARS

    @property
    def mode_label(self) -> str:
        """The mode as shown in traces and ``JobResult.mode``."""
        if self.is_mars:
            return "Mars"
        return getattr(self.mode, "value", self.mode)

    @property
    def result_mode(self):
        """The value stored in ``JobResult.mode``."""
        return "Mars" if self.is_mars else self.mode

    def input_label(self, batch: int | None = None) -> str:
        name = self.spec.name
        if self.batching is not None:
            return f"stream.{name}.{batch}"
        if self.is_mars:
            return f"mars_in.{name}"
        return f"in.{name}"

    def intermediate_label(self) -> str:
        return f"stream.inter.{self.spec.name}"

    def shuffle_label(self) -> str:
        name = self.spec.name
        if self.batching is not None:
            return f"stream.shuf.{name}"
        if self.is_mars:
            return f"mars_shuf.{name}"
        return f"shuf.{name}"

    def job_attrs(self, n_records: int) -> dict:
        attrs = dict(
            workload=self.spec.name,
            mode=self.mode_label,
            strategy=getattr(self.strategy, "value", self.strategy),
        )
        if self.batching is not None:
            attrs["n_batches"] = self.batching.n_batches
            attrs["overlap"] = self.batching.overlap
        elif not self.is_mars and self.shuffle_method is not None:
            attrs["shuffle"] = self.shuffle_method
        if self.store is not None:
            # Only explicit policies land in span attrs: the default
            # (None -> env -> "memory") keeps traces byte-identical.
            attrs["store"] = self.store
        if self.columnar is not None:
            # Same rule as ``store``: only explicit requests appear,
            # keeping default traces byte-identical.
            attrs["columnar"] = self.columnar
        if self.tuned is not None:
            attrs["tuned"] = True
            attrs["tuner_choice"] = self.tuned.choice
            attrs["tuner_predicted_cost"] = round(
                float(self.tuned.predicted_cost), 6)
            attrs["tuner_source"] = self.tuned.source
        attrs["records"] = n_records
        return attrs

    def map_attrs(self) -> dict:
        return {"mode": self.mode_label}

    def shuffle_attrs(self) -> dict:
        if self.is_mars or self.batching is not None:
            return {}
        return {"method": self.shuffle_method}

    def reduce_attrs(self) -> dict:
        if self.is_mars:
            return {"mode": "Mars"}
        attrs = {}
        if self.batching is None:
            attrs["mode"] = getattr(self.reduce_mode, "value", self.reduce_mode)
        attrs["strategy"] = getattr(self.strategy, "value", self.strategy)
        return attrs
