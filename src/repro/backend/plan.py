"""The :class:`JobPlan`: one lowered description of a MapReduce job.

Every driver front-end (``run_job``, ``run_streamed_job``,
``IterativeJob.run``, ``run_mars_job``) reduces its arguments to a
``JobPlan`` — spec + memory modes + reduce strategy + device
configuration + batching policy — and hands it to
:func:`repro.backend.core.execute_plan`, which walks the paper's phase
sequence (upload -> Map -> Shuffle -> Reduce -> download) against a
pluggable :class:`~repro.backend.base.ExecutionBackend`.

The plan also centralises the presentation details that used to be
copy-pasted per driver: staging labels, tracer span attributes, and
the ``JobResult.mode`` label ("Mars" for the two-pass baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import FrameworkError
from ..framework.api import MapReduceSpec
from ..framework.modes import MemoryMode, ReduceStrategy
from ..gpu.config import DeviceConfig

#: Engine selectors: the paper's single-pass shared-memory framework
#: vs. the Mars two-pass (count / scan / write) baseline.
ENGINE_SHARED = "shared"
ENGINE_MARS = "mars"


@dataclass(frozen=True)
class BatchPolicy:
    """Streamed execution: split the input into batches, optionally
    overlapping batch ``i+1``'s upload with batch ``i``'s Map kernel
    (paper Section III-A)."""

    n_batches: int = 4
    overlap: bool = True

    def validate(self) -> None:
        if self.n_batches <= 0:
            raise FrameworkError("n_batches must be positive")


@dataclass
class JobPlan:
    """Everything needed to execute one MapReduce job, minus the input."""

    spec: MapReduceSpec
    mode: MemoryMode | str = MemoryMode.SIO
    reduce_mode: MemoryMode | str | None = None
    strategy: ReduceStrategy | None = None
    engine: str = ENGINE_SHARED
    config: DeviceConfig | None = None
    device: object | None = None  # repro.gpu.kernel.Device
    threads_per_block: int = 128
    yield_sync: bool = True
    io_ratio: float | None = None
    #: ``None`` means "engine default" — the Shuffle call is made with
    #: no explicit method, exactly as the Mars and streamed drivers
    #: always did.  ``run_job`` passes its ``shuffle_method`` through.
    shuffle_method: str | None = None
    batching: BatchPolicy | None = None
    #: Sanitizer request: None (consult ``$REPRO_CHECK``), bool, a
    #: string like the env var, or a :class:`repro.check.CheckConfig`.
    #: Resolved by the backend at ``open``; the fast backend has no
    #: simulated device to check and ignores it.
    check: object = None
    #: Intermediate-store policy for the functional backends:
    #: ``"memory"`` (unbounded dict, the default behaviour),
    #: ``"spill"`` (budgeted out-of-core shuffle) or ``None`` to
    #: consult ``$REPRO_STORE``.  The sim backend models the device's
    #: own intermediate tiers and ignores this.
    store: str | None = None
    #: Approximate in-memory byte budget for ``store="spill"``
    #: (``None`` consults ``$REPRO_MEMORY_BUDGET``, then the spill
    #: default).  Ignored by the memory store, which is unbounded.
    memory_budget: int | None = None
    #: Columnar execution request for the fast backend: ``True``/
    #: ``False`` pin the path, ``None`` defers to the backend instance
    #: and then ``$REPRO_COLUMNAR``.  The sim and parallel backends
    #: ignore this (the parallel backend's inner fast executor is
    #: pinned scalar so worker output never depends on the env).
    columnar: bool | None = None

    # ------------------------------------------------------------------
    # Normalisation
    # ------------------------------------------------------------------

    def normalised(self) -> "JobPlan":
        """Coerce string modes to enums and default the Reduce mode.

        ``mode="auto"`` is left untouched — it is resolved against a
        live backend context by :func:`repro.backend.core.execute_plan`
        (the sim backend autotunes; the fast backend picks SIO).
        """
        if self.engine not in (ENGINE_SHARED, ENGINE_MARS):
            raise FrameworkError(f"unknown engine {self.engine!r}")
        store = self.store
        if store is not None:
            # Validate eagerly (same friendly error surface as modes);
            # None is left open for the backend's env consultation.
            from ..store import resolve_store_name

            store = resolve_store_name(store)
        if self.memory_budget is not None and self.memory_budget < 1:
            raise FrameworkError(
                f"memory_budget must be positive, got {self.memory_budget}"
            )
        mode = self.mode
        if isinstance(mode, str) and mode != "auto" and not isinstance(
            mode, MemoryMode
        ):
            mode = MemoryMode(mode)
        reduce_mode = self.reduce_mode
        if reduce_mode is None:
            # With mode="auto" the Reduce mode stays undecided until the
            # backend resolves the plan against a live context.
            reduce_mode = mode if mode != "auto" else None
        elif isinstance(reduce_mode, str) and not isinstance(
            reduce_mode, MemoryMode
        ):
            reduce_mode = MemoryMode(reduce_mode)
        return replace(self, mode=mode, reduce_mode=reduce_mode, store=store)

    # ------------------------------------------------------------------
    # Presentation (labels + tracer span attributes)
    # ------------------------------------------------------------------

    @property
    def is_mars(self) -> bool:
        return self.engine == ENGINE_MARS

    @property
    def mode_label(self) -> str:
        """The mode as shown in traces and ``JobResult.mode``."""
        if self.is_mars:
            return "Mars"
        return getattr(self.mode, "value", self.mode)

    @property
    def result_mode(self):
        """The value stored in ``JobResult.mode``."""
        return "Mars" if self.is_mars else self.mode

    def input_label(self, batch: int | None = None) -> str:
        name = self.spec.name
        if self.batching is not None:
            return f"stream.{name}.{batch}"
        if self.is_mars:
            return f"mars_in.{name}"
        return f"in.{name}"

    def intermediate_label(self) -> str:
        return f"stream.inter.{self.spec.name}"

    def shuffle_label(self) -> str:
        name = self.spec.name
        if self.batching is not None:
            return f"stream.shuf.{name}"
        if self.is_mars:
            return f"mars_shuf.{name}"
        return f"shuf.{name}"

    def job_attrs(self, n_records: int) -> dict:
        attrs = dict(
            workload=self.spec.name,
            mode=self.mode_label,
            strategy=getattr(self.strategy, "value", self.strategy),
        )
        if self.batching is not None:
            attrs["n_batches"] = self.batching.n_batches
            attrs["overlap"] = self.batching.overlap
        elif not self.is_mars and self.shuffle_method is not None:
            attrs["shuffle"] = self.shuffle_method
        if self.store is not None:
            # Only explicit policies land in span attrs: the default
            # (None -> env -> "memory") keeps traces byte-identical.
            attrs["store"] = self.store
        if self.columnar is not None:
            # Same rule as ``store``: only explicit requests appear,
            # keeping default traces byte-identical.
            attrs["columnar"] = self.columnar
        attrs["records"] = n_records
        return attrs

    def map_attrs(self) -> dict:
        return {"mode": self.mode_label}

    def shuffle_attrs(self) -> dict:
        if self.is_mars or self.batching is not None:
            return {}
        return {"method": self.shuffle_method}

    def reduce_attrs(self) -> dict:
        if self.is_mars:
            return {"mode": "Mars"}
        attrs = {}
        if self.batching is None:
            attrs["mode"] = getattr(self.reduce_mode, "value", self.reduce_mode)
        attrs["strategy"] = getattr(self.strategy, "value", self.strategy)
        return attrs
