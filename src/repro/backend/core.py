"""The execution core: one phase sequencer for every driver.

Before this module, the upload -> Map -> Shuffle -> Reduce -> download
workflow was re-implemented four times (``run_job``,
``run_streamed_job``, ``IterativeJob.run``, ``run_mars_job``); PR 1
had to thread the tracer through each copy by hand.  Now each driver
lowers its arguments to a :class:`~repro.backend.plan.JobPlan` and
calls one of the two executors here:

* :func:`execute_plan` — single-shot jobs (shared-memory framework
  *and* the Mars baseline, which differs only in its Map/Reduce phase
  implementations and labels);
* :func:`execute_streamed` — batched Map with optional
  transfer/compute overlap (Section III-A), then the shared tail.

Observability (spans, phase timings, kernel events) lives here once:
a future hook lands in one place, not four.
"""

from __future__ import annotations

import time

from ..framework.host import host_download_cost
from ..framework.job import JobResult, PhaseTimings
from ..framework.records import KeyValueSet
from ..gpu.stats import KernelStats
from ..obs import ledger
from ..obs.telemetry import summarize_workers
from ..obs.tracer import NULL_TRACER, Tracer
from .base import ExecutionBackend
from .plan import JobPlan


def _apply_check(backend: ExecutionBackend, ctx, tr, result: JobResult) -> None:
    """Harvest the sanitizer's report (if any) into the job result.

    Findings become tracer instants so exported traces show them; in
    strict mode a non-empty report raises
    :class:`~repro.errors.CheckError`.
    """
    report = backend.finish_check(ctx)
    if report is None:
        return
    result.check_report = report
    for f in report.findings:
        tr.instant("check_finding", detector=f.detector, kind=f.kind,
                   block=f.block, warp=f.warp, message=f.message)
    report.raise_if_findings()


def _apply_telemetry(backend: ExecutionBackend, ctx, result: JobResult) -> None:
    """Harvest cross-process worker profiles (if any) into the result.

    The parallel backend banks one :class:`~repro.obs.telemetry.
    ShardProfile` per shard per sharded phase; the straggler summary
    is derived here so every caller sees it on ``JobResult``.
    """
    profiles = backend.finish_telemetry(ctx)
    if not profiles:
        return
    result.worker_profiles = profiles
    result.straggler = summarize_workers(profiles)


def _apply_tuned(plan, result: JobResult) -> None:
    """Bank the tuner's decision into the Map KernelStats extras.

    Strings are safe here: extras are attached after any batch-level
    ``merge()`` (which sums numeric fields) has already happened.  The
    prediction error lands in the ledger, where the actual cost is
    known (:func:`repro.obs.ledger.build_record`).
    """
    decision = getattr(plan, "tuned", None)
    if decision is None or result.map_stats is None:
        return
    extra = result.map_stats.extra
    extra["tuner_choice"] = decision.choice
    extra["tuner_predicted_cost"] = float(decision.predicted_cost)
    extra["tuner_objective"] = decision.objective
    extra["tuner_source"] = decision.source


def execute_plan(
    plan: JobPlan,
    inp: KeyValueSet,
    backend: ExecutionBackend,
    tracer: Tracer | None = None,
) -> JobResult:
    """Run one single-shot job on ``backend``.

    The phase sequence, span structure and timing attribution are
    exactly those of the pre-refactor drivers; the backend supplies
    the phase primitives.
    """
    if plan.batching is not None:
        raise ValueError("execute_plan does not take a batched plan; "
                         "use execute_streamed")
    tr = tracer if tracer is not None else NULL_TRACER
    wall_t0 = time.perf_counter()
    ctx = backend.open(plan)
    try:
        result = _execute_plan(plan, inp, backend, ctx, tr)
    finally:
        backend.close(ctx)
    _apply_tuned(ctx.plan, result)
    ledger.record_run(ctx.plan, inp, backend, result,
                      wall_s=time.perf_counter() - wall_t0)
    return result


def _execute_plan(plan, inp, backend, ctx, tr) -> JobResult:
    if plan.mode == "auto":
        plan = backend.resolve_auto(ctx, plan, inp)
        ctx.plan = plan
    timings = PhaseTimings()

    with tr.span(f"job:{plan.spec.name}", **plan.job_attrs(len(inp))):
        # ---- input upload -------------------------------------------------
        with tr.span("io_in"):
            d_in, timings.io_in = backend.upload_input(
                ctx, inp, plan.input_label()
            )
            tr.advance(timings.io_in)

        # ---- Map ----------------------------------------------------------
        with tr.span("map", **plan.map_attrs()):
            intermediate, map_stats = backend.map_phase(ctx, d_in, tr)
            timings.map = map_stats.cycles
            inter_count = backend.record_count(ctx, intermediate)

        if plan.strategy is None:
            with tr.span("io_out"):
                output, timings.io_out = backend.download_output(
                    ctx, intermediate
                )
                tr.advance(timings.io_out)
            result = JobResult(
                spec_name=plan.spec.name,
                mode=plan.result_mode,
                strategy=None,
                output=output,
                intermediate_count=inter_count,
                timings=timings,
                map_stats=map_stats,
            )
            _apply_telemetry(backend, ctx, result)
            _apply_check(backend, ctx, tr, result)
            return result

        # ---- Shuffle ------------------------------------------------------
        with tr.span("shuffle", **plan.shuffle_attrs()) as shuffle_span:
            grouped, timings.shuffle, n_groups = backend.shuffle_phase(
                ctx, intermediate, tr, plan.shuffle_label()
            )
            if shuffle_span is not None and n_groups is not None:
                # A spilling shuffle streams its groups and does not
                # know the count until Reduce drains them.
                shuffle_span.attrs["groups"] = n_groups
            tr.advance(timings.shuffle)

        # ---- Reduce -------------------------------------------------------
        with tr.span("reduce", **plan.reduce_attrs()):
            final, red_stats = backend.reduce_phase(ctx, grouped, tr)
            timings.reduce = red_stats.cycles

        # ---- output download ---------------------------------------------
        with tr.span("io_out"):
            output, timings.io_out = backend.download_output(ctx, final)
            tr.advance(timings.io_out)

        result = JobResult(
            spec_name=plan.spec.name,
            mode=plan.result_mode,
            strategy=plan.strategy,
            output=output,
            intermediate_count=inter_count,
            timings=timings,
            map_stats=map_stats,
            reduce_stats=red_stats,
        )
        _apply_telemetry(backend, ctx, result)
        _apply_check(backend, ctx, tr, result)
    return result


def execute_streamed(
    plan: JobPlan,
    inp: KeyValueSet,
    backend: ExecutionBackend,
    tracer: Tracer | None = None,
):
    """Run a job with the input streamed through the device in batches.

    Returns a :class:`~repro.framework.streaming.StreamedResult`.  The
    batch pipeline is accounted exactly as before: batch spans are
    serial on the job clock even under overlap, and the pipelined
    upload/Map total is attributed ``io_in`` = sum of uploads, ``map``
    = the rest.
    """
    if plan.batching is None:
        raise ValueError("execute_streamed needs a plan with batching")
    tr = tracer if tracer is not None else NULL_TRACER
    wall_t0 = time.perf_counter()
    ctx = backend.open(plan)
    try:
        result = _execute_streamed(plan, inp, backend, ctx, tr)
    finally:
        backend.close(ctx)
    _apply_tuned(ctx.plan, result.job)
    ledger.record_run(ctx.plan, inp, backend, result.job,
                      wall_s=time.perf_counter() - wall_t0, streamed=True)
    return result


def _execute_streamed(plan, inp, backend, ctx, tr):
    # Local import: streaming.py's front-end imports this module.
    from ..framework.streaming import (
        BatchTrace,
        StreamedResult,
        split_batches,
    )

    if plan.mode == "auto":
        plan = backend.resolve_auto(ctx, plan, inp)
        ctx.plan = plan
    name = plan.spec.name

    with tr.span(f"job:{name}", **plan.job_attrs(len(inp))):
        batches = split_batches(inp, plan.batching.n_batches)
        traces: list[BatchTrace] = []
        # The sink is a plain host record set by default; store-aware
        # backends may hand back a budgeted spill store instead.
        intermediate = backend.stream_sink(ctx)
        merged_stats = KernelStats()
        with tr.span("map_stream") as stream_span:
            for bi, batch in enumerate(batches):
                with tr.span(f"batch[{bi}]", records=len(batch)):
                    d_in, up_cycles = backend.upload_input(
                        ctx, batch, plan.input_label(bi)
                    )
                    with tr.span("upload"):
                        tr.advance(up_cycles)
                    out_h, st = backend.map_phase(ctx, d_in, tr, batch=bi)
                    merged_stats = merged_stats.merge(st)
                    backend.absorb_batch(ctx, intermediate, out_h)
                    traces.append(BatchTrace(
                        records=len(batch), upload_cycles=up_cycles,
                        map_cycles=st.cycles, map_stats=st))

        timings = PhaseTimings()
        inter_count = backend.sink_count(ctx, intermediate)
        result = StreamedResult(
            job=JobResult(
                spec_name=name, mode=plan.mode, strategy=plan.strategy,
                output=intermediate, intermediate_count=inter_count,
                timings=timings, map_stats=merged_stats,
            ),
            batches=traces,
            overlapped=plan.batching.overlap,
        )
        pipeline = (
            result.pipelined_map_io if plan.batching.overlap
            else result.serial_map_io
        )
        if stream_span is not None:
            stream_span.attrs["serial_map_io"] = result.serial_map_io
            stream_span.attrs["pipelined_map_io"] = result.pipelined_map_io
            stream_span.attrs["overlap_saving"] = result.overlap_saving
        # Attribute the pipeline's transfer share to io_in and the rest to map.
        timings.io_in = sum(b.upload_cycles for b in traces)
        timings.map = max(0.0, pipeline - timings.io_in)

        if plan.strategy is None:
            with tr.span("io_out"):
                timings.io_out = host_download_cost(
                    intermediate, ctx.config
                ).cycles
                tr.advance(timings.io_out)
            _apply_telemetry(backend, ctx, result.job)
            _apply_check(backend, ctx, tr, result.job)
            return result

        with tr.span("shuffle", **plan.shuffle_attrs()) as shuffle_span:
            d_inter = backend.stage_intermediate(
                ctx, intermediate, plan.intermediate_label()
            )
            grouped, timings.shuffle, n_groups = backend.shuffle_phase(
                ctx, d_inter, tr, plan.shuffle_label()
            )
            if shuffle_span is not None and n_groups is not None:
                shuffle_span.attrs["groups"] = n_groups
            tr.advance(timings.shuffle)
        with tr.span("reduce", **plan.reduce_attrs()):
            final, red_stats = backend.reduce_phase(
                ctx, grouped, tr, include_grid=False
            )
            timings.reduce = red_stats.cycles
        with tr.span("io_out"):
            output, timings.io_out = backend.download_output(ctx, final)
            tr.advance(timings.io_out)
        result.job.output = output
        result.job.reduce_stats = red_stats
        _apply_telemetry(backend, ctx, result.job)
        _apply_check(backend, ctx, tr, result.job)
        return result
