"""Cycle-accurate execution backend (the paper's numbers).

Wraps the existing discrete-event engine behind the
:class:`ExecutionBackend` protocol.  Behaviour-preserving by
construction: every phase performs exactly the calls the four
pre-refactor drivers made, in the same order, with the same staging
labels — per-phase cycle counts and :class:`KernelStats` for the
Figure 5–8 suite are identical before and after the refactor.

The Mars two-pass engine is selected by ``plan.engine == "mars"``:
host transfers and the Shuffle are shared ("Our framework and Mars
share the same data transmission ... as well as the same shuffle
phase", Section IV-F) while Map and Reduce dispatch to the count /
scan / write pipeline in :mod:`repro.mars.framework`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..framework.host import retire_output, stage_input
from ..framework.map_engine import build_map_runtime, launch_map
from ..framework.records import DeviceRecordSet, KeyValueSet
from ..framework.reduce_engine import build_reduce_runtime, launch_reduce
from ..framework.shuffle import shuffle
from ..gpu.config import DeviceConfig
from ..gpu.kernel import Device
from ..gpu.stats import KernelStats
from .base import ExecutionBackend
from .plan import JobPlan


@dataclass
class SimContext:
    """Per-job state of a simulated run."""

    plan: JobPlan
    dev: Device
    #: The job's sanitizer (:class:`repro.check.Sanitizer`) when
    #: checking is enabled, else None.
    sanitizer: object = None

    @property
    def config(self) -> DeviceConfig:
        return self.dev.config


class SimBackend(ExecutionBackend):
    """Execute on the simulated GPU (discrete-event, warp-accurate)."""

    name = "sim"

    def open(self, plan: JobPlan) -> SimContext:
        from ..check import Sanitizer, resolve_check

        dev = plan.device or Device(plan.config or DeviceConfig.gtx280())
        sanitizer = None
        cfg = resolve_check(plan.check)
        if cfg is not None:
            sanitizer = Sanitizer(cfg)
            dev.checker = sanitizer
        return SimContext(plan=plan, dev=dev, sanitizer=sanitizer)

    def finish_check(self, ctx: SimContext):
        if ctx.sanitizer is None:
            return None
        ctx.dev.checker = None
        return ctx.sanitizer.finish()

    def resolve_auto(self, ctx: SimContext, plan: JobPlan, inp: KeyValueSet
                     ) -> JobPlan:
        """Cost-model tuner (:mod:`repro.tune`): profile the input,
        price every legal (mode, strategy, block size) candidate by
        predicted cycles, let ledger history of the exact input
        override the model.  No measured probing — the tuner never
        runs a kernel."""
        from ..tune import decide_modes

        decision = decide_modes(
            plan.spec, inp, config=ctx.dev.config,
            strategy=plan.strategy,
            threads_per_block=plan.threads_per_block,
        )
        return replace(
            plan, mode=decision.mode, strategy=decision.strategy,
            threads_per_block=decision.threads_per_block, tuned=decision,
        ).normalised()

    # -- transfers -----------------------------------------------------

    def upload_input(self, ctx, kvs, label):
        d_in, cost = stage_input(ctx.dev.gmem, kvs, ctx.config, label=label)
        return d_in, cost.cycles

    def download_output(self, ctx, handle):
        out, cost = retire_output(handle, ctx.config)
        return out, cost.cycles

    def to_host(self, ctx, handle):
        return handle.download()

    def stage_intermediate(self, ctx, kvs, label):
        return DeviceRecordSet.upload(ctx.dev.gmem, kvs, label=label)

    def record_count(self, ctx, handle) -> int:
        return handle.count

    # -- phases --------------------------------------------------------

    def map_phase(self, ctx, d_in, tr, *, batch=None):
        plan = ctx.plan
        if plan.is_mars:
            from ..mars.framework import mars_map_phase

            return mars_map_phase(
                ctx.dev, plan.spec, d_in,
                threads_per_block=plan.threads_per_block, tracer=tr,
            )
        rt = build_map_runtime(
            ctx.dev, plan.spec, plan.mode, d_in,
            threads_per_block=plan.threads_per_block,
            yield_sync=plan.yield_sync,
            io_ratio=plan.io_ratio,
        )
        tl = tr.make_timeline()
        stats = launch_map(ctx.dev, rt, timeline=tl)
        attrs = {"batch": batch} if batch is not None else {"grid": rt.grid}
        tr.kernel("map_kernel", stats, timeline=tl, **attrs)
        return rt.out.as_record_set(), stats

    def shuffle_phase(self, ctx, inter, tr, label):
        plan = ctx.plan
        kwargs = {}
        if plan.shuffle_method is not None:
            kwargs = dict(method=plan.shuffle_method, device=ctx.dev)
        shuf = shuffle(ctx.dev.gmem, inter, ctx.config, label=label, **kwargs)
        return shuf.grouped, shuf.cycles, shuf.grouped.n_groups

    def reduce_phase(self, ctx, grouped, tr, *, include_grid=True):
        plan = ctx.plan
        if plan.is_mars:
            from ..mars.framework import mars_reduce_phase

            return mars_reduce_phase(
                ctx.dev, plan.spec, grouped,
                threads_per_block=plan.threads_per_block, tracer=tr,
            )
        rt = build_reduce_runtime(
            ctx.dev, plan.spec, plan.reduce_mode, plan.strategy, grouped,
            threads_per_block=plan.threads_per_block,
            yield_sync=plan.yield_sync,
        )
        tl = tr.make_timeline()
        stats = launch_reduce(ctx.dev, rt, timeline=tl)
        attrs = {"grid": rt.grid} if include_grid else {}
        tr.kernel("reduce_kernel", stats, timeline=tl, **attrs)
        return rt.out.as_record_set(), stats
