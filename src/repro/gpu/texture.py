"""Read-only texture cache model (paper Section II-A).

Each Texture Processing Cluster on GT200 has a small (6-8 KB per MP)
set-associative, read-only texture cache.  Two properties from the
paper's description are modelled faithfully because the evaluation
depends on them:

1. *A hit does not decrease fetch latency* — it "reduces the global
   memory bandwidth demand" only.  So a hit is charged the same
   latency as a global access but consumes **no** transaction in the
   :class:`~repro.gpu.interconnect.MemorySystem` queue.
2. The cache is *not coherent* with global writes in the same kernel,
   which is why the paper cannot implement the GT mode for BR reduce
   kernels (they update values in place).  The simulator enforces
   this by letting callers mark address ranges dirty; reading a dirty
   line through the texture path raises an error in strict mode.

The simulator instantiates one cache per MP (a slight simplification
of the per-TPC sharing; capacity per MP matches the paper's
"6KB-8KB per MP" figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError


class TextureCoherenceError(ReproError):
    """A texture fetch observed memory written during this kernel."""


@dataclass
class TextureCache:
    """Set-associative LRU read-only cache."""

    capacity: int = 8 * 1024
    line_bytes: int = 32
    ways: int = 4
    strict_coherence: bool = True

    hits: int = 0
    misses: int = 0

    _sets: list[list[int]] = field(default_factory=list, repr=False)
    _dirty_lines: set[int] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        n_lines = self.capacity // self.line_bytes
        self.n_sets = max(1, n_lines // self.ways)
        self._sets = [[] for _ in range(self.n_sets)]

    # ------------------------------------------------------------------

    def _line_of(self, addr: int) -> int:
        return addr // self.line_bytes

    def access(self, addr: int, size: int) -> tuple[int, int]:
        """Access ``[addr, addr+size)``; returns ``(hit_lines, miss_lines)``."""
        if size <= 0:
            return (0, 0)
        first = self._line_of(addr)
        last = self._line_of(addr + size - 1)
        hits = misses = 0
        for line in range(first, last + 1):
            if self.strict_coherence and line in self._dirty_lines:
                raise TextureCoherenceError(
                    f"texture fetch of line {line} after a global write to it "
                    "within the same kernel (texture caches are not coherent; "
                    "see paper Section IV-C on why GT cannot back BR kernels)"
                )
            s = self._sets[line % self.n_sets]
            if line in s:
                s.remove(line)
                s.append(line)  # LRU refresh
                hits += 1
            else:
                misses += 1
                s.append(line)
                if len(s) > self.ways:
                    s.pop(0)
        self.hits += hits
        self.misses += misses
        return hits, misses

    def note_global_write(self, addr: int, size: int) -> None:
        """Record that ``[addr, addr+size)`` was written by this kernel."""
        if size <= 0:
            return
        first = self._line_of(addr)
        last = self._line_of(addr + size - 1)
        self._dirty_lines.update(range(first, last + 1))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        for s in self._sets:
            s.clear()
        self._dirty_lines.clear()
        self.hits = 0
        self.misses = 0
