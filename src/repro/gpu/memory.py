"""Functional memory state: global memory and per-block shared memory.

Both classes store *real bytes*; every staging copy in the framework
moves actual data, so final MapReduce outputs can be compared
bit-for-bit against the CPU reference oracle.  Timing is handled
separately by the engine from the instruction descriptors.

Global memory uses a simple bump allocator (CUDA of the paper's era
had no device-side ``malloc``; buffers were allocated up front by the
host, which is exactly how the framework uses this class).
"""

from __future__ import annotations

import struct
import sys

import numpy as np

from ..errors import AllocationError, OutOfBoundsError

_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")
_F32 = struct.Struct("<f")

#: Alignment of every allocation, matching the 128-byte segment size
#: relevant to coalescing.
ALLOC_ALIGN = 128


class GlobalMemory:
    """Byte-addressable device global memory with a bump allocator."""

    def __init__(self, capacity: int = 1 << 30, reserve: int = 1 << 16):
        self.capacity = int(capacity)
        self._buf = bytearray(min(reserve, self.capacity))
        self._brk = 0  # bump pointer
        self._allocs: dict[str, tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def alloc(self, nbytes: int, label: str | None = None) -> int:
        """Reserve ``nbytes`` (128-byte aligned) and return the address."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        addr = (self._brk + ALLOC_ALIGN - 1) // ALLOC_ALIGN * ALLOC_ALIGN
        end = addr + nbytes
        if end > self.capacity:
            raise AllocationError("global", nbytes, self.capacity - self._brk)
        if end > len(self._buf):
            # Grow the backing store geometrically up to capacity.
            new_len = min(self.capacity, max(end, 2 * len(self._buf)))
            self._buf.extend(b"\x00" * (new_len - len(self._buf)))
        self._brk = end
        if label is not None:
            self._allocs[label] = (addr, nbytes)
        return addr

    def region(self, label: str) -> tuple[int, int]:
        """Return ``(address, size)`` of a labelled allocation."""
        return self._allocs[label]

    @property
    def bytes_allocated(self) -> int:
        return self._brk

    def reset(self) -> None:
        """Release all allocations (contents are discarded)."""
        self._buf = bytearray(1 << 16)
        self._brk = 0
        self._allocs.clear()

    # ------------------------------------------------------------------
    # Raw byte access
    # ------------------------------------------------------------------

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or nbytes < 0 or addr + nbytes > self._brk:
            raise OutOfBoundsError(
                f"global access [{addr}, {addr + nbytes}) outside "
                f"allocated [0, {self._brk})"
            )

    # The hot accessors below test bounds inline and only call
    # :meth:`_check` on failure (for its message) — a per-access
    # method call the simulator's hot path can't afford.

    def read(self, addr: int, nbytes: int) -> bytes:
        if addr < 0 or nbytes < 0 or addr + nbytes > self._brk:
            self._check(addr, nbytes)
        return bytes(self._buf[addr : addr + nbytes])

    def write(self, addr: int, data: bytes | bytearray | memoryview) -> None:
        nbytes = len(data)
        if addr < 0 or addr + nbytes > self._brk:
            self._check(addr, nbytes)
        self._buf[addr : addr + nbytes] = data

    def view(self, addr: int, nbytes: int) -> memoryview:
        """Zero-copy view; use for large result extraction."""
        self._check(addr, nbytes)
        return memoryview(self._buf)[addr : addr + nbytes]

    # ------------------------------------------------------------------
    # Typed helpers (little-endian, 4-byte scalars)
    # ------------------------------------------------------------------

    def read_u32(self, addr: int) -> int:
        if addr < 0 or addr + 4 > self._brk:
            self._check(addr, 4)
        return _U32.unpack_from(self._buf, addr)[0]

    def write_u32(self, addr: int, value: int) -> None:
        if addr < 0 or addr + 4 > self._brk:
            self._check(addr, 4)
        _U32.pack_into(self._buf, addr, value & 0xFFFFFFFF)

    def read_i32(self, addr: int) -> int:
        self._check(addr, 4)
        return _I32.unpack_from(self._buf, addr)[0]

    def write_i32(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        _I32.pack_into(self._buf, addr, value)

    def read_f32(self, addr: int) -> float:
        self._check(addr, 4)
        return _F32.unpack_from(self._buf, addr)[0]

    def write_f32(self, addr: int, value: float) -> None:
        self._check(addr, 4)
        _F32.pack_into(self._buf, addr, value)

    def read_u32_array(self, addr: int, count: int) -> np.ndarray:
        self._check(addr, 4 * count)
        return np.frombuffer(self._buf, dtype="<u4", count=count, offset=addr).copy()

    def write_u32_array(self, addr: int, values: np.ndarray) -> None:
        arr = np.ascontiguousarray(values, dtype="<u4")
        self._check(addr, arr.nbytes)
        self._buf[addr : addr + arr.nbytes] = arr.tobytes()

    def read_f32_array(self, addr: int, count: int) -> np.ndarray:
        self._check(addr, 4 * count)
        return np.frombuffer(self._buf, dtype="<f4", count=count, offset=addr).copy()

    def write_f32_array(self, addr: int, values: np.ndarray) -> None:
        arr = np.ascontiguousarray(values, dtype="<f4")
        self._check(addr, arr.nbytes)
        self._buf[addr : addr + arr.nbytes] = arr.tobytes()

    # Functional halves of atomics; timing is applied by the engine.

    def atomic_add_u32(self, addr: int, delta: int) -> int:
        old = self.read_u32(addr)
        self.write_u32(addr, old + delta)
        return old

    def atomic_max_u32(self, addr: int, value: int) -> int:
        old = self.read_u32(addr)
        if value > old:
            self.write_u32(addr, value)
        return old

    def atomic_cas_u32(self, addr: int, expected: int, value: int) -> int:
        old = self.read_u32(addr)
        if old == expected:
            self.write_u32(addr, value)
        return old


class SharedMemory:
    """Per-block software-managed scratchpad (16 KB on GTX 280).

    Offsets are block-local.  The framework's layout manager
    (:mod:`repro.framework.layout`) carves this into the input area,
    output area, working areas and flag words.
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("shared memory size must be positive")
        self.size = int(size)
        self._buf = bytearray(self.size)
        self._u32view = None
        #: Optional access observer (the sanitizer's race detector);
        #: when set, every functional read/write/atomic is reported.
        self.observer = None

    def _check(self, off: int, nbytes: int) -> None:
        if off < 0 or nbytes < 0 or off + nbytes > self.size:
            raise OutOfBoundsError(
                f"shared access [{off}, {off + nbytes}) outside [0, {self.size})"
            )

    # Hot accessors test bounds inline; :meth:`_check` is only called
    # on failure, for its error message (see GlobalMemory).

    def read(self, off: int, nbytes: int) -> bytes:
        if off < 0 or nbytes < 0 or off + nbytes > self.size:
            self._check(off, nbytes)
        if self.observer is not None:
            self.observer.on_read(off, nbytes)
        return bytes(self._buf[off : off + nbytes])

    def write(self, off: int, data: bytes | bytearray | memoryview) -> None:
        nbytes = len(data)
        if off < 0 or off + nbytes > self.size:
            self._check(off, nbytes)
        self._buf[off : off + nbytes] = data
        if self.observer is not None:
            self.observer.on_write(off, nbytes)

    def fill(self, off: int, nbytes: int, byte: int = 0) -> None:
        self._check(off, nbytes)
        self._buf[off : off + nbytes] = bytes([byte]) * nbytes
        if self.observer is not None:
            self.observer.on_write(off, nbytes)

    def read_u32(self, off: int) -> int:
        if off < 0 or off + 4 > self.size:
            self._check(off, 4)
        if self.observer is not None:
            self.observer.on_read(off, 4)
        return _U32.unpack_from(self._buf, off)[0]

    def flag_checker(self, off: int, value: int, *, negate: bool = False):
        """Build the cheapest closure testing one aligned word.

        Poll probes evaluate their condition once per simulated probe,
        which makes the closure itself hot.  Without an observer the
        word can be read straight out of a cached ``memoryview`` (no
        bounds re-check, no struct unpack); with one attached, probes
        must remain visible to the race checker, so the closure goes
        through :meth:`read_u32`.  Timing is unaffected either way.
        """
        if (
            self.observer is None
            and off % 4 == 0
            and self.size % 4 == 0
            and sys.byteorder == "little"
        ):
            mv = self._u32view
            if mv is None:
                mv = self._u32view = memoryview(self._buf).cast("I")
            idx = off >> 2
            if not 0 <= idx < len(mv):
                self._check(off, 4)
            if negate:
                return lambda: mv[idx] != value
            return lambda: mv[idx] == value
        read = self.read_u32
        if negate:
            return lambda: read(off) != value
        return lambda: read(off) == value

    def peek_u32(self, off: int) -> int:
        """Read a word *without* notifying the observer (checker
        introspection must not count as a kernel access)."""
        self._check(off, 4)
        return _U32.unpack_from(self._buf, off)[0]

    def write_u32(self, off: int, value: int) -> None:
        if off < 0 or off + 4 > self.size:
            self._check(off, 4)
        _U32.pack_into(self._buf, off, value & 0xFFFFFFFF)
        if self.observer is not None:
            self.observer.on_write(off, 4)

    def read_i32(self, off: int) -> int:
        self._check(off, 4)
        if self.observer is not None:
            self.observer.on_read(off, 4)
        return _I32.unpack_from(self._buf, off)[0]

    def write_i32(self, off: int, value: int) -> None:
        self._check(off, 4)
        _I32.pack_into(self._buf, off, value)
        if self.observer is not None:
            self.observer.on_write(off, 4)

    def read_f32(self, off: int) -> float:
        self._check(off, 4)
        if self.observer is not None:
            self.observer.on_read(off, 4)
        return _F32.unpack_from(self._buf, off)[0]

    def write_f32(self, off: int, value: float) -> None:
        self._check(off, 4)
        _F32.pack_into(self._buf, off, value)
        if self.observer is not None:
            self.observer.on_write(off, 4)

    def atomic_add_u32(self, off: int, delta: int) -> int:
        if off < 0 or off + 4 > self.size:
            self._check(off, 4)
        old = _U32.unpack_from(self._buf, off)[0]
        _U32.pack_into(self._buf, off, (old + delta) & 0xFFFFFFFF)
        if self.observer is not None:
            self.observer.on_atomic(off)
        return old
