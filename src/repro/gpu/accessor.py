"""Instrumented byte views for user Map/Reduce functions.

User-supplied Map/Reduce functions (plain Python, no coroutine
plumbing) receive their key/value records wrapped in :class:`Accessor`
objects.  Every read is recorded as a sequence of touched 4-byte words
— the *access trace*.  The framework replays each warp's lane traces
in lockstep through the timing engine, with addresses resolved to
global memory, shared memory, or the texture path depending on the
active memory-usage mode (G / SI / GT ...).  This is how the same user
function gets faithfully costed under every mode, mirroring how the
paper runs identical Map/Reduce code over different memory plumbing
(with the noted exception that GT requires texture-fetch intrinsics,
which here is just a replay-target change).
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

_WORD = 4


class AccessTrace:
    """Ordered sequence of 4-byte-word offsets touched within a region.

    Consecutive duplicate words are collapsed (a sequential byte scan
    of one word costs one load, as compiled code would keep it in a
    register).
    """

    __slots__ = ("words",)

    def __init__(self) -> None:
        self.words: list[int] = []

    def touch(self, start: int, nbytes: int) -> None:
        if nbytes <= 0:
            return
        first = start // _WORD
        last = (start + nbytes - 1) // _WORD
        words = self.words
        # Words within one access ascend, so only the seam with the
        # previous access can duplicate; the rest extends at C speed.
        if not words or words[-1] != first:
            words.append(first)
        if first != last:
            words.extend(range(first + 1, last + 1))

    def __len__(self) -> int:
        return len(self.words)

    def clear(self) -> None:
        self.words.clear()


class Accessor:
    """Read-only, access-traced view of one record's bytes.

    Supports the natural Python protocols (`len`, indexing, slicing,
    iteration, equality against bytes) plus typed scalar/array reads,
    so workload code stays idiomatic.
    """

    __slots__ = ("_data", "trace")

    def __init__(self, data: bytes, trace: AccessTrace | None = None):
        self._data = data
        self.trace = trace if trace is not None else AccessTrace()

    # -- protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            start, stop, step = idx.indices(len(self._data))
            span = max(0, stop - start)
            self.trace.touch(start, span)
            return self._data[idx]
        if idx < 0:
            idx += len(self._data)
        self.trace.touch(idx, 1)
        return self._data[idx]

    def __iter__(self):
        for i in range(len(self._data)):
            yield self[i]

    def __eq__(self, other) -> bool:
        if isinstance(other, Accessor):
            return self._data == other._data
        if isinstance(other, (bytes, bytearray)):
            return self._data == bytes(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._data)

    def __repr__(self) -> str:
        return f"Accessor({self._data!r})"

    # -- whole-record & typed reads -------------------------------------

    def to_bytes(self) -> bytes:
        """Read the whole record (touches every word)."""
        self.trace.touch(0, len(self._data))
        return self._data

    def peek_bytes(self) -> bytes:
        """Untraced access — for oracles/debugging only."""
        return self._data

    def u32(self, off: int = 0) -> int:
        self.trace.touch(off, 4)
        return struct.unpack_from("<I", self._data, off)[0]

    def i32(self, off: int = 0) -> int:
        self.trace.touch(off, 4)
        return struct.unpack_from("<i", self._data, off)[0]

    def f32(self, off: int = 0) -> float:
        self.trace.touch(off, 4)
        return struct.unpack_from("<f", self._data, off)[0]

    def f32_array(self, off: int = 0, count: int | None = None) -> np.ndarray:
        if count is None:
            count = (len(self._data) - off) // 4
        self.trace.touch(off, 4 * count)
        return np.frombuffer(self._data, dtype="<f4", count=count, offset=off)

    def u32_array(self, off: int = 0, count: int | None = None) -> np.ndarray:
        if count is None:
            count = (len(self._data) - off) // 4
        self.trace.touch(off, 4 * count)
        return np.frombuffer(self._data, dtype="<u4", count=count, offset=off)

    # -- scanning helpers (traced) ---------------------------------------

    def find(self, needle: bytes, start: int = 0) -> int:
        """Traced ``bytes.find``: charges the scanned prefix."""
        pos = self._data.find(needle, start)
        end = len(self._data) if pos < 0 else min(len(self._data), pos + len(needle))
        self.trace.touch(start, end - start)
        return pos


def lockstep_accesses(
    traces: Sequence[AccessTrace],
    bases: Sequence[int],
    *,
    max_steps: int | None = None,
) -> list[list[tuple[int, int]]]:
    """Zip per-lane traces into lockstep access steps.

    Lane *i*'s *k*-th touched word is accessed simultaneously with
    every other lane's *k*-th word (SIMT lockstep).  Returns, per step,
    the list of ``(absolute_addr, 4)`` accesses of the still-active
    lanes — ready to feed to the coalescing model, the texture cache,
    or the shared-memory bank model.

    ``bases[i]`` is the absolute address of lane *i*'s record start.
    """
    n_steps = max((len(t) for t in traces), default=0)
    if max_steps is not None:
        n_steps = min(n_steps, max_steps)
    steps: list[list[tuple[int, int]]] = []
    for k in range(n_steps):
        acc = [
            (bases[i] + t.words[k] * _WORD, _WORD)
            for i, t in enumerate(traces)
            if k < len(t.words)
        ]
        steps.append(acc)
    return steps
