"""Shared-memory bank-conflict model.

GT200 shared memory is organised as 16 banks of 32-bit words;
successive words live in successive banks.  A half-warp whose lanes
hit distinct banks (or broadcast-read the same word) completes in one
pass; ``k`` lanes hitting the *same* bank with *different* words
serialise into ``k`` passes.  The conflict degree computed here feeds
:class:`repro.gpu.instructions.SharedRead`/``SharedWrite``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from .analysis_cache import AnalysisCache, register

#: Number of shared-memory banks on GT200.
NUM_BANKS = 16

#: Bank word width in bytes.
BANK_WIDTH = 4

#: Memo table for :func:`conflict_degree`, keyed by the normalized
#: per-lane word-address pattern (see :func:`conflict_degree_cached`).
BANK_CACHE = register(AnalysisCache("banks.conflict"))


def conflict_degree(
    word_addrs: Sequence[int], half_warp: int = 16, banks: int = NUM_BANKS
) -> int:
    """Maximum serialisation factor over the half-warps of a warp.

    ``word_addrs`` are byte addresses of the 4-byte word each active
    lane touches.  Broadcast (all lanes reading the same word) counts
    as conflict-free, matching the hardware's broadcast path.
    """
    worst = 1
    for i in range(0, len(word_addrs), half_warp):
        per_bank: dict[int, set[int]] = defaultdict(set)
        for a in word_addrs[i : i + half_warp]:
            word = a // BANK_WIDTH
            per_bank[word % banks].add(word)
        degree = max((len(words) for words in per_bank.values()), default=1)
        worst = max(worst, degree)
    return worst


def conflict_degree_cached(
    word_addrs: Sequence[int], half_warp: int = 16, banks: int = NUM_BANKS
) -> int:
    """Memoized :func:`conflict_degree` (exact, cycle-identical).

    Bank assignment is periodic in ``banks * BANK_WIDTH`` bytes, so the
    memo key rebases all addresses against the lowest covered period:
    a uniform shift by a whole number of periods preserves both the
    bank of every access and the distinctness of the words within each
    bank, hence the conflict degree.
    """
    if not word_addrs:
        return 1
    period = banks * BANK_WIDTH
    base = (min(word_addrs) // period) * period
    key = (half_warp, banks) + tuple(a - base for a in word_addrs)
    data = BANK_CACHE.data
    d = data.get(key, -1)
    if d >= 0:
        BANK_CACHE.hits += 1
        return d
    BANK_CACHE.misses += 1
    d = conflict_degree(word_addrs, half_warp, banks)
    BANK_CACHE.room()
    data[key] = d
    return d


def strided_conflict_degree(stride_words: int, lanes: int = 16) -> int:
    """Conflict degree of lane ``i`` accessing word ``i * stride``.

    The classic result: odd strides are conflict-free, stride 2 gives
    2-way conflicts, stride 16 gives 16-way.
    """
    addrs = [lane * stride_words * BANK_WIDTH for lane in range(lanes)]
    return conflict_degree(addrs, half_warp=lanes)
