"""Kernel launch API and the warp-context object kernels program against.

A *kernel* is a Python generator function with signature::

    def kernel(ctx: WarpCtx, *args):
        ...
        data = yield from ctx.gread(addr, nbytes)      # timed global read
        yield from ctx.compute(10)                      # timed ALU work
        old = yield from ctx.atomic_add_global(a, 42)   # timed atomic
        yield from ctx.barrier()                        # __syncthreads()

One coroutine instance runs per *warp* (32 threads in lockstep), the
granularity the paper reasons at.  Helper methods both perform the
functional effect eagerly (real bytes move) and yield the matching
instruction descriptor so the engine can charge simulated time.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Sequence

from .banks import conflict_degree_cached
from .config import WARP_SIZE, DeviceConfig
from .engine import Engine, _BlockRt
from .instructions import (
    AtomicGlobal,
    AtomicGlobalMulti,
    AtomicShared,
    Barrier,
    Compute,
    Fence,
    GlobalRead,
    GlobalWrite,
    Op,
    Poll,
    SharedRead,
    SharedWrite,
    TextureRead,
)
from .memory import GlobalMemory, SharedMemory
from .stats import KernelStats

Kernel = Callable[..., Generator[Op, Any, None]]


class WarpCtx:
    """Execution context handed to each warp coroutine."""

    __slots__ = (
        "device",
        "gmem",
        "_blk",
        "warp_id",
        "grid_blocks",
        "threads_per_block",
        "stats",
        "timing",
        "_engine",
    )

    def __init__(
        self,
        device: "Device",
        blk: _BlockRt,
        warp_id: int,
        grid_blocks: int,
        threads_per_block: int,
        stats: KernelStats,
        engine: Engine | None = None,
    ):
        self.device = device
        self.gmem: GlobalMemory = device.gmem
        self._blk = blk
        self.warp_id = warp_id
        self.grid_blocks = grid_blocks
        self.threads_per_block = threads_per_block
        self.stats = stats
        self.timing = device.config.timing
        self._engine = engine

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def block_id(self) -> int:
        return self._blk.block_id

    @property
    def warps_per_block(self) -> int:
        return self._blk.n_warps

    @property
    def smem(self) -> SharedMemory:
        """The block's shared memory (functional state)."""
        return self._blk.smem

    @property
    def block_state(self) -> dict:
        """Python-side per-block bookkeeping shared by the block's warps.

        Framework code keeps convenience mirrors of structures whose
        authoritative timing behaviour is expressed through explicit
        smem instructions; nothing here is ever charged time.
        """
        return self._blk.state

    @property
    def global_warp_id(self) -> int:
        return self.block_id * self.warps_per_block + self.warp_id

    @property
    def checker(self):
        """The launch's sanitizer hooks, or None when unchecked.

        Framework protocols (collector, WaitSignal) report semantic
        events — reservations, flushes, flag geometry — through this;
        plain kernels never need it.
        """
        eng = self._engine
        return eng.checker if eng is not None else None

    @property
    def can_elide_gmem_addrs(self) -> bool:
        """Whether replay plans may charge global reads by transaction
        count alone (no per-lane addresses on the descriptor).

        False when an L2 cache or sanitizer is attached — both need
        the real address ranges.
        """
        eng = self._engine
        return eng is not None and eng.l2 is None and eng.checker is None

    @property
    def lane_ids(self) -> range:
        return range(WARP_SIZE)

    # ------------------------------------------------------------------
    # Timed operations (use with ``yield from``)
    # ------------------------------------------------------------------

    def compute(self, cycles: float, lanes: int = WARP_SIZE):
        """ALU work; ``cycles`` is warp-level cost."""
        yield Compute(cycles=cycles, lanes=lanes)

    def gread(self, addr: int, nbytes: int):
        """Cooperative coalesced read of a contiguous range; returns bytes."""
        data = self.gmem.read(addr, nbytes)
        yield GlobalRead(addr=addr, nbytes=nbytes)
        return data

    def gwrite(self, addr: int, data: bytes | bytearray | memoryview):
        """Cooperative coalesced write of a contiguous range."""
        self.gmem.write(addr, data)
        yield GlobalWrite(addr=addr, nbytes=len(data))

    def gread_scattered(self, accesses: Sequence[tuple[int, int]]):
        """Per-lane scattered reads; returns a list of byte strings."""
        datas = [self.gmem.read(a, s) for a, s in accesses]
        yield GlobalRead(addrs=tuple(accesses), lanes=max(1, len(accesses)))
        return datas

    def gwrite_scattered(self, writes: Sequence[tuple[int, bytes]]):
        """Per-lane scattered writes of ``(addr, data)`` pairs."""
        accesses = []
        for addr, data in writes:
            self.gmem.write(addr, data)
            accesses.append((addr, len(data)))
        yield GlobalWrite(addrs=tuple(accesses), lanes=max(1, len(accesses)))

    def gtouch_read(self, accesses: Sequence[tuple[int, int]], lanes: int | None = None):
        """Charge for scattered reads without materialising the bytes.

        Used when replaying an access trace whose data was already
        consumed functionally (e.g. user Map code ran eagerly against
        an :class:`~repro.gpu.accessor.Accessor`).
        """
        yield GlobalRead(addrs=tuple(accesses), lanes=lanes or max(1, len(accesses)))

    def tex_read(self, accesses: Sequence[tuple[int, int]]):
        """Read through the texture path; returns list of byte strings."""
        datas = [self.gmem.read(a, s) for a, s in accesses]
        yield TextureRead(addrs=tuple(accesses), lanes=max(1, len(accesses)))
        return datas

    def tex_touch(self, accesses: Sequence[tuple[int, int]]):
        """Charge texture fetches for an already-consumed access trace."""
        yield TextureRead(addrs=tuple(accesses), lanes=max(1, len(accesses)))

    def sread(self, off: int, nbytes: int, conflict: int = 1):
        data = self.smem.read(off, nbytes)
        yield SharedRead(nbytes=nbytes, conflict=conflict)
        return data

    def swrite(self, off: int, data: bytes | bytearray | memoryview, conflict: int = 1):
        self.smem.write(off, data)
        yield SharedWrite(nbytes=len(data), conflict=conflict)

    def stouch(self, nbytes: int, *, write: bool = False, word_addrs: Sequence[int] | None = None):
        """Charge a shared access without moving functional bytes."""
        conflict = conflict_degree_cached(word_addrs) if word_addrs else 1
        if write:
            yield SharedWrite(nbytes=nbytes, conflict=conflict)
        else:
            yield SharedRead(nbytes=nbytes, conflict=conflict)

    def atomic_add_global(self, addr: int, delta: int):
        """``atomicAdd`` on a 32-bit global word; returns the old value."""
        old = self.gmem.atomic_add_u32(addr, delta)
        result = yield AtomicGlobal(addr=addr, old=old, delta=delta)
        return result

    def atomic_add_global_multi(self, ops: Sequence[tuple[int, int]]):
        """Issue independent ``atomicAdd`` ops to several counters at
        once; returns the tuple of old values.  Completion waits for
        the slowest counter rather than chaining round trips."""
        olds = [self.gmem.atomic_add_u32(addr, delta) for addr, delta in ops]
        result = yield AtomicGlobalMulti(
            addrs=tuple(addr for addr, _ in ops),
            olds=tuple(olds),
            deltas=tuple(delta for _, delta in ops),
        )
        return result

    def atomic_add_shared(self, off: int, delta: int):
        """Intra-block atomic add on a shared-memory word."""
        old = self.smem.atomic_add_u32(off, delta)
        result = yield AtomicShared(addr=off, old=old)
        return result

    def barrier(self):
        """``__syncthreads()`` over the block's live warps."""
        yield Barrier()

    def fence_block(self):
        """``__threadfence_block()``."""
        yield Fence()

    def poll(self, check: Callable[[], bool], interval: float):
        """Busy-wait until ``check()`` holds, probing every ``interval``."""
        yield Poll(check=check, interval=interval)

    def count(self, name: str, inc: int = 1) -> None:
        """Increment a free-form stats counter (not timed)."""
        self.stats.count(name, inc)

    def mark(self, name: str, **attrs) -> None:
        """Record an untimed instant marker into the launch timeline.

        No-op unless the launch was given a timeline, so framework
        code can mark episodes (overflow flush, final flush) without
        affecting timing or untraced runs.
        """
        eng = self._engine
        if eng is not None and eng.timeline is not None:
            eng.timeline.mark(self.block_id, self.warp_id, name,
                              eng.now, attrs or None)


class Device:
    """A simulated GPU: configuration + global memory + launch entry."""

    def __init__(self, config: DeviceConfig | None = None):
        self.config = config or DeviceConfig.gtx280()
        self.gmem = GlobalMemory(self.config.global_mem_bytes)
        #: Optional sanitizer (:class:`repro.check.Sanitizer`); when
        #: set, every launch runs under a fresh per-launch checker.
        self.checker = None

    def launch(
        self,
        kernel: Kernel,
        *,
        grid: int,
        block: int,
        smem_bytes: int = 0,
        args: tuple = (),
        uses_texture: bool = False,
        regs_per_thread: int = 16,
        max_cycles: float = float("inf"),
        timeline=None,
    ) -> KernelStats:
        """Run ``kernel`` over ``grid`` blocks of ``block`` threads.

        Returns the launch's :class:`KernelStats` (including the
        simulated cycle count).  Functional side effects land in
        ``self.gmem``.  Pass a :class:`repro.gpu.timeline.Timeline` as
        ``timeline`` to trace per-warp execution.
        """
        launch_ck = (self.checker.launch_checker()
                     if self.checker is not None else None)
        engine = Engine(self.config, uses_texture=uses_texture,
                        max_cycles=max_cycles, timeline=timeline,
                        checker=launch_ck)
        stats = engine.stats

        def make_warp(blk: _BlockRt, warp_id: int):
            ctx = WarpCtx(self, blk, warp_id, grid, block, stats, engine)
            return kernel(ctx, *args)

        return engine.run(
            grid=grid,
            threads_per_block=block,
            smem_bytes=smem_bytes,
            make_warp=make_warp,
            regs_per_thread=regs_per_thread,
        )
