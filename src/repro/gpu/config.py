"""Device and timing configuration for the SIMT GPU simulator.

The default parameters model the NVIDIA GeForce GTX 280 used in the
paper's testbed (Section IV-A): 30 multiprocessors (MPs), 8 scalar
processors per MP, 16 KB of software-managed shared memory per MP,
16384 32-bit registers per MP, 1 GB of global memory, and a read-only
texture cache per MP.

Two layers of configuration are separated:

* :class:`DeviceConfig` — architectural *capacities* (counts, sizes,
  limits) that determine occupancy and functional behaviour.
* :class:`TimingParams` — *latencies and throughputs* used by the
  discrete-event timing model.  These are calibrated to public GT200
  numbers (global latency 400-700 cycles, shared memory latency of a
  few dozen cycles, ~141.7 GB/s DRAM bandwidth at a 1.296 GHz SP
  clock) but are deliberately tunable: the reproduction targets the
  *shape* of the paper's results, not absolute microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError

#: Number of threads that execute in lockstep (a warp).  Fixed across
#: all NVIDIA architectures the paper considers.
WARP_SIZE = 32

#: A half-warp: the unit of global-memory coalescing on GT200
#: (Section II-A of the paper).
HALF_WARP = WARP_SIZE // 2


@dataclass(frozen=True)
class TimingParams:
    """Latency/throughput knobs for the discrete-event timing model.

    All times are in SP-clock cycles (GTX 280: 1.296 GHz, so
    1000 cycles = 0.77 us).
    """

    #: Cycles to issue one warp instruction on an MP (32 lanes / 8 SPs).
    issue_cycles: float = 4.0

    #: Round-trip latency of an L2-less global memory access.
    global_latency: float = 500.0

    #: Latency of a shared-memory access (conflict-free).
    shared_latency: float = 24.0

    #: Extra shared-memory cycles per additional conflicting bank access.
    bank_conflict_penalty: float = 20.0

    #: Device-wide service time per 64-byte memory transaction, in
    #: cycles.  141.7 GB/s at 1.296 GHz is ~109 B/cycle, i.e. ~0.59
    #: cycles per 64 B transaction.
    txn_service_cycles: float = 0.59

    #: Size of one coalesced memory transaction in bytes.
    txn_bytes: int = 64

    #: Additional serialisation cost per atomic RMW to the *same*
    #: global address.  GT200 performs atomics at the memory
    #: partitions; published microbenchmarks put same-address atomicAdd
    #: throughput at roughly one op per ~300-550 cycles, which is what
    #: makes a single appendable-buffer tail counter "a critical
    #: section with severe competition" (Section III-A).
    atomic_service_cycles: float = 160.0

    #: Latency part of a global atomic (travel to the memory partition).
    atomic_latency: float = 500.0

    #: Serialisation cost for shared-memory atomics / intra-block
    #: reservations (much cheaper: stays on chip).
    shared_atomic_service_cycles: float = 6.0

    #: Outstanding streaming loads per warp: compilers unroll record
    #: scans / value loops so several independent global loads are in
    #: flight at once (memory-level parallelism).  Replay paths group
    #: this many lockstep access steps into one round-trip.
    memory_parallelism: int = 4

    #: Cost of a ``__syncthreads()`` once the last warp arrives.
    barrier_cycles: float = 8.0

    #: Cost of ``__threadfence_block()``; the paper measured <1 %
    #: overhead for the fence in its signal routine (Section III-C).
    fence_cycles: float = 4.0

    #: Latency of a texture fetch that *hits* the texture cache.  Per
    #: the paper (Section II-A) a hit does **not** decrease fetch
    #: latency relative to global memory; it only removes the
    #: bandwidth demand.
    texture_hit_latency: float = 500.0

    #: Latency of a texture fetch miss (fill from global memory).
    texture_miss_latency: float = 560.0

    #: Latency of a global read served by the L2 cache (Fermi-class
    #: configs only; ~a third of the DRAM round trip).
    l2_hit_latency: float = 180.0

    #: Polling interval, in cycles, of a busy-wait loop that never
    #: yields: roughly one shared-memory read plus a branch.
    poll_interval_spin: float = 28.0

    #: Polling interval of a busy-wait loop that yields via a dummy
    #: global-memory read+write (Section III-C): the warp is swapped
    #: out for about a global round-trip.
    poll_interval_yield: float = 1000.0

    #: Host<->device PCIe bandwidth in bytes per cycle (PCIe 2.0 x16,
    #: ~5 GB/s effective, at 1.296 GHz -> ~3.9 B/cycle).
    pcie_bytes_per_cycle: float = 3.9

    #: Fixed per-transfer PCIe/driver overhead in cycles (~15 us).
    pcie_setup_cycles: float = 20000.0

    #: SP clock in GHz, used only to convert cycles to milliseconds
    #: for human-readable reports.
    clock_ghz: float = 1.296

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count to milliseconds at :attr:`clock_ghz`."""
        return cycles / (self.clock_ghz * 1e6)


@dataclass(frozen=True)
class DeviceConfig:
    """Architectural capacities of the simulated device."""

    name: str = "GeForce GTX 280 (simulated)"

    #: Number of multiprocessors.
    mp_count: int = 30

    #: Scalar processors per MP (determines issue throughput).
    sp_per_mp: int = 8

    #: Shared memory per MP in bytes.
    shared_mem_per_mp: int = 16 * 1024

    #: 32-bit registers per MP.
    registers_per_mp: int = 16384

    #: Global memory size in bytes.  The simulator backs this with a
    #: growable buffer, so this acts as an allocation limit only.
    global_mem_bytes: int = 1 << 30

    #: Maximum thread blocks resident on one MP.
    max_blocks_per_mp: int = 8

    #: Maximum resident threads per MP.
    max_threads_per_mp: int = 1024

    #: Maximum threads per block.
    max_threads_per_block: int = 512

    #: Texture cache capacity per MP, bytes (6-8 KB on GT200; we use 8).
    texture_cache_bytes: int = 8 * 1024

    #: Texture cache line size in bytes.
    texture_line_bytes: int = 32

    #: Texture cache associativity.
    texture_ways: int = 4

    #: Unified L2 cache in front of DRAM; 0 = none (GT200, the
    #: paper's testbed).  Set by :meth:`fermi` for the paper's
    #: future-work architecture.
    l2_cache_bytes: int = 0
    l2_line_bytes: int = 128
    l2_ways: int = 16

    timing: TimingParams = field(default_factory=TimingParams)

    def __post_init__(self) -> None:
        if self.mp_count <= 0:
            raise ConfigError("mp_count must be positive")
        if self.shared_mem_per_mp <= 0:
            raise ConfigError("shared_mem_per_mp must be positive")
        if self.max_threads_per_block % WARP_SIZE:
            raise ConfigError(
                f"max_threads_per_block must be a multiple of {WARP_SIZE}"
            )
        if self.texture_line_bytes <= 0 or (
            self.texture_cache_bytes % self.texture_line_bytes
        ):
            raise ConfigError("texture cache size must be a multiple of line size")

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def gtx280(cls) -> "DeviceConfig":
        """The paper's testbed GPU (Section IV-A)."""
        return cls()

    @classmethod
    def fermi(cls) -> "DeviceConfig":
        """A Fermi-class (GTX 480-like) device: the paper's future-work
        target with a global-memory (L2) cache and larger shared
        memory.  14 SMs with 32 lanes' worth of issue, 48 KB shared
        memory, 768 KB unified L2."""
        return cls(
            name="GeForce GTX 480 (simulated)",
            mp_count=14,
            sp_per_mp=32,
            shared_mem_per_mp=48 * 1024,
            registers_per_mp=32768,
            max_threads_per_mp=1536,
            max_threads_per_block=512,
            max_blocks_per_mp=8,
            l2_cache_bytes=768 * 1024,
            timing=TimingParams(
                issue_cycles=2.0,
                global_latency=400.0,
                shared_latency=26.0,
                txn_service_cycles=0.45,  # ~177 GB/s at 1.4 GHz
                clock_ghz=1.4,
            ),
        )

    @classmethod
    def small(cls, mp_count: int = 4) -> "DeviceConfig":
        """A reduced-MP device for fast unit tests.

        Occupancy rules and per-MP behaviour are identical to
        :meth:`gtx280`; only the MP count (and hence how many blocks
        run concurrently) changes.
        """
        return cls(name=f"sim-small-{mp_count}mp", mp_count=mp_count)

    def with_timing(self, **kwargs) -> "DeviceConfig":
        """Return a copy with some :class:`TimingParams` overridden."""
        return replace(self, timing=replace(self.timing, **kwargs))

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------

    def blocks_per_mp(
        self,
        threads_per_block: int,
        smem_per_block: int,
        regs_per_thread: int = 16,
    ) -> int:
        """How many blocks of the given shape fit on one MP.

        Mirrors the CUDA occupancy calculation: the limit is the
        minimum over the block-slot, thread, register and shared
        memory constraints.  Returns 0 when a single block does not
        fit (the launch is invalid).
        """
        if threads_per_block <= 0:
            raise ConfigError("threads_per_block must be positive")
        if threads_per_block > self.max_threads_per_block:
            return 0
        if smem_per_block > self.shared_mem_per_mp:
            return 0
        regs_per_block = regs_per_thread * threads_per_block
        if regs_per_block > self.registers_per_mp:
            return 0
        limits = [
            self.max_blocks_per_mp,
            self.max_threads_per_mp // threads_per_block,
        ]
        if smem_per_block > 0:
            limits.append(self.shared_mem_per_mp // smem_per_block)
        if regs_per_block > 0:
            limits.append(self.registers_per_mp // regs_per_block)
        return max(0, min(limits))
