"""Shared infrastructure for memoized access-pattern analyses.

MapReduce access patterns are massively repetitive: every warp of a
Map launch walks records of (nearly) the same shape, shifted by a
whole number of coalescing segments / bank periods.  The coalescing
and bank-conflict models are pure functions of the *relative* address
pattern, so the simulator analyzes each normalized pattern once and
reuses the result everywhere — the same analyze-once-per-pattern trick
real GPU frameworks apply, here applied to the simulator itself.

Each analysis keeps its memo table in an :class:`AnalysisCache`
registered here.  Keys are *normalized* (addresses rebased against the
relevant period: transaction segment for coalescing, bank stride
period for conflicts) so that patterns identical up to a uniform
segment-aligned shift share one entry; Python's dict interns the key
tuples, making the per-warp address-delta tuple the canonical pattern
identity.

Correctness invariants:

* Memoization is exact — cached analyses return bit-identical results
  to the uncached model functions (pinned by ``tests/gpu`` cache tests
  and the golden traces).
* Caches are invalidated whenever an :class:`Engine` is built with
  different :class:`~repro.gpu.config.TimingParams` than the previous
  one (:func:`note_timing`), so timing-parameter sweeps can never read
  a stale entry.  Keys additionally embed the parameters they depend
  on (belt and suspenders).
* Tables are bounded: a cache that reaches ``max_entries`` is flushed
  wholesale (counted in ``evictions``) rather than growing without
  limit under adversarial non-repetitive workloads.

Per-launch hit/miss deltas are surfaced in
:class:`~repro.gpu.stats.KernelStats` (``analysis_cache_hits`` /
``analysis_cache_misses``); global per-cache counters are available
via :func:`cache_counters`.
"""

from __future__ import annotations

from typing import Any

#: Default bound on entries per cache; generous (patterns are few).
DEFAULT_MAX_ENTRIES = 1 << 16


class AnalysisCache:
    """One bounded memo table with hit/miss accounting."""

    __slots__ = ("name", "data", "hits", "misses", "evictions", "max_entries")

    def __init__(self, name: str, max_entries: int = DEFAULT_MAX_ENTRIES):
        self.name = name
        self.data: dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.max_entries = max_entries

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self.data.clear()

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def room(self) -> None:
        """Make room for one insertion, flushing when full."""
        if len(self.data) >= self.max_entries:
            self.data.clear()
            self.evictions += 1

    def counters(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self.data),
            "evictions": self.evictions,
        }


_REGISTRY: dict[str, AnalysisCache] = {}

#: TimingParams of the most recent Engine; caches are flushed when a
#: new engine is built with different timing (see :func:`note_timing`).
_active_timing = None


def register(cache: AnalysisCache) -> AnalysisCache:
    """Add a cache to the global registry (idempotent per name)."""
    _REGISTRY[cache.name] = cache
    return cache


def caches() -> tuple[AnalysisCache, ...]:
    return tuple(_REGISTRY.values())


def clear_all_caches() -> None:
    """Explicitly invalidate every registered analysis cache."""
    for cache in _REGISTRY.values():
        cache.clear()


def cache_counters() -> dict[str, dict[str, int]]:
    """Global per-cache counters, keyed by cache name."""
    return {name: c.counters() for name, c in sorted(_REGISTRY.items())}


def totals() -> tuple[int, int]:
    """Aggregate ``(hits, misses)`` over every registered cache."""
    hits = misses = 0
    for c in _REGISTRY.values():
        hits += c.hits
        misses += c.misses
    return hits, misses


def note_timing(timing) -> None:
    """Record the timing parameters about to drive an engine.

    When they differ from the previous engine's, all analysis caches
    are invalidated — a config change (e.g. a ``txn_bytes`` or bank
    sweep in the sensitivity analysis) must never be served stale
    pattern analyses.  Same-config launches (the overwhelmingly common
    case) keep their warm caches.
    """
    global _active_timing
    if timing != _active_timing:
        clear_all_caches()
        _active_timing = timing
