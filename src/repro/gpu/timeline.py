"""Opt-in per-warp timeline tracing and text-Gantt rendering.

Attach a :class:`Timeline` to a launch to record every instruction's
``(warp, category, issue, completion)`` tuple, then render an ASCII
Gantt chart or export the trace for offline analysis.  This is the
debugging view that makes the framework's behaviour *visible*: helper
warps parked in polls, compute warps stalling on the atomic unit,
flush epochs synchronising the block.

Tracing costs memory and time proportional to the instruction count,
so it is off by default; enable per launch::

    from repro.gpu.timeline import Timeline
    tl = Timeline()
    stats = dev.launch(kernel, grid=1, block=128, timeline=tl)
    print(tl.render(width=100))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

#: One glyph per instruction category in the Gantt rendering.
GLYPHS = {
    "compute": "#",
    "shared": "s",
    "shared_atomic": "S",
    "global_read": "r",
    "global_write": "w",
    "atomic": "A",
    "texture": "t",
    "barrier": "B",
    "fence": "f",
    "poll": ".",
    "nop": " ",
}


@dataclass(frozen=True)
class TimelineEvent:
    block: int
    warp: int
    category: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class TimelineMark:
    """A named instant raised by framework code (e.g. a flush epoch).

    Marks cost nothing and do not participate in rendering or
    utilisation; they exist so exporters can pin framework-level
    episodes (overflow flush, final flush) onto the warp timeline.
    """

    block: int
    warp: int
    name: str
    time: float
    attrs: dict = field(default_factory=dict)


@dataclass
class Timeline:
    """Collects events during one launch (pass via ``launch(timeline=...)``)."""

    events: list[TimelineEvent] = field(default_factory=list)
    #: Instant markers raised via :meth:`mark` (flush epochs etc.).
    marks: list[TimelineMark] = field(default_factory=list)
    #: Record only these blocks (None = all); tracing every block of a
    #: big launch is rarely useful and very verbose.
    blocks: set[int] | None = None

    def record(self, block: int, warp: int, category: str,
               start: float, end: float) -> None:
        if self.blocks is not None and block not in self.blocks:
            return
        self.events.append(TimelineEvent(block, warp, category, start, end))

    def mark(self, block: int, warp: int, name: str, time: float,
             attrs: dict | None = None) -> None:
        if self.blocks is not None and block not in self.blocks:
            return
        self.marks.append(TimelineMark(block, warp, name, time, attrs or {}))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def lanes(self) -> list[tuple[int, int]]:
        """The distinct (block, warp) lanes, in order."""
        return sorted({(e.block, e.warp) for e in self.events})

    def span(self) -> tuple[float, float]:
        if not self.events:
            return (0.0, 0.0)
        return (
            min(e.start for e in self.events),
            max(e.end for e in self.events),
        )

    def busy_cycles(self, block: int, warp: int) -> dict[str, float]:
        """Per-category occupied cycles for one warp."""
        out: dict[str, float] = {}
        for e in self.events:
            if (e.block, e.warp) == (block, warp):
                out[e.category] = out.get(e.category, 0.0) + e.duration
        return out

    def utilisation(self, block: int, warp: int) -> float:
        """Fraction of the launch span this warp spent occupied."""
        lo, hi = self.span()
        if hi <= lo:
            return 0.0
        busy = sum(self.busy_cycles(block, warp).values())
        return min(1.0, busy / (hi - lo))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self, width: int = 100, lanes: Iterable[tuple[int, int]] | None = None
               ) -> str:
        """ASCII Gantt: one row per warp, one column per time bucket.

        Later events overwrite earlier ones within a bucket; polls
        render as '.', making parked helper warps visually obvious.
        """
        lo, hi = self.span()
        if hi <= lo:
            return "(empty timeline)"
        lanes = list(lanes) if lanes is not None else self.lanes()
        scale = (hi - lo) / width
        rows: dict[tuple[int, int], list[str]] = {
            lane: [" "] * width for lane in lanes
        }
        for e in sorted(self.events, key=lambda e: e.start):
            lane = (e.block, e.warp)
            if lane not in rows:
                continue
            c0 = int((e.start - lo) / scale)
            c1 = max(c0 + 1, int((e.end - lo) / scale))
            glyph = GLYPHS.get(e.category, "?")
            for c in range(c0, min(c1, width)):
                rows[lane][c] = glyph
        legend = "  ".join(f"{g}={k}" for k, g in GLYPHS.items() if g != " ")
        lines = [f"timeline {lo:.0f}..{hi:.0f} cycles ({scale:.0f} cy/col)"]
        for (b, w), cells in rows.items():
            lines.append(f"b{b:03d}w{w:02d} |{''.join(cells)}|")
        lines.append(legend)
        return "\n".join(lines)
