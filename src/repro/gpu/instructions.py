"""Warp-level instruction descriptors.

Kernels in this simulator are Python generator coroutines executed at
*warp* granularity (the paper reasons at warp granularity throughout:
warp results, in-warp prefix sums, first-lane atomics, compute vs.
helper *warps*).  A kernel ``yield``\\ s instances of the classes below;
the engine charges simulated time for each and resumes the coroutine
with the instruction's result (where one exists, e.g. the old value of
an atomic).

Functional state (actual bytes in global/shared memory) is mutated
*eagerly* by the kernel helpers before the descriptor is yielded, so
results are exact and checkable; the descriptors exist purely to drive
the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from .config import WARP_SIZE


@dataclass(frozen=True, slots=True)
class Op:
    """Base class for warp instructions."""

    #: Number of active lanes executing this instruction (1..32).
    lanes: int = WARP_SIZE


@dataclass(frozen=True, slots=True)
class Compute(Op):
    """`cycles` of ALU work by the warp (already warp-normalised)."""

    cycles: float = 4.0


@dataclass(frozen=True, slots=True)
class GlobalRead(Op):
    """A warp-wide read from global memory.

    Either ``addrs`` lists a per-lane ``(address, size)`` pair (for
    scattered access, fed to the coalescing model), or ``addr``/
    ``nbytes`` describe one contiguous range read cooperatively by the
    warp (always coalesced: neighbouring lanes read neighbouring
    words, the pattern used by the staging copies in Section III-A).
    """

    addr: int = 0
    nbytes: int = 0
    addrs: Sequence[tuple[int, int]] | None = None
    #: Precomputed transaction count (replay-plan fast path).  When
    #: set, the engine charges exactly this many transactions instead
    #: of re-running the coalescing analysis; producers must derive it
    #: from the same analysis for identical timing.
    ntxn: int | None = None


@dataclass(frozen=True, slots=True)
class GlobalWrite(Op):
    """A warp-wide write to global memory (same addressing as reads).

    Writes are retired through the bandwidth queue but do not stall
    the warp for the full round-trip latency (stores are
    fire-and-forget on GT200 unless a fence/atomic orders them).
    """

    addr: int = 0
    nbytes: int = 0
    addrs: Sequence[tuple[int, int]] | None = None
    #: Precomputed transaction count (see :class:`GlobalRead`).
    ntxn: int | None = None


@dataclass(frozen=True, slots=True)
class SharedRead(Op):
    """A warp-wide shared-memory read.

    ``conflict`` is the bank-conflict degree (1 = conflict free); use
    :mod:`repro.gpu.banks` to derive it from per-lane addresses.
    """

    nbytes: int = 4 * WARP_SIZE
    conflict: int = 1


@dataclass(frozen=True, slots=True)
class SharedWrite(Op):
    nbytes: int = 4 * WARP_SIZE
    conflict: int = 1


@dataclass(frozen=True, slots=True)
class AtomicGlobal(Op):
    """A read-modify-write on a global address by one lane.

    The engine serialises atomics per address; the functional update
    has already happened (the ``old`` value is carried along so the
    engine can hand it back as the instruction result, mirroring
    ``atomicAdd`` semantics).
    """

    addr: int = 0
    old: int = 0
    #: Amount added (0 for descriptors that only model timing); the
    #: sanitizer's linearizability check replays ``old``/``delta``.
    delta: int = 0
    lanes: int = 1


@dataclass(frozen=True, slots=True)
class AtomicGlobalMulti(Op):
    """Several *independent* global atomics issued back-to-back.

    The reservation paths advance independent tail counters (key
    bytes, value bytes, record count); real code issues all three and
    waits once, so completion is the max of the per-address times, not
    their sum.
    """

    addrs: Sequence[int] = field(default_factory=tuple)
    olds: Sequence[int] = field(default_factory=tuple)
    deltas: Sequence[int] = field(default_factory=tuple)
    lanes: int = 1


@dataclass(frozen=True, slots=True)
class AtomicShared(Op):
    """A read-modify-write on a shared-memory cell by one lane."""

    addr: int = 0
    old: int = 0
    lanes: int = 1


@dataclass(frozen=True, slots=True)
class TextureRead(Op):
    """A warp-wide read through the read-only texture path.

    Carries per-lane ``(address, size)`` pairs; the engine probes the
    MP's texture cache.  Hits cost full latency but no global
    bandwidth (Section II-A); misses fill a line and consume
    bandwidth.
    """

    addrs: Sequence[tuple[int, int]] = field(default_factory=tuple)


@dataclass(frozen=True, slots=True)
class Barrier(Op):
    """``__syncthreads()`` — all warps of the block must arrive."""


@dataclass(frozen=True, slots=True)
class Fence(Op):
    """``__threadfence_block()`` — ordering only, small fixed cost."""


@dataclass(frozen=True, slots=True)
class Poll(Op):
    """One busy-wait probe of a condition.

    ``check`` reads *functional* state (e.g. flag variables in shared
    memory).  The engine evaluates it at issue time; if false the warp
    re-arms after ``interval`` cycles, consuming an MP issue slot per
    probe — this is precisely the mechanism behind Figure 8: a
    spinning helper warp (small ``interval``) steals issue slots from
    compute warps, while a yielding one (interval ≈ a global-memory
    round trip, implemented in the paper as a dummy global read+write)
    probes rarely.

    The instruction result is ``True`` once the condition holds.
    """

    check: Callable[[], bool] = bool
    interval: float = 28.0


@dataclass(frozen=True, slots=True)
class Nop(Op):
    """Zero-cost marker (used by instrumentation hooks in tests)."""
