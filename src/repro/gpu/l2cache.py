"""Optional L2 cache model — the paper's "newer GPU architecture".

Section VI: "We also plan to extend our work to the newer GPU
architecture, which has a global memory cache".  Fermi (the
generation after the paper's GT200) added a unified ~768 KB L2 in
front of DRAM.  This model sits between the engine and the
:class:`~repro.gpu.interconnect.MemorySystem`: read transactions that
hit in L2 are served at L2 latency without consuming DRAM bandwidth;
misses fill a line through the DRAM queue.  Writes go through
(write-through with allocate, a simplification noted in DESIGN.md).

Enable it via ``DeviceConfig.fermi()`` or by setting
``l2_cache_bytes`` on any config; GT200 configs leave it at 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .interconnect import MemorySystem


@dataclass
class L2Cache:
    """Set-associative write-through cache in front of DRAM."""

    capacity: int = 768 * 1024
    line_bytes: int = 128
    ways: int = 16
    hit_latency: float = 180.0

    hits: int = 0
    misses: int = 0

    _sets: list[dict[int, None]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        n_lines = max(1, self.capacity // self.line_bytes)
        self.n_sets = max(1, n_lines // self.ways)
        # Ordered dicts double as LRU queues.
        self._sets = [dict() for _ in range(self.n_sets)]

    def _touch_line(self, line: int) -> bool:
        s = self._sets[line % self.n_sets]
        if line in s:
            s.pop(line)
            s[line] = None  # LRU refresh
            return True
        s[line] = None
        if len(s) > self.ways:
            s.pop(next(iter(s)))
        return False

    def access_read(
        self,
        memsys: MemorySystem,
        t_issue: float,
        ranges: list[tuple[int, int]],
    ) -> float:
        """Serve a read of byte ``ranges``; returns data-ready time."""
        miss_lines = 0
        hit_any = False
        for addr, size in ranges:
            if size <= 0:
                continue
            first = addr // self.line_bytes
            last = (addr + size - 1) // self.line_bytes
            for line in range(first, last + 1):
                if self._touch_line(line):
                    self.hits += 1
                    hit_any = True
                else:
                    self.misses += 1
                    miss_lines += 1
        if miss_lines:
            fill = miss_lines * self.line_bytes
            ntxn = max(1, fill // 64)
            return memsys.request_read(t_issue, ntxn, fill)
        if hit_any:
            return t_issue + self.hit_latency
        return t_issue

    def access_write(
        self,
        memsys: MemorySystem,
        t_issue: float,
        ranges: list[tuple[int, int]],
        ntxn: int,
        nbytes: int,
    ) -> float:
        """Write-through: allocate lines, pass traffic to DRAM."""
        for addr, size in ranges:
            if size <= 0:
                continue
            first = addr // self.line_bytes
            last = (addr + size - 1) // self.line_bytes
            for line in range(first, last + 1):
                self._touch_line(line)
        return memsys.request_write(t_issue, ntxn, nbytes)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
