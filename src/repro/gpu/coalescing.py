"""Global-memory coalescing model (GT200 rules, paper Section II-A).

On the GTX 280, the accesses of a *half-warp* (16 threads) are
coalesced into a single memory transaction when they fall within one
aligned segment; otherwise the hardware issues one transaction per
distinct segment touched (GT200 is the generation that relaxed the
strict in-order rules of G80 to "one transaction per segment").

Segment size is 32 B for 1-byte accesses, 64 B for 2-byte, and 128 B
for 4-, 8- and 16-byte accesses; we approximate with the configured
``txn_bytes`` (64 B default) for uniformity, which preserves the
contrast the paper relies on: a warp reading 32 consecutive words
costs 2 transactions, while a warp reading 32 scattered records costs
up to 32.
"""

from __future__ import annotations

from math import ceil
from typing import Iterable, Sequence

from .analysis_cache import AnalysisCache, register

#: Memo table for :func:`scattered_transactions`, keyed by the
#: normalized per-warp address-delta pattern (see
#: :func:`scattered_transactions_cached`).
TXN_CACHE = register(AnalysisCache("coalescing.scattered"))


def segments_for_range(addr: int, nbytes: int, seg: int) -> int:
    """Number of ``seg``-byte aligned segments overlapped by a range."""
    if nbytes <= 0:
        return 0
    first = addr // seg
    last = (addr + nbytes - 1) // seg
    return int(last - first + 1)


def contiguous_transactions(
    addr: int, nbytes: int, seg: int, lanes: int = 32, half_warp: int = 16
) -> int:
    """Transactions for a warp cooperatively copying a contiguous range.

    Neighbouring lanes read neighbouring words (the staging-in pattern
    of Section III-A), so the access is perfectly coalesced and the
    cost is simply the number of segments covered.
    """
    return segments_for_range(addr, nbytes, seg)


def scattered_transactions(
    accesses: Sequence[tuple[int, int]], seg: int, half_warp: int = 16
) -> int:
    """Transactions for per-lane scattered ``(addr, size)`` accesses.

    The accesses are grouped into half-warps in lane order; within
    each half-warp, the transaction count is the number of distinct
    segments touched (each access may itself straddle segments).
    """
    total = 0
    for i in range(0, len(accesses), half_warp):
        segs: set[int] = set()
        for addr, size in accesses[i : i + half_warp]:
            if size <= 0:
                continue
            first = addr // seg
            last = (addr + size - 1) // seg
            segs.update(range(first, last + 1))
        total += len(segs)
    return total


def scattered_transactions_cached(
    accesses: Sequence[tuple[int, int]], seg: int, half_warp: int = 16
) -> int:
    """Memoized :func:`scattered_transactions` (exact, cycle-identical).

    The transaction count is invariant under shifting *every* access by
    a common multiple of ``seg``, so the memo key rebases the pattern
    against its lowest covered segment: ``(seg, half_warp,
    (addr - base, size)...)`` with ``base = min_addr // seg * seg``.
    Each warp of a launch touching the same record shape — merely
    shifted by whole segments — therefore hits one shared entry.
    """
    if not accesses:
        return 0
    base = (min(a for a, _ in accesses) // seg) * seg
    # One packed int per access: sizes are < 2**32 by construction
    # (device buffers are bounds-checked against a <=1 GB allocation),
    # so ``(delta << 32) | size`` is injective and hashes as a single
    # machine word.
    key = (seg, half_warp) + tuple(
        ((a - base) << 32) | s for a, s in accesses
    )
    data = TXN_CACHE.data
    n = data.get(key, -1)
    if n >= 0:
        TXN_CACHE.hits += 1
        return n
    TXN_CACHE.misses += 1
    n = scattered_transactions(accesses, seg, half_warp)
    TXN_CACHE.room()
    data[key] = n
    return n


def transactions_for(
    *,
    addr: int = 0,
    nbytes: int = 0,
    addrs: Sequence[tuple[int, int]] | None = None,
    seg: int = 64,
) -> int:
    """Dispatch to the contiguous or scattered model."""
    if addrs is not None:
        return scattered_transactions(addrs, seg)
    return contiguous_transactions(addr, nbytes, seg)


def bytes_touched(
    *, nbytes: int = 0, addrs: Iterable[tuple[int, int]] | None = None
) -> int:
    """Useful-byte count of an access (for bandwidth-efficiency stats)."""
    if addrs is not None:
        return sum(size for _, size in addrs)
    return nbytes


def strided_lane_accesses(
    base: int, stride: int, size: int, lanes: int
) -> list[tuple[int, int]]:
    """Helper: the per-lane access list for a constant-stride pattern.

    ``stride == size`` with 4-byte elements is the perfectly coalesced
    pattern; large strides (e.g. each lane reading the head of its own
    record) produce one transaction per lane — the contrast that makes
    staged input win for Inverted Index in the paper.
    """
    return [(base + lane * stride, size) for lane in range(lanes)]


def estimate_record_read_transactions(
    offsets: Sequence[int], sizes: Sequence[int], seg: int = 64, lanes: int = 32
) -> int:
    """Transactions for each lane reading one whole (off, size) record.

    Models the G-mode pattern where thread *i* walks record *i*
    residing at arbitrary global offsets.  Reads are broken into
    4-byte word accesses per lane and coalesced per half-warp word
    step, approximating lockstep execution of the record-scanning
    loop.
    """
    if not offsets:
        return 0
    n_steps = ceil(max(sizes, default=0) / 4)
    total = 0
    for step in range(n_steps):
        word_accesses = []
        for off, size in zip(offsets, sizes):
            pos = step * 4
            if pos < size:
                word_accesses.append((off + pos, min(4, size - pos)))
        total += scattered_transactions(word_accesses, seg)
    return total
