"""Device-wide memory-system model: bandwidth queue plus latency.

Every global-memory transaction (a coalesced 64-byte segment access)
must pass through the DRAM subsystem, which serves transactions at a
fixed rate derived from the device bandwidth.  Under light load a
request completes after the base latency; under heavy load (many MPs
streaming, or badly-coalesced access patterns multiplying the
transaction count) requests queue and the *effective* latency grows.

This single shared resource is what couples the simulated MPs
together and produces the paper's memory-bound behaviours: Matrix
Multiplication's flat scaling with block size (Section IV-D) and the
bandwidth benefit of texture-cache hits (which bypass this queue
entirely, Section II-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MemorySystem:
    """FIFO bandwidth queue for global-memory transactions."""

    latency: float = 500.0
    #: Service time per transaction in cycles (64 B / device B-per-cycle).
    service: float = 0.59

    _free_at: float = 0.0
    #: Counters surfaced through KernelStats.
    transactions: int = 0
    bytes_moved: int = 0
    queue_cycles: float = 0.0

    def request_read(self, t_issue: float, ntxn: int, nbytes: int) -> float:
        """A blocking read of ``ntxn`` transactions; returns data-ready time."""
        if ntxn <= 0:
            return t_issue
        start = max(t_issue, self._free_at)
        self.queue_cycles += start - t_issue
        self._free_at = start + ntxn * self.service
        self.transactions += ntxn
        self.bytes_moved += nbytes
        return self._free_at + self.latency

    def request_write(self, t_issue: float, ntxn: int, nbytes: int) -> float:
        """A posted write; returns when the warp may proceed.

        Stores retire through the same bandwidth queue but the warp
        only waits for queue admission, not the DRAM round trip.
        """
        if ntxn <= 0:
            return t_issue
        start = max(t_issue, self._free_at)
        self.queue_cycles += start - t_issue
        self._free_at = start + ntxn * self.service
        self.transactions += ntxn
        self.bytes_moved += nbytes
        return self._free_at

    def reset(self) -> None:
        self._free_at = 0.0
        self.transactions = 0
        self.bytes_moved = 0
        self.queue_cycles = 0.0
