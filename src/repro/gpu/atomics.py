"""Atomic-unit timing model: per-address serialisation.

The enabling hardware feature for the paper's single-pass design is
the global atomic RMW (Section II-B).  Its performance hazard — the
reason the paper stages output through shared memory — is that
*conflicting* atomics (same address) are serialised by the memory
partition's atomic unit.  With thousands of threads appending to one
output buffer, the tail counter becomes "a critical section with
severe competition" (Section III-A).

This model captures exactly that: each address has a FIFO service
point; an atomic issued at time ``t`` completes no earlier than the
previous atomic to the same address plus a service interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AtomicUnit:
    """Serialises atomic RMWs per address.

    Parameters
    ----------
    latency:
        One-way-plus-return travel time to the unit (cycles).
    service:
        Occupancy of the unit per conflicting op (cycles).
    """

    latency: float = 500.0
    service: float = 24.0
    _free_at: dict[int, float] = field(default_factory=dict)
    #: Total ops processed, and ops that had to queue behind a
    #: conflicting op (contention indicator surfaced in KernelStats).
    ops: int = 0
    conflicts: int = 0
    queue_cycles: float = 0.0

    def request(self, addr: int, t_issue: float) -> float:
        """Register an atomic to ``addr`` issued at ``t_issue``.

        Returns the completion time (when the old value is available
        to the issuing warp).
        """
        arrive = t_issue + self.latency / 2.0
        free = self._free_at.get(addr, 0.0)
        start = max(arrive, free)
        if free > arrive:
            self.conflicts += 1
            self.queue_cycles += free - arrive
        done_at_unit = start + self.service
        self._free_at[addr] = done_at_unit
        self.ops += 1
        return done_at_unit + self.latency / 2.0

    def reset(self) -> None:
        self._free_at.clear()
        self.ops = 0
        self.conflicts = 0
        self.queue_cycles = 0.0
