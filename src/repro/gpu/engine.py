"""Discrete-event SIMT execution engine.

The engine runs a kernel launch to completion and returns a
:class:`~repro.gpu.stats.KernelStats`.  Model summary:

* **Warp granularity.** Each warp is one Python generator coroutine
  yielding :mod:`~repro.gpu.instructions` descriptors.  A warp has a
  wake time; the soonest-awake warp issues next (min-heap).
* **Issue port.** Each MP issues at most one warp instruction per
  ``issue_cycles`` (single scheduler port, 32 lanes over 8 SPs).  This
  is the resource that busy-wait polling steals — the mechanism behind
  the paper's Figure 8.
* **Memory system.** All global transactions pass through one
  device-wide bandwidth queue (:class:`MemorySystem`); reads block the
  warp for queueing + latency, writes only for queue admission.
* **Atomic unit.** Global atomics serialise per address
  (:class:`AtomicUnit`) — the contention the paper's output staging
  exists to avoid.
* **Blocks.** A block dispatcher starts as many blocks per MP as the
  occupancy calculation allows and backfills as blocks retire,
  matching Section II-A's description of block scheduling.

Determinism: events are ordered by ``(time, sequence_number)``; no
randomness or wall-clock time is consulted anywhere.
"""

from __future__ import annotations

import gc
import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

from ..errors import (
    BarrierDivergenceError,
    DeadlockError,
    KernelFault,
    LaunchError,
)
from .analysis_cache import note_timing
from .analysis_cache import totals as _analysis_totals
from .atomics import AtomicUnit
from .coalescing import (
    bytes_touched,
    contiguous_transactions,
    scattered_transactions_cached,
)
from .config import WARP_SIZE, DeviceConfig
from .instructions import (
    AtomicGlobal,
    AtomicGlobalMulti,
    AtomicShared,
    Barrier,
    Compute,
    Fence,
    GlobalRead,
    GlobalWrite,
    Nop,
    Op,
    Poll,
    SharedRead,
    SharedWrite,
    TextureRead,
)
from .interconnect import MemorySystem
from .l2cache import L2Cache
from .memory import SharedMemory
from .stats import KernelStats
from .texture import TextureCache

#: Safety cap on consecutive unsuccessful probes of a single Poll op;
#: prevents an un-satisfiable condition from spinning forever in real
#: time.  Generous: a real deadlock is detected far earlier by the
#: empty-heap check whenever no poller is involved.
MAX_POLL_RETRIES = 2_000_000


@dataclass(slots=True)
class _MP:
    """Per-multiprocessor scheduling state."""

    index: int
    issue_free: float = 0.0
    active_blocks: int = 0
    texture: TextureCache | None = None


@dataclass(slots=True)
class _BlockRt:
    """Runtime state of one resident thread block."""

    block_id: int
    mp: _MP
    smem: SharedMemory
    n_warps: int
    warps_done: int = 0
    barrier_waiting: list["_Warp"] = field(default_factory=list)
    shared_atomics: AtomicUnit | None = None
    #: Non-timed bookkeeping shared across the block's warps (the
    #: framework keeps its Python-side mirrors of smem structures here).
    state: dict[str, Any] = field(default_factory=dict)


@dataclass(slots=True)
class _Warp:
    gen: Generator[Op, Any, None]
    block: _BlockRt
    warp_id: int
    inbox: Any = None
    done: bool = False
    retry_op: Poll | None = None
    poll_retries: int = 0
    barrier_arrived_at: float = 0.0
    #: ``block.mp`` and ``gen.send``, flattened — the event loop reads
    #: both once per event.
    mp: "_MP" = None
    send: Any = None

    def __post_init__(self) -> None:
        self.mp = self.block.mp
        self.send = self.gen.send


class Engine:
    """Executes one kernel launch."""

    def __init__(
        self,
        config: DeviceConfig,
        *,
        uses_texture: bool = False,
        max_cycles: float = float("inf"),
        timeline=None,
        checker=None,
    ):
        self.config = config
        self.timing = config.timing
        self.uses_texture = uses_texture
        self.max_cycles = max_cycles
        self.timeline = timeline
        #: Optional per-launch sanitizer hooks
        #: (:class:`repro.check.LaunchChecker`).
        self.checker = checker
        # Flush the access-pattern analysis caches if the timing
        # parameters changed since the previous engine (config sweeps
        # must never be served stale analyses).
        note_timing(config.timing)
        t = self.timing
        self.memsys = MemorySystem(latency=t.global_latency, service=t.txn_service_cycles)
        self.l2: L2Cache | None = None
        if config.l2_cache_bytes > 0:
            self.l2 = L2Cache(
                capacity=config.l2_cache_bytes,
                line_bytes=config.l2_line_bytes,
                ways=config.l2_ways,
                hit_latency=t.l2_hit_latency,
            )
        self.atomics = AtomicUnit(latency=t.atomic_latency, service=t.atomic_service_cycles)
        self.mps = [
            _MP(
                index=i,
                texture=TextureCache(
                    capacity=config.texture_cache_bytes,
                    line_bytes=config.texture_line_bytes,
                    ways=config.texture_ways,
                )
                if uses_texture
                else None,
            )
            for i in range(config.mp_count)
        ]
        self.stats = KernelStats()
        self._heap: list[tuple[float, int, _Warp]] = []
        self._seq = 0
        self._now = 0.0
        self._blocks_live = 0
        self._cache_base = _analysis_totals()

    @property
    def now(self) -> float:
        """Current simulated time (used by untimed timeline marks)."""
        return self._now

    # ------------------------------------------------------------------
    # Launch plumbing
    # ------------------------------------------------------------------

    def run(
        self,
        *,
        grid: int,
        threads_per_block: int,
        smem_bytes: int,
        make_warp: Callable[[_BlockRt, int], Generator[Op, Any, None]],
        regs_per_thread: int = 16,
    ) -> KernelStats:
        """Dispatch ``grid`` blocks and run the event loop to completion.

        ``make_warp(block_rt, warp_id)`` constructs the coroutine for
        one warp of one block (the kernel launcher in
        :mod:`repro.gpu.kernel` supplies this).
        """
        if grid <= 0:
            raise LaunchError("grid must have at least one block")
        if threads_per_block <= 0 or threads_per_block % WARP_SIZE:
            raise LaunchError(
                f"threads_per_block must be a positive multiple of {WARP_SIZE}"
            )
        occupancy = self.config.blocks_per_mp(
            threads_per_block, smem_bytes, regs_per_thread
        )
        if occupancy == 0:
            raise LaunchError(
                f"block shape (threads={threads_per_block}, smem={smem_bytes}B, "
                f"regs/thr={regs_per_thread}) does not fit on an MP"
            )
        self.stats.grid_blocks = grid
        self.stats.threads_per_block = threads_per_block
        self.stats.blocks_per_mp = occupancy

        n_warps = threads_per_block // WARP_SIZE
        self._pending = list(range(grid))
        self._pending.reverse()  # pop() yields block 0 first
        self._make_warp = make_warp
        self._n_warps = n_warps
        self._smem_bytes = smem_bytes

        for mp in self.mps:
            for _ in range(occupancy):
                if not self._start_block(mp, at=0.0):
                    break

        self._cache_base = _analysis_totals()
        self._event_loop()
        if self.checker is not None:
            self.checker.launch_finished(self)
        self.stats.cycles = self._now
        self._harvest_counters()
        return self.stats

    def _start_block(self, mp: _MP, at: float) -> bool:
        if not self._pending:
            return False
        bid = self._pending.pop()
        t = self.timing
        blk = _BlockRt(
            block_id=bid,
            mp=mp,
            smem=SharedMemory(max(self._smem_bytes, 16)),
            n_warps=self._n_warps,
            shared_atomics=AtomicUnit(
                latency=t.shared_latency, service=t.shared_atomic_service_cycles
            ),
        )
        mp.active_blocks += 1
        self._blocks_live += 1
        if self.checker is not None:
            self.checker.block_started(blk)
        for w in range(self._n_warps):
            warp = _Warp(gen=self._make_warp(blk, w), block=blk, warp_id=w)
            self._push(at, warp)
        return True

    def _push(self, time: float, warp: _Warp) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, warp))

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def _event_loop(self) -> None:
        # The event loop allocates huge numbers of short-lived objects
        # (heap tuples, op lists, accessors); CPython's generational GC
        # pays a gen-0 pass every ~700 allocations for nothing — kernel
        # state is acyclic and dies with the launch.  Host-only change:
        # simulated timing is unaffected.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if self.checker is not None or self.timeline is not None:
                self._event_loop_observed()
            else:
                self._event_loop_fast()
        finally:
            if gc_was_enabled:
                gc.enable()

        if self._blocks_live:
            waiting = sum(
                1
                for mp in self.mps
                for _ in range(mp.active_blocks)
            )
            msg = (
                f"{self._blocks_live} block(s) still resident with no runnable "
                f"warp (barrier divergence or unsatisfiable wait); "
                f"{waiting} block slots affected"
            )
            if self.checker is not None:
                self.checker.note_deadlock(msg)
            raise DeadlockError(msg)

    def _event_loop_observed(self) -> None:
        """Event loop with tracer/sanitizer hooks enabled.

        Timing math here must stay expression-for-expression identical
        to :meth:`_event_loop_fast` — observers may never change cycle
        counts (pinned by the observer-parity tests).
        """
        heap = self._heap
        checker = self.checker
        while heap:
            t, _, warp = heapq.heappop(heap)
            if warp.done:
                continue
            if checker is not None:
                # Attribute upcoming functional memory traffic (both a
                # coroutine step and a Poll re-probe read smem).
                checker.set_current(warp)
            self._now = max(self._now, t)
            if self._now > self.max_cycles:
                raise DeadlockError(
                    f"simulation exceeded max_cycles={self.max_cycles}"
                )
            mp = warp.block.mp
            t_issue = max(t, mp.issue_free)
            mp.issue_free = t_issue + self.timing.issue_cycles
            self._now = max(self._now, t_issue)

            # Re-probe of an unsatisfied Poll: no coroutine step needed.
            if warp.retry_op is not None:
                op: Op = warp.retry_op
                warp.retry_op = None
            else:
                try:
                    op = warp.gen.send(warp.inbox)
                except StopIteration:
                    self._retire_warp(warp, t_issue)
                    continue
                except Exception as exc:  # pragma: no cover - defensive
                    if isinstance(exc, (DeadlockError, BarrierDivergenceError)):
                        raise
                    raise KernelFault(
                        f"kernel raised in block {warp.block.block_id} "
                        f"warp {warp.warp_id}: {exc!r}"
                    ) from exc
                warp.inbox = None

            self._execute(warp, op, t_issue)

    def _event_loop_fast(self) -> None:
        """Null-observer event loop (no checker, no timeline).

        The hot path of the whole simulator: everything the per-event
        work touches is hoisted into locals, instruction dispatch is
        ordered by measured frequency, and per-category counters and
        stall totals accumulate in locals that are flushed once at the
        end (kernel coroutines never read them mid-launch).  The
        timing expressions mirror :meth:`_event_loop_observed` /
        :meth:`_execute` exactly; only observer calls are elided.
        """
        heap = self._heap
        heappop = heapq.heappop
        pushpop = heapq.heappushpop
        st = self.stats
        stall = st.stall_cycles
        tm = self.timing
        issue_cycles = tm.issue_cycles
        shared_latency = tm.shared_latency
        conflict_penalty = tm.bank_conflict_penalty
        txn_bytes = tm.txn_bytes
        memsys = self.memsys
        mem_read = memsys.request_read
        mem_write = memsys.request_write
        l2 = self.l2
        uses_texture = self.uses_texture
        max_cycles = self.max_cycles
        now = self._now
        seq = self._seq
        n_cold = n_shared = n_polls = n_compute = 0
        n_gwrites = n_greads = n_ashared = 0
        s_shared = s_poll = s_compute = 0.0
        s_gwrite = s_gread = s_ashared = 0.0
        try:
            # ``item`` is the next event to process when already in
            # hand: every dispatch branch reschedules its warp with a
            # single heappushpop (one sift) instead of heappush +
            # heappop (two), and frequently gets its own event back
            # without touching the heap at all.
            item = None
            while True:
                if item is None:
                    if not heap:
                        break
                    item = heappop(heap)
                t, _, warp = item
                item = None
                if warp.done:
                    continue
                if t > now:
                    now = t
                if now > max_cycles:
                    raise DeadlockError(
                        f"simulation exceeded max_cycles={max_cycles}"
                    )
                mp = warp.mp
                t_issue = mp.issue_free
                if t_issue < t:
                    t_issue = t
                mp.issue_free = t_issue + issue_cycles
                if t_issue > now:
                    now = t_issue

                op = warp.retry_op
                if op is not None:
                    warp.retry_op = None
                else:
                    try:
                        op = warp.send(warp.inbox)
                    except StopIteration:
                        self._seq = seq
                        self._now = now
                        self._retire_warp(warp, t_issue)
                        seq = self._seq
                        continue
                    except Exception as exc:  # pragma: no cover - defensive
                        if isinstance(
                            exc, (DeadlockError, BarrierDivergenceError)
                        ):
                            raise
                        raise KernelFault(
                            f"kernel raised in block {warp.block.block_id} "
                            f"warp {warp.warp_id}: {exc!r}"
                        ) from exc
                    warp.inbox = None

                ty = type(op)

                if ty is SharedRead or ty is SharedWrite:
                    n_shared += 1
                    lat = shared_latency + (op.conflict - 1) * conflict_penalty
                    s_shared += lat
                    seq += 1
                    item = pushpop(heap, (t_issue + lat, seq, warp))

                elif ty is Poll:
                    n_polls += 1
                    if op.check():
                        warp.inbox = True
                        warp.poll_retries = 0
                        s_poll += issue_cycles
                        seq += 1
                        item = pushpop(heap, (t_issue + issue_cycles, seq, warp))
                    else:
                        warp.poll_retries += 1
                        if warp.poll_retries > MAX_POLL_RETRIES:
                            raise DeadlockError(
                                f"warp {warp.warp_id} of block "
                                f"{warp.block.block_id} exceeded "
                                f"{MAX_POLL_RETRIES} poll probes"
                            )
                        warp.retry_op = op
                        interval = op.interval
                        s_poll += interval
                        seq += 1
                        item = pushpop(heap, (t_issue + interval, seq, warp))

                elif ty is Compute:
                    n_compute += 1
                    cycles = op.cycles
                    s_compute += cycles
                    seq += 1
                    item = pushpop(heap, (t_issue + cycles, seq, warp))

                elif ty is GlobalWrite:
                    n_gwrites += 1
                    if l2 is None:
                        ntxn = op.ntxn
                        if ntxn is not None:
                            done = mem_write(t_issue, ntxn, op.nbytes)
                        else:
                            addrs = op.addrs
                            if addrs is None:
                                nb = op.nbytes
                                done = mem_write(
                                    t_issue,
                                    contiguous_transactions(
                                        op.addr, nb, txn_bytes
                                    ),
                                    nb,
                                )
                            else:
                                done = mem_write(
                                    t_issue,
                                    scattered_transactions_cached(
                                        addrs, txn_bytes
                                    ),
                                    sum(s for _, s in addrs),
                                )
                    else:
                        ntxn = self._op_transactions(op)
                        nbytes = bytes_touched(
                            nbytes=op.nbytes, addrs=op.addrs
                        )
                        ranges = (
                            list(op.addrs)
                            if op.addrs is not None
                            else [(op.addr, op.nbytes)]
                        )
                        done = l2.access_write(
                            memsys, t_issue, ranges, ntxn, nbytes
                        )
                    if uses_texture:
                        self._mark_texture_dirty(op)
                    s_gwrite += done - t_issue
                    seq += 1
                    item = pushpop(heap, (done, seq, warp))

                elif ty is AtomicShared:
                    n_ashared += 1
                    done = warp.block.shared_atomics.request(op.addr, t_issue)
                    warp.inbox = op.old
                    s_ashared += done - t_issue
                    seq += 1
                    item = pushpop(heap, (done, seq, warp))

                elif ty is GlobalRead:
                    n_greads += 1
                    if l2 is None:
                        ntxn = op.ntxn
                        if ntxn is not None:
                            done = mem_read(t_issue, ntxn, op.nbytes)
                        else:
                            addrs = op.addrs
                            if addrs is None:
                                nb = op.nbytes
                                done = mem_read(
                                    t_issue,
                                    contiguous_transactions(
                                        op.addr, nb, txn_bytes
                                    ),
                                    nb,
                                )
                            else:
                                done = mem_read(
                                    t_issue,
                                    scattered_transactions_cached(
                                        addrs, txn_bytes
                                    ),
                                    sum(s for _, s in addrs),
                                )
                    else:
                        ranges = (
                            list(op.addrs)
                            if op.addrs is not None
                            else [(op.addr, op.nbytes)]
                        )
                        done = l2.access_read(memsys, t_issue, ranges)
                    s_gread += done - t_issue
                    seq += 1
                    item = pushpop(heap, (done, seq, warp))

                else:
                    n_cold += 1
                    self._seq = seq
                    self._now = now
                    self._execute_cold(warp, op, t_issue)
                    seq = self._seq
        finally:
            self._seq = seq
            self._now = now
            st.instructions += (
                n_cold + n_shared + n_polls + n_compute
                + n_gwrites + n_greads + n_ashared
            )
            st.shared_ops += n_shared
            st.polls += n_polls
            st.compute_ops += n_compute
            st.global_writes += n_gwrites
            st.global_reads += n_greads
            st.atomics_shared += n_ashared
            if n_shared:
                stall["shared"] = stall.get("shared", 0.0) + s_shared
            if n_polls:
                stall["poll"] = stall.get("poll", 0.0) + s_poll
            if n_compute:
                stall["compute"] = stall.get("compute", 0.0) + s_compute
            if n_gwrites:
                stall["global_write"] = (
                    stall.get("global_write", 0.0) + s_gwrite
                )
            if n_greads:
                stall["global_read"] = stall.get("global_read", 0.0) + s_gread
            if n_ashared:
                stall["shared_atomic"] = (
                    stall.get("shared_atomic", 0.0) + s_ashared
                )

    def _execute_cold(self, warp: _Warp, op: Op, t_issue: float) -> None:
        """Rare instructions of the null-observer loop.

        Mirrors the corresponding :meth:`_execute` branches with the
        checker hooks elided (this path only runs when no checker is
        attached).  ``instructions`` has already been counted by the
        caller.
        """
        st = self.stats
        tm = self.timing
        ty = type(op)

        if ty is Barrier:
            st.barriers += 1
            blk = warp.block
            blk.barrier_waiting.append(warp)
            warp.barrier_arrived_at = t_issue
            self._maybe_release_barrier(blk, t_issue)

        elif ty is Fence:
            st.fences += 1
            self._push(t_issue + tm.fence_cycles, warp)

        elif ty is AtomicGlobal:
            st.atomics_global += 1
            done = self.atomics.request(op.addr, t_issue)
            # Atomics also occupy crossbar/DRAM bandwidth.
            self.memsys.request_write(t_issue, 1, 4)
            warp.inbox = op.old
            self._note(warp, "atomic", t_issue, done)
            self._push(done, warp)

        elif ty is AtomicGlobalMulti:
            st.atomics_global += len(op.addrs)
            done = t_issue
            for addr in op.addrs:
                done = max(done, self.atomics.request(addr, t_issue))
            self.memsys.request_write(t_issue, len(op.addrs), 4 * len(op.addrs))
            warp.inbox = tuple(op.olds)
            self._note(warp, "atomic", t_issue, done)
            self._push(done, warp)

        elif ty is TextureRead:
            st.texture_reads += 1
            tex = warp.block.mp.texture
            if tex is None:
                raise LaunchError(
                    "TextureRead in a launch without uses_texture=True"
                )
            hit_lines = miss_lines = 0
            for addr, size in op.addrs:
                h, m = tex.access(addr, size)
                hit_lines += h
                miss_lines += m
            if miss_lines:
                fill_bytes = miss_lines * self.config.texture_line_bytes
                ntxn = max(1, fill_bytes // tm.txn_bytes)
                done = self.memsys.request_read(t_issue, ntxn, fill_bytes)
                done = max(done, t_issue + tm.texture_miss_latency)
            else:
                done = t_issue + tm.texture_hit_latency
            self._note(warp, "texture", t_issue, done)
            self._push(done, warp)

        elif ty is Nop:
            self._push(t_issue, warp)

        else:  # pragma: no cover - defensive
            raise KernelFault(f"unknown instruction {op!r}")

    def _op_transactions(self, op: GlobalRead | GlobalWrite) -> int:
        """Transaction count for a global access (memoized analysis)."""
        if op.ntxn is not None:
            return op.ntxn
        if op.addrs is not None:
            return scattered_transactions_cached(
                op.addrs, self.timing.txn_bytes
            )
        return contiguous_transactions(
            op.addr, op.nbytes, self.timing.txn_bytes
        )

    def _retire_warp(self, warp: _Warp, t: float) -> None:
        warp.done = True
        blk = warp.block
        blk.warps_done += 1
        if self.checker is not None:
            self.checker.warp_retired(warp)
        # A finished warp no longer participates in barriers; if the
        # remaining warps are all parked at the barrier, release them.
        self._maybe_release_barrier(blk, t)
        if blk.warps_done == blk.n_warps:
            self._blocks_live -= 1
            blk.mp.active_blocks -= 1
            self._start_block(blk.mp, at=t)

    # ------------------------------------------------------------------
    # Instruction semantics
    # ------------------------------------------------------------------

    def _execute(self, warp: _Warp, op: Op, t_issue: float) -> None:
        st = self.stats
        st.instructions += 1
        tm = self.timing
        checker = self.checker
        if checker is not None and type(op) is not Poll:
            # Any non-Poll instruction is progress for the liveness
            # monitor (Polls report success/failure themselves below).
            checker.op_progress(warp)

        if type(op) is Compute:
            st.compute_ops += 1
            self._note(warp, "compute", t_issue, t_issue + op.cycles)
            self._push(t_issue + op.cycles, warp)

        elif type(op) is SharedRead or type(op) is SharedWrite:
            st.shared_ops += 1
            lat = tm.shared_latency + (op.conflict - 1) * tm.bank_conflict_penalty
            self._note(warp, "shared", t_issue, t_issue + lat)
            self._push(t_issue + lat, warp)

        elif type(op) is GlobalRead:
            st.global_reads += 1
            ntxn = self._op_transactions(op)
            nbytes = bytes_touched(nbytes=op.nbytes, addrs=op.addrs)
            if self.l2 is not None:
                ranges = list(op.addrs) if op.addrs is not None else [
                    (op.addr, op.nbytes)
                ]
                done = self.l2.access_read(self.memsys, t_issue, ranges)
            else:
                done = self.memsys.request_read(t_issue, ntxn, nbytes)
            self._note(warp, "global_read", t_issue, done)
            self._push(done, warp)

        elif type(op) is GlobalWrite:
            st.global_writes += 1
            ntxn = self._op_transactions(op)
            nbytes = bytes_touched(nbytes=op.nbytes, addrs=op.addrs)
            if self.l2 is not None:
                ranges = list(op.addrs) if op.addrs is not None else [
                    (op.addr, op.nbytes)
                ]
                done = self.l2.access_write(
                    self.memsys, t_issue, ranges, ntxn, nbytes
                )
            else:
                done = self.memsys.request_write(t_issue, ntxn, nbytes)
            if self.uses_texture:
                self._mark_texture_dirty(op)
            self._note(warp, "global_write", t_issue, done)
            self._push(done, warp)

        elif type(op) is AtomicGlobal:
            st.atomics_global += 1
            done = self.atomics.request(op.addr, t_issue)
            # Atomics also occupy crossbar/DRAM bandwidth.
            self.memsys.request_write(t_issue, 1, 4)
            if checker is not None:
                checker.atomic_global(op.addr, op.old, op.delta)
            warp.inbox = op.old
            self._note(warp, "atomic", t_issue, done)
            self._push(done, warp)

        elif type(op) is AtomicGlobalMulti:
            st.atomics_global += len(op.addrs)
            done = t_issue
            for addr in op.addrs:
                done = max(done, self.atomics.request(addr, t_issue))
            self.memsys.request_write(t_issue, len(op.addrs), 4 * len(op.addrs))
            if checker is not None:
                deltas = op.deltas or (0,) * len(op.addrs)
                for addr, old, delta in zip(op.addrs, op.olds, deltas):
                    checker.atomic_global(addr, old, delta)
            warp.inbox = tuple(op.olds)
            self._note(warp, "atomic", t_issue, done)
            self._push(done, warp)

        elif type(op) is AtomicShared:
            st.atomics_shared += 1
            unit = warp.block.shared_atomics
            done = unit.request(op.addr, t_issue)
            warp.inbox = op.old
            self._note(warp, "shared_atomic", t_issue, done)
            self._push(done, warp)

        elif type(op) is TextureRead:
            st.texture_reads += 1
            tex = warp.block.mp.texture
            if tex is None:
                raise LaunchError(
                    "TextureRead in a launch without uses_texture=True"
                )
            hit_lines = miss_lines = 0
            for addr, size in op.addrs:
                h, m = tex.access(addr, size)
                hit_lines += h
                miss_lines += m
            if miss_lines:
                fill_bytes = miss_lines * self.config.texture_line_bytes
                ntxn = max(1, fill_bytes // tm.txn_bytes)
                done = self.memsys.request_read(t_issue, ntxn, fill_bytes)
                done = max(done, t_issue + tm.texture_miss_latency)
            else:
                done = t_issue + tm.texture_hit_latency
            self._note(warp, "texture", t_issue, done)
            self._push(done, warp)

        elif type(op) is Barrier:
            st.barriers += 1
            blk = warp.block
            blk.barrier_waiting.append(warp)
            warp.barrier_arrived_at = t_issue
            if checker is not None:
                checker.barrier_wait(warp)
            self._maybe_release_barrier(blk, t_issue)

        elif type(op) is Fence:
            st.fences += 1
            self._push(t_issue + tm.fence_cycles, warp)

        elif type(op) is Poll:
            st.polls += 1
            if op.check():
                if checker is not None:
                    checker.op_progress(warp)
                warp.inbox = True
                warp.poll_retries = 0
                self._note(warp, "poll", t_issue, t_issue + tm.issue_cycles)
                self._push(t_issue + tm.issue_cycles, warp)
            else:
                if checker is not None and checker.poll_blocked(warp):
                    raise DeadlockError(checker.deadlock_reason())
                warp.poll_retries += 1
                if warp.poll_retries > MAX_POLL_RETRIES:
                    raise DeadlockError(
                        f"warp {warp.warp_id} of block {warp.block.block_id} "
                        f"exceeded {MAX_POLL_RETRIES} poll probes"
                    )
                warp.retry_op = op
                self._note(warp, "poll", t_issue, t_issue + op.interval)
                self._push(t_issue + op.interval, warp)

        elif type(op) is Nop:
            self._push(t_issue, warp)

        else:  # pragma: no cover - defensive
            raise KernelFault(f"unknown instruction {op!r}")

    def _note(self, warp: _Warp, category: str, start: float, end: float
              ) -> None:
        self.stats.stall(category, end - start)
        if self.timeline is not None:
            self.timeline.record(
                warp.block.block_id, warp.warp_id, category, start, end
            )

    def _maybe_release_barrier(self, blk: _BlockRt, t: float) -> None:
        live = blk.n_warps - blk.warps_done
        if live and len(blk.barrier_waiting) == live:
            release = t + self.timing.barrier_cycles
            if self.checker is not None:
                self.checker.barrier_release(blk, blk.barrier_waiting)
            for w in blk.barrier_waiting:
                self._note(w, "barrier", w.barrier_arrived_at, release)
                self._push(release, w)
            blk.barrier_waiting.clear()

    def _mark_texture_dirty(self, op: GlobalWrite) -> None:
        ranges: Iterable[tuple[int, int]]
        if op.addrs is not None:
            ranges = op.addrs
        else:
            ranges = ((op.addr, op.nbytes),)
        for mp in self.mps:
            if mp.texture is not None:
                for addr, size in ranges:
                    mp.texture.note_global_write(addr, size)

    # ------------------------------------------------------------------

    def _harvest_counters(self) -> None:
        st = self.stats
        st.global_transactions = self.memsys.transactions
        st.global_bytes = self.memsys.bytes_moved
        st.memory_queue_cycles = self.memsys.queue_cycles
        st.atomic_conflicts = self.atomics.conflicts
        st.atomic_queue_cycles = self.atomics.queue_cycles
        for mp in self.mps:
            if mp.texture is not None:
                st.texture_hits += mp.texture.hits
                st.texture_misses += mp.texture.misses
        if self.l2 is not None:
            st.extra["l2_hits"] = self.l2.hits
            st.extra["l2_misses"] = self.l2.misses
        hits, misses = _analysis_totals()
        st.analysis_cache_hits = hits - self._cache_base[0]
        st.analysis_cache_misses = misses - self._cache_base[1]
