"""``repro.gpu`` — a discrete-event SIMT GPU timing simulator.

This subpackage is the substrate substitution for the paper's
GTX 280: it models multiprocessors with warp schedulers, the
half-warp coalescing rules, software-managed shared memory with bank
conflicts, a device-wide bandwidth queue, a per-address-serialising
atomic unit, and a read-only texture cache — the exact mechanisms the
paper's design decisions are built around.

Typical use::

    from repro.gpu import Device, DeviceConfig

    dev = Device(DeviceConfig.gtx280())

    def kernel(ctx, src, dst, n):
        per_block = n // ctx.grid_blocks
        base = ctx.block_id * per_block
        data = yield from ctx.gread(src + base, per_block)
        yield from ctx.gwrite(dst + base, data)

    src = dev.gmem.alloc(1024); dst = dev.gmem.alloc(1024)
    stats = dev.launch(kernel, grid=4, block=64, args=(src, dst, 1024))
    print(stats.cycles, stats.global_transactions)
"""

from .accessor import Accessor, AccessTrace, lockstep_accesses
from .config import HALF_WARP, WARP_SIZE, DeviceConfig, TimingParams
from .engine import Engine
from .l2cache import L2Cache
from .kernel import Device, WarpCtx
from .memory import GlobalMemory, SharedMemory
from .stats import KernelStats
from .texture import TextureCache, TextureCoherenceError
from .timeline import Timeline, TimelineEvent

__all__ = [
    "Accessor",
    "AccessTrace",
    "Device",
    "DeviceConfig",
    "Engine",
    "GlobalMemory",
    "HALF_WARP",
    "KernelStats",
    "L2Cache",
    "SharedMemory",
    "TextureCache",
    "TextureCoherenceError",
    "Timeline",
    "TimelineEvent",
    "TimingParams",
    "WARP_SIZE",
    "WarpCtx",
    "lockstep_accesses",
]
