"""Execution statistics collected by the engine for each kernel launch."""

from __future__ import annotations

from dataclasses import dataclass, field, fields

#: Launch-geometry fields describe the launch shape rather than an
#: accumulating quantity, so :meth:`KernelStats.merge` takes their max
#: instead of their sum.
GEOMETRY_FIELDS = frozenset({"grid_blocks", "threads_per_block", "blocks_per_mp"})


@dataclass
class KernelStats:
    """Counters and the headline cycle count for one kernel launch.

    ``cycles`` is the simulated wall time of the launch (time from
    launch to the completion of the last block).  The remaining fields
    are diagnostic counters used by tests, the ablation benches, and
    the per-figure analysis in EXPERIMENTS.md.
    """

    cycles: float = 0.0

    #: Instructions issued, by category.
    instructions: int = 0
    compute_ops: int = 0
    global_reads: int = 0
    global_writes: int = 0
    shared_ops: int = 0
    atomics_global: int = 0
    atomics_shared: int = 0
    texture_reads: int = 0
    barriers: int = 0
    fences: int = 0
    polls: int = 0

    #: Memory-system totals.
    global_transactions: int = 0
    global_bytes: int = 0
    memory_queue_cycles: float = 0.0

    #: Atomic-unit totals.
    atomic_conflicts: int = 0
    atomic_queue_cycles: float = 0.0

    #: Texture cache totals.
    texture_hits: int = 0
    texture_misses: int = 0

    #: Access-pattern analysis cache activity during this launch
    #: (coalescing + bank-conflict memo tables, see
    #: :mod:`repro.gpu.analysis_cache`).  Purely diagnostic: cache hits
    #: never change timing, only how fast the simulator computes it.
    analysis_cache_hits: int = 0
    analysis_cache_misses: int = 0

    #: Launch geometry.
    grid_blocks: int = 0
    threads_per_block: int = 0
    blocks_per_mp: int = 0

    #: Warp-cycles spent waiting on each instruction category
    #: (completion time minus issue time, summed over all warps).
    #: Profiler view: where a kernel's time would go if nothing
    #: overlapped; compare categories *between* runs, not to
    #: ``cycles`` (which benefits from latency hiding).
    stall_cycles: dict[str, float] = field(default_factory=dict)

    #: Free-form counters incremented by framework code via
    #: ``WarpCtx.count(name)`` — e.g. output-overflow flushes.
    extra: dict[str, int] = field(default_factory=dict)

    def count(self, name: str, inc: int = 1) -> None:
        self.extra[name] = self.extra.get(name, 0) + inc

    def stall(self, category: str, cycles: float) -> None:
        self.stall_cycles[category] = (
            self.stall_cycles.get(category, 0.0) + cycles
        )

    def stall_breakdown(self) -> dict[str, float]:
        """Fraction of total warp wait time per category."""
        total = sum(self.stall_cycles.values())
        if not total:
            return {}
        return {k: v / total for k, v in sorted(self.stall_cycles.items())}

    @property
    def texture_hit_rate(self) -> float:
        total = self.texture_hits + self.texture_misses
        return self.texture_hits / total if total else 0.0

    def merge(self, other: "KernelStats") -> "KernelStats":
        """Aggregate counters of two launches (cycles are summed).

        Used by multi-kernel phases (e.g. Mars's count pass + scan +
        real pass) to report one phase-level stats object.  Fields are
        discovered via :func:`dataclasses.fields`: numeric counters
        sum, dict counters merge key-wise, and launch geometry
        (:data:`GEOMETRY_FIELDS`) takes the max — so a newly added
        counter can never be silently dropped from merged stats.
        """
        out = KernelStats()
        for f in fields(self):
            a, b = getattr(self, f.name), getattr(other, f.name)
            if f.name in GEOMETRY_FIELDS:
                setattr(out, f.name, max(a, b))
            elif isinstance(a, dict):
                merged = dict(a)
                for k, v in b.items():
                    merged[k] = merged.get(k, type(v)(0)) + v
                setattr(out, f.name, merged)
            else:
                setattr(out, f.name, a + b)
        return out
