"""Shared-memory staging-area layout (paper Section III-B, Figure 4).

The 16 KB of per-MP shared memory available to a block is carved into:

* a small **control area** — the wait-signal flag words (one per warp
  per condition) and the output-area cursors;
* a per-thread **working area** — "a separate small working area is
  allocated to each thread, for the storage of temporary variables
  used in Map/Reduce computation" (e.g. Matrix Multiplication's one
  float of output per thread);
* the **input area** — four statically-managed buffers (keys, values,
  key indices, value indices) holding a contiguous slice of the input,
  mapped 1:1 onto contiguous global-memory segments so staging-in is
  perfectly coalesced;
* the **output area** — dynamically managed as a *double-ended stack*:
  size-predictable structured data (directory entries) grows from the
  left end, size-unpredictable key/value bytes grow from the right
  end; overflow happens only when the two ends would cross.

The input:output split is governed by ``io_ratio``, the workload-
dependent parameter the paper discusses (larger input area = more
concurrency; larger output area = fewer overflow flushes).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..gpu.config import WARP_SIZE
from .modes import MemoryMode

#: Per-warp flag words for each of the two wait-signal conditions
#: (overflow-raised / overflow-handled) plus per-warp seen-state.
FLAG_BYTES_PER_WARP = 16

#: Control words: output-area left/right cursors, record count,
#: overflow state, arrival counters, epoch, reservation bases.
CONTROL_BYTES = 64

#: Shared bytes per staged record for the two directory buffers
#: (key index entry + value index entry, 8 bytes each).
STAGED_DIR_PER_RECORD = 16

#: Output-area bytes consumed on the *left* per collected record
#: (one key index entry + one value index entry).
OUT_DIR_PER_RECORD = 16

#: Output-area bytes per warp-result header (record count + sizes).
WARP_RESULT_HEADER = 8


@dataclass(frozen=True)
class SmemLayout:
    """Resolved shared-memory map for one kernel configuration."""

    total_bytes: int
    threads_per_block: int
    mode: MemoryMode

    flags_off: int
    working_off: int
    working_bytes_per_thread: int
    input_off: int
    input_bytes: int
    output_off: int
    output_bytes: int

    @property
    def smem_bytes(self) -> int:
        """Total shared memory the launch must reserve."""
        return self.total_bytes

    @property
    def n_warps(self) -> int:
        return self.threads_per_block // WARP_SIZE

    # -- input-area capacity ------------------------------------------------

    def records_fit(self, key_sizes, val_sizes, start: int) -> int:
        """How many consecutive records from ``start`` fit the input area.

        Packing rule: key bytes + value bytes + 16 B of staged
        directory per record must fit in ``input_bytes``.
        """
        used = 0
        n = 0
        total = len(key_sizes)
        while start + n < total:
            need = key_sizes[start + n] + val_sizes[start + n] + STAGED_DIR_PER_RECORD
            if used + need > self.input_bytes:
                break
            used += need
            n += 1
        return n


def plan_layout(
    *,
    smem_budget: int,
    threads_per_block: int,
    mode: MemoryMode,
    io_ratio: float = 0.5,
    working_bytes_per_thread: int = 16,
) -> SmemLayout:
    """Carve ``smem_budget`` bytes for a block of the given shape.

    ``io_ratio`` is the fraction of the staging space given to the
    input area when both areas are present (Section III-B: "the size
    ratio between the input and output areas is a parameter dependent
    on workloads").
    """
    if not 0.05 <= io_ratio <= 0.95:
        raise ConfigError(f"io_ratio {io_ratio} outside [0.05, 0.95]")
    if threads_per_block % WARP_SIZE:
        raise ConfigError("threads_per_block must be a warp multiple")
    n_warps = threads_per_block // WARP_SIZE
    flags = FLAG_BYTES_PER_WARP * n_warps + CONTROL_BYTES
    working = working_bytes_per_thread * threads_per_block
    staging = smem_budget - flags - working
    if staging < 512:
        raise ConfigError(
            f"shared-memory budget {smem_budget} too small for "
            f"{threads_per_block} threads (staging space {staging} B)"
        )
    if mode.stages_input and mode.stages_output:
        input_bytes = int(staging * io_ratio)
        output_bytes = staging - input_bytes
    elif mode.stages_input:
        input_bytes, output_bytes = staging, 0
    elif mode.stages_output:
        input_bytes, output_bytes = 0, staging
    else:
        input_bytes = output_bytes = 0

    flags_off = 0
    working_off = flags
    input_off = working_off + working
    output_off = input_off + input_bytes
    used = output_off + output_bytes
    return SmemLayout(
        total_bytes=used if (input_bytes or output_bytes) else flags + working,
        threads_per_block=threads_per_block,
        mode=mode,
        flags_off=flags_off,
        working_off=working_off,
        working_bytes_per_thread=working_bytes_per_thread,
        input_off=input_off,
        input_bytes=input_bytes,
        output_off=output_off,
        output_bytes=output_bytes,
    )
