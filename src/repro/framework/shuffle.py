"""The Shuffle phase: grouping intermediate records into key sets.

Both our framework and Mars "share the same shuffle phase"
(Section IV-F): intermediate records are sorted by key on the device
(Mars uses a GPU bitonic sort) and equal keys become one *key set*.
Because the phase is identical across every compared system, its cost
is modelled analytically (a bitonic-sort cycle model driven by the
same bandwidth/latency parameters as the rest of the simulator) while
the grouping itself is performed functionally and exactly.

The grouped output is laid out device-resident for the Reduce phase:

* ``keys``/``key_dir``   — one entry per distinct key;
* ``vals``/``val_dir``   — every value, contiguous within its group
  (this contiguity is what makes BR's strided loads coalescible);
* ``group_dir``          — per group ``(first_value_index, count)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2

import numpy as np

from ..gpu.config import WARP_SIZE, DeviceConfig
from ..gpu.memory import GlobalMemory
from .records import DIR_ENTRY, DeviceRecordSet, KeyValueSet


@dataclass
class GroupedDeviceSet:
    """Shuffle output: key sets resident in global memory."""

    gmem: GlobalMemory
    n_groups: int
    n_values: int
    keys_addr: int
    key_dir_addr: int
    vals_addr: int
    val_dir_addr: int
    group_dir_addr: int

    #: Host mirrors of the directories (planning / replay geometry).
    key_offs: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    key_lens: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    val_offs: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    val_lens: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    group_starts: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    group_counts: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    #: Lazy ``(addr_list, len_list)`` mirror of the value directory.
    _flat_geometry: tuple[list[int], list[int]] | None = field(
        default=None, repr=False
    )
    #: Lazy list mirrors of the key/group directories (indexing a numpy
    #: scalar per group is ~10x the cost of a list element).
    _key_cols: tuple[list[int], list[int]] | None = field(
        default=None, repr=False
    )
    _group_cols: tuple[list[int], list[int]] | None = field(
        default=None, repr=False
    )

    def key_columns(self) -> tuple[list[int], list[int]]:
        """``(offset_list, length_list)`` mirror of the key directory."""
        cols = self._key_cols
        if cols is None:
            cols = self._key_cols = (
                self.key_offs.tolist(), self.key_lens.tolist()
            )
        return cols

    def group_columns(self) -> tuple[list[int], list[int]]:
        """``(start_list, count_list)`` mirror of the group directory."""
        cols = self._group_cols
        if cols is None:
            cols = self._group_cols = (
                self.group_starts.tolist(), self.group_counts.tolist()
            )
        return cols

    def group_key(self, g: int) -> bytes:
        offs, lens = self.key_columns()
        return self.gmem.read(self.keys_addr + offs[g], lens[g])

    def group_value(self, g: int, j: int) -> bytes:
        v = int(self.group_starts[g]) + j
        return self.gmem.read(
            self.vals_addr + int(self.val_offs[v]), int(self.val_lens[v])
        )

    def group_value_geometry(self, g: int) -> list[tuple[int, int]]:
        """Absolute ``(addr, len)`` of each value in group ``g``."""
        geom = self._flat_geometry
        if geom is None:
            # One numpy->list conversion for the whole set; per-group
            # geometry is then a C-speed zip of two list slices.
            addrs = (self.vals_addr + self.val_offs).tolist()
            lens = self.val_lens.tolist()
            geom = self._flat_geometry = (addrs, lens)
        addrs, lens = geom
        starts, counts = self.group_columns()
        s = starts[g]
        e = s + counts[g]
        return list(zip(addrs[s:e], lens[s:e]))


@dataclass(frozen=True)
class ShuffleResult:
    grouped: GroupedDeviceSet
    cycles: float
    n_records: int
    n_groups: int


def shuffle(
    gmem: GlobalMemory,
    intermediate: DeviceRecordSet,
    config: DeviceConfig,
    label: str = "shuffle",
    method: str = "sort",
    device=None,
) -> ShuffleResult:
    """Group intermediate records by key; returns data + modelled cost.

    ``method`` selects the cost model: ``"sort"`` is the analytic
    bitonic-sort model both the paper's framework and Mars share;
    ``"hash"`` is the MapCG-style hash-table grouping the paper's
    related-work section identifies as leverageable ("replacing
    sorting with hash table lookups"); ``"bitonic"`` runs the *actual*
    sort kernel on the simulator (:mod:`repro.framework.bitonic`,
    requires ``device``) and charges its measured cycles.  Grouping
    output is identical (and key-sorted for determinism) in every
    case; only the charged cycles differ.
    """
    inter = intermediate.download()
    groups: dict[bytes, list[bytes]] = {}
    for k, v in inter:
        groups.setdefault(k, []).append(v)
    ordered = sorted(groups.items())

    keys_blob = b"".join(k for k, _ in ordered)
    vals_blob = b"".join(v for _, vs in ordered for v in vs)
    n_groups = len(ordered)
    n_values = sum(len(vs) for _, vs in ordered)

    key_dir = np.zeros(2 * max(1, n_groups), dtype="<u4")
    group_dir = np.zeros(2 * max(1, n_groups), dtype="<u4")
    val_dir = np.zeros(2 * max(1, n_values), dtype="<u4")
    ko = vo = vidx = 0
    for g, (k, vs) in enumerate(ordered):
        key_dir[2 * g], key_dir[2 * g + 1] = ko, len(k)
        group_dir[2 * g], group_dir[2 * g + 1] = vidx, len(vs)
        ko += len(k)
        for v in vs:
            val_dir[2 * vidx], val_dir[2 * vidx + 1] = vo, len(v)
            vo += len(v)
            vidx += 1

    keys_addr = gmem.alloc(max(1, len(keys_blob)), f"{label}.keys")
    vals_addr = gmem.alloc(max(1, len(vals_blob)), f"{label}.vals")
    kd = gmem.alloc(key_dir.nbytes, f"{label}.key_dir")
    vd = gmem.alloc(val_dir.nbytes, f"{label}.val_dir")
    gd = gmem.alloc(group_dir.nbytes, f"{label}.group_dir")
    gmem.write(keys_addr, keys_blob)
    gmem.write(vals_addr, vals_blob)
    gmem.write_u32_array(kd, key_dir)
    gmem.write_u32_array(vd, val_dir)
    gmem.write_u32_array(gd, group_dir)

    kdir = key_dir.astype(np.int64)
    vdir = val_dir.astype(np.int64)
    gdir = group_dir.astype(np.int64)
    grouped = GroupedDeviceSet(
        gmem=gmem,
        n_groups=n_groups,
        n_values=n_values,
        keys_addr=keys_addr,
        key_dir_addr=kd,
        vals_addr=vals_addr,
        val_dir_addr=vd,
        group_dir_addr=gd,
        key_offs=kdir[0::2][:n_groups],
        key_lens=kdir[1::2][:n_groups],
        val_offs=vdir[0::2][:n_values],
        val_lens=vdir[1::2][:n_values],
        group_starts=gdir[0::2][:n_groups],
        group_counts=gdir[1::2][:n_groups],
    )
    avg_bytes = intermediate.payload_bytes / max(1, len(inter))
    if method == "bitonic":
        if device is None:
            raise ValueError('shuffle(method="bitonic") needs the device')
        from .bitonic import bitonic_sort_device

        sort_res = bitonic_sort_device(device, list(inter.keys))
        gather_txns = (
            2 * len(inter) * (avg_bytes + 2 * DIR_ENTRY)
            / config.timing.txn_bytes
        )
        cycles = sort_res.stats.cycles + (
            gather_txns * config.timing.txn_service_cycles
        )
    elif method == "hash":
        cycles = hash_shuffle_cycles(
            n_records=len(inter), n_groups=n_groups,
            avg_record_bytes=avg_bytes, config=config,
        )
    else:
        cycles = shuffle_cycles(
            n_records=len(inter), avg_record_bytes=avg_bytes, config=config,
        )
    return ShuffleResult(
        grouped=grouped, cycles=cycles, n_records=len(inter), n_groups=n_groups
    )


def shuffle_cycles(
    *, n_records: int, avg_record_bytes: float, config: DeviceConfig
) -> float:
    """Bitonic-sort cost model for the shuffle phase.

    A bitonic sort of ``n`` records performs ``log2(n)*(log2(n)+1)/2``
    compare-exchange stages; each stage streams the key-index array
    (8 B per record, read + write) through global memory, with key
    comparisons touching the key bytes.  Throughput is bounded by the
    device bandwidth queue; latency is amortised by the thousands of
    resident threads.  A final gather pass rearranges the record
    payload once.
    """
    if n_records <= 1:
        return 0.0
    t = config.timing
    stages = log2(max(2, n_records))
    stages = stages * (stages + 1) / 2
    per_stage_bytes = n_records * (2 * DIR_ENTRY + 8)  # dir r/w + key probe
    sort_txns = stages * per_stage_bytes / t.txn_bytes
    gather_txns = 2 * n_records * (avg_record_bytes + 2 * DIR_ENTRY) / t.txn_bytes
    bandwidth_cycles = (sort_txns + gather_txns) * t.txn_service_cycles
    alu_cycles = (
        stages * n_records * t.issue_cycles / (config.mp_count * WARP_SIZE)
    )
    latency_cycles = 2 * t.global_latency * ceil(stages)
    return float(bandwidth_cycles + alu_cycles + latency_cycles)


def hash_shuffle_cycles(
    *, n_records: int, n_groups: int, avg_record_bytes: float,
    config: DeviceConfig,
) -> float:
    """MapCG-style hash-grouping cost model.

    Each record is hashed (a few ALU cycles), probed into a global
    hash table (1-2 uncoalesced accesses + an atomic insert on a
    per-bucket lock), then gathered once into group-contiguous
    storage.  Linear in ``n`` — the asymptotic win over bitonic
    sort's ``n log^2 n`` — with contention growing as groups shrink
    relative to records.
    """
    if n_records <= 1:
        return 0.0
    t = config.timing
    probes = 1.5  # average probes per insert at sane load factors
    probe_txns = n_records * probes  # uncoalesced: ~1 txn each
    insert_atomics = n_records
    # Atomics spread over buckets: contention ~ records per group,
    # bounded by the table width.
    per_bucket = n_records / max(1, min(n_groups, 4096))
    atomic_cycles = per_bucket * t.atomic_service_cycles
    gather_txns = 2 * n_records * (avg_record_bytes + 2 * DIR_ENTRY) / t.txn_bytes
    bandwidth_cycles = (probe_txns + insert_atomics + gather_txns) * (
        t.txn_service_cycles
    )
    alu_cycles = n_records * 8 * t.issue_cycles / (config.mp_count * WARP_SIZE)
    latency_cycles = 3 * t.global_latency
    return float(bandwidth_cycles + atomic_cycles + alu_cycles + latency_cycles)


def group_host(kvs: KeyValueSet) -> dict[bytes, list[bytes]]:
    """Host-side grouping helper (used by tests and the CPU oracle)."""
    out: dict[bytes, list[bytes]] = {}
    for k, v in kvs:
        out.setdefault(k, []).append(v)
    return out
