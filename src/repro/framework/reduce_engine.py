"""Reduce-phase kernels: thread-level (TR) and block-level (BR).

**TR** (Mars / Hadoop style): each thread owns one distinct key set
and runs the user's sequential Reduce function over its values.  By
definition TR cannot stage input — "it processes a complete key set at
a time, which can be arbitrarily large" (Section IV-C) — so the modes
that matter are G, GT and SO (SI falls back to G, SIO to SO).

**BR** (Catanzaro style): a whole block reduces one key set in
parallel — each thread accumulates a strided subset of the values,
then a tree reduction combines the per-thread partials through shared
memory.  GT is impossible (in-place updates break texture coherence);
SI stages the value array into the shared-memory input area chunk by
chunk, which is where KMeans' wide vectors gain their 2.25x
(Section IV-E: with G "data accessed for a half-warp at a time span
across several 128-byte segments").

Output collection reuses :mod:`repro.framework.collector`: direct
warp-aggregated atomics for G/GT/SI, the staged output area for
SO/SIO.  For BR the emission is one record per key set, so SO staging
is pure synchronisation overhead — reproducing the paper's observation
that "SO ... brings no benefit due to the high input-to-output ratio".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce as _functools_reduce
from itertools import zip_longest
from math import ceil

import numpy as np

from ..errors import FrameworkError
from ..gpu.accessor import Accessor, AccessTrace
from ..gpu.banks import conflict_degree_cached
from ..gpu.coalescing import scattered_transactions
from ..gpu.config import WARP_SIZE
from ..gpu.instructions import (
    AtomicShared,
    Compute,
    GlobalRead,
    SharedRead,
    SharedWrite,
)
from ..gpu.kernel import Device, WarpCtx
from ..gpu.stats import KernelStats
from .api import MapReduceSpec
from .collector import (
    COMPUTE_DONE,
    CollectorState,
    collect_warp_result,
    direct_emit_warp,
    init_collector,
    participate_in_flush,
    request_final_flush,
    wait_loop,
)
from .layout import SmemLayout, plan_layout
from .map_engine import chunk_steps, dir_read_op
from .modes import MemoryMode, ReduceStrategy, effective_reduce_mode
from .partition import partition_warps
from .records import DIR_ENTRY, OutputBuffers
from .shuffle import GroupedDeviceSet
from .staging import Tile, plan_tiles_unstaged


@dataclass
class ReduceRuntime:
    """Read-only state shared by every block of a Reduce launch."""

    spec: MapReduceSpec
    strategy: ReduceStrategy
    mode: MemoryMode  # already passed through effective_reduce_mode
    layout: SmemLayout
    grouped: GroupedDeviceSet
    out: OutputBuffers
    tiles: list[Tile]
    grid: int
    yield_sync: bool = True
    const_data: bytes | None = None
    const_addr: int = 0


def build_reduce_runtime(
    device: Device,
    spec: MapReduceSpec,
    mode: MemoryMode,
    strategy: ReduceStrategy,
    grouped: GroupedDeviceSet,
    *,
    threads_per_block: int,
    yield_sync: bool = True,
) -> ReduceRuntime:
    spec.validate()
    if strategy is ReduceStrategy.TR and spec.reduce_record is None:
        raise FrameworkError(f"workload {spec.name} has no TR reduce function")
    if strategy is ReduceStrategy.BR and spec.combine is None:
        raise FrameworkError(f"workload {spec.name} has no BR combine function")
    eff = effective_reduce_mode(mode, strategy)
    cfg = device.config
    layout = plan_layout(
        smem_budget=cfg.shared_mem_per_mp,
        threads_per_block=threads_per_block,
        mode=eff,
        io_ratio=spec.io_ratio,
        working_bytes_per_thread=spec.working_bytes_per_thread,
    )
    payload = int(
        grouped.key_lens.sum() + grouped.val_lens.sum()
    ) if grouped.n_groups else 0
    kcap, vcap, rcap = spec.output_capacity(
        None, payload=payload, count=max(1, grouped.n_groups)
    )
    out = OutputBuffers.allocate(
        device.gmem,
        key_capacity=kcap,
        val_capacity=vcap,
        record_capacity=rcap,
        label=f"red_out.{spec.name}.{eff.value}.{strategy.value}",
    )
    const_addr = 0
    if spec.const_bytes:
        const_addr = device.gmem.alloc(
            len(spec.const_bytes), f"red_const.{spec.name}.{eff.value}.{strategy.value}"
        )
        device.gmem.write(const_addr, spec.const_bytes)

    if strategy is ReduceStrategy.TR:
        tiles = plan_tiles_unstaged(grouped.n_groups, threads_per_block)
        work_units = len(tiles)
    else:
        tiles = [Tile(g, 1) for g in range(grouped.n_groups)]
        work_units = grouped.n_groups
    occ = cfg.blocks_per_mp(threads_per_block, layout.smem_bytes)
    if occ == 0:
        raise FrameworkError("planned reduce layout does not fit on an MP")
    grid = max(1, min(work_units, cfg.mp_count * occ))
    return ReduceRuntime(
        spec=spec,
        strategy=strategy,
        mode=eff,
        layout=layout,
        grouped=grouped,
        out=out,
        tiles=tiles,
        grid=grid,
        yield_sync=yield_sync,
        const_data=spec.const_bytes,
        const_addr=const_addr,
    )


def launch_reduce(device: Device, rt: ReduceRuntime, *,
                  max_cycles: float = float("inf"), timeline=None) -> KernelStats:
    if rt.grouped.n_groups == 0:
        return KernelStats()
    kernel = reduce_tr_kernel if rt.strategy is ReduceStrategy.TR else reduce_br_kernel
    return device.launch(
        kernel,
        grid=rt.grid,
        block=rt.layout.threads_per_block,
        smem_bytes=rt.layout.smem_bytes,
        args=(rt,),
        uses_texture=rt.mode.uses_texture,
        max_cycles=max_cycles,
        timeline=timeline,
    )


# ----------------------------------------------------------------------
# Thread-level reduction
# ----------------------------------------------------------------------


def reduce_tr_kernel(ctx: WarpCtx, rt: ReduceRuntime):
    """One warp of the TR kernel: 32 key sets per round per warp."""
    nw = ctx.warps_per_block
    bs = ctx.block_state
    for t_i in range(ctx.block_id, len(rt.tiles), rt.grid):
        tile = rt.tiles[t_i]
        part = partition_warps(n_warps=nw, concurrency=tile.count, mode=rt.mode)
        if rt.mode.stages_output:
            if ctx.warp_id == 0:
                cs = CollectorState(
                    layout=rt.layout,
                    out=rt.out,
                    n_warps=nw,
                    n_compute=len(part.compute_warps),
                    yield_sync=rt.yield_sync,
                )
                init_collector(ctx, cs)
                bs["collector"] = cs
            yield from ctx.barrier()
            cs = bs["collector"]
            if ctx.warp_id in part.compute_warps:
                yield from _tr_rounds(ctx, rt, tile, part, cs)
                done = ctx.smem.atomic_add_u32(rt.layout.flags_off + COMPUTE_DONE, 1)
                yield AtomicShared(addr=rt.layout.flags_off + COMPUTE_DONE, old=done)
                if done == len(part.compute_warps) - 1:
                    yield from request_final_flush(ctx, cs)
                else:
                    yield from wait_loop(ctx, cs)
            else:
                yield from wait_loop(ctx, cs)
            yield from ctx.barrier()
        else:
            if ctx.warp_id in part.compute_warps:
                yield from _tr_rounds(ctx, rt, tile, part, None)
            yield from ctx.barrier()


def _tr_rounds(ctx: WarpCtx, rt: ReduceRuntime, tile: Tile, part,
               cs: CollectorState | None):
    spec = rt.spec
    grp = rt.grouped
    nc = len(part.compute_warps)
    my = part.compute_warps.index(ctx.warp_id)
    r = 0
    while True:
        base_g = tile.start + (r * nc + my) * WARP_SIZE
        if base_g >= tile.end:
            break
        gs = list(range(base_g, min(base_g + WARP_SIZE, tile.end)))

        # Directory reads: key dir + group dir per lane.
        if not rt.mode.uses_texture and ctx.can_elide_gmem_addrs:
            yield dir_read_op(ctx, grp.key_dir_addr, gs[0], len(gs))
            yield dir_read_op(ctx, grp.group_dir_addr, gs[0], len(gs))
        else:
            dir_acc = [(grp.key_dir_addr + DIR_ENTRY * g, DIR_ENTRY) for g in gs]
            grp_acc = [(grp.group_dir_addr + DIR_ENTRY * g, DIR_ENTRY) for g in gs]
            if rt.mode.uses_texture:
                yield from ctx.tex_touch(dir_acc)
                yield from ctx.tex_touch(grp_acc)
            else:
                yield from ctx.gtouch_read(dir_acc)
                yield from ctx.gtouch_read(grp_acc)

        # Run the user Reduce eagerly, collecting per-lane access streams.
        key_offs, _ = grp.key_columns()
        group_starts, _ = grp.group_columns()
        streams: list[list[tuple[int, int]]] = []
        emissions: list[list[tuple[bytes, bytes]]] = []
        for g in gs:
            key_acc = Accessor(grp.group_key(g))
            geom = grp.group_value_geometry(g)
            if geom:
                # One bounds-checked read covering the group's value
                # span, sliced per value (values are laid out in group
                # order by the shuffle).
                a0 = geom[0][0]
                span = geom[-1][0] + geom[-1][1] - a0
                blob = grp.gmem.read(a0, span)
                val_accs = [
                    Accessor(blob[a - a0:a - a0 + ln]) for a, ln in geom
                ]
            else:
                val_accs = []
            const_acc = Accessor(rt.const_data) if rt.const_data else None
            lane_out: list[tuple[bytes, bytes]] = []

            def emit(k: bytes, v: bytes, _o=lane_out) -> None:
                _o.append((bytes(k), bytes(v)))

            spec.reduce_record(key_acc, val_accs, emit, const_acc)

            stream: list[tuple[int, int]] = []
            kbase = grp.keys_addr + key_offs[g]
            stream += [(kbase + 4 * w, 4) for w in key_acc.trace.words]
            # Per-value directory entries are read while iterating.
            vstart = group_starts[g]
            for j, (acc, (a, _ln)) in enumerate(zip(val_accs, geom)):
                stream.append((grp.val_dir_addr + DIR_ENTRY * (vstart + j), DIR_ENTRY))
                stream += [(a + 4 * w, 4) for w in acc.trace.words]
            if const_acc is not None:
                stream += [
                    (rt.const_addr + 4 * w, 4) for w in const_acc.trace.words
                ]
            streams.append(stream)
            emissions.append(lane_out)

        # Lockstep replay of the lane streams, MLP-chunked.

        n_steps = max(map(len, streams), default=0)
        # Fused lockstep transpose + MLP chunking: chunk ``c`` merges
        # steps [c*mlp, (c+1)*mlp), lane order within a step following
        # stream order — element-for-element what
        # ``chunk_steps(transpose(streams), mlp)`` produced, without
        # materialising the intermediate per-step lists.
        mlp = max(1, ctx.timing.memory_parallelism)
        chunks = [
            [
                s[j]
                for j in range(j0, min(j0 + mlp, n_steps))
                for s in streams
                if len(s) > j
            ]
            for j0 in range(0, n_steps, mlp)
        ]
        if not rt.mode.uses_texture and ctx.can_elide_gmem_addrs:
            # Address-elided replay: transaction counts come from the
            # coalescing analysis; the engine charges the op without
            # re-walking the address list.  Deliberately uncached:
            # group-value addresses are unique per round (1 hit /
            # ~5400 lookups on wordcount-medium), so the memo key costs
            # more than it saves here.  The repeating patterns of this
            # phase — the directory reads — stay memoized via
            # dir_read_op above.
            seg = ctx.timing.txn_bytes
            for step in chunks:
                yield GlobalRead(
                    nbytes=sum(sz for _, sz in step),
                    ntxn=scattered_transactions(step, seg),
                    lanes=max(1, len(step)),
                )
        else:
            for step in chunks:
                if rt.mode.uses_texture:
                    yield from ctx.tex_touch(step)
                else:
                    yield from ctx.gtouch_read(step)

        yield Compute(
            cycles=spec.cycles_per_record + spec.cycles_per_access * n_steps
        )

        layers = max((len(e) for e in emissions), default=0)
        for j in range(layers):
            keys = [e[j][0] for e in emissions if len(e) > j]
            vals = [e[j][1] for e in emissions if len(e) > j]
            if cs is not None:
                yield from collect_warp_result(ctx, cs, keys, vals)
            else:
                yield from direct_emit_warp(ctx, rt.out, keys, vals)
        r += 1


# ----------------------------------------------------------------------
# Block-level reduction
# ----------------------------------------------------------------------


def reduce_br_kernel(ctx: WarpCtx, rt: ReduceRuntime):
    """One warp of the BR kernel: the block tree-reduces one key set.

    All warps execute the same control flow (BR is block-synchronous),
    so ``__syncthreads()`` is legal throughout and no helper warps are
    partitioned.  With staged output the single result record is
    appended to the output area and flushed collectively — pure
    synchronisation overhead, matching the paper's SO observations.
    """
    spec = rt.spec
    grp = rt.grouped
    nw = ctx.warps_per_block
    T = ctx.threads_per_block
    bs = ctx.block_state

    if rt.mode.stages_output and ctx.warp_id == 0:
        cs = CollectorState(
            layout=rt.layout, out=rt.out, n_warps=nw, n_compute=nw,
            yield_sync=rt.yield_sync,
        )
        init_collector(ctx, cs)
        bs["collector"] = cs
    if rt.mode.stages_output:
        yield from ctx.barrier()

    for g in range(ctx.block_id, grp.n_groups, rt.grid):
        m = int(grp.group_counts[g])
        geom = grp.group_value_geometry(g)

        # Group + key directory read (first warp charges it).
        if ctx.warp_id == 0:
            yield from ctx.gtouch_read(
                [(grp.group_dir_addr + DIR_ENTRY * g, DIR_ENTRY),
                 (grp.key_dir_addr + DIR_ENTRY * g, DIR_ENTRY)]
            )

        # ---- Phase A: strided local accumulation ------------------------
        if rt.mode.stages_input:
            yield from _br_phase_a_staged(ctx, rt, geom)
        else:
            yield from _br_phase_a_global(ctx, rt, geom)

        # ---- Phase B: tree reduction over per-thread partials -----------
        acc_bytes = max(4, int(grp.val_lens[int(grp.group_starts[g])]))
        active = min(T, max(1, m))
        rounds = max(1, ceil(np.log2(max(2, active))))
        for _ in range(rounds):
            yield from ctx.barrier()
            lanes = max(1, active // 2)
            words = [i * (acc_bytes // 4 or 1) * 4 for i in range(min(32, lanes))]
            yield SharedRead(nbytes=acc_bytes * min(32, lanes),
                             conflict=conflict_degree_cached(words))
            yield from ctx.compute(spec.cycles_per_access * ceil(acc_bytes / 4))
            yield SharedWrite(nbytes=acc_bytes * min(32, lanes))
            active = lanes
        yield from ctx.barrier()

        # ---- Finalize + emit (warp 0) ------------------------------------
        if ctx.warp_id == 0:
            values = [rt.grouped.gmem.read(a, ln) for a, ln in geom]
            acc = _functools_reduce(spec.combine, values)
            key = grp.group_key(g)
            k_out, v_out = spec.finalize(key, acc, m)
            bs["br_emit"] = ([k_out], [v_out])
            yield from ctx.compute(spec.cycles_per_record)

        if rt.mode.stages_output:
            # Collective append + immediate flush (one record).
            cs = bs["collector"]
            if ctx.warp_id == 0:
                keys, vals = bs["br_emit"]
                yield from collect_warp_result(ctx, cs, keys, vals)
            yield from participate_in_flush(ctx, cs)
        else:
            if ctx.warp_id == 0:
                keys, vals = bs["br_emit"]
                yield from direct_emit_warp(ctx, rt.out, keys, vals)
            yield from ctx.barrier()


def _br_phase_a_global(ctx: WarpCtx, rt: ReduceRuntime,
                       geom: list[tuple[int, int]]):
    """Each thread accumulates values ``t, t+T, t+2T, ...`` from global.

    At word-step ``j`` the warp's lanes read word ``j`` of their
    current values — for wide values (KMeans vectors) those addresses
    are ``value_size`` apart and a half-warp spans several 128-byte
    segments, the exact effect Section IV-E describes.
    """
    T = ctx.threads_per_block
    m = len(geom)
    spec = rt.spec
    steps = ceil(m / T) if m else 0
    for s in range(steps):
        base_idx = s * T + ctx.warp_id * WARP_SIZE
        mine = [geom[i] for i in range(base_idx, min(base_idx + WARP_SIZE, m))]
        if not mine:
            continue

        max_words = max(ceil(ln / 4) for _, ln in mine)
        raw = [
            [(a + 4 * j, 4) for a, ln in mine if 4 * j < ln]
            for j in range(max_words)
        ]
        for step in chunk_steps(raw, ctx.timing.memory_parallelism):
            yield from ctx.gtouch_read(step)
        yield from ctx.compute(spec.cycles_per_access * max_words)


def _br_phase_a_staged(ctx: WarpCtx, rt: ReduceRuntime,
                       geom: list[tuple[int, int]]):
    """SI/SIO: stage value chunks into the input area, then read them
    from shared memory (coalesced bulk loads replace the scattered
    per-value global traffic)."""
    layout = rt.layout
    T = ctx.threads_per_block
    spec = rt.spec
    m = len(geom)
    if m == 0:
        return
    # Pack values into input-area chunks.
    chunks: list[list[tuple[int, int]]] = [[]]
    used = 0
    for a, ln in geom:
        need = ln + DIR_ENTRY
        if used + need > layout.input_bytes and chunks[-1]:
            chunks.append([])
            used = 0
        if need > layout.input_bytes:
            raise FrameworkError("one value exceeds the input area")
        chunks[-1].append((a, ln))
        used += need
    nw = ctx.warps_per_block
    for chunk in chunks:
        lo = min(a for a, _ in chunk)
        hi = max(a + ln for a, ln in chunk)
        size = hi - lo
        # Cooperative stage-in of the chunk's contiguous span.
        per_warp = (size + nw - 1) // nw
        clo = min(ctx.warp_id * per_warp, size)
        chi = min(clo + per_warp, size)
        if chi > clo:
            yield from ctx.gtouch_read([(lo + clo, chi - clo)])
            yield SharedWrite(nbytes=chi - clo)
        yield from ctx.barrier()
        # Strided accumulation out of shared memory.
        cm = len(chunk)
        steps = ceil(cm / T)
        for s in range(steps):
            base_idx = s * T + ctx.warp_id * WARP_SIZE
            mine = [chunk[i] for i in range(base_idx, min(base_idx + WARP_SIZE, cm))]
            if not mine:
                continue
            max_words = max(ceil(ln / 4) for _, ln in mine)
            for j in range(max_words):
                n_active = sum(1 for _, ln in mine if 4 * j < ln)
                yield SharedRead(nbytes=4 * n_active)
            yield from ctx.compute(spec.cycles_per_access * max_words)
        yield from ctx.barrier()
