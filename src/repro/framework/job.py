"""End-to-end MapReduce job orchestration (the paper's workflow).

``run_job`` executes Input-upload -> Map -> Shuffle -> Reduce ->
Output-download under a chosen memory-usage mode and reduce strategy,
returning both the *functional* output (checkable against the CPU
oracle) and the per-phase timing breakdown that Figure 6 stacks.

Since the backend refactor this module is a thin front-end: it lowers
its arguments to a :class:`~repro.backend.plan.JobPlan` and hands it
to the execution core (:mod:`repro.backend.core`), which sequences
the phases against a pluggable backend — the cycle-accurate simulator
(``backend="sim"``, the default) or the fast functional executor
(``backend="fast"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FrameworkError
from ..gpu.config import DeviceConfig
from ..gpu.kernel import Device
from ..gpu.stats import KernelStats
from ..obs.tracer import Tracer
from .api import MapReduceSpec
from .modes import MemoryMode, ReduceStrategy, resolve_strategy_name
from .records import KeyValueSet


@dataclass
class PhaseTimings:
    """Cycle counts per phase (Figure 6's stacked segments)."""

    io_in: float = 0.0
    map: float = 0.0
    shuffle: float = 0.0
    reduce: float = 0.0
    io_out: float = 0.0

    @property
    def total(self) -> float:
        return self.io_in + self.map + self.shuffle + self.reduce + self.io_out

    @property
    def io(self) -> float:
        return self.io_in + self.io_out

    def as_dict(self) -> dict[str, float]:
        return {
            "io_in": self.io_in,
            "map": self.map,
            "shuffle": self.shuffle,
            "reduce": self.reduce,
            "io_out": self.io_out,
            "total": self.total,
        }


@dataclass
class JobResult:
    """Everything produced by one job run."""

    spec_name: str
    mode: MemoryMode | str
    strategy: ReduceStrategy | None
    output: KeyValueSet
    intermediate_count: int
    timings: PhaseTimings
    map_stats: KernelStats = field(default_factory=KernelStats)
    reduce_stats: KernelStats = field(default_factory=KernelStats)
    #: The sanitizer's :class:`~repro.check.CheckReport` when the job
    #: ran with checking enabled (sim backend only), else None.
    check_report: object | None = None
    #: Per-shard :class:`~repro.obs.telemetry.ShardProfile` list when
    #: the job ran on a backend with cross-process workers (the
    #: parallel backend's pool path), else None.
    worker_profiles: list | None = None
    #: The :class:`~repro.obs.telemetry.WorkerSummary` straggler /
    #: imbalance summary derived from ``worker_profiles``, else None.
    straggler: object | None = None

    @property
    def total_cycles(self) -> float:
        return self.timings.total


def run_job(
    spec: MapReduceSpec,
    inp: KeyValueSet,
    *,
    mode: MemoryMode | str | None = None,
    reduce_mode: MemoryMode | str | None = None,
    strategy: ReduceStrategy | str | None = None,
    config: DeviceConfig | None = None,
    device: Device | None = None,
    threads_per_block: int | None = None,
    yield_sync: bool = True,
    io_ratio: float | None = None,
    shuffle_method: str = "sort",
    tracer: Tracer | None = None,
    backend=None,
    check=None,
    store: str | None = None,
    memory_budget: int | None = None,
    tune: bool | None = None,
) -> JobResult:
    """Run a complete MapReduce job.

    ``strategy=None`` runs a Map-only job (MM, SM and II have no
    Reduce phase; their Map output is the final output, per Table II).
    ``reduce_mode`` lets the Reduce phase use a different memory mode
    from Map — the adaptive per-phase selection the paper names as
    future work in Section IV-F ("a better approach is to adopt
    different memory modes in different phases adaptively"); the
    evaluation's own finding is SIO for Map + G for Reduce.
    ``shuffle_method`` selects the grouping cost model: ``"sort"``
    (the paper's and Mars's shared bitonic sort), ``"hash"`` (the
    MapCG-style extension) or ``"bitonic"`` (the event-driven sorter).
    ``tracer`` attaches a :class:`repro.obs.Tracer`: every phase and
    kernel launch becomes a span on the job clock, with per-warp
    device events for the tracer's traced blocks.
    ``backend`` selects the execution substrate: ``"sim"`` (default,
    cycle-accurate), ``"fast"`` (functional, no kernel timings), an
    :class:`~repro.backend.base.ExecutionBackend` instance, or
    ``None`` to consult ``$REPRO_BACKEND``.
    ``check`` enables the sanitizer (:mod:`repro.check`): ``True``,
    ``"strict"``, ``"report"`` or a ``CheckConfig``; ``None`` consults
    ``$REPRO_CHECK``.  Empty inputs are legal and produce an empty
    output (degenerate cases are exactly what the differential fuzzer
    exercises).
    ``store`` picks the intermediate-store policy for the functional
    backends (``"memory"`` or ``"spill"``; ``None`` consults
    ``$REPRO_STORE``) and ``memory_budget`` bounds the spill store's
    tracked bytes (``None`` consults ``$REPRO_MEMORY_BUDGET``) — see
    :mod:`repro.store`.  The sim backend ignores both.

    **Autotuning.**  ``mode=None`` (the new default) keeps the paper's
    SIO — unless the cost-model tuner (:mod:`repro.tune`) is engaged:
    ``mode="auto"`` has the backend pick (mode, strategy, block size)
    by predicted cycles; ``tune=True`` (or ``$REPRO_AUTOTUNE=1`` with
    ``mode`` and ``tune`` both unset) additionally picks the execution
    substrate, spill policy and budget by predicted wall time — but
    only for the knobs the call left open (an explicit ``backend``/
    ``store``/``memory_budget`` always wins).  ``tune=False`` opts a
    call out of the env.  The tuner never changes *what* the job
    computes: ``strategy=None`` stays Map-only; pass
    ``strategy="auto"`` (with mode auto/tuned) to let it pick TR vs
    BR, which are output-identical by construction.
    """
    spec.validate()
    strategy = resolve_strategy_name(strategy, allow_auto=True)
    if strategy is not None and strategy != "auto" and not spec.has_reduce:
        raise FrameworkError(f"workload {spec.name} has no Reduce phase")
    # Local import: repro.backend imports this module for JobResult.
    from ..backend import JobPlan, execute_plan, get_backend

    if tune and mode not in (None, "auto"):
        raise FrameworkError(
            "tune=True picks the memory mode itself; drop the explicit "
            f"mode={getattr(mode, 'value', mode)!r} or use mode='auto'"
        )
    tuned = None
    if tune or (tune is None and mode is None and _env_autotune()):
        from ..tune import decide_execution

        cfg = config or (device.config if device is not None else None)
        tuned = decide_execution(spec, inp, strategy=strategy, config=cfg)
        mode = tuned.mode
        if strategy == "auto":
            strategy = tuned.strategy
        if threads_per_block is None:
            threads_per_block = tuned.threads_per_block
        if backend is None:
            name = tuned.backend or "fast"
            if tuned.workers:
                name += f":{tuned.workers}"
            backend = name
        if store is None:
            store = tuned.store
        if memory_budget is None:
            memory_budget = tuned.memory_budget
    elif mode is None:
        mode = MemoryMode.SIO

    plan = JobPlan(
        spec=spec,
        mode=mode,
        reduce_mode=reduce_mode,
        strategy=strategy,
        config=config,
        device=device,
        threads_per_block=threads_per_block,
        yield_sync=yield_sync,
        io_ratio=io_ratio,
        shuffle_method=shuffle_method,
        check=check,
        store=store,
        memory_budget=memory_budget,
        tuned=tuned,
    ).normalised()
    return execute_plan(plan, inp, get_backend(backend), tracer)


def _env_autotune() -> bool:
    from ..tune.decide import autotune_enabled

    return autotune_enabled()
