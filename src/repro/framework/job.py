"""End-to-end MapReduce job orchestration (the paper's workflow).

``run_job`` executes Input-upload -> Map -> Shuffle -> Reduce ->
Output-download on the simulated device under a chosen memory-usage
mode and reduce strategy, returning both the *functional* output
(checkable against the CPU oracle) and the per-phase timing breakdown
that Figure 6 stacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FrameworkError
from ..gpu.config import DeviceConfig
from ..gpu.kernel import Device
from ..gpu.stats import KernelStats
from ..obs.tracer import NULL_TRACER, Tracer
from .api import MapReduceSpec
from .host import download_cost, upload_cost
from .map_engine import build_map_runtime, launch_map
from .modes import MemoryMode, ReduceStrategy
from .records import DIR_PER_RECORD, DeviceRecordSet, KeyValueSet
from .reduce_engine import build_reduce_runtime, launch_reduce
from .shuffle import shuffle


@dataclass
class PhaseTimings:
    """Cycle counts per phase (Figure 6's stacked segments)."""

    io_in: float = 0.0
    map: float = 0.0
    shuffle: float = 0.0
    reduce: float = 0.0
    io_out: float = 0.0

    @property
    def total(self) -> float:
        return self.io_in + self.map + self.shuffle + self.reduce + self.io_out

    @property
    def io(self) -> float:
        return self.io_in + self.io_out

    def as_dict(self) -> dict[str, float]:
        return {
            "io_in": self.io_in,
            "map": self.map,
            "shuffle": self.shuffle,
            "reduce": self.reduce,
            "io_out": self.io_out,
            "total": self.total,
        }


@dataclass
class JobResult:
    """Everything produced by one job run."""

    spec_name: str
    mode: MemoryMode | str
    strategy: ReduceStrategy | None
    output: KeyValueSet
    intermediate_count: int
    timings: PhaseTimings
    map_stats: KernelStats = field(default_factory=KernelStats)
    reduce_stats: KernelStats = field(default_factory=KernelStats)

    @property
    def total_cycles(self) -> float:
        return self.timings.total


def run_job(
    spec: MapReduceSpec,
    inp: KeyValueSet,
    *,
    mode: MemoryMode | str = MemoryMode.SIO,
    reduce_mode: MemoryMode | str | None = None,
    strategy: ReduceStrategy | None = None,
    config: DeviceConfig | None = None,
    device: Device | None = None,
    threads_per_block: int = 128,
    yield_sync: bool = True,
    io_ratio: float | None = None,
    shuffle_method: str = "sort",
    tracer: Tracer | None = None,
) -> JobResult:
    """Run a complete MapReduce job on the simulated GPU.

    ``strategy=None`` runs a Map-only job (MM, SM and II have no
    Reduce phase; their Map output is the final output, per Table II).
    ``reduce_mode`` lets the Reduce phase use a different memory mode
    from Map — the adaptive per-phase selection the paper names as
    future work in Section IV-F ("a better approach is to adopt
    different memory modes in different phases adaptively"); the
    evaluation's own finding is SIO for Map + G for Reduce.
    ``shuffle_method`` selects the grouping cost model: ``"sort"``
    (the paper's and Mars's shared bitonic sort), ``"hash"`` (the
    MapCG-style extension) or ``"bitonic"`` (the event-driven sorter).
    ``tracer`` attaches a :class:`repro.obs.Tracer`: every phase and
    kernel launch becomes a span on the job clock, with per-warp
    device events for the tracer's traced blocks.
    """
    spec.validate()
    if len(inp) == 0:
        raise FrameworkError("empty input")
    if strategy is not None and not spec.has_reduce:
        raise FrameworkError(f"workload {spec.name} has no Reduce phase")
    dev = device or Device(config or DeviceConfig.gtx280())
    if mode == "auto":
        # Runtime automatic configuration (the paper's Section VI
        # future work, implemented in repro.framework.autotune).
        from .autotune import autotune

        report = autotune(spec, inp, config=dev.config, measure=True)
        best = report.best
        mode = best.mode
        threads_per_block = best.threads_per_block
        if io_ratio is None and mode.stages_input:
            io_ratio = best.io_ratio
    if isinstance(mode, str):
        mode = MemoryMode(mode)
    if reduce_mode is None:
        reduce_mode = mode
    elif isinstance(reduce_mode, str):
        reduce_mode = MemoryMode(reduce_mode)
    cfg = dev.config
    timings = PhaseTimings()
    tr = tracer if tracer is not None else NULL_TRACER

    with tr.span(
        f"job:{spec.name}",
        workload=spec.name,
        mode=getattr(mode, "value", mode),
        strategy=getattr(strategy, "value", strategy),
        shuffle=shuffle_method,
        records=len(inp),
    ):
        # ---- input upload -------------------------------------------------
        with tr.span("io_in"):
            d_in = DeviceRecordSet.upload(dev.gmem, inp, label=f"in.{spec.name}")
            timings.io_in = upload_cost(
                d_in.payload_bytes, DIR_PER_RECORD * d_in.count, cfg
            ).cycles
            tr.advance(timings.io_in)

        # ---- Map ----------------------------------------------------------
        with tr.span("map", mode=getattr(mode, "value", mode)):
            map_rt = build_map_runtime(
                dev,
                spec,
                mode,
                d_in,
                threads_per_block=threads_per_block,
                yield_sync=yield_sync,
                io_ratio=io_ratio,
            )
            tl = tr.make_timeline()
            map_stats = launch_map(dev, map_rt, timeline=tl)
            tr.kernel("map_kernel", map_stats, timeline=tl,
                      grid=map_rt.grid)
            timings.map = map_stats.cycles
            intermediate = map_rt.out.as_record_set()

        if strategy is None:
            with tr.span("io_out"):
                output = intermediate.download()
                timings.io_out = download_cost(
                    intermediate.payload_bytes,
                    DIR_PER_RECORD * intermediate.count, cfg
                ).cycles
                tr.advance(timings.io_out)
            return JobResult(
                spec_name=spec.name,
                mode=mode,
                strategy=None,
                output=output,
                intermediate_count=intermediate.count,
                timings=timings,
                map_stats=map_stats,
            )

        # ---- Shuffle ------------------------------------------------------
        with tr.span("shuffle", method=shuffle_method) as shuffle_span:
            shuf = shuffle(dev.gmem, intermediate, cfg, label=f"shuf.{spec.name}",
                           method=shuffle_method, device=dev)
            timings.shuffle = shuf.cycles
            if shuffle_span is not None:
                shuffle_span.attrs["groups"] = shuf.grouped.n_groups
            tr.advance(timings.shuffle)

        # ---- Reduce -------------------------------------------------------
        with tr.span("reduce", mode=getattr(reduce_mode, "value", reduce_mode),
                     strategy=getattr(strategy, "value", strategy)):
            red_rt = build_reduce_runtime(
                dev,
                spec,
                reduce_mode,
                strategy,
                shuf.grouped,
                threads_per_block=threads_per_block,
                yield_sync=yield_sync,
            )
            tl = tr.make_timeline()
            red_stats = launch_reduce(dev, red_rt, timeline=tl)
            tr.kernel("reduce_kernel", red_stats, timeline=tl,
                      grid=red_rt.grid)
            timings.reduce = red_stats.cycles
            final = red_rt.out.as_record_set()

        with tr.span("io_out"):
            output = final.download()
            timings.io_out = download_cost(
                final.payload_bytes, DIR_PER_RECORD * final.count, cfg
            ).cycles
            tr.advance(timings.io_out)

    return JobResult(
        spec_name=spec.name,
        mode=mode,
        strategy=strategy,
        output=output,
        intermediate_count=intermediate.count,
        timings=timings,
        map_stats=map_stats,
        reduce_stats=red_stats,
    )
