"""Batched execution with transfer/compute overlap (paper Section III-A).

"Otherwise, batched processing is again possible at another level and
it is possible to overlap GPU kernel execution with host-device data
transfer."  This module implements that outer level: the input record
set is split into batches; each batch is uploaded and mapped as its
own kernel launch, and with ``overlap=True`` the upload of batch
``i+1`` proceeds concurrently with the Map kernel of batch ``i``
(classic CUDA double-buffered streams).  The Shuffle and Reduce phases
then run over the union of the batches' intermediate outputs.

Timing composition for the overlapped Map pipeline::

    total_map = upload(0) + sum_i max(map(i), upload(i+1)) + map(B-1)
                                         (with upload(B) = 0)

Functional behaviour is identical to the single-shot job (asserted by
the test suite): batching only changes *when* data moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FrameworkError
from ..gpu.config import DeviceConfig
from ..gpu.kernel import Device
from ..gpu.stats import KernelStats
from ..obs.tracer import NULL_TRACER, Tracer
from .api import MapReduceSpec
from .host import download_cost, upload_cost
from .job import JobResult, PhaseTimings
from .map_engine import build_map_runtime, launch_map
from .modes import MemoryMode, ReduceStrategy
from .records import DIR_PER_RECORD, DeviceRecordSet, KeyValueSet
from .reduce_engine import build_reduce_runtime, launch_reduce
from .shuffle import shuffle


@dataclass
class BatchTrace:
    """Per-batch accounting for the streamed Map pipeline."""

    records: int
    upload_cycles: float
    map_cycles: float
    map_stats: KernelStats = field(default_factory=KernelStats)


@dataclass
class StreamedResult:
    """A :class:`JobResult` plus the batch pipeline trace."""

    job: JobResult
    batches: list[BatchTrace]
    overlapped: bool

    @property
    def serial_map_io(self) -> float:
        """What upload+map would cost without overlap."""
        return sum(b.upload_cycles + b.map_cycles for b in self.batches)

    @property
    def pipelined_map_io(self) -> float:
        """Upload+map under double buffering."""
        if not self.batches:
            return 0.0
        total = self.batches[0].upload_cycles
        for i, b in enumerate(self.batches):
            next_up = (
                self.batches[i + 1].upload_cycles
                if i + 1 < len(self.batches)
                else 0.0
            )
            total += max(b.map_cycles, next_up)
        return total

    @property
    def overlap_saving(self) -> float:
        return self.serial_map_io - self.pipelined_map_io


def split_batches(inp: KeyValueSet, n_batches: int) -> list[KeyValueSet]:
    """Split a record set into ``n_batches`` contiguous slices."""
    if n_batches <= 0:
        raise FrameworkError("n_batches must be positive")
    n = len(inp)
    per = max(1, -(-n // n_batches))
    out: list[KeyValueSet] = []
    for start in range(0, n, per):
        batch = KeyValueSet()
        for i in range(start, min(start + per, n)):
            k, v = inp[i]
            batch.append(k, v)
        out.append(batch)
    return out


def run_streamed_job(
    spec: MapReduceSpec,
    inp: KeyValueSet,
    *,
    n_batches: int = 4,
    overlap: bool = True,
    mode: MemoryMode = MemoryMode.SIO,
    strategy: ReduceStrategy | None = None,
    config: DeviceConfig | None = None,
    threads_per_block: int = 128,
    yield_sync: bool = True,
    tracer: Tracer | None = None,
) -> StreamedResult:
    """Run a job with the input streamed through the device in batches.

    With a ``tracer``, each batch becomes a span holding its upload
    and Map-kernel children.  Batch spans are laid out serially on the
    job clock even under ``overlap=True`` (the trace shows per-batch
    costs; the pipelined total is recorded on the stream span's
    ``pipelined_map_io`` attribute).
    """
    spec.validate()
    if len(inp) == 0:
        raise FrameworkError("empty input")
    dev = Device(config or DeviceConfig.gtx280())
    cfg = dev.config
    tr = tracer if tracer is not None else NULL_TRACER

    with tr.span(
        f"job:{spec.name}", workload=spec.name,
        mode=getattr(mode, "value", mode),
        strategy=getattr(strategy, "value", strategy),
        n_batches=n_batches, overlap=overlap, records=len(inp),
    ):
        batches = split_batches(inp, n_batches)
        traces: list[BatchTrace] = []
        intermediate = KeyValueSet()
        merged_stats = KernelStats()
        with tr.span("map_stream") as stream_span:
            for bi, batch in enumerate(batches):
                with tr.span(f"batch[{bi}]", records=len(batch)):
                    d_in = DeviceRecordSet.upload(
                        dev.gmem, batch, label=f"stream.{spec.name}.{bi}")
                    up = upload_cost(
                        d_in.payload_bytes, DIR_PER_RECORD * d_in.count, cfg)
                    with tr.span("upload"):
                        tr.advance(up.cycles)
                    rt = build_map_runtime(
                        dev, spec, mode, d_in,
                        threads_per_block=threads_per_block,
                        yield_sync=yield_sync,
                    )
                    tl = tr.make_timeline()
                    st = launch_map(dev, rt, timeline=tl)
                    tr.kernel("map_kernel", st, timeline=tl, batch=bi)
                    merged_stats = merged_stats.merge(st)
                    for k, v in rt.out.as_record_set().download():
                        intermediate.append(k, v)
                    traces.append(BatchTrace(
                        records=len(batch), upload_cycles=up.cycles,
                        map_cycles=st.cycles, map_stats=st))

        timings = PhaseTimings()
        result = StreamedResult(
            job=JobResult(
                spec_name=spec.name, mode=mode, strategy=strategy,
                output=intermediate, intermediate_count=len(intermediate),
                timings=timings, map_stats=merged_stats,
            ),
            batches=traces,
            overlapped=overlap,
        )
        pipeline = result.pipelined_map_io if overlap else result.serial_map_io
        if stream_span is not None:
            stream_span.attrs["serial_map_io"] = result.serial_map_io
            stream_span.attrs["pipelined_map_io"] = result.pipelined_map_io
            stream_span.attrs["overlap_saving"] = result.overlap_saving
        # Attribute the pipeline's transfer share to io_in and the rest to map.
        timings.io_in = sum(b.upload_cycles for b in traces)
        timings.map = max(0.0, pipeline - timings.io_in)

        if strategy is None:
            with tr.span("io_out"):
                timings.io_out = download_cost(
                    intermediate.key_bytes + intermediate.val_bytes,
                    DIR_PER_RECORD * len(intermediate), cfg,
                ).cycles
                tr.advance(timings.io_out)
            return result

        with tr.span("shuffle") as shuffle_span:
            d_inter = DeviceRecordSet.upload(
                dev.gmem, intermediate, label=f"stream.inter.{spec.name}")
            shuf = shuffle(dev.gmem, d_inter, cfg,
                           label=f"stream.shuf.{spec.name}")
            timings.shuffle = shuf.cycles
            if shuffle_span is not None:
                shuffle_span.attrs["groups"] = shuf.grouped.n_groups
            tr.advance(timings.shuffle)
        with tr.span("reduce", strategy=getattr(strategy, "value", strategy)):
            red_rt = build_reduce_runtime(
                dev, spec, mode, strategy, shuf.grouped,
                threads_per_block=threads_per_block, yield_sync=yield_sync,
            )
            tl = tr.make_timeline()
            red_stats = launch_reduce(dev, red_rt, timeline=tl)
            tr.kernel("reduce_kernel", red_stats, timeline=tl)
            timings.reduce = red_stats.cycles
            final = red_rt.out.as_record_set()
        with tr.span("io_out"):
            output = final.download()
            timings.io_out = download_cost(
                final.payload_bytes, DIR_PER_RECORD * final.count, cfg
            ).cycles
            tr.advance(timings.io_out)
        result.job.output = output
        result.job.reduce_stats = red_stats
        return result
