"""Batched execution with transfer/compute overlap (paper Section III-A).

"Otherwise, batched processing is again possible at another level and
it is possible to overlap GPU kernel execution with host-device data
transfer."  This module implements that outer level: the input record
set is split into batches; each batch is uploaded and mapped as its
own kernel launch, and with ``overlap=True`` the upload of batch
``i+1`` proceeds concurrently with the Map kernel of batch ``i``
(classic CUDA double-buffered streams).  The Shuffle and Reduce phases
then run over the union of the batches' intermediate outputs.

Timing composition for the overlapped Map pipeline::

    total_map = upload(0) + sum_i max(map(i), upload(i+1)) + map(B-1)
                                         (with upload(B) = 0)

Functional behaviour is identical to the single-shot job (asserted by
the test suite): batching only changes *when* data moves.

``run_streamed_job`` is a thin front-end since the backend refactor:
it lowers to a :class:`~repro.backend.plan.JobPlan` with a
:class:`~repro.backend.plan.BatchPolicy` and hands it to
:func:`repro.backend.core.execute_streamed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FrameworkError
from ..gpu.config import DeviceConfig
from ..gpu.stats import KernelStats
from ..obs.tracer import Tracer
from .api import MapReduceSpec
from .job import JobResult
from .modes import MemoryMode, ReduceStrategy
from .records import KeyValueSet


@dataclass
class BatchTrace:
    """Per-batch accounting for the streamed Map pipeline."""

    records: int
    upload_cycles: float
    map_cycles: float
    map_stats: KernelStats = field(default_factory=KernelStats)


@dataclass
class StreamedResult:
    """A :class:`JobResult` plus the batch pipeline trace."""

    job: JobResult
    batches: list[BatchTrace]
    overlapped: bool

    @property
    def serial_map_io(self) -> float:
        """What upload+map would cost without overlap."""
        return sum(b.upload_cycles + b.map_cycles for b in self.batches)

    @property
    def pipelined_map_io(self) -> float:
        """Upload+map under double buffering."""
        if not self.batches:
            return 0.0
        total = self.batches[0].upload_cycles
        for i, b in enumerate(self.batches):
            next_up = (
                self.batches[i + 1].upload_cycles
                if i + 1 < len(self.batches)
                else 0.0
            )
            total += max(b.map_cycles, next_up)
        return total

    @property
    def overlap_saving(self) -> float:
        return self.serial_map_io - self.pipelined_map_io


def split_batches(inp: KeyValueSet, n_batches: int) -> list[KeyValueSet]:
    """Split a record set into ``n_batches`` contiguous slices."""
    if n_batches <= 0:
        raise FrameworkError("n_batches must be positive")
    n = len(inp)
    per = max(1, -(-n // n_batches))
    out: list[KeyValueSet] = []
    for start in range(0, n, per):
        batch = KeyValueSet()
        for i in range(start, min(start + per, n)):
            k, v = inp[i]
            batch.append(k, v)
        out.append(batch)
    return out


def run_streamed_job(
    spec: MapReduceSpec,
    inp: KeyValueSet,
    *,
    n_batches: int = 4,
    overlap: bool = True,
    mode: MemoryMode = MemoryMode.SIO,
    strategy: ReduceStrategy | None = None,
    config: DeviceConfig | None = None,
    threads_per_block: int = 128,
    yield_sync: bool = True,
    tracer: Tracer | None = None,
    backend=None,
    check=None,
    store: str | None = None,
    memory_budget: int | None = None,
) -> StreamedResult:
    """Run a job with the input streamed through the device in batches.

    With a ``tracer``, each batch becomes a span holding its upload
    and Map-kernel children.  Batch spans are laid out serially on the
    job clock even under ``overlap=True`` (the trace shows per-batch
    costs; the pipelined total is recorded on the stream span's
    ``pipelined_map_io`` attribute).
    ``backend`` selects the execution substrate and ``check`` the
    sanitizer; ``store``/``memory_budget`` pick the intermediate-store
    policy (see :func:`repro.framework.job.run_job`) — under
    ``store="spill"`` the functional backends stream batch output into
    a budgeted store instead of an unbounded host record set.  An
    empty input yields zero batches and an empty output.
    """
    spec.validate()
    # Local import: repro.backend imports this module for StreamedResult.
    from ..backend import BatchPolicy, JobPlan, execute_streamed, get_backend

    plan = JobPlan(
        spec=spec,
        mode=mode,
        strategy=strategy,
        config=config,
        threads_per_block=threads_per_block,
        yield_sync=yield_sync,
        batching=BatchPolicy(n_batches=n_batches, overlap=overlap),
        check=check,
        store=store,
        memory_budget=memory_budget,
    ).normalised()
    return execute_streamed(plan, inp, get_backend(backend), tracer)
