"""Map-phase kernels for every memory-usage mode (G/GT/SI/SO/SIO).

One kernel body serves all five modes; what changes is the *plumbing*:

* where input bytes come from — staged shared memory (SI/SIO), global
  memory (G/SO), or the texture path (GT);
* where results go — the shared-memory output area with block-level
  flushes (SO/SIO) or warp-aggregated direct global writes (G/GT/SI);
* whether helper warps and the wait-signal machinery exist at all
  (only when output is staged).

The user Map function runs eagerly per record against traced
:class:`Accessor` views; its access trace is then replayed in SIMT
lockstep through the appropriate memory path, so identical user code
is costed faithfully under each mode (Section IV-C's requirement that
only GT needs a source-level variant is noted in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import FrameworkError
from ..gpu.accessor import Accessor, AccessTrace, lockstep_accesses
from ..gpu.analysis_cache import AnalysisCache, register
from ..gpu.banks import BANK_WIDTH, NUM_BANKS, conflict_degree_cached
from ..gpu.coalescing import scattered_transactions_cached
from ..gpu.config import WARP_SIZE
from ..gpu.instructions import AtomicShared, Compute, GlobalRead, SharedRead
from ..gpu.kernel import Device, WarpCtx
from ..gpu.stats import KernelStats
from .api import MapReduceSpec
from .collector import (
    COMPUTE_DONE,
    CollectorState,
    collect_warp_result,
    direct_emit_warp,
    init_collector,
    request_final_flush,
    wait_loop,
)
from .layout import SmemLayout, plan_layout
from .modes import MemoryMode
from .partition import partition_warps
from .records import DIR_ENTRY, DeviceRecordSet, OutputBuffers
from .staging import StagedTile, Tile, plan_tiles_staged, plan_tiles_unstaged, stage_in


def chunk_steps(
    steps: list[list[tuple[int, int]]], mlp: int
) -> list[list[tuple[int, int]]]:
    """Group consecutive lockstep access steps into MLP-wide chunks.

    Streaming scans issue independent loads, so ``mlp`` of them share
    one memory round trip; transaction counts are unaffected (every
    access is still presented to the coalescer).
    """
    if mlp <= 1:
        return steps
    out = []
    for i in range(0, len(steps), mlp):
        merged: list[tuple[int, int]] = []
        for s in steps[i : i + mlp]:
            merged.extend(s)
        out.append(merged)
    return out


#: Shared-memory bank period in bytes: shifting every address of a
#: pattern by a multiple of this preserves each lane's bank.
_BANK_PERIOD = NUM_BANKS * BANK_WIDTH

#: Replay plans: the fully analyzed instruction sequence for replaying
#: one warp's lockstep access pattern, memoized on the normalized
#: pattern (per-lane word traces + rebased lane base addresses).  A
#: MapReduce launch replays a handful of distinct record shapes
#: thousands of times, so the lockstep zip + coalescing/bank analysis
#: runs once per shape instead of once per round.
_SMEM_REPLAY_PLANS = register(AnalysisCache("map.replay_smem"))
_GMEM_REPLAY_PLANS = register(AnalysisCache("map.replay_gmem"))
_DIR_READ_PLANS = register(AnalysisCache("framework.dir_reads"))


def dir_read_op(ctx: WarpCtx, dir_addr: int, first: int, count: int):
    """One lane-per-record directory read, transaction count memoized.

    Every compute round starts with each lane reading its record's
    8-byte directory entry — a fixed stride pattern whose transaction
    count depends only on the start address modulo the segment size
    and the lane count.  Callers must hold
    :attr:`WarpCtx.can_elide_gmem_addrs`.
    """
    start = dir_addr + DIR_ENTRY * first
    seg = ctx.timing.txn_bytes
    key = (seg, start % seg, count)
    cache = _DIR_READ_PLANS
    op = cache.data.get(key)
    if op is not None:
        cache.hits += 1
        return op
    cache.misses += 1
    ntxn = scattered_transactions_cached(
        [(start + DIR_ENTRY * i, DIR_ENTRY) for i in range(count)], seg
    )
    op = GlobalRead(nbytes=DIR_ENTRY * count, ntxn=ntxn, lanes=max(1, count))
    cache.room()
    cache.data[key] = op
    return op


def _pattern_key(
    traces: Sequence[AccessTrace], bases: Sequence[int], period: int
) -> tuple:
    """Normalized identity of a replay pattern.

    Both analyses are invariant under shifting *all* lane bases by a
    common multiple of their period (transaction segment / bank
    stride), so bases are rebased against the lowest covered period
    boundary.
    """
    base0 = (min(bases) // period) * period
    return (tuple(b - base0 for b in bases),) + tuple(
        tuple(t.words) for t in traces
    )


def _smem_replay_plan(
    traces: Sequence[AccessTrace], bases: Sequence[int]
) -> list[SharedRead]:
    """One :class:`SharedRead` per lockstep step of a shared replay.

    The plan stores the frozen op descriptors themselves, so a cache
    hit replays a pattern without constructing any objects at all.
    """
    key = _pattern_key(traces, bases, _BANK_PERIOD)
    cache = _SMEM_REPLAY_PLANS
    plan = cache.data.get(key)
    if plan is not None:
        cache.hits += 1
        return plan
    cache.misses += 1
    plan = [
        SharedRead(
            nbytes=4 * len(step),
            conflict=conflict_degree_cached([a for a, _ in step]),
        )
        for step in lockstep_accesses(traces, bases)
    ]
    cache.room()
    cache.data[key] = plan
    return plan


def _gmem_replay_plan(
    traces: Sequence[AccessTrace],
    bases: Sequence[int],
    seg: int,
    mlp: int,
) -> list[GlobalRead]:
    """One address-elided :class:`GlobalRead` per MLP chunk of a
    global replay (transaction count precomputed)."""
    key = (seg, mlp) + _pattern_key(traces, bases, seg)
    cache = _GMEM_REPLAY_PLANS
    plan = cache.data.get(key)
    if plan is not None:
        cache.hits += 1
        return plan
    cache.misses += 1
    plan = [
        GlobalRead(
            nbytes=4 * len(step),
            ntxn=scattered_transactions_cached(step, seg),
            lanes=max(1, len(step)),
        )
        for step in chunk_steps(lockstep_accesses(traces, bases), mlp)
    ]
    cache.room()
    cache.data[key] = plan
    return plan


def _replay_gmem_steps(ctx: WarpCtx, traces, bases):
    """Replay a global-memory access pattern, planned when possible."""
    if ctx.can_elide_gmem_addrs:
        yield from _gmem_replay_plan(
            traces, bases, ctx.timing.txn_bytes, ctx.timing.memory_parallelism
        )
    else:
        steps = chunk_steps(
            lockstep_accesses(traces, bases), ctx.timing.memory_parallelism
        )
        for step in steps:
            yield from ctx.gtouch_read(step)


@dataclass
class MapRuntime:
    """Read-only state shared by every block of a Map launch."""

    spec: MapReduceSpec
    mode: MemoryMode
    layout: SmemLayout
    inp: DeviceRecordSet
    out: OutputBuffers
    tiles: list[Tile]
    grid: int
    yield_sync: bool = True
    const_data: bytes | None = None
    const_addr: int = 0

    #: Per-record geometry (host mirror of the input directories).
    key_offs: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    key_lens: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    val_offs: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    val_lens: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    def record_key(self, rec: int) -> bytes:
        return self.inp.gmem.read(
            self.inp.keys_addr + int(self.key_offs[rec]), int(self.key_lens[rec])
        )

    def record_val(self, rec: int) -> bytes:
        return self.inp.gmem.read(
            self.inp.vals_addr + int(self.val_offs[rec]), int(self.val_lens[rec])
        )


def build_map_runtime(
    device: Device,
    spec: MapReduceSpec,
    mode: MemoryMode,
    inp: DeviceRecordSet,
    *,
    threads_per_block: int,
    yield_sync: bool = True,
    io_ratio: float | None = None,
) -> MapRuntime:
    """Plan layout, tiles and output buffers for a Map launch."""
    spec.validate()
    cfg = device.config
    layout = plan_layout(
        smem_budget=cfg.shared_mem_per_mp,
        threads_per_block=threads_per_block,
        mode=mode,
        io_ratio=io_ratio if io_ratio is not None else spec.io_ratio,
        working_bytes_per_thread=spec.working_bytes_per_thread,
    )
    gmem = device.gmem
    n = inp.count
    key_dir = gmem.read_u32_array(inp.key_dir_addr, 2 * n).astype(np.int64)
    val_dir = gmem.read_u32_array(inp.val_dir_addr, 2 * n).astype(np.int64)
    key_offs, key_lens = key_dir[0::2], key_dir[1::2]
    val_offs, val_lens = val_dir[0::2], val_dir[1::2]

    occ_probe = cfg.blocks_per_mp(threads_per_block, layout.smem_bytes)
    if mode.stages_input:
        tiles = plan_tiles_staged(
            layout,
            key_lens.tolist(),
            val_lens.tolist(),
            stage_values=spec.stage_values,
            stage_keys=spec.stage_keys,
        )
        # Small scaled inputs can yield fewer tiles than the device
        # has block slots, starving MPs; split tiles so every resident
        # block gets work (stage-in of a smaller tile moves less data,
        # so total traffic is unchanged).
        target = max(1, cfg.mp_count * max(1, occ_probe))
        if 0 < len(tiles) < target:
            split = max(1, -(-target // len(tiles)))  # ceil
            new_tiles = []
            for t in tiles:
                if t.count <= 1:
                    new_tiles.append(t)
                    continue
                per = max(1, -(-t.count // split))
                s0 = t.start
                while s0 < t.end:
                    c = min(per, t.end - s0)
                    new_tiles.append(Tile(s0, c))
                    s0 += c
            tiles = new_tiles
    else:
        tiles = plan_tiles_unstaged(n, threads_per_block)

    kcap, vcap, rcap = spec.output_capacity(
        None, payload=inp.payload_bytes, count=n
    )
    out = OutputBuffers.allocate(
        gmem,
        key_capacity=kcap,
        val_capacity=vcap,
        record_capacity=rcap,
        label=f"map_out.{spec.name}.{mode.value}",
    )

    const_addr = 0
    const_data = spec.const_bytes
    if const_data:
        const_addr = gmem.alloc(len(const_data), f"const.{spec.name}")
        gmem.write(const_addr, const_data)

    occ = cfg.blocks_per_mp(threads_per_block, layout.smem_bytes)
    if occ == 0:
        raise FrameworkError("planned layout does not fit on an MP")
    grid = min(len(tiles), cfg.mp_count * occ)
    return MapRuntime(
        spec=spec,
        mode=mode,
        layout=layout,
        inp=inp,
        out=out,
        tiles=tiles,
        grid=max(1, grid),
        yield_sync=yield_sync,
        const_data=const_data,
        const_addr=const_addr,
        key_offs=key_offs,
        key_lens=key_lens,
        val_offs=val_offs,
        val_lens=val_lens,
    )


def launch_map(device: Device, rt: MapRuntime, *, max_cycles: float = float("inf"),
               timeline=None) -> KernelStats:
    """Run the Map phase and return its kernel statistics."""
    return device.launch(
        map_kernel,
        grid=rt.grid,
        block=rt.layout.threads_per_block,
        smem_bytes=rt.layout.smem_bytes,
        args=(rt,),
        uses_texture=rt.mode.uses_texture,
        max_cycles=max_cycles,
        timeline=timeline,
    )


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------


def map_kernel(ctx: WarpCtx, rt: MapRuntime):
    """One warp of the Map kernel (all modes)."""
    mode = rt.mode
    nw = ctx.warps_per_block
    bs = ctx.block_state

    for t_i in range(ctx.block_id, len(rt.tiles), rt.grid):
        tile = rt.tiles[t_i]
        staged: StagedTile | None = None
        if mode.stages_input:
            staged = yield from stage_in(
                ctx, rt.layout, rt.inp, tile,
                stage_values=rt.spec.stage_values,
                stage_keys=rt.spec.stage_keys,
            )
            yield from ctx.barrier()

        part = partition_warps(n_warps=nw, concurrency=tile.count, mode=mode)

        if mode.stages_output:
            if ctx.warp_id == 0:
                cs = CollectorState(
                    layout=rt.layout,
                    out=rt.out,
                    n_warps=nw,
                    n_compute=len(part.compute_warps),
                    yield_sync=rt.yield_sync,
                )
                init_collector(ctx, cs)
                bs["collector"] = cs
            yield from ctx.barrier()
            cs = bs["collector"]
            if ctx.warp_id in part.compute_warps:
                yield from _compute_rounds(ctx, rt, tile, staged, part, cs)
                # Last compute warp to finish triggers the final flush;
                # the others park with the helpers.
                done = ctx.smem.atomic_add_u32(
                    rt.layout.flags_off + COMPUTE_DONE, 1
                )
                yield AtomicShared(addr=rt.layout.flags_off + COMPUTE_DONE, old=done)
                if done == len(part.compute_warps) - 1:
                    yield from request_final_flush(ctx, cs)
                else:
                    yield from wait_loop(ctx, cs)
            else:
                yield from wait_loop(ctx, cs)
            yield from ctx.barrier()
        else:
            if ctx.warp_id in part.compute_warps:
                yield from _compute_rounds(ctx, rt, tile, staged, part, None)
            yield from ctx.barrier()


def _compute_rounds(
    ctx: WarpCtx,
    rt: MapRuntime,
    tile: Tile,
    staged: StagedTile | None,
    part,
    cs: CollectorState | None,
):
    """Process the tile's records, 32 per warp per round."""
    spec = rt.spec
    nc = len(part.compute_warps)
    my = part.compute_warps.index(ctx.warp_id)
    r = 0
    while True:
        base_rec = tile.start + (r * nc + my) * WARP_SIZE
        if base_rec >= tile.end:
            break
        recs = list(range(base_rec, min(base_rec + WARP_SIZE, tile.end)))

        # --- 1. directory reads -------------------------------------------
        yield from _charge_dir_reads(ctx, rt, staged, recs)

        # --- 2. run the user Map function eagerly -------------------------
        key_traces: list[AccessTrace] = []
        val_traces: list[AccessTrace] = []
        const_traces: list[AccessTrace] = []
        emissions: list[list[tuple[bytes, bytes]]] = []
        for rec in recs:
            key_acc = Accessor(rt.record_key(rec))
            val_acc = Accessor(rt.record_val(rec))
            const_acc = Accessor(rt.const_data) if rt.const_data else None
            lane_out: list[tuple[bytes, bytes]] = []

            def emit(k: bytes, v: bytes, _o=lane_out) -> None:
                _o.append((bytes(k), bytes(v)))

            spec.map_record(key_acc, val_acc, emit, const_acc)
            key_traces.append(key_acc.trace)
            val_traces.append(val_acc.trace)
            const_traces.append(const_acc.trace if const_acc else AccessTrace())
            emissions.append(lane_out)

        # --- 3. replay input access traces --------------------------------
        yield from _replay(
            ctx, rt, staged, recs, key_traces, which="key"
        )
        yield from _replay(
            ctx, rt, staged, recs, val_traces, which="val"
        )
        if rt.const_data:
            yield from _replay_const(ctx, rt, const_traces)

        # --- 4. ALU cost ----------------------------------------------------
        max_steps = max(
            (len(k) + len(v) + len(c))
            for k, v, c in zip(key_traces, val_traces, const_traces)
        )
        yield Compute(
            cycles=spec.cycles_per_record + spec.cycles_per_access * max_steps
        )

        # --- 5. result collection, one warp result per emission layer -----
        layers = max((len(e) for e in emissions), default=0)
        for j in range(layers):
            pairs = [e[j] for e in emissions if len(e) > j]
            keys = [p[0] for p in pairs]
            vals = [p[1] for p in pairs]
            if cs is not None:
                yield from collect_warp_result(ctx, cs, keys, vals)
            else:
                yield from direct_emit_warp(ctx, rt.out, keys, vals)
        r += 1


# ----------------------------------------------------------------------
# Access replay
# ----------------------------------------------------------------------


def _charge_dir_reads(
    ctx: WarpCtx, rt: MapRuntime, staged: StagedTile | None, recs: Sequence[int]
):
    """Each lane reads its record's two directory entries."""
    if staged is not None:
        yield SharedRead(nbytes=2 * DIR_ENTRY * len(recs))
        return
    if not rt.mode.uses_texture and ctx.can_elide_gmem_addrs:
        yield dir_read_op(ctx, rt.inp.key_dir_addr, recs[0], len(recs))
        yield dir_read_op(ctx, rt.inp.val_dir_addr, recs[0], len(recs))
        return
    key_dir = [(rt.inp.key_dir_addr + DIR_ENTRY * r, DIR_ENTRY) for r in recs]
    val_dir = [(rt.inp.val_dir_addr + DIR_ENTRY * r, DIR_ENTRY) for r in recs]
    if rt.mode.uses_texture:
        yield from ctx.tex_touch(key_dir)
        yield from ctx.tex_touch(val_dir)
    else:
        yield from ctx.gtouch_read(key_dir)
        yield from ctx.gtouch_read(val_dir)


def _replay(
    ctx: WarpCtx,
    rt: MapRuntime,
    staged: StagedTile | None,
    recs: Sequence[int],
    traces: Sequence[AccessTrace],
    *,
    which: str,
):
    """Replay per-lane record access traces in SIMT lockstep."""
    if which == "key":
        offs, g_base = rt.key_offs, rt.inp.keys_addr
        delta = staged.key_delta if staged else 0
        in_smem = staged is not None and rt.spec.stage_keys
    else:
        offs, g_base = rt.val_offs, rt.inp.vals_addr
        delta = staged.val_delta if staged else 0
        in_smem = staged is not None and rt.spec.stage_values

    if in_smem:
        base = delta + g_base
        bases = [base + int(offs[r]) for r in recs]
        yield from _smem_replay_plan(traces, bases)
    else:
        bases = [g_base + int(offs[r]) for r in recs]
        if rt.mode.uses_texture:
            steps = chunk_steps(
                lockstep_accesses(traces, bases),
                ctx.timing.memory_parallelism,
            )
            for step in steps:
                yield from ctx.tex_touch(step)
        else:
            yield from _replay_gmem_steps(ctx, traces, bases)


def _replay_const(ctx: WarpCtx, rt: MapRuntime, traces: Sequence[AccessTrace]):
    """Constant-region accesses always come from global (or texture)."""
    bases = [rt.const_addr] * len(traces)
    if rt.mode.uses_texture:
        steps = chunk_steps(
            lockstep_accesses(traces, bases), ctx.timing.memory_parallelism
        )
        for step in steps:
            yield from ctx.tex_touch(step)
    else:
        yield from _replay_gmem_steps(ctx, traces, bases)
