"""Prefix-sum (scan) primitives.

Three scans appear in the reproduced systems:

* **In-warp scan** — used by every result-collection path to find each
  lane's output offset inside a warp result.  Threads of a warp run in
  lockstep, so no synchronisation is needed (Section III-D); cost is
  ``log2(32) = 5`` shared-memory steps.
* **Block scan** — used by block-level reductions and the Mars count
  passes' intra-block stage.
* **Device scan** — Mars's inter-pass prefix summing "executed across
  all threads with output size values" (Section II-B), implemented as
  the classic scan-then-propagate three-kernel sequence.

Each primitive has a *pure* function (used by host-side planning and
tests) and a *timed* coroutine that charges the simulator.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..gpu.config import WARP_SIZE
from ..gpu.instructions import Compute, SharedRead, SharedWrite
from ..gpu.kernel import WarpCtx

#: Hillis-Steele steps for a 32-wide scan.
WARP_SCAN_STEPS = 5

#: Cached read/compute/write op sequence of a full warp scan, keyed on
#: the issue-cycle cost.  Op descriptors are frozen, so the same
#: instances can be yielded by every scan — identical to what
#: ``stouch``/``compute`` would build, minus the per-call allocation.
_SCAN_OPS: dict[float, tuple] = {}


def _scan_ops(issue_cycles: float) -> tuple:
    ops = _SCAN_OPS.get(issue_cycles)
    if ops is None:
        step = (
            SharedRead(nbytes=4 * WARP_SIZE),
            Compute(cycles=issue_cycles),
            SharedWrite(nbytes=4 * WARP_SIZE),
        )
        ops = step * WARP_SCAN_STEPS
        _SCAN_OPS[issue_cycles] = ops
    return ops


def exclusive_scan(values: Sequence[int]) -> tuple[list[int], int]:
    """Pure exclusive prefix sum; returns ``(prefixes, total)``."""
    out: list[int] = []
    acc = 0
    for v in values:
        out.append(acc)
        acc += v
    return out, acc


def warp_exclusive_scan(ctx: WarpCtx, values: Sequence[int]):
    """Timed in-warp exclusive scan over up to 32 per-lane values.

    Returns ``(prefixes, total)``.  Charges the Hillis-Steele shared
    memory ping-pong: 5 read+add+write rounds, conflict-free (stride-1
    word layout), no ``__syncthreads`` thanks to warp lockstep.
    """
    assert len(values) <= WARP_SIZE
    for op in _scan_ops(ctx.timing.issue_cycles):
        yield op
    return exclusive_scan(values)


def warp_exclusive_scan2(ctx: WarpCtx, a: Sequence[int], b: Sequence[int]):
    """One timed warp scan over *two* packed size arrays.

    Sizes fit in 16 bits, so the classic trick applies: pack both into
    one 32-bit word and run a single Hillis-Steele pass — the form the
    result-collection fast path uses (one scan per warp result, not
    two).  Returns ``(prefix_a, total_a, prefix_b, total_b)``.
    """
    assert len(a) == len(b) <= WARP_SIZE
    for op in _scan_ops(ctx.timing.issue_cycles):
        yield op
    pa, ta = exclusive_scan(a)
    pb, tb = exclusive_scan(b)
    return pa, ta, pb, tb


def block_exclusive_scan(ctx: WarpCtx, warp_totals_slot: int, my_total: int):
    """Timed block-level exclusive scan of one value per warp.

    Each warp deposits its total in a shared array, warp 0 scans it
    (one warp-scan since blocks have <= 16 warps), and every warp reads
    back its base.  Caller must barrier before/after as appropriate;
    this helper charges the memory traffic only.

    Returns this warp's exclusive base (functionally resolved by the
    caller: the canonical pattern stores totals via ``block_state``).
    """
    smem = ctx.smem
    smem.write_u32(warp_totals_slot + 4 * ctx.warp_id, my_total)
    yield from ctx.stouch(4, write=True)
    yield from ctx.barrier()
    if ctx.warp_id == 0:
        totals = [
            smem.read_u32(warp_totals_slot + 4 * w)
            for w in range(ctx.warps_per_block)
        ]
        prefixes, total = yield from warp_exclusive_scan(ctx, totals)
        for w in range(ctx.warps_per_block):
            smem.write_u32(warp_totals_slot + 4 * w, prefixes[w])
        smem.write_u32(warp_totals_slot + 4 * ctx.warps_per_block, total)
        yield from ctx.stouch(4 * (ctx.warps_per_block + 1), write=True)
    yield from ctx.barrier()
    base = smem.read_u32(warp_totals_slot + 4 * ctx.warp_id)
    yield from ctx.stouch(4)
    return base


def device_scan_cycles(n: int, timing, mp_count: int) -> float:
    """Analytic cost of Mars's device-wide exclusive scan over ``n`` values.

    The classic three-kernel scan (scan blocks, scan block sums,
    add base) reads and writes each 4-byte element ~3 times through
    global memory plus ~2*log2(block) shared steps per element.  The
    cost is dominated by bandwidth; latency is amortised over the
    whole device.  Used by :mod:`repro.mars.scan` (which also runs a
    functional scan for the data itself).
    """
    if n <= 0:
        return 0.0
    bytes_moved = 3 * 2 * 4 * n  # 3 passes x (read + write) x 4B
    txns = max(1, bytes_moved // timing.txn_bytes)
    bandwidth_cycles = txns * timing.txn_service_cycles
    # Per-element shared-memory work spread over all MPs' issue ports.
    alu_cycles = (2 * np.log2(max(2, n)) * n * timing.issue_cycles) / (
        mp_count * WARP_SIZE
    )
    return float(2 * timing.global_latency + bandwidth_cycles + alu_cycles)
