"""Automatic configuration of framework parameters (paper Section VI).

The paper's stated future work: "an intelligent MapReduce framework
should be able to perform runtime, automatic configuration of
parameters such as the shared memory space partition sizes and the
thread block size", leveraging the empirical observations of the
evaluation.  This module implements that extension:

* :func:`probe_workload` runs the user's Map function over a small
  input sample (the runtime equivalent of Table II's characteristics)
  to estimate the input:output byte ratio and emission density;
* :func:`suggest` converts those estimates into an initial
  configuration using the paper's own findings (output-heavy Map
  favours a large output area and staged output; big variable records
  favour staged input; single-emission fixed-size workloads favour
  SIO with a balanced split);
* :func:`autotune` optionally refines the suggestion with a small
  measured search over (mode, threads_per_block, io_ratio) on a
  sample, returning the best measured configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice

from ..gpu.accessor import Accessor
from ..gpu.config import DeviceConfig
from ..gpu.kernel import Device
from ..errors import ReproError
from .api import MapReduceSpec
from .map_engine import build_map_runtime, launch_map
from .modes import MemoryMode
from .records import DeviceRecordSet, KeyValueSet


@dataclass(frozen=True)
class WorkloadProbe:
    """Measured characteristics of a workload sample."""

    records: int
    in_bytes: int
    out_bytes: int
    emissions: int
    max_record_bytes: int

    @property
    def out_in_ratio(self) -> float:
        """Output bytes per input byte (WC ~1, SM ~0.2, MM tiny)."""
        return self.out_bytes / max(1, self.in_bytes)

    @property
    def emissions_per_record(self) -> float:
        return self.emissions / max(1, self.records)


@dataclass(frozen=True)
class TuningChoice:
    mode: MemoryMode
    threads_per_block: int
    io_ratio: float
    #: Measured Map cycles (None when the choice came from heuristics
    #: only).
    cycles: float | None = None


@dataclass
class TuningReport:
    probe: WorkloadProbe
    suggestion: TuningChoice
    #: Every measured candidate, when a search ran.
    measured: list[TuningChoice] = field(default_factory=list)

    @property
    def best(self) -> TuningChoice:
        done = [c for c in self.measured if c.cycles is not None]
        return min(done, key=lambda c: c.cycles) if done else self.suggestion


def probe_workload(
    spec: MapReduceSpec, inp: KeyValueSet, sample: int = 256
) -> WorkloadProbe:
    """Run the Map function over a sample and measure its behaviour."""
    spec.validate()
    n = in_b = out_b = emis = max_rec = 0
    const = Accessor(spec.const_bytes) if spec.const_bytes else None
    for key, val in islice(iter(inp), sample):
        n += 1
        in_b += len(key) + len(val)
        max_rec += 0
        max_rec = max(max_rec, len(key) + len(val))
        outs: list[tuple[bytes, bytes]] = []
        spec.map_record(
            Accessor(key), Accessor(val),
            lambda k, v: outs.append((bytes(k), bytes(v))), const,
        )
        emis += len(outs)
        out_b += sum(len(k) + len(v) for k, v in outs)
    return WorkloadProbe(
        records=n, in_bytes=in_b, out_bytes=out_b,
        emissions=emis, max_record_bytes=max_rec,
    )


def suggest(probe: WorkloadProbe, config: DeviceConfig | None = None
            ) -> TuningChoice:
    """Heuristic initial configuration from the paper's findings.

    * Heavy emitters (WC-like): staged output dominates -> SIO with an
      output-leaning split.
    * Large/variable records with few emissions (II-like): staged
      input dominates -> SI (avoid the helper-warp tax).
    * Light output, small records (SM/KM-like): SIO balanced.
    * Records too large to stage (MM-like): stage indices only, SIO
      still applies at >= 128 threads (Section IV-D's MM discussion).
    """
    cfg = config or DeviceConfig.gtx280()
    smem = cfg.shared_mem_per_mp
    if probe.emissions_per_record >= 2.0 or probe.out_in_ratio > 0.8:
        return TuningChoice(MemoryMode.SIO, 256, 0.25)
    if probe.max_record_bytes > smem // 8:
        # One record would eat the input area: stage indices/output.
        return TuningChoice(MemoryMode.SIO, 128, 0.3)
    avg = probe.in_bytes / max(1, probe.records)
    if avg > 48 and probe.emissions_per_record < 0.7:
        return TuningChoice(MemoryMode.SI, 128, 0.7)
    return TuningChoice(MemoryMode.SIO, 128, 0.5)


def autotune(
    spec: MapReduceSpec,
    inp: KeyValueSet,
    *,
    config: DeviceConfig | None = None,
    sample_records: int = 512,
    modes: tuple[MemoryMode, ...] | None = None,
    block_sizes: tuple[int, ...] = (128, 256),
    io_ratios: tuple[float, ...] = (0.25, 0.5, 0.7),
    measure: bool = True,
) -> TuningReport:
    """Probe, suggest, and (optionally) measure candidates on a sample.

    The measured search runs the *Map kernel only* over a bounded
    sample of the input — cheap relative to a full job — mirroring how
    a runtime autotuner would calibrate on the first input slice.
    """
    cfg = config or DeviceConfig.gtx280()
    probe = probe_workload(spec, inp, sample=min(sample_records, len(inp)))
    report = TuningReport(probe=probe, suggestion=suggest(probe, cfg))
    if not measure:
        return report

    sample = KeyValueSet(islice(iter(inp), min(sample_records, len(inp))))
    candidate_modes = modes or (
        MemoryMode.G, MemoryMode.SI, MemoryMode.SO, MemoryMode.SIO
    )
    for mode in candidate_modes:
        for tpb in block_sizes:
            ratios = io_ratios if mode is MemoryMode.SIO else (0.5,)
            for ratio in ratios:
                try:
                    dev = Device(cfg)
                    d_in = DeviceRecordSet.upload(dev.gmem, sample)
                    rt = build_map_runtime(
                        dev, spec, mode, d_in,
                        threads_per_block=tpb,
                        io_ratio=ratio if mode.stages_input else None,
                    )
                    st = launch_map(dev, rt)
                except ReproError:
                    continue
                report.measured.append(
                    TuningChoice(mode, tpb, ratio, st.cycles)
                )
    return report
