"""Host <-> device transfer model (the "I/O" slice of Figure 6).

Both compared systems move the same input and output over PCIe; the
paper notes only "slight difference" from data-definition details.
The model is the standard affine one: a fixed per-transfer setup cost
plus bytes over effective PCIe bandwidth, expressed in SP cycles so
it composes with kernel times.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.config import DeviceConfig


@dataclass(frozen=True)
class TransferCost:
    bytes_moved: int
    cycles: float


def transfer_cycles(nbytes: int, config: DeviceConfig) -> TransferCost:
    """Cycles for one host<->device copy of ``nbytes``."""
    t = config.timing
    if nbytes <= 0:
        return TransferCost(0, 0.0)
    return TransferCost(
        nbytes, t.pcie_setup_cycles + nbytes / t.pcie_bytes_per_cycle
    )


def upload_cost(payload_bytes: int, dir_bytes: int, config: DeviceConfig
                ) -> TransferCost:
    """Input upload: key/value blobs plus the two directory arrays."""
    return transfer_cycles(payload_bytes + dir_bytes, config)


def download_cost(payload_bytes: int, dir_bytes: int, config: DeviceConfig
                  ) -> TransferCost:
    """Final output download."""
    return transfer_cycles(payload_bytes + dir_bytes, config)


# ----------------------------------------------------------------------
# Staging helpers — the one place input upload and output download are
# performed *and* costed.  Every execution backend (cycle-accurate sim,
# fast functional) and every driver front-end goes through these, so
# the transfer model can never drift between code paths.
# ----------------------------------------------------------------------


def stage_input(gmem, kvs, config: DeviceConfig, *, label: str = "in"):
    """Upload a host record set and charge the PCIe cost.

    Returns ``(DeviceRecordSet, TransferCost)``.  Import is local to
    avoid a records<->host module cycle.
    """
    from .records import DIR_PER_RECORD, DeviceRecordSet

    d = DeviceRecordSet.upload(gmem, kvs, label=label)
    return d, upload_cost(d.payload_bytes, DIR_PER_RECORD * d.count, config)


def retire_output(d_set, config: DeviceConfig):
    """Download a device record set and charge the PCIe cost.

    Returns ``(KeyValueSet, TransferCost)``.
    """
    from .records import DIR_PER_RECORD

    return d_set.download(), download_cost(
        d_set.payload_bytes, DIR_PER_RECORD * d_set.count, config
    )


def host_upload_cost(kvs, config: DeviceConfig) -> TransferCost:
    """Upload cost of a *host-resident* record set (no device touched)."""
    from .records import DIR_PER_RECORD

    return upload_cost(
        kvs.key_bytes + kvs.val_bytes, DIR_PER_RECORD * len(kvs), config
    )


def host_download_cost(kvs, config: DeviceConfig) -> TransferCost:
    """Download cost of a host-resident record set (no device touched)."""
    from .records import DIR_PER_RECORD

    return download_cost(
        kvs.key_bytes + kvs.val_bytes, DIR_PER_RECORD * len(kvs), config
    )


def shard_slices(n_records: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``[lo, hi)`` index ranges covering ``n_records``.

    The partitioning rule every sharded executor shares: ranges are
    contiguous (so concatenating per-shard results in shard order
    reproduces the sequential record order exactly), non-overlapping,
    cover ``[0, n_records)``, and differ in size by at most one record.
    Empty ranges are never returned — fewer than ``n_shards`` slices
    come back when there are fewer records than shards.
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    n = max(0, n_records)
    k = min(n_shards, n)
    out: list[tuple[int, int]] = []
    lo = 0
    for i in range(k):
        hi = lo + n // k + (1 if i < n % k else 0)
        out.append((lo, hi))
        lo = hi
    return out
