"""Host <-> device transfer model (the "I/O" slice of Figure 6).

Both compared systems move the same input and output over PCIe; the
paper notes only "slight difference" from data-definition details.
The model is the standard affine one: a fixed per-transfer setup cost
plus bytes over effective PCIe bandwidth, expressed in SP cycles so
it composes with kernel times.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.config import DeviceConfig


@dataclass(frozen=True)
class TransferCost:
    bytes_moved: int
    cycles: float


def transfer_cycles(nbytes: int, config: DeviceConfig) -> TransferCost:
    """Cycles for one host<->device copy of ``nbytes``."""
    t = config.timing
    if nbytes <= 0:
        return TransferCost(0, 0.0)
    return TransferCost(
        nbytes, t.pcie_setup_cycles + nbytes / t.pcie_bytes_per_cycle
    )


def upload_cost(payload_bytes: int, dir_bytes: int, config: DeviceConfig
                ) -> TransferCost:
    """Input upload: key/value blobs plus the two directory arrays."""
    return transfer_cycles(payload_bytes + dir_bytes, config)


def download_cost(payload_bytes: int, dir_bytes: int, config: DeviceConfig
                  ) -> TransferCost:
    """Final output download."""
    return transfer_cycles(payload_bytes + dir_bytes, config)
