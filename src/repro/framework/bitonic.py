"""A device-executed bitonic sorter — the shuffle's real substrate.

Mars's shuffle sorts intermediate records with a GPU bitonic sort;
:mod:`repro.framework.shuffle` charges that cost analytically because
the phase is identical across all compared systems.  This module
provides the *actual kernel*: a multi-block bitonic sort over
``(key_hash, record_index)`` pairs running on the simulator, for users
who want the shuffle event-driven too (``shuffle_method="bitonic"`` in
:func:`repro.framework.job.run_job`) and as a validation of the
analytic model (the tests compare the two).

Algorithm: classic bitonic network over a power-of-two padded array.
Each compare-exchange stage is a kernel launch (stages cannot overlap:
they are globally synchronised by kernel boundaries, exactly as Mars
does); within a stage, each thread owns one pair.  Sorting is on a
64-bit composite ``(hash << 32) | index`` so equal hashes keep a
stable, deterministic order and the functional result can be verified
against ``sorted()``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.config import WARP_SIZE
from ..gpu.kernel import Device, WarpCtx
from ..gpu.stats import KernelStats


def fnv1a(data: bytes) -> int:
    """FNV-1a 32-bit hash — the key ordering used by the sorter."""
    h = 0x811C9DC5
    for b in data:
        h = ((h ^ b) * 0x01000193) & 0xFFFFFFFF
    return h


@dataclass
class BitonicResult:
    """Sorted order plus the merged stats of every stage launch."""

    order: np.ndarray  # permutation of record indices
    stats: KernelStats
    stages: int


def _bitonic_stage_kernel(ctx: WarpCtx, arr_addr: int, n: int, k: int, j: int,
                          shadow: list):
    """One compare-exchange stage: thread ``i`` handles pair (i, i^j).

    ``shadow`` is the Python mirror of the device array (kept in sync
    with the functional writes; the actual bytes also live in gmem and
    are checked by the tests).
    """
    total_threads = ctx.grid_blocks * ctx.threads_per_block
    gbase = ctx.block_id * ctx.threads_per_block + ctx.warp_id * WARP_SIZE
    for start in range(gbase, n, total_threads):
        lanes = []
        swaps = []
        for lane in range(min(WARP_SIZE, n - start)):
            i = start + lane
            partner = i ^ j
            if partner <= i or partner >= n:
                continue
            lanes.append((i, partner))
        if not lanes:
            continue
        # Each active lane reads its pair: two 8-byte loads.
        reads = [(arr_addr + 8 * i, 8) for i, _ in lanes]
        reads += [(arr_addr + 8 * p, 8) for _, p in lanes]
        yield from ctx.gtouch_read(reads)
        yield from ctx.compute(ctx.timing.issue_cycles * 2)
        for i, partner in lanes:
            ascending = (i & k) == 0
            a, b = shadow[i], shadow[partner]
            if (a > b) == ascending:
                shadow[i], shadow[partner] = b, a
                swaps.append((i, partner))
        if swaps:
            writes = []
            for i, partner in swaps:
                ctx.gmem.write(arr_addr + 8 * i,
                               int(shadow[i]).to_bytes(8, "little"))
                ctx.gmem.write(arr_addr + 8 * partner,
                               int(shadow[partner]).to_bytes(8, "little"))
                writes.append((arr_addr + 8 * i, 8))
                writes.append((arr_addr + 8 * partner, 8))
            from ..gpu.instructions import GlobalWrite

            yield GlobalWrite(addrs=tuple(writes), lanes=len(swaps))


def bitonic_sort_device(
    device: Device,
    keys: list[bytes],
    *,
    threads_per_block: int = 128,
) -> BitonicResult:
    """Sort record indices by key hash on the simulated device."""
    n_real = len(keys)
    if n_real == 0:
        return BitonicResult(order=np.zeros(0, dtype=np.int64),
                             stats=KernelStats(), stages=0)
    composite = [
        (fnv1a(k) << 32) | i for i, k in enumerate(keys)
    ]
    # Pad to a power of two with +inf sentinels.
    n = 1
    while n < n_real:
        n *= 2
    shadow = composite + [(1 << 64) - 1] * (n - n_real)

    arr_addr = device.gmem.alloc(8 * n, "bitonic.arr")
    for i, v in enumerate(shadow):
        device.gmem.write(arr_addr + 8 * i, int(v).to_bytes(8, "little"))

    grid = max(1, min(
        device.config.mp_count * 4,
        -(-n // threads_per_block),
    ))
    merged = KernelStats()
    stages = 0
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            st = device.launch(
                _bitonic_stage_kernel,
                grid=grid,
                block=threads_per_block,
                args=(arr_addr, n, k, j, shadow),
            )
            merged = merged.merge(st)
            stages += 1
            j //= 2
        k *= 2

    order = np.array(
        [v & 0xFFFFFFFF for v in shadow if v < (1 << 64) - 1],
        dtype=np.int64,
    )
    return BitonicResult(order=order, stats=merged, stages=stages)
