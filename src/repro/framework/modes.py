"""Memory-usage modes and reduction strategies (paper Section IV-C).

The evaluation compares five memory-usage modes for each kernel:

* ``SIO`` — stage input **and** output in shared memory (the paper's
  full design, Section III).
* ``SO`` — stage only output; input read directly from global memory.
* ``SI`` — stage only input; each warp writes its own output directly
  to global memory using warp-aggregated atomics (in-warp prefix sum,
  one set of atomic adds by the first lane).
* ``G`` — no staging; like Mars but single-pass via atomics (the
  "MapCG-like" scheme).
* ``GT`` — like G, but input bound to texture buffers and fetched
  through the read-only texture cache.

and two Reduce strategies:

* ``TR`` — thread-level reduction: one thread per distinct key set
  (Mars / Hadoop style).  Cannot stage input: a key set may be
  arbitrarily large.
* ``BR`` — block-level reduction: a block tree-reduces one key set
  (Catanzaro style).  Cannot use GT: it updates values in place and
  the texture cache is not coherent with same-kernel writes.
"""

from __future__ import annotations

from enum import Enum

from ..errors import FrameworkError


class MemoryMode(str, Enum):
    G = "G"
    GT = "GT"
    SI = "SI"
    SO = "SO"
    SIO = "SIO"

    @property
    def stages_input(self) -> bool:
        return self in (MemoryMode.SI, MemoryMode.SIO)

    @property
    def stages_output(self) -> bool:
        return self in (MemoryMode.SO, MemoryMode.SIO)

    @property
    def uses_texture(self) -> bool:
        return self is MemoryMode.GT

    @property
    def needs_wait_signal(self) -> bool:
        """Intra-block wait-signal sync is only needed when output is
        staged (Section IV-C)."""
        return self.stages_output


class ReduceStrategy(str, Enum):
    TR = "TR"
    BR = "BR"


#: All modes, in the order the paper's figures list them.
ALL_MODES = (
    MemoryMode.G,
    MemoryMode.GT,
    MemoryMode.SI,
    MemoryMode.SO,
    MemoryMode.SIO,
)


def effective_reduce_mode(
    mode: MemoryMode, strategy: ReduceStrategy
) -> MemoryMode:
    """Map a requested mode to the one actually run in the Reduce phase.

    Per the paper: TR cannot stage input, so SI falls back to G and
    SIO to SO (Figure 6's note); BR cannot use the texture cache.
    """
    if strategy is ReduceStrategy.TR:
        if mode is MemoryMode.SI:
            return MemoryMode.G
        if mode is MemoryMode.SIO:
            return MemoryMode.SO
        return mode
    if strategy is ReduceStrategy.BR:
        if mode is MemoryMode.GT:
            raise FrameworkError(
                "BR reduce kernels cannot use the texture cache: they "
                "update values in place and texture caches are not "
                "coherent with same-kernel global writes (Section IV-C)"
            )
        return mode
    raise FrameworkError(f"unknown strategy {strategy!r}")
