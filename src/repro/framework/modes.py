"""Memory-usage modes and reduction strategies (paper Section IV-C).

The evaluation compares five memory-usage modes for each kernel:

* ``SIO`` — stage input **and** output in shared memory (the paper's
  full design, Section III).
* ``SO`` — stage only output; input read directly from global memory.
* ``SI`` — stage only input; each warp writes its own output directly
  to global memory using warp-aggregated atomics (in-warp prefix sum,
  one set of atomic adds by the first lane).
* ``G`` — no staging; like Mars but single-pass via atomics (the
  "MapCG-like" scheme).
* ``GT`` — like G, but input bound to texture buffers and fetched
  through the read-only texture cache.

and two Reduce strategies:

* ``TR`` — thread-level reduction: one thread per distinct key set
  (Mars / Hadoop style).  Cannot stage input: a key set may be
  arbitrarily large.
* ``BR`` — block-level reduction: a block tree-reduces one key set
  (Catanzaro style).  Cannot use GT: it updates values in place and
  the texture cache is not coherent with same-kernel writes.
"""

from __future__ import annotations

from enum import Enum

from ..errors import FrameworkError


class MemoryMode(str, Enum):
    G = "G"
    GT = "GT"
    SI = "SI"
    SO = "SO"
    SIO = "SIO"

    @property
    def stages_input(self) -> bool:
        return self in (MemoryMode.SI, MemoryMode.SIO)

    @property
    def stages_output(self) -> bool:
        return self in (MemoryMode.SO, MemoryMode.SIO)

    @property
    def uses_texture(self) -> bool:
        return self is MemoryMode.GT

    @property
    def needs_wait_signal(self) -> bool:
        """Intra-block wait-signal sync is only needed when output is
        staged (Section IV-C)."""
        return self.stages_output


class ReduceStrategy(str, Enum):
    TR = "TR"
    BR = "BR"


#: All modes, in the order the paper's figures list them.
ALL_MODES = (
    MemoryMode.G,
    MemoryMode.GT,
    MemoryMode.SI,
    MemoryMode.SO,
    MemoryMode.SIO,
)

#: The one spelling of "let the tuner decide" (modes and strategies).
AUTO = "auto"


def resolve_mode_name(
    name, *, allow_auto: bool = False
) -> "MemoryMode | str":
    """The single place a mode name becomes a :class:`MemoryMode`.

    Accepts an enum member (returned as-is) or a case-insensitive
    string; ``"auto"`` passes through verbatim when ``allow_auto`` —
    the cost-model tuner (:mod:`repro.tune`) resolves it later.
    Unknown names raise a :class:`FrameworkError` listing the valid
    spellings, so both CLIs and the API show the same friendly
    message.
    """
    if isinstance(name, MemoryMode):
        return name
    if isinstance(name, str):
        if name.lower() == AUTO:
            if allow_auto:
                return AUTO
            raise FrameworkError(
                "mode 'auto' is not accepted here; pick one of "
                + ", ".join(m.value for m in ALL_MODES)
            )
        try:
            return MemoryMode(name.upper())
        except ValueError:
            pass
    valid = ", ".join(m.value for m in ALL_MODES)
    raise FrameworkError(
        f"unknown memory mode {name!r}: valid modes are {valid}"
        + (" (or 'auto' for the cost-model tuner)" if allow_auto else "")
    )


def resolve_strategy_name(
    name, *, allow_auto: bool = False
) -> "ReduceStrategy | str | None":
    """The single place a strategy name becomes a :class:`ReduceStrategy`.

    ``None`` means "no Reduce phase" and passes through.  ``"auto"``
    passes through verbatim when ``allow_auto`` (the tuner picks TR or
    BR — or map-only for a spec with no Reduce).  Anything else must
    name TR or BR, case-insensitively.
    """
    if name is None or isinstance(name, ReduceStrategy):
        return name
    if isinstance(name, str):
        if name.lower() == AUTO:
            if allow_auto:
                return AUTO
            raise FrameworkError(
                "strategy 'auto' is not accepted here; pick TR or BR"
            )
        if name.lower() in ("none", ""):
            return None
        try:
            return ReduceStrategy(name.upper())
        except ValueError:
            pass
    raise FrameworkError(
        f"unknown reduce strategy {name!r}: valid strategies are TR, BR"
        + (", auto" if allow_auto else "")
        + ", none"
    )


def effective_reduce_mode(
    mode: MemoryMode, strategy: ReduceStrategy
) -> MemoryMode:
    """Map a requested mode to the one actually run in the Reduce phase.

    Per the paper: TR cannot stage input, so SI falls back to G and
    SIO to SO (Figure 6's note); BR cannot use the texture cache.
    """
    if strategy is ReduceStrategy.TR:
        if mode is MemoryMode.SI:
            return MemoryMode.G
        if mode is MemoryMode.SIO:
            return MemoryMode.SO
        return mode
    if strategy is ReduceStrategy.BR:
        if mode is MemoryMode.GT:
            raise FrameworkError(
                "BR reduce kernels cannot use the texture cache: they "
                "update values in place and texture caches are not "
                "coherent with same-kernel global writes (Section IV-C)"
            )
        return mode
    raise FrameworkError(f"unknown strategy {strategy!r}")
