"""Columnar record batches: the structure-of-arrays layout as arrays.

:class:`~repro.framework.records.KeyValueSet` already *documents* the
Mars/paper structure-of-arrays layout (concatenated key bytes +
concatenated value bytes + per-record directories) but stores it as
Python lists of ``bytes`` — every per-record operation pays interpreter
dispatch.  This module materialises the same layout as numpy arrays so
whole batches move through Map, Shuffle and Reduce with a handful of
array operations, the way Lu et al.'s Xeon Phi runtime SIMD-vectorizes
its phases:

* :class:`Column` — one side (keys or values) of a record batch: a
  single concatenated ``blob`` plus an ``int64`` per-record length
  array (offsets are the cumulative sum, cached on demand);
* :class:`ColumnBatch` — a key column and a value column of equal
  record count: the unit batch kernels (``spec.map_batch``) consume
  and produce;
* :func:`sort_and_group` — the vectorized shuffle: a stable argsort
  over key bytes plus group-boundary detection, replacing the
  dict-of-lists group-by.  Fixed-width keys up to 8 bytes sort as one
  big-endian integer argsort (big-endian packing makes integer order
  equal lexicographic byte order); wider fixed keys lexsort 8-byte
  limbs; variable-width keys fall back to Python's (stable) ``sorted``
  so byte order is preserved exactly in every case;
* :class:`GroupedColumns` — the grouped intermediate: one entry per
  distinct key, an ``int64`` boundary array and the value column in
  group-major emission order.  Iterating it yields the same
  ``(key, [value, ...])`` groups as a drained
  :class:`~repro.store.memory.MemoryStore`, byte for byte.

Everything here is ordering-exact by construction: stable sorts keep
equal keys in emission order, and group keys come out in ascending
byte order — the invariant every store and backend in this repo pins.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import FrameworkError
from .records import KeyValueSet

_EMPTY_LENGTHS = np.zeros(0, dtype=np.int64)


class Column:
    """One side of a record batch: ``n`` byte strings, concatenated.

    ``blob`` holds the payloads back to back; ``lengths`` is an
    ``int64`` array of per-record byte lengths.  Offsets are always
    the cumulative sum (records are contiguous by construction —
    gathers build fresh blobs), computed lazily and cached.
    """

    __slots__ = ("blob", "lengths", "_offsets")

    def __init__(self, blob: bytes, lengths: np.ndarray):
        self.blob = blob
        self.lengths = lengths
        self._offsets: np.ndarray | None = None

    # -- construction --------------------------------------------------

    @classmethod
    def from_list(cls, items: Sequence[bytes]) -> "Column":
        n = len(items)
        if n == 0:
            return cls(b"", _EMPTY_LENGTHS)
        lengths = np.fromiter(map(len, items), dtype=np.int64, count=n)
        return cls(b"".join(items), lengths)

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "Column":
        """Fixed-width column from an ``(n, ...)`` array: record ``i``
        is row ``i``'s bytes.  The caller owns dtype/endianness — use
        explicit little-endian dtypes (``"<u4"``, ``"<f4"``) for
        byte-layout parity with the scalar kernels."""
        n = arr.shape[0]
        if n == 0:
            return cls(b"", _EMPTY_LENGTHS)
        arr = np.ascontiguousarray(arr)
        width = arr.nbytes // n
        return cls(arr.tobytes(), np.full(n, width, dtype=np.int64))

    @classmethod
    def repeated(cls, item: bytes, n: int) -> "Column":
        """``n`` copies of one payload (e.g. a constant key)."""
        if n == 0:
            return cls(b"", _EMPTY_LENGTHS)
        return cls(item * n, np.full(n, len(item), dtype=np.int64))

    # -- shape ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.lengths)

    @property
    def nbytes(self) -> int:
        return len(self.blob)

    @property
    def offsets(self) -> np.ndarray:
        """``int64`` array of ``n + 1`` offsets into ``blob``."""
        if self._offsets is None:
            off = np.zeros(len(self.lengths) + 1, dtype=np.int64)
            np.cumsum(self.lengths, out=off[1:])
            self._offsets = off
        return self._offsets

    @property
    def fixed_width(self) -> int | None:
        """Common record width, or None for ragged/empty columns."""
        n = len(self.lengths)
        if n == 0:
            return None
        w = int(self.lengths[0])
        if n == 1 or (int(self.lengths.min()) == w
                      and int(self.lengths.max()) == w):
            return w
        return None

    # -- vectorized views ---------------------------------------------

    def matrix(self) -> np.ndarray:
        """``(n, width)`` uint8 view of a fixed-width column."""
        w = self.fixed_width
        if w is None:
            raise FrameworkError("matrix() needs a fixed-width column")
        return np.frombuffer(self.blob, dtype=np.uint8).reshape(len(self), w)

    def fixed_array(self, dtype) -> np.ndarray:
        """``(n, width // itemsize)`` view of a fixed-width column."""
        w = self.fixed_width
        item = np.dtype(dtype).itemsize
        if w is None or w % item:
            raise FrameworkError(
                f"column is not a fixed multiple of {np.dtype(dtype)}"
            )
        return np.frombuffer(self.blob, dtype=dtype).reshape(
            len(self), w // item
        )

    # -- record access -------------------------------------------------

    def at(self, i: int) -> bytes:
        off = self.offsets
        return self.blob[off[i]:off[i + 1]]

    def tolist(self) -> list[bytes]:
        blob, off = self.blob, self.offsets
        return [blob[off[i]:off[i + 1]] for i in range(len(self.lengths))]

    def __iter__(self) -> Iterator[bytes]:
        blob, off = self.blob, self.offsets
        for i in range(len(self.lengths)):
            yield blob[off[i]:off[i + 1]]

    # -- transforms ----------------------------------------------------

    def take(self, order: np.ndarray) -> "Column":
        """Gather records into a new column (vectorized when fixed)."""
        w = self.fixed_width
        if w is not None:
            mat = self.matrix()[order]
            return Column(mat.tobytes(),
                          np.full(len(order), w, dtype=np.int64))
        items = self.tolist()
        return Column.from_list([items[i] for i in order])

    @classmethod
    def concat(cls, columns: Sequence["Column"]) -> "Column":
        if len(columns) == 1:
            return columns[0]
        if not columns:
            return cls(b"", _EMPTY_LENGTHS)
        return cls(
            b"".join(c.blob for c in columns),
            np.concatenate([c.lengths for c in columns]),
        )


class ColumnBatch:
    """A batch of records in columnar form: key column + value column."""

    __slots__ = ("keys", "values")

    def __init__(self, keys: Column, values: Column):
        if len(keys) != len(values):
            raise FrameworkError(
                f"key/value column lengths differ: "
                f"{len(keys)} vs {len(values)}"
            )
        self.keys = keys
        self.values = values

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def key_bytes(self) -> int:
        return self.keys.nbytes

    @property
    def val_bytes(self) -> int:
        return self.values.nbytes

    # -- conversions ---------------------------------------------------

    @classmethod
    def from_lists(cls, keys: Sequence[bytes], values: Sequence[bytes]
                   ) -> "ColumnBatch":
        return cls(Column.from_list(keys), Column.from_list(values))

    @classmethod
    def from_kvs(cls, kvs: KeyValueSet) -> "ColumnBatch":
        return cls.from_lists(kvs.keys, kvs.values)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[bytes, bytes]]
                   ) -> "ColumnBatch":
        ks, vs = [], []
        for k, v in pairs:
            ks.append(k)
            vs.append(v)
        return cls.from_lists(ks, vs)

    def to_kvs(self) -> KeyValueSet:
        out = KeyValueSet()
        append = out.append_unchecked
        for k, v in zip(self.keys, self.values):
            append(k, v)
        return out

    def iter_pairs(self) -> Iterator[tuple[bytes, bytes]]:
        return zip(self.keys, self.values)

    @classmethod
    def concat(cls, batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        if len(batches) == 1:
            return batches[0]
        return cls(
            Column.concat([b.keys for b in batches]),
            Column.concat([b.values for b in batches]),
        )


# ----------------------------------------------------------------------
# Vectorized shuffle: stable key sort + group-boundary detection
# ----------------------------------------------------------------------


def _key_limbs(keys: Column) -> np.ndarray:
    """``(n, ceil(w/8))`` array of big-endian u64 limbs per key.

    Zero-padding the *tail* limb is order-safe because every key in a
    fixed-width column has the same length — no comparison ever
    crosses a length boundary.  Big-endian packing makes unsigned
    integer order equal lexicographic byte order.
    """
    mat = keys.matrix()
    n, w = mat.shape
    n_limbs = -(-w // 8)
    padded = np.zeros((n, n_limbs * 8), dtype=np.uint8)
    padded[:, :w] = mat
    return padded.view(">u8").reshape(n, n_limbs)


def sort_and_group(keys: Column) -> tuple[np.ndarray, np.ndarray, bool]:
    """Stable sort permutation + group boundaries over key bytes.

    Returns ``(order, starts, vectorized)``: ``order`` is an ``int64``
    permutation sorting the records by key bytes (stable — equal keys
    keep emission order); ``starts`` is an ``int64`` array of group
    start indices into the sorted order, with a final ``n`` sentinel
    (``len(starts) - 1`` groups); ``vectorized`` reports whether the
    array fast path ran (fixed-width keys) or the Python fallback
    (ragged keys) did.
    """
    n = len(keys)
    if n == 0:
        return (np.zeros(0, dtype=np.int64),
                np.zeros(1, dtype=np.int64), True)
    w = keys.fixed_width
    if w == 0:
        # Every key is b"": one group, emission order.
        return (np.arange(n, dtype=np.int64),
                np.array([0, n], dtype=np.int64), True)
    if w is not None and w <= 8:
        ints = _key_limbs(keys).reshape(n)
        order = np.argsort(ints, kind="stable").astype(np.int64, copy=False)
        s = ints[order]
        bounds = np.flatnonzero(s[1:] != s[:-1]) + 1
        starts = np.concatenate((
            np.zeros(1, dtype=np.int64), bounds.astype(np.int64),
            np.array([n], dtype=np.int64),
        ))
        return order, starts, True
    if w is not None:
        limbs = _key_limbs(keys)
        # lexsort: last key is most significant; each pass is stable,
        # so the whole permutation is stable in emission order.
        order = np.lexsort(
            tuple(limbs[:, j] for j in range(limbs.shape[1] - 1, -1, -1))
        ).astype(np.int64, copy=False)
        s = limbs[order]
        bounds = np.flatnonzero((s[1:] != s[:-1]).any(axis=1)) + 1
        starts = np.concatenate((
            np.zeros(1, dtype=np.int64), bounds.astype(np.int64),
            np.array([n], dtype=np.int64),
        ))
        return order, starts, True
    # Ragged keys: Python's sorted is stable and compares raw bytes.
    items = keys.tolist()
    order = np.fromiter(
        sorted(range(n), key=items.__getitem__), dtype=np.int64, count=n
    )
    starts = [0]
    prev = items[order[0]]
    for pos in range(1, n):
        cur = items[order[pos]]
        if cur != prev:
            starts.append(pos)
            prev = cur
    starts.append(n)
    return order, np.array(starts, dtype=np.int64), False


class GroupedColumns:
    """The grouped, key-sorted intermediate in columnar form.

    ``keys`` holds one entry per distinct key in ascending byte order;
    ``offsets`` (``int64``, ``n_groups + 1``) delimits each group's
    slice of ``values``, which carries every value in group-major
    order with emission order preserved inside each group — exactly
    the ``(key, [value, ...])`` stream a drained
    :class:`~repro.store.memory.MemoryStore` yields.
    """

    __slots__ = ("keys", "offsets", "values", "stats", "vectorized")

    def __init__(self, keys: Column, offsets: np.ndarray, values: Column,
                 *, stats=None, vectorized: bool = True):
        self.keys = keys
        self.offsets = offsets
        self.values = values
        #: Producing store's StoreStats (spill accounting), if any.
        self.stats = stats
        #: Did the array sort path run (vs the ragged-key fallback)?
        self.vectorized = vectorized

    @classmethod
    def from_batch(cls, cols: ColumnBatch, *, stats=None
                   ) -> "GroupedColumns":
        order, starts, vectorized = sort_and_group(cols.keys)
        first = order[starts[:-1]]
        return cls(
            keys=cols.keys.take(first),
            offsets=starts,
            values=cols.values.take(order),
            stats=stats,
            vectorized=vectorized,
        )

    def __len__(self) -> int:
        """Number of distinct keys (groups)."""
        return len(self.keys)

    @property
    def n_values(self) -> int:
        return int(self.offsets[-1])

    @property
    def group_sizes(self) -> np.ndarray:
        return np.diff(self.offsets)

    def __iter__(self) -> Iterator[tuple[bytes, list[bytes]]]:
        """Scalar view: ``(key, [value, ...])`` per group — the exact
        stream the scalar Reduce loop consumes."""
        vals = self.values
        off = self.offsets
        for g in range(len(self.keys)):
            yield self.keys.at(g), [
                vals.at(i) for i in range(off[g], off[g + 1])
            ]
