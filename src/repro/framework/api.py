"""Public user-facing API of the MapReduce framework.

A workload is described by a :class:`MapReduceSpec`: a Map function,
optionally a Reduce function (thread-level) and/or a combine+finalize
pair (block-level reduction), plus tuning hints.  User functions are
plain Python operating on :class:`~repro.gpu.accessor.Accessor` views;
the framework records their access traces and replays them through
the simulated memory hierarchy under whichever memory-usage mode the
job selects — the same user code runs under G, GT, SI, SO and SIO,
exactly as in the paper.

Example (Word Count's Map)::

    def wc_map(key, value, emit, const):
        line = key.to_bytes()
        for word in split_words(line):
            emit(word, ONE)

    spec = MapReduceSpec(name="wc", map_record=wc_map, ...)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..errors import FrameworkError
from ..gpu.accessor import Accessor
from .records import KeyValueSet

#: Signature of an emit callback: ``emit(key_bytes, value_bytes)``.
Emit = Callable[[bytes, bytes], None]

#: ``map_record(key, value, emit, const)`` — ``const`` is an Accessor
#: over the workload's constant region (or None).
MapFn = Callable[[Accessor, Accessor, Emit, Optional[Accessor]], None]

#: ``reduce_record(key, values, emit, const)`` — thread-level Reduce
#: over one distinct key set; ``values`` is a sequence of Accessors.
ReduceFn = Callable[[Accessor, Sequence[Accessor], Emit, Optional[Accessor]], None]

#: ``combine(a, b) -> bytes`` — associative pairwise combiner for
#: block-level (tree) reduction.
CombineFn = Callable[[bytes, bytes], bytes]

#: ``finalize(key, acc, count) -> (key_bytes, value_bytes)`` — turn a
#: key set's combined accumulator into the output record.
FinalizeFn = Callable[[bytes, bytes, int], tuple[bytes, bytes]]

#: ``map_batch(cols, const=...) -> ColumnBatch | None`` — vectorized
#: Map over one columnar input batch (see
#: :mod:`repro.framework.columns`).  Must produce the emissions of
#: running ``map_record`` over the batch in record order; returning
#: ``None`` declines the batch (unsupported shape) and the framework
#: falls back to the scalar Map for that batch.
MapBatchFn = Callable[..., object]

#: ``reduce_batch(keys, group_offsets, values, const=...) ->
#: ColumnBatch | None`` — vectorized thread-level Reduce over the
#: whole grouped intermediate: ``keys`` is a Column of the distinct
#: keys in ascending byte order, ``group_offsets`` an int64 array
#: delimiting each group's slice of the ``values`` Column (group-major,
#: emission order within a group).  Must emit exactly what
#: ``reduce_record`` would per group, in group order; ``None``
#: declines and the scalar Reduce runs instead.
ReduceBatchFn = Callable[..., object]


@dataclass
class MapReduceSpec:
    """Everything the framework needs to run one MapReduce workload."""

    name: str
    map_record: MapFn
    reduce_record: ReduceFn | None = None
    combine: CombineFn | None = None
    finalize: FinalizeFn | None = None

    #: Optional vectorized twins of ``map_record``/``reduce_record``
    #: for the columnar execution path (``--columnar`` /
    #: ``$REPRO_COLUMNAR``).  Both are pure accelerations: they must
    #: reproduce the scalar functions' emissions byte for byte (float
    #: payloads: same operation order, so same rounding), and either
    #: may return None to decline a batch it cannot vectorize — the
    #: framework transparently falls back to the scalar API per batch.
    #: ``reduce_batch`` only applies to thread-level (TR/Mars) reduces;
    #: block-level (BR) folds always run the scalar combine chain.
    map_batch: MapBatchFn | None = None
    reduce_batch: ReduceBatchFn | None = None

    #: Bytes of read-only constant data (e.g. KMeans centroids, String
    #: Match's keyword) visible to every task via the ``const`` accessor.
    const_bytes: bytes | None = None

    #: Stage record *values* (resp. *keys*) into shared memory?  Both
    #: default to True; Matrix Multiplication sets ``stage_values``
    #: False because its row/column vectors dwarf the input area
    #: ("only the indices ... can be staged", Section IV-C).
    stage_values: bool = True
    stage_keys: bool = True

    #: Shared-memory working area per thread ("storage of temporary
    #: variables used in Map/Reduce computation", Section III-B).
    working_bytes_per_thread: int = 16

    #: Input:output split of the staging space (Section III-B).
    io_ratio: float = 0.5

    #: ALU cycles charged per record and per traced word access.
    cycles_per_record: float = 24.0
    cycles_per_access: float = 6.0

    #: Output-capacity multipliers (over-provisioning for the
    #: single-pass appendable buffers).
    out_bytes_factor: float = 4.0
    out_records_factor: float = 12.0

    @property
    def has_reduce(self) -> bool:
        return self.reduce_record is not None or self.combine is not None

    def validate(self) -> None:
        if not callable(self.map_record):
            raise FrameworkError("map_record must be callable")
        if self.map_batch is not None and not callable(self.map_batch):
            raise FrameworkError("map_batch must be callable")
        if self.reduce_batch is not None and not callable(self.reduce_batch):
            raise FrameworkError("reduce_batch must be callable")
        if self.combine is not None and self.finalize is None:
            raise FrameworkError("block-level reduction needs a finalize fn")
        if not 0.05 <= self.io_ratio <= 0.95:
            raise FrameworkError("io_ratio must be in [0.05, 0.95]")

    def output_capacity(self, inp: KeyValueSet | None, *, payload: int, count: int
                        ) -> tuple[int, int, int]:
        """Capacity of the appendable output buffers for an input of
        ``payload`` bytes and ``count`` records."""
        cap = int(self.out_bytes_factor * payload) + (1 << 16)
        recs = int(self.out_records_factor * count) + 4096
        return cap, cap, recs


def run_map_only(*args, **kwargs):
    """Convenience re-export; see :func:`repro.framework.job.run_job`."""
    from .job import run_job  # local import to avoid a cycle

    return run_job(*args, **kwargs)
