"""Input staging: tiling the input and the cooperative stage-in copy.

Section III-A, "Staging in": *all* threads of a block cooperate on
moving a contiguous slice of the input — key bytes, value bytes and
the two directory arrays, each a contiguous segment of its global
buffer — into the shared-memory input area.  Threads see the slice as
raw bytes, so neighbouring lanes always move neighbouring words and
every transaction is coalesced.

Tiles are planned host-side by greedy packing against the input-area
capacity (the framework's stage-in loop performs the same linear scan
on-device; planning it up front is a documented simplification that
moves no data and charges no fewer transactions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.config import WARP_SIZE
from ..gpu.kernel import WarpCtx
from ..errors import FrameworkError
from .layout import SmemLayout
from .records import DIR_ENTRY, DeviceRecordSet


@dataclass(frozen=True, slots=True)
class Tile:
    """A contiguous range of input records processed in one iteration."""

    start: int
    count: int

    @property
    def end(self) -> int:
        return self.start + self.count


@dataclass(slots=True)
class StagedTile:
    """Where a tile's pieces landed in shared memory."""

    tile: Tile
    keys_off: int
    vals_off: int
    key_dir_off: int
    val_dir_off: int
    #: Global base offsets of the staged slices (for address mapping:
    #: ``smem_off = smem_base + (global_off - g_base)``).
    g_key_base: int
    g_val_base: int
    #: Precomputed shared-minus-global deltas, so per-record address
    #: mapping on the replay hot path is a single addition.
    key_delta: int = field(init=False, repr=False)
    val_delta: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.key_delta = self.keys_off - self.g_key_base
        self.val_delta = self.vals_off - self.g_val_base


def plan_tiles_staged(
    layout: SmemLayout,
    key_sizes: list[int],
    val_sizes: list[int],
    *,
    stage_values: bool = True,
    stage_keys: bool = True,
) -> list[Tile]:
    """Greedy tile packing for input-staging modes (SI/SIO).

    When ``stage_values`` / ``stage_keys`` is false (Matrix
    Multiplication: "only the indices for a row/column vector can be
    staged into shared memory", Section IV-C), those bytes do not
    count against the input area.
    """
    n = len(key_sizes)
    ks = key_sizes if stage_keys else [0] * n
    vs = val_sizes if stage_values else [0] * n
    key_sizes = ks
    tiles: list[Tile] = []
    start = 0
    while start < n:
        fit = layout.records_fit(key_sizes, vs, start)
        if fit == 0:
            raise FrameworkError(
                f"record {start} alone exceeds the input area "
                f"({layout.input_bytes} B); raise io_ratio or block size"
            )
        tiles.append(Tile(start, fit))
        start += fit
    return tiles


def plan_tiles_unstaged(
    n_records: int, threads_per_block: int, rounds_per_tile: int = 1
) -> list[Tile]:
    """Fixed-size tiles for modes reading input straight from global."""
    per_tile = max(WARP_SIZE, threads_per_block * rounds_per_tile)
    return [
        Tile(start, min(per_tile, n_records - start))
        for start in range(0, n_records, per_tile)
    ]


def stage_in(
    ctx: WarpCtx,
    layout: SmemLayout,
    inp: DeviceRecordSet,
    tile: Tile,
    *,
    stage_values: bool = True,
    stage_keys: bool = True,
):
    """Cooperatively copy one tile into the shared-memory input area.

    Every warp moves an equal contiguous chunk of the combined
    (keys + values + directories) byte range: bulk coalesced reads
    from global, bulk writes to shared.  Returns the
    :class:`StagedTile` describing the resulting layout.  Caller must
    barrier afterwards before any warp consumes staged data.
    """
    first, last = tile.start, tile.end - 1
    k0 = inp.gmem.read_u32(inp.key_dir_addr + DIR_ENTRY * first)
    klast_off = inp.gmem.read_u32(inp.key_dir_addr + DIR_ENTRY * last)
    klast_len = inp.gmem.read_u32(inp.key_dir_addr + DIR_ENTRY * last + 4)
    ktot = (klast_off + klast_len - k0) if stage_keys else 0
    v0 = inp.gmem.read_u32(inp.val_dir_addr + DIR_ENTRY * first)
    vlast_off = inp.gmem.read_u32(inp.val_dir_addr + DIR_ENTRY * last)
    vlast_len = inp.gmem.read_u32(inp.val_dir_addr + DIR_ENTRY * last + 4)
    vtot = (vlast_off + vlast_len - v0) if stage_values else 0
    dir_bytes = DIR_ENTRY * tile.count

    st = StagedTile(
        tile=tile,
        keys_off=layout.input_off,
        vals_off=layout.input_off + ktot,
        key_dir_off=layout.input_off + ktot + vtot,
        val_dir_off=layout.input_off + ktot + vtot + dir_bytes,
        g_key_base=inp.keys_addr + k0,
        g_val_base=inp.vals_addr + v0,
    )
    total = ktot + vtot + 2 * dir_bytes
    if total > layout.input_bytes:
        raise FrameworkError(
            f"tile needs {total} B but input area has {layout.input_bytes} B"
        )

    # Chunked cooperative copy: warp w moves chunk w of each segment.
    nw = ctx.warps_per_block
    w = ctx.warp_id
    segments = [
        (inp.keys_addr + k0, st.keys_off, ktot),
        (inp.vals_addr + v0, st.vals_off, vtot),
        (inp.key_dir_addr + DIR_ENTRY * first, st.key_dir_off, dir_bytes),
        (inp.val_dir_addr + DIR_ENTRY * first, st.val_dir_off, dir_bytes),
    ]
    for g_addr, s_off, size in segments:
        if size == 0:
            continue
        chunk = (size + nw - 1) // nw
        lo = min(w * chunk, size)
        hi = min(lo + chunk, size)
        if hi > lo:
            data = yield from ctx.gread(g_addr + lo, hi - lo)
            yield from ctx.swrite(s_off + lo, data)
    return st
