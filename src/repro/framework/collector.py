"""Hierarchical result collection and overflow handling (Section III-D).

Two collection paths exist:

* **Staged path** (modes SO/SIO): results emitted by a warp in one
  generation step form a *warp result*.  Its structured portion (one
  key-index and one value-index entry per record) is appended from the
  **left** end of the shared-memory output area; its unstructured
  key/value bytes are reserved from the **right** end (the
  double-ended stack of Figure 4(b)).  The first lane performs the two
  reservations atomically (shared-memory atomics); the lanes then copy
  their records in parallel, offsets coming from an in-warp prefix sum
  (no sync needed: lockstep).  When a new warp result does not fit,
  the block *flushes*: one leader reserves global space for **all**
  collected warp results with one set of global atomics, then every
  warp drains warp results cooperatively with coalesced writes — this
  amortisation is precisely why output staging relieves the atomic
  contention of the direct path.

* **Direct path** (modes G/GT/SI): each warp writes its own results
  straight to global memory.  To avoid per-thread atomics, "only the
  first thread of each warp atomically increases the output size in
  global memory by the total size of all output records from its warp,
  calculated through in-warp prefix summing" (Section IV-C); the
  reserved range is broadcast through shared memory.  The three global
  tail counters remain the serialisation point — the bottleneck the
  paper measures for Word Count and String Match.

Implementation note on atomicity: the simulator executes kernel code
*eagerly between yields*, so any check-then-reserve sequence written
without an intervening ``yield`` is atomic in simulated time; the
matching instruction descriptors are yielded immediately afterwards to
charge the cost.  Interleaving across warps can only happen at yield
points, which is where the protocol below is (and must be) re-entrant.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from itertools import accumulate, chain

import numpy as np

from ..errors import FrameworkError
from ..gpu.instructions import AtomicShared, GlobalWrite, SharedRead, SharedWrite
from ..gpu.kernel import WarpCtx
from .layout import OUT_DIR_PER_RECORD, WARP_RESULT_HEADER, SmemLayout
from .prefix_sum import _scan_ops, exclusive_scan

# Frozen op singletons for the fixed-size flag/broadcast charges on the
# collection hot path (yielding a shared instance skips a dataclass
# construction per flag write).
_SW_FLAG = SharedWrite(nbytes=4)
_SW_EPOCH = SharedWrite(nbytes=36)
_SW_BCAST = SharedWrite(nbytes=12)
_SR_BCAST = SharedRead(nbytes=12)
from .records import OutputBuffers
from .sync import poll_interval

#: One output-directory entry: ``(key_off, key_len, val_off, val_len)``.
_DIR4 = struct.Struct("<4I")
_DIR2 = struct.Struct("<2I")

#: Whole-directory packers, one per record count: packing a warp
#: result's directory in a single C call beats per-record pack+join.
_DIR_STRUCTS: dict[int, struct.Struct] = {}


def _dir_struct(nwords: int) -> struct.Struct:
    st = _DIR_STRUCTS.get(nwords)
    if st is None:
        st = struct.Struct(f"<{nwords}I")
        _DIR_STRUCTS[nwords] = st
    return st

# Control-word offsets inside the layout's flags area.
OVF = 0  # 0 = none, 1 = overflow flush, 2 = final flush
ARRIVE = 4
RESERVE_READY = 8
WR_TAKEN = 12
DONE = 16
EPOCH = 20
COMPUTE_DONE = 24
LEFT_USED = 28
RIGHT_USED = 32
WR_COUNT = 36


@dataclass(slots=True)
class WarpResult:
    """One warp's simultaneously-generated records, resident in smem."""

    warp_id: int
    keys: list[bytes]
    vals: list[bytes]
    key_bytes: int
    val_bytes: int
    #: Shared-memory offsets of this result's data (right end) and
    #: directory entries (left end).
    data_off: int = 0
    dir_off: int = 0
    #: Derived layout sizes, precomputed once at construction (these
    #: are read several times per result on the collection hot path).
    count: int = field(init=False, default=0)
    left_bytes: int = field(init=False, default=0)
    right_bytes: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.count = len(self.keys)
        self.left_bytes = WARP_RESULT_HEADER + OUT_DIR_PER_RECORD * self.count
        self.right_bytes = self.key_bytes + self.val_bytes


@dataclass
class CollectorState:
    """Python-side mirror of the output area (authoritative bytes live
    in shared memory; this tracks structure for flushing)."""

    layout: SmemLayout
    out: OutputBuffers
    n_warps: int
    n_compute: int
    yield_sync: bool = True
    warp_results: list[WarpResult] = field(default_factory=list)
    #: Per-flush reservation offsets assigned by the leader.
    flush_offsets: list[tuple[int, int, int]] = field(default_factory=list)
    flushes: int = 0
    overflow_flushes: int = 0


def init_collector(ctx: WarpCtx, state: CollectorState) -> None:
    """Zero the control words (called by the leader warp, untimed setup)."""
    smem = ctx.smem
    base = state.layout.flags_off
    for off in (OVF, ARRIVE, RESERVE_READY, WR_TAKEN, DONE, COMPUTE_DONE,
                LEFT_USED, RIGHT_USED, WR_COUNT):
        smem.write_u32(base + off, 0)
    ck = ctx.checker
    if ck is not None:
        # The whole flags area (per-warp flag words + control words)
        # is synchronisation state, not data, for the race detector.
        ck.declare_sync_range(
            ctx.block_id, base, state.layout.working_off - base
        )
        ck.collector_opened(ctx, state)


# ----------------------------------------------------------------------
# Staged path (SO / SIO)
# ----------------------------------------------------------------------


def collect_warp_result(
    ctx: WarpCtx,
    state: CollectorState,
    keys: list[bytes],
    vals: list[bytes],
):
    """Append one warp result to the output area, flushing on overflow."""
    if not keys:
        return
    layout = state.layout
    base = layout.flags_off
    smem = ctx.smem

    key_sizes = [len(k) for k in keys]
    val_sizes = [len(v) for v in vals]
    # Inlined warp_exclusive_scan2: identical op stream, one fewer
    # generator frame for every scan step on this hot path.
    for op in _scan_ops(ctx.timing.issue_cycles):
        yield op
    kpre, ktot = exclusive_scan(key_sizes)
    vpre, vtot = exclusive_scan(val_sizes)
    wr = WarpResult(
        warp_id=ctx.warp_id, keys=keys, vals=vals, key_bytes=ktot, val_bytes=vtot
    )
    need = wr.left_bytes + wr.right_bytes
    if need > layout.output_bytes:
        raise FrameworkError(
            f"one warp result ({need} B) exceeds the whole output area "
            f"({layout.output_bytes} B); lower the block size or io_ratio"
        )

    while True:
        if smem.read_u32(base + OVF) != 0:
            # A flush is pending: join it, then retry.
            yield from participate_in_flush(ctx, state)
            continue
        left = smem.read_u32(base + LEFT_USED)
        right = smem.read_u32(base + RIGHT_USED)
        if left + right + need <= layout.output_bytes:
            # Reserve *eagerly* (atomic w.r.t. other warps: no yield
            # between check and reserve), then charge the first lane's
            # two shared-memory atomics.
            old_left = smem.atomic_add_u32(base + LEFT_USED, wr.left_bytes)
            old_right = smem.atomic_add_u32(base + RIGHT_USED, wr.right_bytes)
            smem.atomic_add_u32(base + WR_COUNT, 1)
            ck = ctx.checker
            if ck is not None:
                # Same eager step as the reserve: the cursors still
                # reflect exactly this reservation.
                ck.collector_reserved(ctx, state, wr, old_left, old_right)
            yield AtomicShared(addr=base + LEFT_USED, old=old_left)
            yield AtomicShared(addr=base + RIGHT_USED, old=old_right)
            break
        # Overflow: raise the flag in the same eager step as the
        # failed check, then participate in the flush.
        state.overflow_flushes += 1
        ctx.count("overflow_flushes")
        ctx.mark("overflow_flush", epoch=state.flushes)
        smem.write_u32(base + OVF, 1)
        yield from ctx.fence_block()
        yield _SW_FLAG
        yield from participate_in_flush(ctx, state)

    # Write the warp result into the double-ended stack.
    wr.dir_off = layout.output_off + old_left
    wr.data_off = (
        layout.output_off + layout.output_bytes - old_right - wr.right_bytes
    )
    # Batched functional writes: one contiguous data blob and one
    # directory blob (byte coverage identical to per-record writes).
    smem.write(wr.data_off, b"".join(chain.from_iterable(zip(keys, vals))))
    smem.write_u32(wr.dir_off, wr.count)
    smem.write_u32(wr.dir_off + 4, wr.right_bytes)
    dir_blob = _dir_struct(4 * len(keys)).pack(
        *chain.from_iterable(zip(kpre, key_sizes, vpre, val_sizes))
    )
    smem.write(wr.dir_off + WARP_RESULT_HEADER, dir_blob)
    # Parallel copy by the warp's lanes: one shared write step for the
    # data, one for the directory entries.
    yield SharedWrite(nbytes=wr.right_bytes)
    yield SharedWrite(nbytes=WARP_RESULT_HEADER + OUT_DIR_PER_RECORD * wr.count)
    state.warp_results.append(wr)


def request_final_flush(ctx: WarpCtx, state: CollectorState):
    """Called by the last compute warp once all rounds have finished."""
    base = state.layout.flags_off
    smem = ctx.smem
    while smem.read_u32(base + OVF) != 0:
        yield from participate_in_flush(ctx, state)
    ctx.mark("final_flush", epoch=state.flushes)
    smem.write_u32(base + OVF, 2)  # eager: same step as the ==0 check
    yield from ctx.fence_block()
    yield _SW_FLAG
    yield from participate_in_flush(ctx, state)


def wait_loop(ctx: WarpCtx, state: CollectorState):
    """Helper warps (and early-finished compute warps) park here.

    Polls the overflow flag — with the yield discipline measured in
    Figure 8 — joining every flush until the final one completes.
    """
    base = state.layout.flags_off
    smem = ctx.smem
    interval = poll_interval(ctx, state.yield_sync)
    while True:
        yield from ctx.poll(smem.flag_checker(base + OVF, 0, negate=True), interval)
        final = smem.read_u32(base + OVF) == 2
        yield from participate_in_flush(ctx, state)
        if final:
            return


def participate_in_flush(ctx: WarpCtx, state: CollectorState):
    """The block-cooperative stage-out step (Figure 3, Section III-D).

    All ``n_warps`` warps pass through here once per flush epoch.  The
    *last* warp to arrive acts as the leader (timing-equivalent to the
    paper's "first thread of the block", which also runs only once all
    warps reached the flush): it totals the collected warp results,
    advances the three global tail counters with one atomic each, and
    publishes the reserved bases.  Warps then drain warp results via a
    shared-memory ticket counter, each flushed with coalesced global
    writes; the last warp to finish resets the output area and bumps
    the epoch.
    """
    layout = state.layout
    base = layout.flags_off
    smem = ctx.smem
    out = state.out
    epoch0 = smem.read_u32(base + EPOCH)

    my = smem.atomic_add_u32(base + ARRIVE, 1)
    yield AtomicShared(addr=base + ARRIVE, old=my)
    if my == state.n_warps - 1:
        # Leader: reserve global space for every collected warp result.
        wrs = state.warp_results
        yield from ctx.compute(4 * len(wrs) + 8)
        ktot = sum(w.key_bytes for w in wrs)
        vtot = sum(w.val_bytes for w in wrs)
        rtot = sum(w.count for w in wrs)
        kbase, vbase, rbase = yield from ctx.atomic_add_global_multi(
            [(out.key_tail, ktot), (out.val_tail, vtot), (out.rec_count, rtot)]
        )
        out.check_reservation(kbase + ktot, vbase + vtot, rbase + rtot)
        ck = ctx.checker
        if ck is not None:
            ck.collector_flush_reserved(ctx, state, wrs, ktot, vtot, rtot)
        offs = []
        ko, vo, ro = kbase, vbase, rbase
        for w in wrs:
            offs.append((ko, vo, ro))
            ko += w.key_bytes
            vo += w.val_bytes
            ro += w.count
        state.flush_offsets = offs
        yield from ctx.fence_block()
        smem.write_u32(base + RESERVE_READY, 1)
        yield _SW_FLAG
    else:
        yield from ctx.poll(
            smem.flag_checker(base + RESERVE_READY, 1),
            ctx.timing.poll_interval_spin,
        )

    # Drain warp results cooperatively (one ticket per warp result).
    while True:
        idx = smem.atomic_add_u32(base + WR_TAKEN, 1)
        yield AtomicShared(addr=base + WR_TAKEN, old=idx)
        if idx >= len(state.warp_results):
            break
        yield from _flush_one(ctx, state, idx)

    d = smem.atomic_add_u32(base + DONE, 1)
    yield AtomicShared(addr=base + DONE, old=d)
    if d == state.n_warps - 1:
        # Last finisher: reset the output area for the next epoch.
        state.warp_results.clear()
        state.flush_offsets = []
        state.flushes += 1
        ctx.count("flushes")
        ctx.mark("flush_done", epoch=state.flushes)
        for off in (OVF, ARRIVE, RESERVE_READY, WR_TAKEN, DONE,
                    LEFT_USED, RIGHT_USED, WR_COUNT):
            smem.write_u32(base + off, 0)
        smem.write_u32(base + EPOCH, epoch0 + 1)
        ck = ctx.checker
        if ck is not None:
            ck.collector_flush_reset(ctx, state)
        yield _SW_EPOCH
        yield from ctx.fence_block()
    else:
        yield from ctx.poll(
            smem.flag_checker(base + EPOCH, epoch0, negate=True),
            ctx.timing.poll_interval_spin,
        )


def _flush_one(ctx: WarpCtx, state: CollectorState, idx: int):
    """Copy one warp result from shared to global memory, coalesced."""
    wr = state.warp_results[idx]
    kbase, vbase, rbase = state.flush_offsets[idx]
    out = state.out
    ck = ctx.checker
    if ck is not None:
        ck.collector_flush_one(ctx, state, wr, kbase, vbase, rbase)
    # Read the warp result out of shared memory (data + directory)...
    yield SharedRead(nbytes=wr.right_bytes + OUT_DIR_PER_RECORD * wr.count)
    payload = ctx.smem.read(wr.data_off, wr.right_bytes)
    kblob = b"".join(wr.keys)
    vblob = b"".join(wr.vals)
    if len(payload) != len(kblob) + len(vblob):
        raise FrameworkError("output area corruption: warp result size mismatch")
    # ...and write its blobs contiguously (coalesced within one warp
    # result, as Section III-B notes).
    gmem = ctx.gmem
    if kblob:
        gmem.write(out.keys_addr + kbase, kblob)
        yield GlobalWrite(addr=out.keys_addr + kbase, nbytes=len(kblob))
    if vblob:
        gmem.write(out.vals_addr + vbase, vblob)
        yield GlobalWrite(addr=out.vals_addr + vbase, nbytes=len(vblob))
    klens = list(map(len, wr.keys))
    vlens = list(map(len, wr.vals))
    koffs = list(accumulate(klens[:-1], initial=kbase))
    voffs = list(accumulate(vlens[:-1], initial=vbase))
    st2n = _dir_struct(2 * len(klens))
    kdir = st2n.pack(*chain.from_iterable(zip(koffs, klens)))
    vdir = st2n.pack(*chain.from_iterable(zip(voffs, vlens)))
    gmem.write(out.key_dir_addr + 8 * rbase, kdir)
    gmem.write(out.val_dir_addr + 8 * rbase, vdir)
    yield GlobalWrite(addr=out.key_dir_addr + 8 * rbase, nbytes=len(kdir))
    yield GlobalWrite(addr=out.val_dir_addr + 8 * rbase, nbytes=len(vdir))


# ----------------------------------------------------------------------
# Direct path (G / GT / SI)
# ----------------------------------------------------------------------


def direct_emit_warp(
    ctx: WarpCtx,
    out: OutputBuffers,
    keys: list[bytes],
    vals: list[bytes],
):
    """Warp-aggregated direct write to global memory (Section IV-C)."""
    if not keys:
        return
    key_sizes = [len(k) for k in keys]
    val_sizes = [len(v) for v in vals]
    # Inlined warp_exclusive_scan2: identical op stream, one fewer
    # generator frame for every scan step on this hot path.
    for op in _scan_ops(ctx.timing.issue_cycles):
        yield op
    kpre, ktot = exclusive_scan(key_sizes)
    vpre, vtot = exclusive_scan(val_sizes)
    n = len(keys)

    # First lane: the three tail reservations, issued together.
    kbase, vbase, rbase = yield from ctx.atomic_add_global_multi(
        [(out.key_tail, ktot), (out.val_tail, vtot), (out.rec_count, n)]
    )
    out.check_reservation(kbase + ktot, vbase + vtot, rbase + n)
    # Broadcast the bases through shared memory.
    yield _SW_BCAST
    yield _SR_BCAST

    # Lanes store their records; the reserved ranges are contiguous so
    # the stores coalesce within the warp.
    yield from ctx.gwrite(out.keys_addr + kbase, b"".join(keys))
    yield from ctx.gwrite(out.vals_addr + vbase, b"".join(vals))
    kdir = np.zeros(2 * n, dtype="<u4")
    vdir = np.zeros(2 * n, dtype="<u4")
    for i in range(n):
        kdir[2 * i], kdir[2 * i + 1] = kbase + kpre[i], key_sizes[i]
        vdir[2 * i], vdir[2 * i + 1] = vbase + vpre[i], val_sizes[i]
    ctx.gmem.write_u32_array(out.key_dir_addr + 8 * rbase, kdir)
    ctx.gmem.write_u32_array(out.val_dir_addr + 8 * rbase, vdir)
    yield GlobalWrite(addr=out.key_dir_addr + 8 * rbase, nbytes=kdir.nbytes)
    yield GlobalWrite(addr=out.val_dir_addr + 8 * rbase, nbytes=vdir.nbytes)
