"""``repro.framework`` — the paper's shared-memory-staging MapReduce
framework for the simulated GPU.

Public surface::

    from repro.framework import (
        MapReduceSpec, MemoryMode, ReduceStrategy, KeyValueSet, run_job,
    )

    result = run_job(spec, input_kvs, mode=MemoryMode.SIO,
                     strategy=ReduceStrategy.TR)
    print(result.timings.as_dict(), len(result.output))
"""

from .api import Emit, MapReduceSpec
from .bitonic import BitonicResult, bitonic_sort_device
from .global_sync import GlobalBarrier, max_resident_blocks
from .pipeline import IterativeJob, IterativeResult
from .autotune import TuningChoice, TuningReport, autotune, probe_workload, suggest
from .job import JobResult, PhaseTimings, run_job
from .layout import SmemLayout, plan_layout
from .modes import ALL_MODES, MemoryMode, ReduceStrategy, effective_reduce_mode
from .partition import RolePartition, partition_warps
from .records import DeviceRecordSet, KeyValueSet, OutputBuffers
from .shuffle import GroupedDeviceSet, ShuffleResult, shuffle
from .streaming import BatchTrace, StreamedResult, run_streamed_job, split_batches
from .sync import WaitSignal

__all__ = [
    "ALL_MODES",
    "TuningChoice",
    "TuningReport",
    "autotune",
    "probe_workload",
    "suggest",
    "DeviceRecordSet",
    "Emit",
    "GroupedDeviceSet",
    "JobResult",
    "KeyValueSet",
    "MapReduceSpec",
    "MemoryMode",
    "OutputBuffers",
    "PhaseTimings",
    "ReduceStrategy",
    "RolePartition",
    "ShuffleResult",
    "StreamedResult",
    "BatchTrace",
    "run_streamed_job",
    "BitonicResult",
    "bitonic_sort_device",
    "GlobalBarrier",
    "max_resident_blocks",
    "IterativeJob",
    "IterativeResult",
    "split_batches",
    "SmemLayout",
    "WaitSignal",
    "effective_reduce_mode",
    "partition_warps",
    "plan_layout",
    "run_job",
    "shuffle",
]
