"""Iterative MapReduce driving (KMeans-style convergence loops).

Workloads like KMeans run MapReduce repeatedly, feeding each Reduce
output back into the next Map's constant region.  This module turns
the pattern from the examples into a library: an :class:`IterativeJob`
owns the loop, the per-iteration spec rewriting, the convergence test,
and the accumulated timing — so a user writes three small callbacks
instead of a driver script.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import FrameworkError
from ..gpu.config import DeviceConfig
from ..obs.tracer import NULL_TRACER, Tracer
from .api import MapReduceSpec
from .job import JobResult, PhaseTimings, run_job
from .modes import MemoryMode, ReduceStrategy
from .records import KeyValueSet

#: Build the spec for iteration ``i`` from the loop state.
SpecFn = Callable[[int, object], MapReduceSpec]

#: Fold a finished iteration's output into the next state; returns the
#: new state.
UpdateFn = Callable[[int, JobResult, object], object]

#: Decide convergence from (iteration, old_state, new_state).
ConvergedFn = Callable[[int, object, object], bool]


@dataclass
class IterationTrace:
    index: int
    cycles: float
    output_records: int
    #: Full per-phase timing breakdown of the iteration's job, so
    #: convergence loops can be profiled phase by phase (not just by
    #: total cycles).
    timings: PhaseTimings = field(default_factory=PhaseTimings)

    def phase_dict(self) -> dict[str, float]:
        return self.timings.as_dict()


@dataclass
class IterativeResult:
    state: object
    iterations: list[IterationTrace] = field(default_factory=list)
    converged: bool = False
    last: JobResult | None = None

    @property
    def total_cycles(self) -> float:
        return sum(t.cycles for t in self.iterations)

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)


@dataclass
class IterativeJob:
    """A convergence loop of MapReduce jobs.

    Example (KMeans)::

        job = IterativeJob(
            make_spec=lambda i, centroids: km_spec(centroids),
            update=lambda i, result, centroids: fold(result, centroids),
            converged=lambda i, old, new: shift(old, new) < 1e-4,
            mode=MemoryMode.SIO,
            strategy=ReduceStrategy.BR,
        )
        res = job.run(vectors_kvs, initial_centroids, max_iterations=20)
    """

    make_spec: SpecFn
    update: UpdateFn
    converged: ConvergedFn
    mode: MemoryMode = MemoryMode.SIO
    strategy: ReduceStrategy | None = ReduceStrategy.TR
    config: DeviceConfig | None = None
    threads_per_block: int = 128
    #: Execution backend for every iteration's job: ``"sim"``,
    #: ``"fast"``, an ExecutionBackend instance, or ``None`` to
    #: consult ``$REPRO_BACKEND`` (see :mod:`repro.backend`).
    backend: object | None = None
    #: Sanitizer request for every iteration's job (see
    #: :func:`repro.framework.job.run_job`'s ``check``).
    check: object | None = None
    #: Intermediate-store policy and spill budget for every
    #: iteration's job (see :func:`repro.framework.job.run_job`).
    store: str | None = None
    memory_budget: int | None = None

    def run(self, inp: KeyValueSet, initial_state: object,
            *, max_iterations: int = 32,
            tracer: Tracer | None = None) -> IterativeResult:
        if max_iterations <= 0:
            raise FrameworkError("max_iterations must be positive")
        state = initial_state
        result = IterativeResult(state=state)
        tr = tracer if tracer is not None else NULL_TRACER
        with tr.span("iterative_job", mode=self.mode.value,
                     strategy=self.strategy.value if self.strategy else None):
            for i in range(max_iterations):
                spec = self.make_spec(i, state)
                with tr.span(f"iteration[{i}]", index=i):
                    job = run_job(
                        spec, inp, mode=self.mode, strategy=self.strategy,
                        config=self.config,
                        threads_per_block=self.threads_per_block,
                        tracer=tracer, backend=self.backend,
                        check=self.check, store=self.store,
                        memory_budget=self.memory_budget,
                    )
                new_state = self.update(i, job, state)
                result.iterations.append(IterationTrace(
                    index=i, cycles=job.total_cycles,
                    output_records=len(job.output),
                    timings=job.timings,
                ))
                result.last = job
                done = self.converged(i, state, new_state)
                state = new_state
                result.state = state
                if done:
                    result.converged = True
                    tr.instant("converged", iteration=i)
                    break
        return result
