"""Software wait-signal synchronisation between warps of a block.

CUDA (of the paper's generation) offers only a block-wide barrier,
``__syncthreads()``, which hangs or is undefined when executed on
divergent paths — and compute/helper warps *are* divergent by design.
Section III-C therefore builds a wait-signal primitive out of per-warp
flag words in shared memory:

* the **signal group** raises its flags (after a
  ``__threadfence_block()`` so prior shared-memory writes are visible
  under the GPU's processor-consistency model);
* the **wait group** polls the signal flags, then raises per-warp
  *seen* flags;
* signal-group warps leave once every wait warp is in the "seen"
  state, resetting their own flags on the way out;
* the *last* wait warp to set its seen flag waits for all signal
  flags to clear and then resets the seen flags, restoring the
  primitive to its initial state for reuse.

Re-signalling a single condition back-to-back has a hazard: the
signaller can raise the next round's flag before the last waiter
observed the previous clear, so the stale *seen* flags satisfy the
new signal immediately — the signal is lost and the waiters deadlock.
:meth:`WaitSignal.signal` therefore re-arms safely: before raising
its flag, a signaller waits for all seen flags of the previous round
to clear (free on first use and whenever the previous round fully
unwound — the common case — so clean-path timing is unchanged).  The
flush workflow additionally *alternates two conditions*
(:func:`make_pair`: overflow -> handled -> overflow -> ...), exactly
the structure of the paper's Figure 3, which keeps the two directions
on disjoint flag storage.

Busy-waiting warps would otherwise compete for the MP's issue slots
with compute warps, so the paper adds a *yield* operation: a dummy
global-memory read+write that gets the polling warp swapped out for
roughly a memory round-trip.  Here that simply widens the poll
interval from :attr:`TimingParams.poll_interval_spin` to
:attr:`TimingParams.poll_interval_yield` — Figure 8 measures exactly
this knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import FrameworkError
from ..gpu.kernel import WarpCtx


def poll_interval(ctx: WarpCtx, yield_sync: bool) -> float:
    """Probe spacing for a busy-wait loop under the chosen discipline."""
    t = ctx.timing
    return t.poll_interval_yield if yield_sync else t.poll_interval_spin


@dataclass(slots=True)
class WaitSignal:
    """One reusable wait-signal condition over shared-memory flags.

    ``base_off`` points at ``2 * n_warps`` u32 flag words in shared
    memory: ``signal[w]`` then ``seen[w]``.  Group membership must be
    known in advance (Section III-C); it is fixed per instance here
    and re-derivable each input iteration by the caller.
    """

    base_off: int
    n_warps: int
    signal_group: tuple[int, ...]
    wait_group: tuple[int, ...]
    yield_sync: bool = True
    #: Absolute flag offsets, precomputed once — the poll predicates
    #: run on every probe of every busy-wait loop.
    _sig_offs: tuple[int, ...] = field(init=False, repr=False)
    _seen_offs: tuple[int, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if set(self.signal_group) & set(self.wait_group):
            raise FrameworkError("a warp cannot be in both groups")
        if not self.signal_group or not self.wait_group:
            raise FrameworkError("both groups must be non-empty")
        self._sig_offs = tuple(self._sig_off(w) for w in self.signal_group)
        self._seen_offs = tuple(self._seen_off(w) for w in self.wait_group)

    # -- flag addressing ----------------------------------------------------

    def _sig_off(self, w: int) -> int:
        return self.base_off + 4 * w

    def _seen_off(self, w: int) -> int:
        return self.base_off + 4 * (self.n_warps + w)

    def _all_signals_set(self, ctx: WarpCtx) -> bool:
        read = ctx.smem.read_u32
        return all(read(off) == 1 for off in self._sig_offs)

    def _all_signals_clear(self, ctx: WarpCtx) -> bool:
        read = ctx.smem.read_u32
        return all(read(off) == 0 for off in self._sig_offs)

    def _all_seen_set(self, ctx: WarpCtx) -> bool:
        read = ctx.smem.read_u32
        return all(read(off) == 1 for off in self._seen_offs)

    def _all_seen_clear(self, ctx: WarpCtx) -> bool:
        read = ctx.smem.read_u32
        return all(read(off) == 0 for off in self._seen_offs)

    def _register(self, ctx: WarpCtx) -> None:
        ck = ctx.checker
        if ck is not None:
            ck.register_waitsignal(ctx, self)

    # -- protocol ------------------------------------------------------------

    def signal(self, ctx: WarpCtx):
        """Called by every signal-group warp."""
        if ctx.warp_id not in self.signal_group:
            raise FrameworkError(f"warp {ctx.warp_id} is not in the signal group")
        self._register(ctx)
        # Make prior shared-memory updates visible before raising the
        # flag (processor consistency; <1% overhead per the paper).
        yield from ctx.fence_block()
        # Re-arm guard: raising the flag while a previous round's seen
        # flags are still set would satisfy this signal with stale
        # acknowledgements (lost signal) and deadlock the real waiters.
        # The eager probe is free when the flags are already clear, so
        # first use and fully-unwound reuse cost nothing extra.
        if not self._all_seen_clear(ctx):
            yield from ctx.poll(
                lambda: self._all_seen_clear(ctx),
                poll_interval(ctx, self.yield_sync),
            )
        ctx.smem.write_u32(self._sig_off(ctx.warp_id), 1)
        yield from ctx.stouch(4, write=True)
        # Wait until every wait-group warp acknowledged.  Uncontended
        # fast path: when the acknowledgements are already all up, the
        # signaller proceeds without burning a poll slot.
        if not self._all_seen_set(ctx):
            yield from ctx.poll(
                lambda: self._all_seen_set(ctx),
                poll_interval(ctx, self.yield_sync),
            )
        ctx.smem.write_u32(self._sig_off(ctx.warp_id), 0)
        yield from ctx.stouch(4, write=True)

    def wait(self, ctx: WarpCtx):
        """Called by every wait-group warp."""
        if ctx.warp_id not in self.wait_group:
            raise FrameworkError(f"warp {ctx.warp_id} is not in the wait group")
        self._register(ctx)
        # Uncontended fast path (the common case when the signal group
        # raced ahead): the flags are already up, so the waiter skips
        # the dummy-access poll and acknowledges immediately — no
        # extra simulated event.
        if not self._all_signals_set(ctx):
            yield from ctx.poll(
                lambda: self._all_signals_set(ctx),
                poll_interval(ctx, self.yield_sync),
            )
        ctx.smem.write_u32(self._seen_off(ctx.warp_id), 1)
        yield from ctx.stouch(4, write=True)
        if self._all_seen_set(ctx):
            # Last wait warp: restore initial state once the signal
            # group has observed the acknowledgement and left (skip
            # the poll when it already has).
            if not self._all_signals_clear(ctx):
                yield from ctx.poll(
                    lambda: self._all_signals_clear(ctx),
                    poll_interval(ctx, self.yield_sync),
                )
            for w in self.wait_group:
                ctx.smem.write_u32(self._seen_off(w), 0)
            yield from ctx.stouch(4 * len(self.wait_group), write=True)


def make_pair(
    *,
    base_off: int,
    n_warps: int,
    compute_warps: Sequence[int],
    helper_warps: Sequence[int],
    yield_sync: bool = True,
) -> tuple[WaitSignal, WaitSignal]:
    """The two conditions of the overflow workflow (Figure 3).

    ``overflow``: compute warps signal, helper warps wait.
    ``handled``: helper warps signal, compute warps wait.

    They use disjoint flag storage so a new overflow can be raised
    while stragglers finish leaving the previous ``handled`` round.
    """
    flags_per_cond = 8 * n_warps
    overflow = WaitSignal(
        base_off=base_off,
        n_warps=n_warps,
        signal_group=tuple(compute_warps),
        wait_group=tuple(helper_warps),
        yield_sync=yield_sync,
    )
    handled = WaitSignal(
        base_off=base_off + flags_per_cond,
        n_warps=n_warps,
        signal_group=tuple(helper_warps),
        wait_group=tuple(compute_warps),
        yield_sync=yield_sync,
    )
    return overflow, handled
