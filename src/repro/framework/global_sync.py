"""Inter-block (device-wide) synchronisation primitives.

The paper's wait-signal primitive is *intra*-block; for *inter*-block
coordination it cites Xiao & Feng's study of GPU device-wide barriers
as complementary work (Section V).  This module implements the two
classic software schemes from that line of work on the simulator:

* **atomic-counter barrier** (`gpu_sync_atomic`): every block's leader
  warp atomically increments a global counter on arrival and spins
  until it reaches the block count — simple, but all blocks hammer one
  address (the same serialisation the output-staging work avoids);
* **lock-free barrier** (`gpu_sync_lockfree`): each block sets its own
  arrival word, and block 0 polls all of them before raising a global
  release flag — no atomics, but O(grid) polling by one block.

Both require every block to be *resident* (grid <= blocks that fit on
the device at once): a waiting resident block would otherwise occupy
the slot a not-yet-started block needs — the classic deadlock these
primitives are famous for.  The helper :func:`max_resident_blocks`
computes the safe grid bound, and the barrier constructors enforce it.

These are not used by the paper's MapReduce workflow (kernel
boundaries globally synchronise its phases); they exist to support
persistent-kernel experiments and as a measured comparison in
``tests/framework/test_global_sync.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FrameworkError
from ..gpu.config import DeviceConfig
from ..gpu.kernel import WarpCtx


def max_resident_blocks(
    config: DeviceConfig, threads_per_block: int, smem_bytes: int = 0,
    regs_per_thread: int = 16,
) -> int:
    """Largest grid for which a device-wide software barrier is safe."""
    per_mp = config.blocks_per_mp(threads_per_block, smem_bytes,
                                  regs_per_thread)
    return per_mp * config.mp_count


@dataclass
class GlobalBarrier:
    """Reusable device-wide barrier state in global memory.

    Allocate once per launch with :meth:`allocate`; every block's
    *every warp* must call :meth:`sync` (warps first converge on an
    intra-block ``__syncthreads``, then warp 0 performs the
    inter-block protocol, then a second ``__syncthreads`` releases the
    block — the structure of Xiao & Feng's GPU sync).
    """

    grid: int
    counter_addr: int
    release_addr: int
    arrive_base: int
    scheme: str = "atomic"
    #: Probe spacing while spinning on the release flag.
    poll_interval: float = 28.0

    @classmethod
    def allocate(cls, device, *, grid: int, threads_per_block: int,
                 smem_bytes: int = 0, scheme: str = "atomic",
                 poll_interval: float = 28.0) -> "GlobalBarrier":
        limit = max_resident_blocks(device.config, threads_per_block,
                                    smem_bytes)
        if grid > limit:
            raise FrameworkError(
                f"grid {grid} exceeds the {limit} resident blocks a "
                "software device barrier can safely synchronise"
            )
        if scheme not in ("atomic", "lockfree"):
            raise FrameworkError(f"unknown barrier scheme {scheme!r}")
        base = device.gmem.alloc(8 + 4 * grid, "global_barrier")
        device.gmem.write(base, bytes(8 + 4 * grid))
        return cls(
            grid=grid,
            counter_addr=base,
            release_addr=base + 4,
            arrive_base=base + 8,
            scheme=scheme,
            poll_interval=poll_interval,
        )

    # ------------------------------------------------------------------

    def sync(self, ctx: WarpCtx, epoch: int):
        """Device-wide barrier; ``epoch`` must count up per use."""
        gm = ctx.gmem
        yield from ctx.barrier()  # intra-block convergence first
        if ctx.warp_id == 0:
            if self.scheme == "atomic":
                old = yield from ctx.atomic_add_global(self.counter_addr, 1)
                if old == epoch * self.grid + self.grid - 1:
                    # Last block: raise the release flag.
                    gm.write_u32(self.release_addr, epoch + 1)
                    yield from ctx.gwrite(self.release_addr, b"")
                else:
                    yield from ctx.poll(
                        lambda: gm.read_u32(self.release_addr) > epoch,
                        self.poll_interval,
                    )
            else:  # lock-free
                gm.write_u32(self.arrive_base + 4 * ctx.block_id, epoch + 1)
                yield from ctx.gwrite(
                    self.arrive_base + 4 * ctx.block_id, b""
                )
                if ctx.block_id == 0:
                    def all_arrived() -> bool:
                        return all(
                            gm.read_u32(self.arrive_base + 4 * b) > epoch
                            for b in range(self.grid)
                        )

                    yield from ctx.poll(all_arrived, self.poll_interval)
                    # Reads of the whole arrival array while polling.
                    yield from ctx.gtouch_read(
                        [(self.arrive_base, 4 * self.grid)]
                    )
                    gm.write_u32(self.release_addr, epoch + 1)
                    yield from ctx.gwrite(self.release_addr, b"")
                else:
                    yield from ctx.poll(
                        lambda: gm.read_u32(self.release_addr) > epoch,
                        self.poll_interval,
                    )
        yield from ctx.barrier()  # fan the release back out
