"""Thread-role partitioning: compute warps vs. helper warps.

Section III-C: "threads within a block are partitioned into compute
threads, which carry out Map/Reduce computation, and helper threads,
which remain idle during computation but cooperatively handle result
overflows.  To avoid warp divergence, we divide them between warps...
As the concurrency may not be a multiple of the warp size, we increase
the number of compute threads to the nearest multiple of the warp
size."

The partitioning is (re)computed at the end of each input staging
operation, because the number of staged records — and hence the
useful concurrency — varies per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FrameworkError
from ..gpu.config import WARP_SIZE
from .modes import MemoryMode


@dataclass(frozen=True)
class RolePartition:
    """Warp-role assignment for one input iteration."""

    compute_warps: tuple[int, ...]
    helper_warps: tuple[int, ...]

    @property
    def compute_threads(self) -> int:
        return WARP_SIZE * len(self.compute_warps)

    def role_of(self, warp_id: int) -> str:
        return "compute" if warp_id in self.compute_warps else "helper"


def partition_warps(
    *,
    n_warps: int,
    concurrency: int,
    mode: MemoryMode,
) -> RolePartition:
    """Split a block's warps into compute and helper roles.

    ``concurrency`` is the number of records available this iteration
    (staged records for SI/SIO; the block's round quota otherwise).

    Rules:

    * Modes that stage output (SO/SIO) always keep **at least one
      helper warp** for overflow handling — the cost the paper calls
      out for MM with 64-thread blocks, where "they have to leave a
      warp of 32 threads as helper threads, which halves the threads
      available for computation".
    * Other modes have no helpers (no intra-block sync needed).
    * Compute warps are rounded *up* to cover ``concurrency``; the
      last compute warp may be partially idle.
    """
    if n_warps < 1:
        raise FrameworkError("a block needs at least one warp")
    if mode.stages_output and n_warps < 2:
        raise FrameworkError(
            f"{mode.value} mode needs >= 2 warps per block (>= 64 threads): "
            "one warp must be reserved as helpers for overflow handling"
        )
    max_compute = n_warps - 1 if mode.stages_output else n_warps
    needed = max(1, (max(0, concurrency) + WARP_SIZE - 1) // WARP_SIZE)
    n_compute = min(max_compute, needed)
    return RolePartition(
        compute_warps=tuple(range(n_compute)),
        helper_warps=tuple(range(n_compute, n_warps)),
    )
