"""Key/value record sets and their device memory layout.

Mars and this framework share the same structure-of-arrays layout
(Section II-B / III-B): a *record set* is four device buffers —

* ``keys``    — all key bytes, concatenated;
* ``vals``    — all value bytes, concatenated;
* ``key_dir`` — per record ``(offset, length)`` of its key, 8 bytes;
* ``val_dir`` — per record ``(offset, length)`` of its value.

:class:`KeyValueSet` is the host-side container (plain Python bytes),
:class:`DeviceRecordSet` the device-resident image with addresses into
simulator global memory.  Directories are ``uint32`` little-endian,
matching what the staging copies move byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import FrameworkError
from ..gpu.memory import GlobalMemory

#: Bytes per directory entry (offset u32 + length u32).
DIR_ENTRY = 8

#: Bytes of directory data per record (key entry + value entry).
DIR_PER_RECORD = 2 * DIR_ENTRY


class KeyValueSet:
    """An ordered collection of ``(key: bytes, value: bytes)`` records."""

    __slots__ = ("_keys", "_vals")

    def __init__(self, records: Iterable[tuple[bytes, bytes]] = ()):
        self._keys: list[bytes] = []
        self._vals: list[bytes] = []
        for k, v in records:
            self.append(k, v)

    def append(self, key: bytes, value: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)) or not isinstance(
            value, (bytes, bytearray)
        ):
            raise FrameworkError("keys and values must be bytes")
        self._keys.append(bytes(key))
        self._vals.append(bytes(value))

    def append_unchecked(self, key: bytes, value: bytes) -> None:
        """Hot-path append: both arguments must already be ``bytes``
        (not bytearray/memoryview) — no validation, no copy."""
        self._keys.append(key)
        self._vals.append(value)

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        return iter(zip(self._keys, self._vals))

    def __getitem__(self, i: int) -> tuple[bytes, bytes]:
        return self._keys[i], self._vals[i]

    def __eq__(self, other) -> bool:
        if not isinstance(other, KeyValueSet):
            return NotImplemented
        return self._keys == other._keys and self._vals == other._vals

    @property
    def keys(self) -> Sequence[bytes]:
        return self._keys

    @property
    def values(self) -> Sequence[bytes]:
        return self._vals

    @property
    def key_bytes(self) -> int:
        return sum(map(len, self._keys))

    @property
    def val_bytes(self) -> int:
        return sum(map(len, self._vals))

    @property
    def total_bytes(self) -> int:
        """Payload plus directory footprint."""
        return self.key_bytes + self.val_bytes + DIR_PER_RECORD * len(self)

    def sorted_by_key(self) -> "KeyValueSet":
        order = sorted(range(len(self)), key=lambda i: self._keys[i])
        out = KeyValueSet()
        for i in order:
            out.append(self._keys[i], self._vals[i])
        return out

    def record_stats(self) -> dict:
        """Mean/stddev of key and value sizes (Table II inputs)."""
        ks = np.array([len(k) for k in self._keys], dtype=float)
        vs = np.array([len(v) for v in self._vals], dtype=float)
        if len(ks) == 0:
            return {"key_mean": 0.0, "key_std": 0.0, "val_mean": 0.0, "val_std": 0.0}
        return {
            "key_mean": float(ks.mean()),
            "key_std": float(ks.std()),
            "val_mean": float(vs.mean()),
            "val_std": float(vs.std()),
        }


@dataclass
class DeviceRecordSet:
    """A record set resident in simulator global memory."""

    gmem: GlobalMemory
    count: int
    keys_addr: int
    keys_size: int
    vals_addr: int
    vals_size: int
    key_dir_addr: int
    val_dir_addr: int

    # ------------------------------------------------------------------
    # Host <-> device
    # ------------------------------------------------------------------

    @classmethod
    def upload(
        cls, gmem: GlobalMemory, kvs: KeyValueSet, label: str = "in"
    ) -> "DeviceRecordSet":
        """Copy a host record set into global memory (SoA layout)."""
        n = len(kvs)
        keys_blob = b"".join(kvs.keys)
        vals_blob = b"".join(kvs.values)
        key_dir = np.zeros(2 * n, dtype="<u4")
        val_dir = np.zeros(2 * n, dtype="<u4")
        off = 0
        for i, k in enumerate(kvs.keys):
            key_dir[2 * i] = off
            key_dir[2 * i + 1] = len(k)
            off += len(k)
        off = 0
        for i, v in enumerate(kvs.values):
            val_dir[2 * i] = off
            val_dir[2 * i + 1] = len(v)
            off += len(v)

        keys_addr = gmem.alloc(max(1, len(keys_blob)), f"{label}.keys")
        vals_addr = gmem.alloc(max(1, len(vals_blob)), f"{label}.vals")
        kd_addr = gmem.alloc(max(4, key_dir.nbytes), f"{label}.key_dir")
        vd_addr = gmem.alloc(max(4, val_dir.nbytes), f"{label}.val_dir")
        gmem.write(keys_addr, keys_blob)
        gmem.write(vals_addr, vals_blob)
        gmem.write_u32_array(kd_addr, key_dir)
        gmem.write_u32_array(vd_addr, val_dir)
        return cls(
            gmem=gmem,
            count=n,
            keys_addr=keys_addr,
            keys_size=len(keys_blob),
            vals_addr=vals_addr,
            vals_size=len(vals_blob),
            key_dir_addr=kd_addr,
            val_dir_addr=vd_addr,
        )

    def download(self) -> KeyValueSet:
        """Copy the record set back to the host.

        Vectorized: both directories come back as one array read each,
        and payloads are sliced out of a single blob copy per buffer —
        the per-record ``read_u32``/``read`` round trips dominated the
        host-side cost of every job before this.
        """
        out = KeyValueSet()
        n = self.count
        if n == 0:
            return out
        kd = self.gmem.read_u32_array(self.key_dir_addr, 2 * n)
        vd = self.gmem.read_u32_array(self.val_dir_addr, 2 * n)
        ko, kl = kd[0::2], kd[1::2]
        vo, vl = vd[0::2], vd[1::2]
        if (
            int((ko + kl).max()) > self.keys_size
            or int((vo + vl).max()) > self.vals_size
        ):
            # Degenerate directory (entries past the recorded payload
            # size): fall back to bounds-checked per-record reads.
            for i in range(n):
                o, ln, o2, ln2 = self.dir_entry(i)
                out.append(
                    self.gmem.read(self.keys_addr + o, ln),
                    self.gmem.read(self.vals_addr + o2, ln2),
                )
            return out
        kblob = bytes(self.gmem.view(self.keys_addr, self.keys_size))
        vblob = bytes(self.gmem.view(self.vals_addr, self.vals_size))
        keys = out._keys
        vals = out._vals
        for o, ln, o2, ln2 in zip(
            ko.tolist(), kl.tolist(), vo.tolist(), vl.tolist()
        ):
            keys.append(kblob[o : o + ln])
            vals.append(vblob[o2 : o2 + ln2])
        return out

    # ------------------------------------------------------------------
    # Per-record access
    # ------------------------------------------------------------------

    def dir_entry(self, i: int) -> tuple[int, int, int, int]:
        """``(key_off, key_len, val_off, val_len)`` of record ``i``."""
        if not 0 <= i < self.count:
            raise FrameworkError(f"record index {i} out of range [0,{self.count})")
        ko = self.gmem.read_u32(self.key_dir_addr + DIR_ENTRY * i)
        kl = self.gmem.read_u32(self.key_dir_addr + DIR_ENTRY * i + 4)
        vo = self.gmem.read_u32(self.val_dir_addr + DIR_ENTRY * i)
        vl = self.gmem.read_u32(self.val_dir_addr + DIR_ENTRY * i + 4)
        return ko, kl, vo, vl

    def key_bytes_of(self, i: int) -> bytes:
        ko, kl, _, _ = self.dir_entry(i)
        return self.gmem.read(self.keys_addr + ko, kl)

    def val_bytes_of(self, i: int) -> bytes:
        _, _, vo, vl = self.dir_entry(i)
        return self.gmem.read(self.vals_addr + vo, vl)

    @property
    def payload_bytes(self) -> int:
        return self.keys_size + self.vals_size

    @property
    def total_bytes(self) -> int:
        return self.payload_bytes + DIR_PER_RECORD * self.count


@dataclass
class OutputBuffers:
    """Appendable device output buffers with atomic tail counters.

    The single-pass design (Section II-B, last paragraph): output
    regions are over-provisioned, and three 32-bit tail counters in
    global memory are advanced with ``atomicAdd`` — one for key bytes,
    one for value bytes, one for the record count.  These three hot
    words are exactly the contention point the output-staging modes
    exist to relieve.
    """

    gmem: GlobalMemory
    keys_addr: int
    keys_cap: int
    vals_addr: int
    vals_cap: int
    key_dir_addr: int
    val_dir_addr: int
    dir_cap_records: int
    #: Addresses of the three tail counters.
    key_tail: int
    val_tail: int
    rec_count: int

    @classmethod
    def allocate(
        cls,
        gmem: GlobalMemory,
        *,
        key_capacity: int,
        val_capacity: int,
        record_capacity: int,
        label: str = "out",
    ) -> "OutputBuffers":
        keys_addr = gmem.alloc(max(1, key_capacity), f"{label}.keys")
        vals_addr = gmem.alloc(max(1, val_capacity), f"{label}.vals")
        kd = gmem.alloc(max(4, DIR_ENTRY * record_capacity), f"{label}.key_dir")
        vd = gmem.alloc(max(4, DIR_ENTRY * record_capacity), f"{label}.val_dir")
        ctrs = gmem.alloc(12, f"{label}.tails")
        gmem.write(ctrs, bytes(12))
        return cls(
            gmem=gmem,
            keys_addr=keys_addr,
            keys_cap=key_capacity,
            vals_addr=vals_addr,
            vals_cap=val_capacity,
            key_dir_addr=kd,
            val_dir_addr=vd,
            dir_cap_records=record_capacity,
            key_tail=ctrs,
            val_tail=ctrs + 4,
            rec_count=ctrs + 8,
        )

    def check_reservation(self, key_end: int, val_end: int, rec_end: int) -> None:
        """Fail loudly if an atomic reservation ran past capacity."""
        if key_end > self.keys_cap or val_end > self.vals_cap or (
            rec_end > self.dir_cap_records
        ):
            raise FrameworkError(
                "output buffer overflow: reserve to "
                f"(keys={key_end}/{self.keys_cap}, vals={val_end}/"
                f"{self.vals_cap}, recs={rec_end}/{self.dir_cap_records}); "
                "raise the output capacity factor"
            )

    def as_record_set(self) -> DeviceRecordSet:
        """Freeze the appended output into a readable record set."""
        return DeviceRecordSet(
            gmem=self.gmem,
            count=self.gmem.read_u32(self.rec_count),
            keys_addr=self.keys_addr,
            keys_size=self.gmem.read_u32(self.key_tail),
            vals_addr=self.vals_addr,
            vals_size=self.gmem.read_u32(self.val_tail),
            key_dir_addr=self.key_dir_addr,
            val_dir_addr=self.val_dir_addr,
        )
