"""Table II: MapReduce workload characteristics, paper vs measured.

Measures record-size statistics and in:out record-count ratios from
the generated corpora and the reference Map/Shuffle/Reduce, printing
each workload's measured row under the paper's row.
"""

import pytest

from conftest import run_once
from repro.analysis.report import render_table2
from repro.analysis.tables import measure_table2_row
from repro.workloads import ALL_WORKLOADS


@pytest.mark.parametrize("cls", ALL_WORKLOADS, ids=lambda c: c().code)
def test_table2_row(benchmark, cls, size, scale):
    wl = cls()
    row = run_once(
        benchmark, lambda: measure_table2_row(wl, size, scale=scale)
    )
    print("\n" + render_table2([row]))

    # Shape checks against the paper's Table II.
    if wl.code == "WC":
        assert abs(row.input_key.mean - 32.44) < 5
        assert 1 / row.map_ratio > 3          # ~5 words per line
        assert row.reduce_ratio > 2
    elif wl.code == "SM":
        assert abs(row.input_key.mean - 44.52) < 5
        assert 2.5 < row.map_ratio < 6        # paper: 3.83:1
    elif wl.code == "II":
        assert row.input_key.mean == 8.0
        assert 5 < row.map_ratio < 12         # paper: 7.94:1
        assert row.output_val.mean == 8.0
    elif wl.code == "KM":
        assert row.input_key.mean == 0.0
        assert row.input_val.mean == 32.0
        assert abs(row.map_ratio - 1.0) < 0.01
    elif wl.code == "MM":
        assert row.output_key.mean == 8.0     # the (i, j) pair
        assert row.output_val.mean == 4.0     # one float
