"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but quantifications of its design
parameters:

* the input:output shared-memory split (Section III-B's workload-
  dependent ratio — the paper's future-work autotuning target);
* atomic-unit serialisation cost (the hardware property that makes
  output staging worthwhile at all);
* warp-aggregated vs per-record reservation in the direct path
  (Section IV-C's in-warp prefix-summing optimisation);
* memory-level parallelism of the record-scan replay.
"""

import pytest

from conftest import run_once
from repro.analysis.figures import run_map_kernel
from repro.framework.modes import MemoryMode
from repro.gpu import DeviceConfig
from repro.workloads import InvertedIndex, WordCount


def test_ablation_io_ratio(benchmark, size, scale):
    """Sweep the input/output split for WC under SIO.

    The trade-off of Section III-B: more input area = more concurrent
    records; more output area = fewer overflow flushes."""
    cfg = DeviceConfig.gtx280()
    results = {}

    def run():
        for ratio in (0.15, 0.3, 0.5, 0.7):
            st = run_map_kernel(
                WordCount(), MemoryMode.SIO, size=size, scale=scale,
                config=cfg, threads_per_block=128, io_ratio=ratio,
            )
            results[ratio] = (st.cycles, st.extra.get("overflow_flushes", 0))
        return results

    run_once(benchmark, run)
    print("\nio_ratio -> (cycles, overflow flushes):")
    for ratio, (cyc, ovf) in results.items():
        print(f"  {ratio:.2f}: {cyc:>10.0f} cycles, {ovf} overflows")
    # More output space must mean fewer overflow flushes.
    assert results[0.15][1] <= results[0.7][1]


def test_ablation_atomic_cost(benchmark, size, scale):
    """G-mode WC map time vs atomic serialisation cost.

    At low cost the single-pass design is nearly free; at GT200-like
    cost the tail counters dominate — exactly why the paper stages
    output."""
    results = {}

    def run():
        for svc in (8.0, 40.0, 160.0, 640.0):
            cfg = DeviceConfig.gtx280().with_timing(atomic_service_cycles=svc)
            st = run_map_kernel(
                WordCount(), MemoryMode.G, size=size, scale=scale,
                config=cfg, threads_per_block=128,
            )
            results[svc] = st.cycles
        return results

    run_once(benchmark, run)
    print("\natomic service cycles -> G-mode WC Map cycles:")
    for svc, cyc in results.items():
        print(f"  {svc:>6.0f}: {cyc:>10.0f}")
    assert results[640.0] > 2 * results[8.0]


def test_ablation_warp_aggregation(benchmark, size, scale):
    """Warp-aggregated reservations vs per-record atomics.

    The framework's direct path reserves once per warp result
    (Section IV-C).  Compare the atomic counts against the naive
    scheme's lower bound to show the 32x traffic reduction."""
    cfg = DeviceConfig.gtx280()
    holder = {}

    def run():
        st = run_map_kernel(WordCount(), MemoryMode.G, size=size, scale=scale,
                            config=cfg, threads_per_block=128)
        holder["st"] = st
        return st

    run_once(benchmark, run)
    st = holder["st"]
    emitted = st.extra.get("emitted", None)
    atomics_per_result_bound = st.atomics_global
    print(f"\nwarp-aggregated path: {st.atomics_global} global atomics")
    print("naive per-record path would need 3 atomics per record "
          "(up to 32x more).")
    assert st.atomics_global > 0


def test_ablation_memory_parallelism(benchmark, size, scale):
    """Record-scan MLP: dependent loads (1) vs unrolled streams (8).

    II's long value scans are the sensitive case; this quantifies the
    modelling choice documented in DESIGN.md."""
    results = {}

    def run():
        for mlp in (1, 2, 4, 8):
            cfg = DeviceConfig.gtx280().with_timing(memory_parallelism=mlp)
            st = run_map_kernel(
                InvertedIndex(), MemoryMode.G, size=size, scale=scale,
                config=cfg, threads_per_block=128,
            )
            results[mlp] = st.cycles
        return results

    run_once(benchmark, run)
    print("\nmemory-level parallelism -> II G-mode Map cycles:")
    for mlp, cyc in results.items():
        print(f"  {mlp}: {cyc:>10.0f}")
    assert results[1] > results[8]


def test_ablation_texture_cache_size(benchmark, size, scale):
    """GT-mode sensitivity to texture-cache capacity (6-8 KB on GT200)."""
    from dataclasses import replace

    results = {}

    def run():
        for kb in (2, 8, 32):
            cfg = replace(DeviceConfig.gtx280(), texture_cache_bytes=kb * 1024)
            st = run_map_kernel(
                InvertedIndex(), MemoryMode.GT, size=size, scale=scale,
                config=cfg, threads_per_block=128,
            )
            results[kb] = (st.cycles, st.texture_hit_rate)
        return results

    run_once(benchmark, run)
    print("\ntexture cache KB -> (II GT Map cycles, hit rate):")
    for kb, (cyc, hr) in results.items():
        print(f"  {kb:>3d}KB: {cyc:>10.0f} cycles, {hr:.1%} hits")
    assert results[32][1] >= results[2][1]  # bigger cache, better hit rate


def test_ablation_fermi_architecture(benchmark, size, scale):
    """Paper Section VI future work: 'the newer GPU architecture,
    which has a global memory cache'.  Compare GT200 vs a Fermi-class
    config on the workload most sensitive to re-read traffic (II)."""
    from repro.workloads import InvertedIndex

    results = {}

    def run():
        for name, cfg in (("GT200", DeviceConfig.gtx280()),
                          ("Fermi", DeviceConfig.fermi())):
            for mode in (MemoryMode.G, MemoryMode.SI):
                st = run_map_kernel(
                    InvertedIndex(), mode, size=size, scale=scale,
                    config=cfg, threads_per_block=128,
                )
                results[(name, mode.value)] = st.cycles
        return results

    run_once(benchmark, run)
    gap_gt200 = results[("GT200", "G")] / results[("GT200", "SI")]
    gap_fermi = results[("Fermi", "G")] / results[("Fermi", "SI")]
    print("\nII Map G/SI gap: GT200 %.2fx vs Fermi(L2) %.2fx" %
          (gap_gt200, gap_fermi))
    for k, v in results.items():
        print(f"  {k[0]:6s} {k[1]:3s}: {v:>10.0f} cycles")
    # The cache narrows the staging advantage — the trend that made
    # GPU MapReduce staging frameworks obsolete.
    assert gap_fermi < gap_gt200


def test_ablation_streaming_overlap(benchmark, size, scale):
    """Paper Section III-A: 'it is possible to overlap GPU kernel
    execution with host-device data transfer' — quantify the batched
    double-buffering win."""
    from repro.framework.streaming import run_streamed_job
    from repro.workloads import WordCount

    wl = WordCount()
    inp = wl.generate(size, seed=0, scale=scale)
    spec = wl.spec_for_size(size, seed=0, scale=scale)
    holder = {}

    def run():
        s = run_streamed_job(spec, inp, n_batches=4, mode=MemoryMode.SIO,
                             config=DeviceConfig.gtx280())
        holder["s"] = s
        return s

    run_once(benchmark, run)
    s = holder["s"]
    print(f"\nstreamed WC Map: serial {s.serial_map_io:.0f} vs pipelined "
          f"{s.pipelined_map_io:.0f} cycles "
          f"({s.overlap_saving:.0f} saved by overlap)")
    assert s.overlap_saving > 0
