"""Figure 5(f)-(i): Reduce kernel time for WC and KM under TR and BR.

Reproduces the four reduce panels: WC-TR, WC-BR, KM-TR, KM-BR, across
the applicable memory modes (GT is impossible for BR; SI falls back to
G under TR, SIO to SO).
"""

import pytest

from conftest import run_once
from repro.analysis.figures import fig5_reduce_sweep
from repro.analysis.report import render_reduce_sweep
from repro.framework.modes import ReduceStrategy
from repro.workloads import KMeans, WordCount

BLOCKS = (64, 128, 256)


def sweep(benchmark, workload, strategy, size, scale, config):
    res = run_once(
        benchmark,
        lambda: fig5_reduce_sweep(
            workload, strategy, size=size, scale=scale, config=config,
            block_sizes=BLOCKS,
        ),
    )
    print("\n" + render_reduce_sweep(res))
    return res


def test_fig5f_wc_tr(benchmark, size, scale, config):
    res = sweep(benchmark, WordCount(), ReduceStrategy.TR, size, scale, config)
    # G/GT work best; SO's staging brings no benefit for reduce.
    assert res.series["SO"][1] >= res.series["G"][1]


def test_fig5g_wc_br(benchmark, size, scale, config):
    res = sweep(benchmark, WordCount(), ReduceStrategy.BR, size, scale, config)
    # Texture cannot back BR kernels (coherence).
    assert all(v is None for v in res.series["GT"])
    # WC values are 4-byte ints: already coalesced, so SI gains little.
    assert res.series["SI"][1] > 0.6 * res.series["G"][1]


def test_fig5h_km_tr(benchmark, size, scale, config):
    res = sweep(benchmark, KMeans(), ReduceStrategy.TR, size, scale, config)
    # KM has few key sets: TR parallelism is limited and flat-ish.
    g = res.series["G"]
    assert g[2] > 0.5 * g[0]


def test_fig5i_km_br(benchmark, size, scale, config):
    res = sweep(benchmark, KMeans(), ReduceStrategy.BR, size, scale, config)
    # The paper's KM-BR headline: staging input wins (~2.25x over G)
    # because the wide vectors span many 128-byte segments under G.
    assert res.series["G"][1] / res.series["SI"][1] > 1.3


def test_fig5_tr_br_crossover(benchmark, size, scale, config):
    """TR wins with many small key sets (vocabulary-rich WC), BR with
    few large ones (KM) — Section IV-E's agreement with [11]."""
    out = {}

    def run():
        from repro.framework.modes import MemoryMode

        rich = WordCount(vocabulary_size=8192)
        for name, wl in (("WC", rich), ("KM", KMeans())):
            for strat in (ReduceStrategy.TR, ReduceStrategy.BR):
                res = fig5_reduce_sweep(
                    wl, strat, size=size, scale=scale, config=config,
                    block_sizes=(128,), modes=(MemoryMode.G,),
                )
                out[(name, strat.value)] = res.series["G"][0]
        return out

    run_once(benchmark, run)
    print("\nTR/BR crossover (G mode, 128 thr/blk): "
          + ", ".join(f"{k[0]}-{k[1]}={v:.0f}" for k, v in out.items()))
    assert out[("WC", "TR")] < out[("WC", "BR")]
    assert out[("KM", "BR")] < out[("KM", "TR")]
