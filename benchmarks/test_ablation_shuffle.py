"""Ablation: sort-based vs hash-based shuffle (the MapCG extension).

The paper's related-work section notes MapCG's gain over Mars came
largely "from building a hash table in the Map phase and replacing
sorting with hash table lookups, which can be leveraged in our
framework in the future" — this bench quantifies that option on our
framework.
"""

import pytest

from conftest import run_once
from repro.framework import MemoryMode, ReduceStrategy, run_job
from repro.workloads import KMeans, WordCount


@pytest.mark.parametrize("cls", [WordCount, KMeans], ids=lambda c: c().code)
def test_ablation_shuffle_method(benchmark, cls, size, scale, config):
    wl = cls()
    inp = wl.generate(size, seed=0, scale=scale)
    spec = wl.spec_for_size(size, seed=0, scale=scale)
    results = {}

    def run():
        for method in ("sort", "hash"):
            r = run_job(spec, inp, mode=MemoryMode.SIO,
                        strategy=ReduceStrategy.TR, config=config,
                        threads_per_block=128, shuffle_method=method)
            results[method] = r.timings
        return results

    run_once(benchmark, run)
    print(f"\n{wl.code} shuffle phase: sort={results['sort'].shuffle:.0f} "
          f"cycles, hash={results['hash'].shuffle:.0f} cycles "
          f"(end-to-end {results['sort'].total:.0f} vs "
          f"{results['hash'].total:.0f})")
    # Functional output is method-independent; cost differs.
    assert results["sort"].map == results["hash"].map
    assert results["sort"].shuffle != results["hash"].shuffle
