"""Figure 7: Map/Reduce kernel speedup of each memory mode over Mars.

The paper's findings encoded as assertions:

* G vs Mars averages ~1.1x with a max of ~2x — and is *negative*
  (below 1) for Word Count, where the two-pass scheme beats the
  atomic-contended single pass;
* SIO beats Mars on Map kernels (paper: 1.3x-3.73x, avg 2.67x);
* G beats Mars on the Reduce kernels.
"""

import pytest

from conftest import run_once
from repro.analysis.figures import fig7_speedup_over_mars
from repro.analysis.report import render_speedups
from repro.workloads import (
    ALL_WORKLOADS,
    InvertedIndex,
    KMeans,
    StringMatch,
    WordCount,
)


@pytest.mark.parametrize("cls", ALL_WORKLOADS, ids=lambda c: c().code)
def test_fig7_workload(benchmark, cls, size, scale, config):
    wl = cls()
    rows = run_once(
        benchmark,
        lambda: fig7_speedup_over_mars(wl, size=size, scale=scale,
                                       config=config),
    )
    print("\n" + render_speedups(rows))
    map_row = next(r for r in rows if r.phase == "map")
    if wl.code == "WC":
        # Negative speedup: atomics bottleneck the single-pass G.
        assert map_row.speedups["G"] < 1.0
        assert map_row.speedups["SIO"] > 1.3
    if wl.code in ("II", "KM"):
        # Where G is not atomic-bound, avoiding the second pass wins.
        assert map_row.speedups["G"] > 1.0
    if wl.has_reduce:
        red = next(r for r in rows if r.phase == "reduce")
        assert red.speedups["G"] > 1.0  # G reduce beats Mars reduce


def test_fig7_sio_average(benchmark, size, scale, config):
    gains = []

    def run():
        for cls in ALL_WORKLOADS:
            rows = fig7_speedup_over_mars(cls(), size=size, scale=scale,
                                          config=config)
            map_row = next(r for r in rows if r.phase == "map")
            gains.append((cls().code, map_row.speedups["SIO"]))
        return gains

    run_once(benchmark, run)
    avg = sum(g for _, g in gains) / len(gains)
    print("\nSIO Map speedup over Mars: "
          + ", ".join(f"{c}={g:.2f}x" for c, g in gains)
          + f" | avg {avg:.2f}x (paper: 2.67x, range 1.3-3.73x)")
    assert avg > 1.2
