"""Table I: workloads and problem sizes.

Regenerates the inventory table and times input generation for every
workload at the benchmarked size (the generators are part of the
reproduced system: they must reproduce Table II's record statistics,
checked by the Table II bench).
"""

import pytest

from conftest import run_once
from repro.analysis.report import render_table1
from repro.analysis.tables import table1
from repro.workloads import ALL_WORKLOADS


def test_table1_renders(benchmark):
    workloads = [cls() for cls in ALL_WORKLOADS]
    text = run_once(benchmark, lambda: render_table1(table1(workloads)))
    print("\n" + text)
    assert "Word Count" in text and "KMeans" in text


@pytest.mark.parametrize("cls", ALL_WORKLOADS, ids=lambda c: c().code)
def test_generate_workload(benchmark, cls, size, scale):
    wl = cls()
    inp = run_once(benchmark, lambda: wl.generate(size, seed=0, scale=scale))
    stats = inp.record_stats()
    print(f"\n{wl.code} {size}: {len(inp)} records, "
          f"key {stats['key_mean']:.1f}±{stats['key_std']:.1f} B, "
          f"val {stats['val_mean']:.1f}±{stats['val_std']:.1f} B")
    assert len(inp) > 0
