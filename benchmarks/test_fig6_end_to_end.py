"""Figure 6: end-to-end execution-time breakdown, Mars vs all modes.

For each workload, runs the complete job (I/O + Map + Shuffle +
Reduce) under Mars and the five memory modes, printing the stacked
breakdown the paper plots.  Shape checks: the framework beats Mars
end-to-end on average (paper: G +34 %, SIO +64 %), with the gain
dampened by the shared shuffle and I/O portions.
"""

import pytest

from conftest import run_once
from repro.analysis.figures import fig6_end_to_end
from repro.analysis.report import render_end_to_end
from repro.workloads import (
    ALL_WORKLOADS,
    InvertedIndex,
    KMeans,
    MatrixMultiplication,
    StringMatch,
    WordCount,
)


@pytest.mark.parametrize("cls", ALL_WORKLOADS, ids=lambda c: c().code)
def test_fig6_workload(benchmark, cls, size, scale, config):
    wl = cls()
    rows = run_once(
        benchmark,
        lambda: fig6_end_to_end(wl, sizes=(size,), scale=scale, config=config),
    )
    print("\n" + render_end_to_end(rows))
    by = {r.system: r.timings for r in rows}
    assert "Mars" in by and "SIO" in by
    # Shared phases really are shared.
    assert by["Mars"].io_in == by["G"].io_in
    if wl.has_reduce:
        assert by["Mars"].shuffle == pytest.approx(by["G"].shuffle, rel=0.01)


def test_fig6_average_totals(benchmark, size, scale, config):
    """Average end-to-end comparison across all workloads."""
    ratios = {"G": [], "SIO": []}

    def run():
        for cls in ALL_WORKLOADS:
            rows = fig6_end_to_end(
                cls(), sizes=(size,), scale=scale, config=config
            )
            by = {r.system: r.timings.total for r in rows}
            for mode in ("G", "SIO"):
                if mode in by:
                    ratios[mode].append(by["Mars"] / by[mode])
        return ratios

    run_once(benchmark, run)
    avg_g = sum(ratios["G"]) / len(ratios["G"])
    avg_sio = sum(ratios["SIO"]) / len(ratios["SIO"])
    print(f"\nend-to-end speedup over Mars: G avg {avg_g:.2f}x "
          f"(paper: ~1.34x), SIO avg {avg_sio:.2f}x (paper: ~1.64x)")
    # SIO end-to-end must beat both Mars and G on average.
    assert avg_sio > 1.0
    assert avg_sio > avg_g * 0.95
