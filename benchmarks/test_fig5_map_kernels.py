"""Figure 5(a)-(e): Map kernel time across memory-usage modes.

For each of the five workloads, sweeps the Map kernel over
G/GT/SI/SO/SIO x thread-block sizes and prints the cycle table that
corresponds to the paper's bar groups.  Shape assertions encode the
per-workload findings of Section IV-D.
"""

import pytest

from conftest import at_least_medium, run_once
from repro.analysis.figures import fig5_map_sweep
from repro.analysis.report import render_map_sweep
from repro.workloads import (
    InvertedIndex,
    KMeans,
    MatrixMultiplication,
    StringMatch,
    WordCount,
)

BLOCKS = (64, 128, 256)


def sweep(benchmark, workload, size, scale, config, blocks=BLOCKS):
    res = run_once(
        benchmark,
        lambda: fig5_map_sweep(
            workload, size=size, scale=scale, config=config,
            block_sizes=blocks,
        ),
    )
    print("\n" + render_map_sweep(res))
    return res


def test_fig5a_wordcount(benchmark, size, scale, config):
    res = sweep(benchmark, WordCount(), size, scale, config)
    # Output staging relieves the atomic bottleneck: SO > 2x over G.
    assert res.speedup("SO", "G", 128) > 2.0
    assert res.best_mode(128) in ("SO", "SIO")


def test_fig5b_matrixmul(benchmark, size, scale, config):
    res = sweep(benchmark, MatrixMultiplication(), size, scale, config)
    # All modes close; the workload is memory-bound.
    vals = [res.series[m][1] for m in ("G", "SI", "SO", "SIO")]
    assert max(vals) / min(vals) < 2.5


def test_fig5c_stringmatch(benchmark, size, scale, config):
    res = sweep(benchmark, StringMatch(), at_least_medium(size), scale, config)
    assert res.speedup("SIO", "G", 128) > 1.5


def test_fig5d_invertedindex(benchmark, size, scale, config):
    res = sweep(benchmark, InvertedIndex(), size, scale, config)
    # II benefits significantly and solely from staging input.
    assert res.speedup("SI", "G", 128) > 1.7
    assert res.speedup("SIO", "G", 128) > 1.7


def test_fig5e_kmeans(benchmark, size, scale, config):
    res = sweep(benchmark, KMeans(), at_least_medium(size), scale, config)
    # SO alone brings nothing for KM; SIO/SI carry the benefit.
    assert res.speedup("SO", "G", 128) < 1.3
    assert res.speedup("SIO", "SO", 256) > 1.0


def test_fig5_headline_average(benchmark, size, scale, config):
    """The paper's headline: SIO averages 2.85x over G (max 7.5x)."""
    gains = []

    def run():
        for wl in (WordCount(), StringMatch(), InvertedIndex(), KMeans(),
                   MatrixMultiplication()):
            res = fig5_map_sweep(
                wl, size=at_least_medium(size), scale=scale, config=config,
                block_sizes=(128,),
            )
            gains.append((wl.code, res.speedup("SIO", "G", 128)))
        return gains

    run_once(benchmark, run)
    avg = sum(g for _, g in gains) / len(gains)
    print("\nSIO speedup over G per workload: "
          + ", ".join(f"{c}={g:.2f}x" for c, g in gains))
    print(f"average: {avg:.2f}x (paper: 2.85x, max 7.5x)")
    assert 1.5 < avg < 8.0
    assert max(g for _, g in gains) < 12.0
