"""Figure 8: yield vs never-yield busy waiting in the SIO Map kernels.

The paper's wait-signal primitive lets idle helper warps *yield* via a
dummy global-memory access so they stop stealing issue slots from
compute warps.  Figure 8 reports the SIO Map kernel improvement of
yielding over spinning: between -1.2 % and 13 %, appearing from 128
threads/block and growing with block size, largest for II (long
computation phases), absent for MM (which fetches from global anyway).
"""

import pytest

from conftest import at_least_medium, run_once
from repro.analysis.figures import fig8_yield_sweep
from repro.analysis.report import render_yield
from repro.workloads import (
    InvertedIndex,
    KMeans,
    MatrixMultiplication,
    StringMatch,
    WordCount,
)

BLOCKS = (64, 128, 256)


@pytest.mark.parametrize(
    "cls", [WordCount, StringMatch, InvertedIndex, KMeans],
    ids=lambda c: c().code,
)
def test_fig8_workload(benchmark, cls, size, scale, config):
    wl = cls()
    rows = run_once(
        benchmark,
        lambda: fig8_yield_sweep(wl, size=at_least_medium(size), scale=scale,
                                 config=config, block_sizes=BLOCKS),
    )
    print("\n" + render_yield(rows))
    big = [r for r in rows if r.block_size >= 128]
    if wl.code == "SM":
        # Documented deviation (EXPERIMENTS.md): SM's compute phases
        # are so short that the yielded helpers' flush wake-up latency
        # outweighs the saved issue slots in our model; the paper
        # found SM within its -1.2%..13% band.
        assert all(r.improvement_pct > -25.0 for r in rows)
    else:
        # The benefit "starts to appear after there are 128 threads
        # within a block".
        assert max(r.improvement_pct for r in big) > -2.0
        assert all(r.improvement_pct > -25.0 for r in rows)


def test_fig8_improvement_band(benchmark, size, scale, config):
    """Aggregate the band across workloads (paper: -1.2 %..13 %)."""
    all_rows = []

    def run():
        for cls in (WordCount, StringMatch, InvertedIndex, KMeans):
            all_rows.extend(
                fig8_yield_sweep(cls(), size=at_least_medium(size),
                                 scale=scale, config=config,
                                 block_sizes=(128, 256))
            )
        return all_rows

    run_once(benchmark, run)
    lo = min(r.improvement_pct for r in all_rows)
    hi = max(r.improvement_pct for r in all_rows)
    print(f"\nyield improvement band at >=128 thr/blk: "
          f"{lo:+.1f}% .. {hi:+.1f}% (paper: -1.2% .. +13%)")
    assert lo > -20.0  # SM deviation documented in EXPERIMENTS.md
    assert hi > 0.0
