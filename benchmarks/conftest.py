"""Shared configuration for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and
prints the rendered result (captured into ``bench_output.txt`` by the
top-level run command), while pytest-benchmark records the wall-clock
cost of the simulation itself.

Environment knobs:

``REPRO_BENCH_SIZE``
    Problem size for figure benches: small (default) / medium / large.
``REPRO_SCALE``
    Float multiplier applied on top of the named size (e.g. 4.0 moves
    a 256 KB "large" toward the paper's megabyte corpora).
``REPRO_MPS``
    Simulate this many MPs instead of the GTX 280's 30.
"""

import os

import pytest

from repro.gpu import DeviceConfig


def bench_size() -> str:
    return os.environ.get("REPRO_BENCH_SIZE", "small")


def bench_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def bench_config() -> DeviceConfig:
    mps = int(os.environ.get("REPRO_MPS", "0"))
    return DeviceConfig.small(mps) if mps else DeviceConfig.gtx280()


@pytest.fixture(scope="session")
def size() -> str:
    return bench_size()


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def config() -> DeviceConfig:
    return bench_config()


_SIZE_ORDER = {"small": 0, "medium": 1, "large": 2}


def at_least_medium(size: str) -> str:
    """Some claims are contention effects that vanish on tiny inputs;
    their benches run at >= medium regardless of REPRO_BENCH_SIZE."""
    return size if _SIZE_ORDER[size] >= 1 else "medium"


def run_once(benchmark, fn):
    """Deterministic multi-second simulations: one round, one iteration."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
