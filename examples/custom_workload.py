#!/usr/bin/env python
"""Write your own MapReduce workload: per-host log sessionisation.

Shows the full public API surface a downstream user touches:

* a Map function with *variable* output count (0..n emissions per
  record — the hard case the paper's framework exists to handle),
* a Reduce with non-trivial aggregation,
* a constant region (the suspicious-path list),
* correctness checking against the bundled CPU reference oracle,
* mode selection guided by measured kernel statistics.

The workload: web-server log lines ``host path status`` are mapped to
``(host, 1)`` for *error* responses on suspicious paths, then reduced
to per-host counts — a mini intrusion-detection aggregation.

Run:  python examples/custom_workload.py
"""

import struct

import numpy as np

from repro.cpu_ref import normalised, reference_job
from repro.framework import (
    KeyValueSet,
    MapReduceSpec,
    MemoryMode,
    ReduceStrategy,
    run_job,
)
from repro.gpu import DeviceConfig

SUSPICIOUS = b"/admin /wp-login.php /.env /etc/passwd"


def log_map(key, value, emit, const):
    """key = one log line; emit (host, 1) for suspicious error hits."""
    parts = key.to_bytes().split(b" ")
    if len(parts) != 3:
        return
    host, path, status = parts
    if not status.startswith(b"4"):
        return
    if const is not None and path in const.to_bytes().split(b" "):
        emit(host, struct.pack("<I", 1))


def log_reduce(key, values, emit, const):
    emit(key.to_bytes(), struct.pack("<I", sum(v.u32() for v in values)))


def make_logs(n: int, seed: int = 0) -> KeyValueSet:
    rng = np.random.default_rng(seed)
    hosts = [f"10.0.{i // 8}.{i % 8}".encode() for i in range(48)]
    paths = [b"/", b"/index.html", b"/admin", b"/wp-login.php", b"/.env",
             b"/api/v1/items", b"/etc/passwd", b"/favicon.ico"]
    statuses = [b"200", b"200", b"200", b"404", b"403", b"401"]
    out = KeyValueSet()
    for i in range(n):
        line = b" ".join([
            hosts[int(rng.integers(len(hosts)))],
            paths[int(rng.integers(len(paths)))],
            statuses[int(rng.integers(len(statuses)))],
        ])
        out.append(line, struct.pack("<I", i))
    return out


def main() -> None:
    inp = make_logs(3000)
    spec = MapReduceSpec(
        name="log_sessioniser",
        map_record=log_map,
        reduce_record=log_reduce,
        const_bytes=SUSPICIOUS,
        io_ratio=0.35,           # output-leaning: many small emissions
        cycles_per_record=28.0,
    )
    cfg = DeviceConfig.gtx280()

    # Pick a mode empirically, like the paper's evaluation does.
    candidates = {}
    for mode in (MemoryMode.G, MemoryMode.SI, MemoryMode.SIO):
        r = run_job(spec, inp, mode=mode, strategy=ReduceStrategy.TR,
                    config=cfg, threads_per_block=128)
        candidates[mode] = r
        print(f"{mode.value:4s}: map {r.timings.map:>9.0f} cycles, "
              f"{r.map_stats.atomics_global:>5d} global atomics, "
              f"reduce {r.timings.reduce:>9.0f} cycles")
    best_mode = min(candidates, key=lambda m: candidates[m].timings.map)
    best = candidates[best_mode]
    print(f"\nchosen mode: {best_mode.value}")

    # Verify against the sequential oracle — every mode must agree.
    ref = reference_job(spec, inp, ReduceStrategy.TR)
    assert normalised(best.output) == normalised(ref), "GPU != oracle!"
    print("output verified against the CPU reference oracle.")

    print("\ntop offending hosts:")
    ranked = sorted(best.output, key=lambda kv: -struct.unpack("<I", kv[1])[0])
    for host, count in ranked[:5]:
        print(f"  {host.decode():12s} {struct.unpack('<I', count)[0]} "
              "suspicious error hits")


if __name__ == "__main__":
    main()
