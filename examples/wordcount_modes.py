#!/usr/bin/env python
"""Compare the five memory-usage modes on Word Count's Map kernel.

Reproduces the heart of the paper's Figure 5(a) interactively: the
same Map kernel runs under G (no staging), GT (texture input), SI
(staged input), SO (staged output) and SIO (both), across a range of
thread-block sizes.  Watch G stay flat (atomic-contention-bound) while
SO and SIO improve with concurrency.

Run:  python examples/wordcount_modes.py [--size small|medium|large]
"""

import argparse

from repro.analysis.figures import fig5_map_sweep
from repro.analysis.report import render_map_sweep
from repro.gpu import DeviceConfig
from repro.workloads import WordCount


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--size", default="small",
                    choices=["small", "medium", "large"])
    ap.add_argument("--blocks", default="64,128,256",
                    help="comma-separated thread-block sizes")
    args = ap.parse_args()

    block_sizes = tuple(int(b) for b in args.blocks.split(","))
    res = fig5_map_sweep(
        WordCount(),
        size=args.size,
        block_sizes=block_sizes,
        config=DeviceConfig.gtx280(),
    )
    print(render_map_sweep(res))

    print("\nWhat to look for (paper Section IV-D):")
    mid = block_sizes[len(block_sizes) // 2]
    print(f"  SO  vs G at {mid} threads/block: "
          f"{res.speedup('SO', 'G', mid):.2f}x  (paper: >2x)")
    print(f"  SIO vs G at {mid} threads/block: "
          f"{res.speedup('SIO', 'G', mid):.2f}x  (paper avg across "
          "workloads: 2.85x)")
    print(f"  Best mode at {mid}: {res.best_mode(mid)}")
    g = res.series["G"]
    trend = "flat/worse" if g[-1] > 0.85 * g[0] else "improving"
    print(f"  G across block sizes: {trend} — the appendable-buffer tail "
          "counters serialise atomics, so more threads do not help.")


if __name__ == "__main__":
    main()
