#!/usr/bin/env python
"""Profile a Map kernel and visualise one block's warp timeline.

Uses the two observability tools the simulator offers beyond plain
cycle counts:

* **derived metrics** (`repro.analysis.metrics`): bandwidth
  utilisation, occupancy, atomic pressure, wait-time breakdown —
  the quantities that *explain* why SIO beats G on Word Count;
* **timeline tracing** (`repro.gpu.timeline`): an ASCII Gantt of one
  block, where you can literally see helper warps parked on polls
  ('.') while compute warps emit, then everyone converging for a
  flush.

Run:  python examples/profile_and_trace.py
"""

from repro.analysis.metrics import compare_modes, derive_metrics
from repro.framework import DeviceRecordSet, MemoryMode
from repro.framework.map_engine import build_map_runtime, launch_map, map_kernel
from repro.gpu import Device, DeviceConfig, Timeline
from repro.workloads import WordCount


def main() -> None:
    cfg = DeviceConfig.gtx280()
    wc = WordCount()
    inp = wc.generate("small", seed=0)
    spec = wc.spec()

    # ---- per-mode derived metrics -----------------------------------
    metrics = {}
    for mode in (MemoryMode.G, MemoryMode.SI, MemoryMode.SO, MemoryMode.SIO):
        dev = Device(cfg)
        d_in = DeviceRecordSet.upload(dev.gmem, inp)
        rt = build_map_runtime(dev, spec, mode, d_in, threads_per_block=128)
        st = launch_map(dev, rt)
        metrics[mode.value] = derive_metrics(st, cfg)

    print("Word Count Map kernel — who waits on what:\n")
    print(compare_modes(metrics, reference="G"))
    print("\nwait-time breakdown per mode:")
    for name, m in metrics.items():
        top = sorted(m.stall_breakdown.items(), key=lambda kv: -kv[1])[:3]
        print(f"  {name:4s}: " + ", ".join(f"{k} {v:.0%}" for k, v in top))

    # ---- timeline of one SIO block ----------------------------------
    print("\nTimeline of block 0 under SIO (note the '.' poll rows — "
          "helper warps parked by the wait-signal primitive):\n")
    dev = Device(cfg)
    d_in = DeviceRecordSet.upload(dev.gmem, inp)
    rt = build_map_runtime(dev, spec, MemoryMode.SIO, d_in,
                           threads_per_block=128)
    tl = Timeline(blocks={0})
    dev.launch(map_kernel, grid=rt.grid, block=128,
               smem_bytes=rt.layout.smem_bytes, args=(rt,), timeline=tl)
    print(tl.render(width=96))
    for b, w in tl.lanes():
        print(f"  warp {w}: {tl.utilisation(b, w):.0%} occupied")


if __name__ == "__main__":
    main()
