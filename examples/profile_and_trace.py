#!/usr/bin/env python
"""Trace a whole job with the observability layer and export it.

Runs Word Count under SIO/TR with a :class:`repro.obs.Tracer`
attached, then shows the three views the obs layer offers:

* **span tree** — the job's phases and kernels as nested spans on the
  simulated clock, with per-kernel device-event summaries;
* **profile report** — phase breakdown plus derived kernel metrics
  (bandwidth utilisation, occupancy, wait-time breakdown);
* **exports** — a Chrome/Perfetto ``trace.json`` (load it at
  https://ui.perfetto.dev: blocks/warps appear as device tracks, with
  poll-wait episodes and collector flush marks), an ``events.jsonl``,
  and a diff-able ``metrics.json``.

The same pipeline is available from the shell as ``repro-trace``.

Run:  python examples/profile_and_trace.py
"""

from pathlib import Path

from repro.framework import MemoryMode, ReduceStrategy
from repro.framework.job import run_job
from repro.gpu import DeviceConfig
from repro.obs import (
    Tracer,
    job_metrics_registry,
    render_job_profile,
    render_span_tree,
    write_chrome_trace,
    write_jsonl,
)
from repro.workloads import WordCount


def main() -> None:
    cfg = DeviceConfig.small(4)
    wc = WordCount()
    inp = wc.generate("small", seed=0)

    # Trace block 0 in detail (device events cost memory; 'blocks'
    # limits them to the lanes you actually want to look at).
    tr = Tracer(trace_blocks=frozenset({0}))
    res = run_job(
        wc.spec(), inp,
        mode=MemoryMode.SIO, strategy=ReduceStrategy.TR,
        config=cfg, tracer=tr,
    )

    print(render_job_profile(res, cfg))
    print()
    print(render_span_tree(tr))

    out = Path("trace_out")
    out.mkdir(exist_ok=True)
    write_chrome_trace(tr, out / "trace.json")
    write_jsonl(tr, out / "events.jsonl")
    reg = job_metrics_registry(res, cfg)
    (out / "metrics.json").write_text(reg.to_json(
        extra={"workload": "wordcount", "mode": "SIO", "strategy": "TR"}))
    print(f"\nwrote {out}/trace.json  (open in ui.perfetto.dev)")
    print(f"wrote {out}/events.jsonl")
    print(f"wrote {out}/metrics.json  "
          f"(diff a later run: repro-trace wordcount --baseline "
          f"{out}/metrics.json)")


if __name__ == "__main__":
    main()
