#!/usr/bin/env python
"""Iterative KMeans clustering driven through the MapReduce framework.

The paper evaluates one Map+Reduce iteration of KMeans (Table I); this
example runs the *full algorithm*: repeated MapReduce jobs where each
Reduce output (new centroids) becomes the next Map's constant region,
until the centroids converge.  It exercises block-level reduction (BR,
the strategy the paper found superior for KMeans' few-but-large key
sets) under the SIO memory mode.

Run:  python examples/kmeans_clustering.py [--n 1024] [--k 8]
"""

import argparse
import struct

import numpy as np

from repro.framework import MemoryMode, ReduceStrategy, run_job
from repro.framework.records import KeyValueSet
from repro.gpu import DeviceConfig
from repro.workloads.datagen import clustered_vectors
from repro.workloads.kmeans import DIM, VEC_BYTES, km_combine, km_finalize, km_map, km_reduce
from repro.framework.api import MapReduceSpec


def make_spec(centroids: np.ndarray) -> MapReduceSpec:
    return MapReduceSpec(
        name="kmeans_iter",
        map_record=km_map,
        reduce_record=km_reduce,
        combine=km_combine,
        finalize=km_finalize,
        const_bytes=centroids.astype("<f4").tobytes(),
        cycles_per_record=32.0,
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--n", type=int, default=1024, help="number of vectors")
    ap.add_argument("--k", type=int, default=8, help="number of clusters")
    ap.add_argument("--iters", type=int, default=8, help="max iterations")
    args = ap.parse_args()

    vecs, _good_init = clustered_vectors(args.n, dim=DIM, k=args.k, seed=42)
    # Deliberately poor initialisation: the first k input vectors.
    centroids = vecs[: args.k].copy()
    inp = KeyValueSet((b"", v.tobytes()) for v in vecs)
    cfg = DeviceConfig.gtx280()

    total_cycles = 0.0
    for it in range(args.iters):
        result = run_job(
            make_spec(centroids),
            inp,
            mode=MemoryMode.SIO,
            strategy=ReduceStrategy.BR,
            config=cfg,
            threads_per_block=128,
        )
        total_cycles += result.total_cycles
        new = centroids.copy()
        for key, val in result.output:
            cid = struct.unpack("<I", key)[0]
            new[cid] = np.frombuffer(val, dtype="<f4")
        shift = float(np.abs(new - centroids).max())
        centroids = new
        print(f"iter {it}: centroid shift = {shift:.5f}, "
              f"{result.timings.map:.0f} map + {result.timings.reduce:.0f} "
              "reduce cycles")
        if shift < 1e-4:
            print("converged.")
            break

    # Quality check: mean distance of points to their nearest centroid.
    d = np.linalg.norm(
        vecs[:, None, :] - centroids[None, :, :], axis=2
    ).min(axis=1)
    ms = cfg.timing.cycles_to_ms(total_cycles)
    print(f"\nfinal mean point-to-centroid distance: {d.mean():.4f}")
    print(f"total simulated time: {total_cycles:.0f} cycles ({ms:.2f} ms)")


if __name__ == "__main__":
    main()
