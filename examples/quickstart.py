#!/usr/bin/env python
"""Quickstart: Word Count on the simulated GPU in ~40 lines.

Demonstrates the core workflow of the reproduced framework:

1. define a Map function and a Reduce function (plain Python over
   traced ``Accessor`` views),
2. wrap them in a :class:`MapReduceSpec`,
3. run the job under a memory-usage mode from the paper
   (here SIO: input *and* output staged through shared memory),
4. inspect the output and the per-phase timing breakdown.

Run:  python examples/quickstart.py
"""

import struct

from repro.framework import KeyValueSet, MapReduceSpec, MemoryMode, ReduceStrategy, run_job
from repro.gpu import DeviceConfig

ONE = struct.pack("<I", 1)


def wc_map(key, value, emit, const):
    """Map: the key is a text line; emit (word, 1) per word."""
    for word in key.to_bytes().split(b" "):
        if word:
            emit(word, ONE)


def wc_reduce(key, values, emit, const):
    """Reduce: sum the counts of one distinct word."""
    emit(key.to_bytes(), struct.pack("<I", sum(v.u32() for v in values)))


def main() -> None:
    lines = [
        b"the quick brown fox jumps over the lazy dog",
        b"the dog barks at the quick fox",
        b"a lazy afternoon with a quick nap",
    ] * 40
    inp = KeyValueSet((ln, struct.pack("<I", i)) for i, ln in enumerate(lines))

    spec = MapReduceSpec(
        name="quickstart_wc", map_record=wc_map, reduce_record=wc_reduce
    )

    result = run_job(
        spec,
        inp,
        mode=MemoryMode.SIO,              # the paper's full design
        strategy=ReduceStrategy.TR,       # thread-level reduction
        config=DeviceConfig.gtx280(),     # the paper's testbed GPU
        threads_per_block=128,
    )

    counts = sorted(
        ((struct.unpack("<I", v)[0], k.decode()) for k, v in result.output),
        reverse=True,
    )
    print("Top words:")
    for n, w in counts[:8]:
        print(f"  {w:12s} {n}")

    t = result.timings
    ms = DeviceConfig.gtx280().timing.cycles_to_ms
    print("\nPhase breakdown (simulated):")
    for phase, cycles in t.as_dict().items():
        print(f"  {phase:8s} {cycles:>12.0f} cycles  ({ms(cycles):.3f} ms)")
    print(f"\nMap kernel used {result.map_stats.global_transactions} global "
          f"transactions, {result.map_stats.atomics_global} global atomics, "
          f"{result.map_stats.extra.get('flushes', 0)} output-area flushes.")


if __name__ == "__main__":
    main()
