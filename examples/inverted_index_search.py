#!/usr/bin/env python
"""Build an inverted link index from html, then query it — and see why
staging *input* is what matters for this workload.

Inverted Index has large, highly variable records (the paper's
Table II: 63.9 +/- 123.2 bytes) that each Map task scans end to end.
Under G those scans are scattered global reads; under SI one coalesced
stage-in feeds fast shared-memory scans.  The example runs the same
extraction under both modes, reports the speedup, then uses the
functional output as an actual queryable index.

Run:  python examples/inverted_index_search.py
"""

import struct
from collections import defaultdict

from repro.framework import MemoryMode, run_job
from repro.gpu import DeviceConfig
from repro.workloads import InvertedIndex


def main() -> None:
    ii = InvertedIndex()
    inp = ii.generate("small", seed=7)
    spec = ii.spec()
    cfg = DeviceConfig.gtx280()

    results = {}
    for mode in (MemoryMode.G, MemoryMode.SI):
        results[mode] = run_job(spec, inp, mode=mode, config=cfg,
                                threads_per_block=128)

    g, si = results[MemoryMode.G], results[MemoryMode.SI]
    print(f"html chunks scanned : {len(inp)}")
    print(f"links extracted     : {len(si.output)}")
    print(f"Map kernel, G mode  : {g.timings.map:>10.0f} cycles")
    print(f"Map kernel, SI mode : {si.timings.map:>10.0f} cycles")
    if si.timings.map:  # zero under the fast (functional) backend
        print(f"staged-input speedup: {g.timings.map / si.timings.map:.2f}x "
              "(the paper: II 'benefits significantly and solely from "
              "staging input')")
    print(f"global transactions : {g.map_stats.global_transactions} (G) vs "
          f"{si.map_stats.global_transactions} (SI)")

    # Build the index from the (url, position) records.
    index: dict[bytes, list[tuple[int, int]]] = defaultdict(list)
    for url, pos in si.output:
        doc, off = struct.unpack("<II", pos)
        index[url].append((doc, off))

    print(f"\ndistinct URLs: {len(index)}")
    print("sample postings:")
    for url in sorted(index)[:5]:
        places = ", ".join(f"doc{d}@{o}" for d, o in index[url][:3])
        print(f"  {url.decode()[:48]:50s} -> {places}")


if __name__ == "__main__":
    main()
