#!/usr/bin/env python
"""Head-to-head: the shared-memory framework vs the Mars baseline.

Reproduces the paper's Figure 6/7 story for one workload of your
choice: runs Mars (two-pass, no atomics) and the framework under G
and SIO, then prints per-phase breakdowns and kernel speedups.  For
Word Count you can watch the paper's signature inversion: single-pass
G *loses* to Mars (atomic contention costs more than a second pass),
while SIO's staged output wins decisively.

Run:  python examples/mars_comparison.py [--workload WC|MM|SM|II|KM]
"""

import argparse

from repro.framework import MemoryMode, ReduceStrategy, run_job
from repro.gpu import DeviceConfig
from repro.mars import run_mars_job
from repro.workloads import (
    InvertedIndex,
    KMeans,
    MatrixMultiplication,
    StringMatch,
    WordCount,
)

WORKLOADS = {
    "WC": WordCount,
    "MM": MatrixMultiplication,
    "SM": StringMatch,
    "II": InvertedIndex,
    "KM": KMeans,
}


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workload", default="WC", choices=sorted(WORKLOADS))
    ap.add_argument("--size", default="medium",
                    choices=["small", "medium", "large"])
    args = ap.parse_args()

    wl = WORKLOADS[args.workload]()
    inp = wl.generate(args.size, seed=0)
    spec = wl.spec_for_size(args.size, seed=0)
    strategy = ReduceStrategy.TR if wl.has_reduce else None
    cfg = DeviceConfig.gtx280()

    print(f"{wl.title} ({args.size}): {len(inp)} input records\n")
    mars = run_mars_job(spec, inp, strategy=strategy, config=cfg)
    rows = {"Mars (two-pass)": mars}
    for mode in (MemoryMode.G, MemoryMode.SIO):
        rows[f"ours {mode.value}"] = run_job(
            spec, inp, mode=mode, strategy=strategy, config=cfg
        )

    hdr = f"{'system':16s} {'io_in':>9s} {'map':>10s} {'shuffle':>10s} " \
          f"{'reduce':>10s} {'io_out':>9s} {'total':>11s}"
    print(hdr)
    print("-" * len(hdr))
    for name, r in rows.items():
        t = r.timings
        print(f"{name:16s} {t.io_in:>9.0f} {t.map:>10.0f} {t.shuffle:>10.0f} "
              f"{t.reduce:>10.0f} {t.io_out:>9.0f} {t.total:>11.0f}")

    print("\nkernel speedups over Mars:")
    for name, r in rows.items():
        if name.startswith("Mars"):
            continue
        if not r.timings.map:  # zero under the fast (functional) backend
            print(f"  {name}: n/a (no kernel timings on this backend)")
            continue
        line = f"  {name}: Map {mars.timings.map / r.timings.map:.2f}x"
        if strategy is not None:
            line += f", Reduce {mars.timings.reduce / r.timings.reduce:.2f}x"
        line += f", end-to-end {mars.timings.total / r.timings.total:.2f}x"
        print(line)

    if args.workload == "WC":
        g = rows["ours G"]
        verdict = "loses to" if g.timings.map > mars.timings.map else "beats"
        print(f"\nnote: single-pass G {verdict} two-pass Mars on the Map "
              "kernel — the paper's Figure 7 'negative speedup' effect "
              "(three appendable-buffer tail counters serialise every "
              "warp's reservation).")


if __name__ == "__main__":
    main()
