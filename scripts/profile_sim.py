"""Profile and benchmark the cycle-accurate simulator's host cost.

Two jobs, one script:

* ``--profile`` — run one simulated job under cProfile and print the
  hottest functions (tottime and cumulative), optionally dumping the
  raw pstats for ``snakeviz``/``pstats`` digging.  This is the loop
  that drove the hot-path optimization work: profile, fix the top
  entry, re-run the golden traces, repeat.
* ``--bench`` — measure best-of-N wall-clock seconds for the sim and
  fast backends over the standard wordcount/kmeans cases and emit the
  JSON consumed by ``BENCH_sim_opt.json`` / the CI perf gate.  The
  sim/fast *ratio* is recorded alongside the absolute times: absolute
  wall-clock is machine-dependent, but both backends run the same
  Python on the same machine, so the ratio is the machine-neutral
  regression signal.

Usage::

    PYTHONPATH=src python scripts/profile_sim.py --profile \\
        [--workload wordcount] [--size medium] [--top 25] [--pstats F]
    PYTHONPATH=src python scripts/profile_sim.py --bench [--repeats 5]
"""

from __future__ import annotations

import argparse
import cProfile
import json
import platform
import pstats
import sys
import time

from repro.framework.job import run_job
from repro.framework.modes import MemoryMode, ReduceStrategy
from repro.workloads import KMeans, WordCount

WORKLOADS = {"wordcount": WordCount, "kmeans": KMeans}

#: The benchmark matrix: small cases are what the CI gate re-runs
#: (fast enough for a shared runner), medium cases are the acceptance
#: evidence for the optimization PR.
CASES = [
    ("wordcount", "small"),
    ("wordcount", "medium"),
    ("kmeans", "small"),
    ("kmeans", "medium"),
]


def _job(workload: str, size: str):
    w = WORKLOADS[workload]()
    inp = w.generate(size, seed=0)
    spec = w.spec_for_size(size, seed=0)
    return spec, inp


def _run(spec, inp, backend: str) -> None:
    run_job(spec, inp, mode=MemoryMode.SIO, strategy=ReduceStrategy.TR,
            backend=backend)


def _best_of(spec, inp, backend: str, repeats: int) -> tuple[float, float]:
    """Best-of-N (wall seconds, CPU seconds).

    CPU time (``time.process_time``) is the load-immune number: the
    simulator is single-threaded and CPU-bound, so wall clock on a
    shared machine mostly measures *other* tenants.  Both are recorded;
    comparisons should prefer CPU time.
    """
    wall = cpu = float("inf")
    for _ in range(repeats):
        w0 = time.perf_counter()
        c0 = time.process_time()
        _run(spec, inp, backend)
        cpu = min(cpu, time.process_time() - c0)
        wall = min(wall, time.perf_counter() - w0)
    return wall, cpu


#: Run one case in one source tree in a *fresh subprocess*: every
#: measurement (this tree, a --compare-tree baseline, sim or fast
#: backend) goes through the identical harness, so numbers are
#: comparable and cases cannot interfere through shared heap state.
_MEASURE_CODE = """
import sys, time
sys.path.insert(0, sys.argv[1] + "/src")
from repro.framework.job import run_job
from repro.framework.modes import MemoryMode, ReduceStrategy
from repro.workloads import KMeans, WordCount
w = {"wordcount": WordCount, "kmeans": KMeans}[sys.argv[2]]()
inp = w.generate(sys.argv[3], seed=0)
spec = w.spec_for_size(sys.argv[3], seed=0)

def run():
    run_job(spec, inp, mode=MemoryMode.SIO, strategy=ReduceStrategy.TR,
            backend=sys.argv[5])

run()  # warm caches / imports / allocator
wall = cpu = float("inf")
for _ in range(int(sys.argv[4])):
    w0 = time.perf_counter(); c0 = time.process_time()
    run()
    cpu = min(cpu, time.process_time() - c0)
    wall = min(wall, time.perf_counter() - w0)
print(wall, cpu)
"""


def _measure_tree(tree: str, workload: str, size: str, repeats: int,
                  backend: str = "sim") -> tuple[float, float]:
    import subprocess

    out = subprocess.run(
        [sys.executable, "-c", _MEASURE_CODE, tree, workload, size,
         str(repeats), backend],
        capture_output=True, text=True, check=True,
    )
    wall, cpu = out.stdout.split()
    return float(wall), float(cpu)


def cmd_profile(args) -> int:
    spec, inp = _job(args.workload, args.size)
    _run(spec, inp, "sim")  # warm the analysis caches & allocator
    prof = cProfile.Profile()
    prof.enable()
    _run(spec, inp, "sim")
    prof.disable()
    if args.pstats:
        prof.dump_stats(args.pstats)
        print(f"raw profile written to {args.pstats}")
    st = pstats.Stats(prof, stream=sys.stdout)
    for order in ("tottime", "cumulative"):
        print(f"\n--- top {args.top} by {order} "
              f"({args.workload}-{args.size}, sim backend) ---")
        st.sort_stats(order).print_stats(args.top)
    return 0


def cmd_bench(args) -> int:
    import os

    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    results = []
    for workload, size in CASES:
        spec, inp = _job(workload, size)
        sim_wall, sim_cpu = _measure_tree(here, workload, size,
                                          args.repeats, "sim")
        fast_wall, fast_cpu = _measure_tree(here, workload, size,
                                            args.repeats, "fast")
        row = {
            "workload": workload,
            "size": size,
            "records": len(inp),
            "sim_wall_s": round(sim_wall, 4),
            "sim_cpu_s": round(sim_cpu, 4),
            "fast_wall_s": round(fast_wall, 4),
            "fast_cpu_s": round(fast_cpu, 4),
            "sim_over_fast": round(sim_cpu / fast_cpu, 2),
        }
        if args.compare_tree:
            base_wall, base_cpu = _measure_tree(
                args.compare_tree, workload, size, args.repeats, "sim"
            )
            row["baseline_sim_wall_s"] = round(base_wall, 4)
            row["baseline_sim_cpu_s"] = round(base_cpu, 4)
            row["speedup_cpu"] = round(base_cpu / sim_cpu, 2)
        results.append(row)
        print(f"{workload}-{size}: sim {sim_cpu:.3f}s-cpu "
              f"fast {fast_cpu:.3f}s-cpu ratio {sim_cpu / fast_cpu:.1f}"
              + (f" speedup {row['speedup_cpu']:.2f}x"
                 if "speedup_cpu" in row else ""),
              file=sys.stderr)
    doc = {
        "description": "SimBackend host cost (best of N), mode=SIO "
                       "strategy=TR, full GTX 280 config.  *_cpu_s is "
                       "time.process_time (load-immune; prefer it for "
                       "comparisons); sim_over_fast = sim_cpu/fast_cpu "
                       "is the machine-neutral signal the CI perf gate "
                       "compares; baseline_* / speedup_cpu are vs the "
                       "pre-optimization tree measured back-to-back on "
                       "the same machine (--compare-tree).",
        "repeats": args.repeats,
        "python": platform.python_version(),
        "results": results,
    }
    json.dump(doc, args.out, indent=2)
    args.out.write("\n")
    return 0


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    g = p.add_mutually_exclusive_group(required=True)
    g.add_argument("--profile", action="store_true")
    g.add_argument("--bench", action="store_true")
    p.add_argument("--workload", default="wordcount", choices=sorted(WORKLOADS))
    p.add_argument("--size", default="medium",
                   choices=["small", "medium", "large"])
    p.add_argument("--top", type=int, default=25)
    p.add_argument("--pstats", default=None, metavar="FILE")
    p.add_argument("--repeats", type=int, default=5)
    p.add_argument("--compare-tree", default=None, metavar="DIR",
                   help="also measure the sim backend in another source "
                        "tree (e.g. a worktree of the pre-optimization "
                        "commit) and record baseline_*/speedup_cpu")
    p.add_argument("--out", type=argparse.FileType("w"), default=sys.stdout)
    args = p.parse_args(argv)
    return cmd_profile(args) if args.profile else cmd_bench(args)


if __name__ == "__main__":
    sys.exit(main())
