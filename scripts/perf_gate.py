"""CI perf-regression gate for the cycle-accurate simulator.

Re-runs the *small* benchmark cases and compares the measured
sim/fast CPU-time ratio against the committed baseline in
``BENCH_sim_opt.json``.  The ratio is the machine-neutral signal: both
backends run the same Python on the same runner, so a shared-runner
slowdown cancels out, while a hot-path regression in the simulator
(whose cost the fast backend does not share) shows up directly.

Fails (exit 1) when any case's ratio exceeds its baseline by more than
``--tolerance`` (default 25%).  Improvements never fail the gate;
regenerate the baseline with::

    PYTHONPATH=src python scripts/profile_sim.py --bench \\
        --out BENCH_sim_opt.json

When the run ledger (``.repro/runs.jsonl``, see ``repro.obs.ledger``)
holds sim *and* fast runs of a case's workload over the same input,
the rolling median of their wall-time ratio becomes that case's
baseline instead of the committed JSON — recent runs on *this* runner
beat a snapshot from whatever machine regenerated the file last.
The ledger baseline is the **primary** signal and gets the sharp
``--tolerance``; when a case has no ledger history the committed
``BENCH_sim_opt.json`` ratio is only a *cross-machine* fallback, so
it gets the wider ``--bench-tolerance`` (sim/fast ratios swing tens
of percent between CPU generations and Python builds even with an
identical tree — a same-machine drift bound on a foreign snapshot
produces false failures, observed as ratio 27.5 vs limit 24.3 on an
unmodified seed tree).

The gate also holds the columnar fast path to its acceptance bar:
the fast/columnar CPU-time ratio on small kmeans must stay at or
above ``--columnar-floor`` (default 5, the bar from
``BENCH_columnar.json``).  Like sim/fast, the ratio is machine
neutral — both paths run the same Python on the same runner — so a
regression in the batch kernels or the array shuffle (whose cost the
scalar path does not share) shows up directly.

Finally the gate re-checks the committed autotuner benchmark
(``BENCH_autotune.json``, regenerated with ``repro-bench autotune``):
every tuned case must sit within its per-case bar of the best measured
fixed configuration, and the tuned total must beat every fixed
single-mode policy.  This is a pure artefact check (no re-measurement
— the benchmark is deterministic simulated cycles), so a stale or
hand-edited artefact fails loudly.

Usage::

    PYTHONPATH=src python scripts/perf_gate.py [--repeats 3]
        [--tolerance 0.25] [--bench-tolerance 0.75]
        [--baseline BENCH_sim_opt.json]
        [--ledger .repro/runs.jsonl | --no-ledger]
        [--columnar-floor 5.0 | --no-columnar]
        [--autotune-baseline BENCH_autotune.json | --no-autotune]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
sys.path.insert(0, _HERE)
sys.path.insert(0, os.path.join(_ROOT, "src"))

from profile_sim import _measure_tree  # noqa: E402


def _median(values):
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _ledger_ratios(path: str) -> dict[str, float]:
    """Per-workload sim/fast wall ratio from the run ledger.

    Only runs of the *same input* (matching ``input_digest``) are
    compared; each digest group contributes the ratio of its median
    sim wall time to its median fast wall time, and a workload's
    baseline is the median over its groups.
    """
    from repro.obs.ledger import read_ledger

    by_input: dict[tuple, dict[str, list[float]]] = {}
    for rec in read_ledger(path):
        backend = rec.get("backend")
        wall = rec.get("wall_s")
        if backend not in ("sim", "fast") or not wall:
            continue
        key = (rec.get("workload"), rec.get("input_digest"),
               rec.get("mode"), rec.get("strategy"))
        by_input.setdefault(key, {}).setdefault(backend, []).append(wall)
    ratios: dict[str, list[float]] = {}
    for (workload, _digest, _mode, _strategy), sides in by_input.items():
        if sides.get("sim") and sides.get("fast"):
            ratios.setdefault(str(workload), []).append(
                _median(sides["sim"]) / _median(sides["fast"])
            )
    return {w: _median(rs) for w, rs in ratios.items()}


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    p.add_argument("--baseline", default=os.path.join(_ROOT, "BENCH_sim_opt.json"))
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--tolerance", type=float, default=0.25,
                   help="allowed relative ratio increase over a "
                        "same-machine ledger baseline (0.25 = 25%%)")
    p.add_argument("--bench-tolerance", type=float, default=0.75,
                   help="allowed relative ratio increase over the "
                        "committed cross-machine baseline, used only "
                        "when a case has no ledger history (wider: the "
                        "snapshot was measured on a different machine)")
    p.add_argument("--ledger",
                   default=os.path.join(_ROOT, ".repro", "runs.jsonl"),
                   help="run ledger to derive per-workload baselines "
                        "from (falls back to --baseline per case)")
    p.add_argument("--no-ledger", action="store_true",
                   help="ignore the ledger; use the committed baseline "
                        "only")
    p.add_argument("--columnar-floor", type=float, default=5.0,
                   help="minimum fast/columnar CPU-time ratio on small "
                        "kmeans (the columnar acceptance bar)")
    p.add_argument("--no-columnar", action="store_true",
                   help="skip the columnar-over-fast check")
    p.add_argument("--autotune-baseline",
                   default=os.path.join(_ROOT, "BENCH_autotune.json"),
                   help="committed autotuner benchmark artefact to "
                        "gate-check")
    p.add_argument("--no-autotune", action="store_true",
                   help="skip the autotuner gate check")
    args = p.parse_args(argv)

    with open(args.baseline) as f:
        doc = json.load(f)
    cases = [r for r in doc["results"] if r["size"] == "small"]
    if not cases:
        print("perf-gate: no small cases in baseline", file=sys.stderr)
        return 2

    ledger_base = {} if args.no_ledger else _ledger_ratios(args.ledger)
    failed = False
    for row in cases:
        workload, size = row["workload"], row["size"]
        _, sim_cpu = _measure_tree(_ROOT, workload, size, args.repeats, "sim")
        _, fast_cpu = _measure_tree(_ROOT, workload, size, args.repeats, "fast")
        ratio = sim_cpu / fast_cpu
        if workload in ledger_base:
            base, source = ledger_base[workload], "ledger"
            tolerance = args.tolerance
        else:
            base, source = row["sim_over_fast"], "bench"
            tolerance = args.bench_tolerance
        limit = base * (1.0 + tolerance)
        verdict = "FAIL" if ratio > limit else "ok"
        print(f"{workload}-{size}: sim {sim_cpu:.3f}s-cpu fast "
              f"{fast_cpu:.3f}s-cpu ratio {ratio:.1f} "
              f"(baseline {base:.1f} [{source}], limit {limit:.1f}) "
              f"{verdict}")
        if ratio > limit:
            failed = True

    if not args.no_columnar:
        _, fast_cpu = _measure_tree(_ROOT, "kmeans", "small",
                                    args.repeats, "fast")
        _, col_cpu = _measure_tree(_ROOT, "kmeans", "small",
                                   args.repeats, "columnar")
        speedup = fast_cpu / col_cpu
        verdict = "FAIL" if speedup < args.columnar_floor else "ok"
        print(f"kmeans-small: fast {fast_cpu:.3f}s-cpu columnar "
              f"{col_cpu:.3f}s-cpu speedup {speedup:.1f}x "
              f"(floor {args.columnar_floor:.1f}x) {verdict}")
        if speedup < args.columnar_floor:
            print("perf-gate: columnar fast path regressed below its "
                  "acceptance bar; see BENCH_columnar.json for the "
                  "committed reference numbers.", file=sys.stderr)
            failed = True

    if not args.no_autotune:
        from repro.tune.bench import check_report

        try:
            with open(args.autotune_baseline) as f:
                autotune_doc = json.load(f)
        except OSError as exc:
            print(f"perf-gate: autotune artefact unreadable: {exc}",
                  file=sys.stderr)
            failed = True
        else:
            problems = check_report(autotune_doc)
            ncases = len(autotune_doc.get("cases", []))
            verdict = "FAIL" if problems else "ok"
            print(f"autotune: {ncases} cases, gates "
                  f"{autotune_doc.get('gates')} {verdict}")
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            if problems:
                print("perf-gate: the autotuner's committed benchmark no "
                      "longer passes its gates; regenerate with\n"
                      "  PYTHONPATH=src python -m repro.analysis.cli "
                      "autotune\nand investigate the cost model if the "
                      "fresh run still fails.", file=sys.stderr)
                failed = True

    if failed:
        print("perf-gate: simulator hot path regressed; profile with\n"
              "  PYTHONPATH=src python scripts/profile_sim.py --profile\n"
              "or, if the slowdown is intended, regenerate "
              "BENCH_sim_opt.json.", file=sys.stderr)
        return 1
    print("perf-gate: all ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
