"""CI perf-regression gate for the cycle-accurate simulator.

Re-runs the *small* benchmark cases and compares the measured
sim/fast CPU-time ratio against the committed baseline in
``BENCH_sim_opt.json``.  The ratio is the machine-neutral signal: both
backends run the same Python on the same runner, so a shared-runner
slowdown cancels out, while a hot-path regression in the simulator
(whose cost the fast backend does not share) shows up directly.

Fails (exit 1) when any case's ratio exceeds its baseline by more than
``--tolerance`` (default 25%).  Improvements never fail the gate;
regenerate the baseline with::

    PYTHONPATH=src python scripts/profile_sim.py --bench \\
        --out BENCH_sim_opt.json

Usage::

    PYTHONPATH=src python scripts/perf_gate.py [--repeats 3]
        [--tolerance 0.25] [--baseline BENCH_sim_opt.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
sys.path.insert(0, _HERE)

from profile_sim import _measure_tree  # noqa: E402


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    p.add_argument("--baseline", default=os.path.join(_ROOT, "BENCH_sim_opt.json"))
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--tolerance", type=float, default=0.25,
                   help="allowed relative ratio increase (0.25 = 25%%)")
    args = p.parse_args(argv)

    with open(args.baseline) as f:
        doc = json.load(f)
    cases = [r for r in doc["results"] if r["size"] == "small"]
    if not cases:
        print("perf-gate: no small cases in baseline", file=sys.stderr)
        return 2

    failed = False
    for row in cases:
        workload, size = row["workload"], row["size"]
        _, sim_cpu = _measure_tree(_ROOT, workload, size, args.repeats, "sim")
        _, fast_cpu = _measure_tree(_ROOT, workload, size, args.repeats, "fast")
        ratio = sim_cpu / fast_cpu
        base = row["sim_over_fast"]
        limit = base * (1.0 + args.tolerance)
        verdict = "FAIL" if ratio > limit else "ok"
        print(f"{workload}-{size}: sim {sim_cpu:.3f}s-cpu fast "
              f"{fast_cpu:.3f}s-cpu ratio {ratio:.1f} "
              f"(baseline {base:.1f}, limit {limit:.1f}) {verdict}")
        if ratio > limit:
            failed = True

    if failed:
        print("perf-gate: simulator hot path regressed; profile with\n"
              "  PYTHONPATH=src python scripts/profile_sim.py --profile\n"
              "or, if the slowdown is intended, regenerate "
              "BENCH_sim_opt.json.", file=sys.stderr)
        return 1
    print("perf-gate: all ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
