"""Regenerate the golden-trace fixture pinned by tests/golden/.

One small, fixed workload (wordcount, seed 11, scale 0.3, 2 MPs,
64-thread blocks) is run on the cycle-accurate simulator once per
memory mode — plus the Mars two-pass baseline — and its cycle counts
and kernel counters are pinned to
``tests/golden/wordcount_small.json``.  Any engine change that moves a
simulated cycle or an instruction counter shows up as a precise diff
in that file instead of as an unexplained shift in the paper figures.

Regenerate (only!) when a timing-model change is intended::

    PYTHONPATH=src python scripts/gen_golden_traces.py

then review the JSON diff and commit it with the change.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.framework.job import run_job
from repro.framework.modes import MemoryMode, ReduceStrategy
from repro.gpu.config import DeviceConfig
from repro.workloads import WordCount

FIXTURE = (Path(__file__).resolve().parent.parent
           / "tests" / "golden" / "wordcount_small.json")
DIST_FIXTURE = (Path(__file__).resolve().parent.parent
                / "tests" / "golden" / "dist_wordcount_small.json")

#: The pinned workload identity: change ANY of these and the fixture
#: must be regenerated.
WORKLOAD = {"code": "WC", "size": "small", "seed": 11, "scale": 0.3,
            "mps": 2, "threads_per_block": 64, "strategy": "TR"}

#: The pinned distributed run: same workload on ``dist:2`` with
#: deterministic scheduling and a scripted mid-map kill of worker 1.
DIST_WORKLOAD = {"code": "WC", "size": "small", "seed": 11, "scale": 0.3,
                 "workers": 2, "split_bytes": 2048,
                 "threads_per_block": 64, "strategy": "TR"}

#: Event kinds pinned from the coordinator log.  ``complete`` and
#: ``duplicate`` are excluded: acceptance order races with socket
#: timing even under deterministic placement.  The *scheduling*
#: decisions — who was assigned what, what died, what was retried
#: where — are placement-deterministic and sort-stable.
DIST_EVENT_KINDS = ("assign", "retry", "worker_dead", "respawn")

#: KernelStats fields pinned per phase.  ``stall_cycles`` is omitted:
#: it is a profiler view (overlapping waits), noisier under benign
#: scheduler refactors than the architectural counters below.
STAT_FIELDS = (
    "cycles", "instructions", "compute_ops", "global_reads",
    "global_writes", "shared_ops", "atomics_global", "atomics_shared",
    "texture_reads", "barriers", "fences", "global_transactions",
    "global_bytes", "atomic_conflicts", "grid_blocks",
    "threads_per_block", "blocks_per_mp",
)


def _stats(st) -> dict:
    doc = {f: getattr(st, f) for f in STAT_FIELDS}
    doc["extra"] = dict(sorted(st.extra.items()))
    return doc


def _entry(result) -> dict:
    return {
        "timings": result.timings.as_dict(),
        "intermediate_count": result.intermediate_count,
        "output_records": len(result.output),
        "map_stats": _stats(result.map_stats),
        "reduce_stats": _stats(result.reduce_stats),
    }


def collect_golden() -> dict:
    """Run the pinned workload in every mode; return the fixture doc."""
    w = WordCount()
    inp = w.generate(WORKLOAD["size"], seed=WORKLOAD["seed"],
                     scale=WORKLOAD["scale"])
    spec = w.spec_for_size(WORKLOAD["size"], seed=WORKLOAD["seed"],
                           scale=WORKLOAD["scale"])
    cfg = DeviceConfig.small(WORKLOAD["mps"])
    runs = {}
    for mode in MemoryMode:
        res = run_job(spec, inp, mode=mode, strategy=ReduceStrategy.TR,
                      config=cfg,
                      threads_per_block=WORKLOAD["threads_per_block"],
                      backend="sim")
        runs[mode.value] = _entry(res)

    from repro.mars.framework import run_mars_job

    res = run_mars_job(spec, inp, strategy=ReduceStrategy.TR, config=cfg,
                       threads_per_block=WORKLOAD["threads_per_block"],
                       backend="sim")
    runs["Mars"] = _entry(res)

    return {
        "description": "Golden sim traces: cycle counts and kernel "
                       "counters pinned per memory mode.  Regenerate "
                       "with scripts/gen_golden_traces.py only for an "
                       "intended timing-model change, and review the "
                       "diff.",
        "workload": WORKLOAD,
        "input_records": len(inp),
        "runs": runs,
    }


def collect_dist_golden() -> dict:
    """Run the pinned fault-injected dist job; return the fixture doc.

    ``deterministic=True`` pins task placement (``alive[(shard +
    attempt) % len(alive)]``), the fault plan is fixed, and
    speculation is disabled via a huge straggler floor — so the
    scheduling decisions (assignments, the worker death, every retry
    target) are a stable artifact of the scheduler, pinnable exactly.
    """
    from repro.backend.distributed import DistributedBackend
    from repro.dist import FaultPlan

    w = WordCount()
    inp = w.generate(DIST_WORKLOAD["size"], seed=DIST_WORKLOAD["seed"],
                     scale=DIST_WORKLOAD["scale"])
    spec = w.spec_for_size(DIST_WORKLOAD["size"],
                           seed=DIST_WORKLOAD["seed"],
                           scale=DIST_WORKLOAD["scale"])
    cfg = DeviceConfig.small(2)
    plan = FaultPlan.kill(1, 40, phase="map")
    backend = DistributedBackend(
        workers=DIST_WORKLOAD["workers"], min_records=0,
        split_bytes=DIST_WORKLOAD["split_bytes"], fault_plan=plan,
        deterministic=True, min_straggle_s=3600.0)
    res = run_job(spec, inp, backend=backend, strategy=ReduceStrategy.TR,
                  config=cfg,
                  threads_per_block=DIST_WORKLOAD["threads_per_block"])
    events = sorted(
        (e.as_dict() for e in backend.last_events
         if e.kind in DIST_EVENT_KINDS),
        key=lambda d: (d["phase"], d["kind"], d["shard"], d["attempt"]))
    return {
        "description": "Golden distributed schedule: deterministic "
                       "task placement, retry targets and fault "
                       "handling pinned under a scripted worker kill. "
                       " Regenerate with scripts/gen_golden_traces.py "
                       "only for an intended scheduler change, and "
                       "review the diff.",
        "workload": dict(DIST_WORKLOAD, fault=plan.describe()),
        "input_records": len(inp),
        "counters": dict(sorted(backend.last_counters.items())),
        "events": events,
        "output_records": len(res.output),
        "intermediate_count": res.intermediate_count,
    }


def main() -> int:
    doc = collect_golden()
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    with open(FIXTURE, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {FIXTURE} ({len(doc['runs'])} runs, "
          f"{doc['input_records']} input records)")
    dist_doc = collect_dist_golden()
    with open(DIST_FIXTURE, "w", encoding="utf-8") as fh:
        json.dump(dist_doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {DIST_FIXTURE} ({len(dist_doc['events'])} events, "
          f"{dist_doc['counters']} counters)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
