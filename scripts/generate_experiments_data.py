#!/usr/bin/env python
"""Regenerate the measured tables quoted in EXPERIMENTS.md.

Runs every table and figure at the medium size on the full simulated
GTX 280 and prints the rendered blocks in EXPERIMENTS.md's order.
Takes a few minutes.

Usage:  python scripts/generate_experiments_data.py [> data.txt]
"""

from repro.analysis import figures, report, tables
from repro.framework.modes import ReduceStrategy
from repro.gpu import DeviceConfig
from repro.workloads import (
    ALL_WORKLOADS,
    InvertedIndex,
    KMeans,
    MatrixMultiplication,
    StringMatch,
    WordCount,
)

GTX = DeviceConfig.gtx280()
SIZE = "medium"


def main() -> None:
    print("### TABLE 1")
    print(report.render_table1(tables.table1([c() for c in ALL_WORKLOADS])))
    print()

    print("### TABLE 2 (large)")
    rows = [tables.measure_table2_row(c(), "large") for c in ALL_WORKLOADS]
    print(report.render_table2(rows))
    print()

    print(f"### FIG5 MAP ({SIZE}, GTX280)")
    for c in ALL_WORKLOADS:
        res = figures.fig5_map_sweep(c(), size=SIZE, config=GTX,
                                     block_sizes=(64, 128, 256))
        print(report.render_map_sweep(res))
        print()

    print("### FIG5 REDUCE")
    for wl, strat in (
        (WordCount(), ReduceStrategy.TR), (WordCount(), ReduceStrategy.BR),
        (KMeans(), ReduceStrategy.TR), (KMeans(), ReduceStrategy.BR),
    ):
        res = figures.fig5_reduce_sweep(wl, strat, size=SIZE, config=GTX,
                                        block_sizes=(64, 128, 256))
        print(report.render_reduce_sweep(res))
        print()

    print(f"### FIG6 ({SIZE})")
    rows = []
    for c in ALL_WORKLOADS:
        rows += figures.fig6_end_to_end(c(), sizes=(SIZE,), config=GTX)
    print(report.render_end_to_end(rows))
    print()

    print(f"### FIG7 ({SIZE})")
    rows = []
    for c in ALL_WORKLOADS:
        rows += figures.fig7_speedup_over_mars(c(), size=SIZE, config=GTX)
    print(report.render_speedups(rows))
    print()

    print(f"### FIG8 ({SIZE})")
    rows = []
    for c in (WordCount, StringMatch, InvertedIndex, KMeans,
              MatrixMultiplication):
        rows += figures.fig8_yield_sweep(c(), size=SIZE, config=GTX,
                                         block_sizes=(64, 128, 256))
    print(report.render_yield(rows))


if __name__ == "__main__":
    main()
