"""Benchmark the fast and parallel backends: wall-clock only.

Two artifacts, committed at the repo root as the PRs' perf evidence:

* ``BENCH_backend.json`` — FastBackend vs SimBackend on wordcount and
  kmeans at two sizes.  The quantity compared is *host wall-clock
  seconds to execute the job* — the simulator's virtual cycle counts
  are its product, not its cost; the fast backend's cycles are zero
  by design.  Acceptance bar: >= 20x on medium wordcount.
* ``BENCH_parallel.json`` (``--parallel``) — ParallelBackend vs
  FastBackend on medium/large wordcount and kmeans, sweeping worker
  counts.  Acceptance bar: >= 2x on medium wordcount with 4 workers
  **on a multi-core host** — the artifact records ``cpu_count`` so a
  single-core container's numbers (where a process pool can only add
  overhead) are legible as such.
* ``BENCH_obs.json`` (``--obs``) — observability overhead on the fast
  backend: the same job with everything off (no tracer, ledger
  disabled) vs everything on (dual-clock tracer + run ledger).
  Acceptance bar: < 5% overhead.
* ``BENCH_spill.json`` (``--spill``) — spill-store cost sweep on the
  fast and parallel backends: each case first measures its
  intermediate working set (a spill run under an effectively infinite
  budget reports its tracked peak), then re-runs with the budget at
  100%, 50% and 10% of that, recording wall seconds, runs written and
  bytes spilled.  Informational — out-of-core capacity is the point;
  the overhead column prices it.
* ``BENCH_columnar.json`` (``--columnar``) — columnar FastBackend
  (batch kernels + array shuffle) vs the scalar fast path on the four
  workloads with batch implementations, outputs cross-checked
  byte-for-byte per case.  Acceptance bar: >= 5x on medium kmeans.
* ``BENCH_dist.json`` (``--dist``) — DistributedBackend (coordinator +
  socket workers) vs FastBackend, sweeping worker counts, plus a
  fault-recovery leg (one scripted mid-job worker kill at 2 workers).
  Informational — dist prices fault tolerance, not speed: every pair
  crosses a JSON socket frame, so on a small single-host job the
  honest number is *below* 1x; what the artifact shows is how much a
  worker death costs on top (outputs cross-checked per case).

Usage::

    PYTHONPATH=src python scripts/bench_backends.py [--out PATH]
    PYTHONPATH=src python scripts/bench_backends.py --parallel \\
        [--parallel-out PATH] [--workers 1,2,4,8]
    PYTHONPATH=src python scripts/bench_backends.py --obs [--obs-out PATH]
    PYTHONPATH=src python scripts/bench_backends.py --spill [--spill-out PATH]
    PYTHONPATH=src python scripts/bench_backends.py --columnar \\
        [--columnar-out PATH]
    PYTHONPATH=src python scripts/bench_backends.py --dist \\
        [--dist-out PATH] [--workers 1,2,4]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.backend import FastBackend, ParallelBackend
from repro.framework.job import run_job
from repro.framework.modes import MemoryMode, ReduceStrategy
from repro.workloads import Histogram, KMeans, LinearRegression, WordCount

CASES = [
    ("wordcount", WordCount, "small"),
    ("wordcount", WordCount, "medium"),
    ("kmeans", KMeans, "small"),
    ("kmeans", KMeans, "medium"),
]

PARALLEL_CASES = [
    ("wordcount", WordCount, "medium", ReduceStrategy.TR),
    ("wordcount", WordCount, "medium", ReduceStrategy.BR),
    ("wordcount", WordCount, "large", ReduceStrategy.BR),
    ("kmeans", KMeans, "medium", ReduceStrategy.BR),
]

OBS_CASES = [
    ("wordcount", WordCount, "medium"),
    ("kmeans", KMeans, "medium"),
]

SPILL_CASES = [
    ("wordcount", WordCount, "medium"),
    ("kmeans", KMeans, "medium"),
]

COLUMNAR_CASES = [
    ("wordcount", WordCount, "medium"),
    ("kmeans", KMeans, "small"),
    ("kmeans", KMeans, "medium"),
    ("histogram", Histogram, "medium"),
    ("linearreg", LinearRegression, "medium"),
]

DIST_CASES = [
    ("wordcount", WordCount, "medium", ReduceStrategy.TR),
    ("wordcount", WordCount, "medium", ReduceStrategy.BR),
    ("kmeans", KMeans, "medium", ReduceStrategy.BR),
]


def _time_run(spec, inp, backend, repeats: int,
              strategy=ReduceStrategy.TR) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_job(spec, inp, mode=MemoryMode.SIO, strategy=strategy,
                backend=backend)
        best = min(best, time.perf_counter() - t0)
    return best


def bench_parallel(out_path: str, repeats: int, workers: list[int]) -> int:
    """Sweep ParallelBackend worker counts against FastBackend."""
    results = []
    for name, cls, size, strategy in PARALLEL_CASES:
        w = cls()
        inp = w.generate(size, seed=0)
        spec = w.spec_for_size(size, seed=0)
        fast_s = _time_run(spec, inp, "fast", repeats, strategy)
        row = {
            "workload": name,
            "size": size,
            "strategy": strategy.value,
            "records": len(inp),
            "fast_wall_s": round(fast_s, 4),
            "parallel": {},
        }
        for n in workers:
            backend = ParallelBackend(workers=n, min_records=0)
            par_s = _time_run(spec, inp, backend, repeats, strategy)
            row["parallel"][str(n)] = {
                "wall_s": round(par_s, 4),
                "speedup_vs_fast": round(fast_s / par_s, 2),
            }
            print(f"{name:10s} {size:6s} {strategy.value} "
                  f"workers={n}  fast {fast_s:8.4f}s  "
                  f"parallel {par_s:8.4f}s  {fast_s / par_s:6.2f}x")
        results.append(row)

    doc = {
        "description": "Wall-clock: ParallelBackend (sharded "
                       "multiprocessing, per-shard combine under BR) vs "
                       "FastBackend, mode=SIO, best of N runs.  Speedup "
                       "requires real cores: on a single-core host the "
                       "pool can only add dispatch overhead.",
        "repeats": repeats,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workers_swept": workers,
        "results": results,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")

    medium_wc = next(r for r in results
                     if r["workload"] == "wordcount" and r["size"] == "medium")
    four = medium_wc["parallel"].get("4")
    if four is not None and four["speedup_vs_fast"] < 2:
        print(f"WARNING: medium wordcount speedup {four['speedup_vs_fast']}x "
              f"with 4 workers is below the 2x acceptance bar "
              f"(cpu_count={os.cpu_count()})")
        return 0 if (os.cpu_count() or 1) < 4 else 1
    return 0


def bench_obs(out_path: str, repeats: int) -> int:
    """Observability overhead: fast backend with obs off vs fully on.

    *Off* is the zero-instrumentation floor (no tracer attached,
    ``REPRO_LEDGER=0``); *on* is what ``repro-trace`` does — a
    dual-clock :class:`Tracer` plus a ledger append per run (pointed
    at a temp dir so the benchmark doesn't pollute ``.repro/``).
    """
    import tempfile

    from repro.obs.tracer import Tracer

    def timed(spec, inp, tracer_factory) -> float:
        best = float("inf")
        for _ in range(repeats):
            tracer = tracer_factory() if tracer_factory else None
            t0 = time.perf_counter()
            run_job(spec, inp, mode=MemoryMode.SIO,
                    strategy=ReduceStrategy.TR, backend="fast",
                    tracer=tracer)
            best = min(best, time.perf_counter() - t0)
        return best

    saved = {k: os.environ.get(k) for k in ("REPRO_LEDGER",
                                            "REPRO_LEDGER_DIR")}
    results = []
    try:
        for name, cls, size in OBS_CASES:
            w = cls()
            inp = w.generate(size, seed=0)
            spec = w.spec_for_size(size, seed=0)
            os.environ["REPRO_LEDGER"] = "0"
            off_s = timed(spec, inp, None)
            with tempfile.TemporaryDirectory() as tmp:
                os.environ["REPRO_LEDGER"] = "1"
                os.environ["REPRO_LEDGER_DIR"] = tmp
                on_s = timed(
                    spec, inp,
                    lambda: Tracer(kernel_detail=False, wall_clock=True),
                )
            overhead = (on_s - off_s) / off_s
            results.append({
                "workload": name,
                "size": size,
                "records": len(inp),
                "obs_off_wall_s": round(off_s, 4),
                "obs_on_wall_s": round(on_s, 4),
                "overhead_pct": round(overhead * 100, 2),
            })
            print(f"{name:10s} {size:6s} obs-off {off_s:8.4f}s  "
                  f"obs-on {on_s:8.4f}s  overhead {overhead:+7.2%}")
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v

    doc = {
        "description": "Observability overhead on the fast backend: "
                       "obs-off = no tracer + REPRO_LEDGER=0; obs-on = "
                       "dual-clock Tracer (kernel_detail off, as "
                       "repro-trace uses for fast) + one ledger append. "
                       "Best of N runs; bar: < 5% overhead.",
        "repeats": repeats,
        "python": platform.python_version(),
        "results": results,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")

    worst = max(r["overhead_pct"] for r in results)
    if worst >= 5.0:
        print(f"WARNING: observability overhead {worst:.2f}% is above "
              "the 5% acceptance bar")
        return 1
    return 0


def bench_spill(out_path: str, repeats: int) -> int:
    """Spill-store sweep: budgets at 100%/50%/10% of the working set.

    The working set is what the spill store itself reports: under an
    effectively infinite budget nothing spills, so the store's tracked
    peak *is* the intermediate footprint.  Each budgeted run records
    wall seconds (best of N), runs written, bytes spilled and the
    overhead against the unbounded memory store on the same backend.
    """
    backends = [
        ("fast", lambda: "fast"),
        ("parallel", lambda: ParallelBackend(workers=4, min_records=0)),
    ]

    def timed(spec, inp, make, store=None, budget=None):
        best, result = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = run_job(spec, inp, mode=MemoryMode.SIO,
                             strategy=ReduceStrategy.TR, backend=make(),
                             store=store, memory_budget=budget)
            best = min(best, time.perf_counter() - t0)
        return best, result

    results = []
    for name, cls, size in SPILL_CASES:
        w = cls()
        inp = w.generate(size, seed=0)
        spec = w.spec_for_size(size, seed=0)
        for backend_name, make in backends:
            memory_s, _ = timed(spec, inp, make)
            probe_s, probe = timed(spec, inp, make,
                                   store="spill", budget=1 << 40)
            working_set = probe.reduce_stats.extra["store_peak_bytes"]
            row = {
                "workload": name,
                "size": size,
                "backend": backend_name,
                "records": len(inp),
                "working_set_bytes": working_set,
                "memory_wall_s": round(memory_s, 4),
                "spill": {},
            }
            sweeps = [("100%", working_set), ("50%", working_set // 2),
                      ("10%", working_set // 10)]
            for label, budget in sweeps:
                wall_s, res = timed(spec, inp, make,
                                    store="spill", budget=max(64, budget))
                extra = res.reduce_stats.extra
                row["spill"][label] = {
                    "budget_bytes": max(64, budget),
                    "wall_s": round(wall_s, 4),
                    "overhead_vs_memory": round(wall_s / memory_s - 1, 3),
                    "spill_runs": extra["spill_runs"],
                    "spilled_bytes": extra["spilled_bytes"],
                    "store_peak_bytes": extra["store_peak_bytes"],
                }
                print(f"{name:10s} {size:6s} {backend_name:8s} "
                      f"budget={label:4s}  memory {memory_s:8.4f}s  "
                      f"spill {wall_s:8.4f}s  "
                      f"({wall_s / memory_s - 1:+7.1%})  "
                      f"runs={extra['spill_runs']}")
            results.append(row)

    doc = {
        "description": "Spill-store cost sweep: fast and parallel "
                       "backends, mode=SIO strategy=TR, budgets at "
                       "100%/50%/10% of the measured intermediate "
                       "working set (the spill store's tracked peak "
                       "under an infinite budget).  Best of N runs; "
                       "informational — prices out-of-core capacity.",
        "repeats": repeats,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")
    return 0


def bench_columnar(out_path: str, repeats: int) -> int:
    """Columnar FastBackend vs the scalar fast path.

    Both runs share the input and spec; every case additionally
    cross-checks that the columnar output is byte-identical to the
    scalar one (the differential suite's contract, re-asserted on the
    benchmark sizes).
    """
    results = []
    mismatches = 0
    for name, cls, size in COLUMNAR_CASES:
        w = cls()
        inp = w.generate(size, seed=0)
        spec = w.spec_for_size(size, seed=0)
        scalar = run_job(spec, inp, mode=MemoryMode.SIO,
                         strategy=ReduceStrategy.TR,
                         backend=FastBackend(columnar=False))
        col = run_job(spec, inp, mode=MemoryMode.SIO,
                      strategy=ReduceStrategy.TR,
                      backend=FastBackend(columnar=True))
        identical = col.output == scalar.output
        if not identical:
            mismatches += 1
        fast_s = _time_run(spec, inp, FastBackend(columnar=False), repeats)
        col_s = _time_run(spec, inp, FastBackend(columnar=True), repeats)
        row = {
            "workload": name,
            "size": size,
            "records": len(inp),
            "fast_wall_s": round(fast_s, 4),
            "columnar_wall_s": round(col_s, 4),
            "speedup": round(fast_s / col_s, 2),
            "map_vectorized": col.map_stats.extra.get(
                "columnar_map_vectorized", 0) > 0,
            "reduce_vectorized": col.reduce_stats.extra.get(
                "columnar_reduce_vectorized", 0) > 0,
            "output_identical": identical,
        }
        results.append(row)
        print(f"{name:10s} {size:6s} {len(inp):7d} records  "
              f"fast {fast_s:8.4f}s  columnar {col_s:8.4f}s  "
              f"{row['speedup']:6.2f}x  "
              f"{'identical' if identical else 'MISMATCH'}")

    doc = {
        "description": "Wall-clock: columnar FastBackend (batch "
                       "kernels + array shuffle) vs the scalar fast "
                       "path, mode=SIO strategy=TR, best of N runs; "
                       "outputs cross-checked byte-for-byte per case. "
                       "Bar: >= 5x on medium kmeans.",
        "repeats": repeats,
        "python": platform.python_version(),
        "results": results,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")

    if mismatches:
        print(f"ERROR: {mismatches} case(s) produced non-identical "
              "columnar output")
        return 1
    medium_km = next(r for r in results
                     if r["workload"] == "kmeans" and r["size"] == "medium")
    if medium_km["speedup"] < 5:
        print(f"WARNING: medium kmeans columnar speedup "
              f"{medium_km['speedup']}x is below the 5x acceptance bar")
        return 1
    return 0


def bench_dist(out_path: str, repeats: int, workers: list[int]) -> int:
    """DistributedBackend sweep vs FastBackend, plus fault recovery.

    Every case first cross-checks the dist output against the fast
    run (the differential contract, re-asserted at benchmark sizes),
    then times the sweep.  The fault-recovery leg runs at 2 workers
    with one scripted kill halfway through the input, pricing a
    worker death — re-execution, rescheduling and all — against the
    faultless dist run.
    """
    from repro.backend import DistributedBackend
    from repro.dist import FaultPlan

    results = []
    mismatches = 0
    for name, cls, size, strategy in DIST_CASES:
        w = cls()
        inp = w.generate(size, seed=0)
        spec = w.spec_for_size(size, seed=0)
        fast_res = run_job(spec, inp, mode=MemoryMode.SIO,
                           strategy=strategy, backend="fast")
        fast_s = _time_run(spec, inp, "fast", repeats, strategy)
        row = {
            "workload": name,
            "size": size,
            "strategy": strategy.value,
            "records": len(inp),
            "fast_wall_s": round(fast_s, 4),
            "dist": {},
        }
        base2_s = None
        for n in workers:
            backend = DistributedBackend(workers=n, min_records=0)
            check = run_job(spec, inp, mode=MemoryMode.SIO,
                            strategy=strategy, backend=backend)
            identical = check.output == fast_res.output
            if not identical:
                mismatches += 1
            dist_s = _time_run(spec, inp, backend, repeats, strategy)
            if n == 2:
                base2_s = dist_s
            row["dist"][str(n)] = {
                "wall_s": round(dist_s, 4),
                "speedup_vs_fast": round(fast_s / dist_s, 2),
                "output_identical": identical,
            }
            print(f"{name:10s} {size:6s} {strategy.value} "
                  f"workers={n}  fast {fast_s:8.4f}s  "
                  f"dist {dist_s:8.4f}s  {fast_s / dist_s:6.2f}x  "
                  f"{'identical' if identical else 'MISMATCH'}")

        plan = FaultPlan.kill(0, max(1, len(inp) // 2), phase="map")
        faulted = DistributedBackend(workers=2, min_records=0,
                                     fault_plan=plan)
        fres = run_job(spec, inp, mode=MemoryMode.SIO, strategy=strategy,
                       backend=faulted)
        identical = fres.output == fast_res.output
        if not identical:
            mismatches += 1
        fault_s = _time_run(spec, inp, faulted, repeats, strategy)
        row["fault_recovery"] = {
            "plan": plan.describe(),
            "wall_s": round(fault_s, 4),
            "overhead_vs_dist2": (round(fault_s / base2_s - 1, 3)
                                  if base2_s else None),
            "worker_deaths": faulted.last_counters.get("worker_deaths", 0),
            "retries": faulted.last_counters.get("retries", 0),
            "output_identical": identical,
        }
        print(f"{name:10s} {size:6s} {strategy.value} "
              f"kill@mid-map      dist2 {base2_s or 0:8.4f}s  "
              f"faulted {fault_s:8.4f}s  "
              f"{'identical' if identical else 'MISMATCH'}")
        results.append(row)

    doc = {
        "description": "Wall-clock: DistributedBackend (coordinator + "
                       "socket workers, plain pairs over length-"
                       "prefixed JSON frames) vs FastBackend, mode=SIO, "
                       "best of N runs, outputs cross-checked per case. "
                       " Informational: dist prices fault tolerance — "
                       "socket serialisation makes sub-1x the honest "
                       "single-host number; the fault_recovery row is "
                       "the cost of one worker death on top.",
        "repeats": repeats,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workers_swept": workers,
        "results": results,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")

    if mismatches:
        print(f"ERROR: {mismatches} case(s) produced non-identical "
              "dist output")
        return 1
    return 0


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_backend.json"))
    p.add_argument("--repeats", type=int, default=3,
                   help="take the best of N runs per backend")
    p.add_argument("--parallel", action="store_true",
                   help="benchmark ParallelBackend vs FastBackend "
                        "instead of fast vs sim")
    p.add_argument("--parallel-out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_parallel.json"))
    p.add_argument("--workers", default="1,2,4,8",
                   help="comma-separated worker counts for --parallel")
    p.add_argument("--obs", action="store_true",
                   help="benchmark observability overhead (tracer + "
                        "ledger) on the fast backend")
    p.add_argument("--obs-out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_obs.json"))
    p.add_argument("--spill", action="store_true",
                   help="sweep spill-store budgets (100%%/50%%/10%% of "
                        "the working set) on the fast and parallel "
                        "backends")
    p.add_argument("--spill-out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_spill.json"))
    p.add_argument("--columnar", action="store_true",
                   help="benchmark the columnar fast path vs the "
                        "scalar fast path on the batch-kernel workloads")
    p.add_argument("--columnar-out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_columnar.json"))
    p.add_argument("--dist", action="store_true",
                   help="benchmark DistributedBackend vs FastBackend, "
                        "sweeping --workers, plus a fault-recovery leg")
    p.add_argument("--dist-out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_dist.json"))
    args = p.parse_args(argv)

    if args.dist:
        workers = [int(n) for n in args.workers.split(",") if n.strip()]
        return bench_dist(args.dist_out, args.repeats, workers)
    if args.columnar:
        return bench_columnar(args.columnar_out, args.repeats)
    if args.spill:
        return bench_spill(args.spill_out, args.repeats)
    if args.obs:
        return bench_obs(args.obs_out, args.repeats)
    if args.parallel:
        workers = [int(n) for n in args.workers.split(",") if n.strip()]
        return bench_parallel(args.parallel_out, args.repeats, workers)

    results = []
    for name, cls, size in CASES:
        w = cls()
        inp = w.generate(size, seed=0)
        spec = w.spec_for_size(size, seed=0)
        sim_s = _time_run(spec, inp, "sim", args.repeats)
        fast_s = _time_run(spec, inp, "fast", args.repeats)
        row = {
            "workload": name,
            "size": size,
            "records": len(inp),
            "sim_wall_s": round(sim_s, 4),
            "fast_wall_s": round(fast_s, 4),
            "speedup": round(sim_s / fast_s, 1),
        }
        results.append(row)
        print(f"{name:10s} {size:6s} {len(inp):7d} records  "
              f"sim {sim_s:8.3f}s  fast {fast_s:8.4f}s  "
              f"{row['speedup']:7.1f}x")

    doc = {
        "description": "Wall-clock: FastBackend vs SimBackend, "
                       "mode=SIO strategy=TR, full GTX 280 config, "
                       "best of N runs",
        "repeats": args.repeats,
        "python": platform.python_version(),
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    medium_wc = next(r for r in results
                     if r["workload"] == "wordcount" and r["size"] == "medium")
    if medium_wc["speedup"] < 20:
        print(f"WARNING: medium wordcount speedup {medium_wc['speedup']}x "
              "is below the 20x acceptance bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
