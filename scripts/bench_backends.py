"""Benchmark the fast and parallel backends: wall-clock only.

Two artifacts, committed at the repo root as the PRs' perf evidence:

* ``BENCH_backend.json`` — FastBackend vs SimBackend on wordcount and
  kmeans at two sizes.  The quantity compared is *host wall-clock
  seconds to execute the job* — the simulator's virtual cycle counts
  are its product, not its cost; the fast backend's cycles are zero
  by design.  Acceptance bar: >= 20x on medium wordcount.
* ``BENCH_parallel.json`` (``--parallel``) — ParallelBackend vs
  FastBackend on medium/large wordcount and kmeans, sweeping worker
  counts.  Acceptance bar: >= 2x on medium wordcount with 4 workers
  **on a multi-core host** — the artifact records ``cpu_count`` so a
  single-core container's numbers (where a process pool can only add
  overhead) are legible as such.

Usage::

    PYTHONPATH=src python scripts/bench_backends.py [--out PATH]
    PYTHONPATH=src python scripts/bench_backends.py --parallel \\
        [--parallel-out PATH] [--workers 1,2,4,8]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.backend import ParallelBackend
from repro.framework.job import run_job
from repro.framework.modes import MemoryMode, ReduceStrategy
from repro.workloads import KMeans, WordCount

CASES = [
    ("wordcount", WordCount, "small"),
    ("wordcount", WordCount, "medium"),
    ("kmeans", KMeans, "small"),
    ("kmeans", KMeans, "medium"),
]

PARALLEL_CASES = [
    ("wordcount", WordCount, "medium", ReduceStrategy.TR),
    ("wordcount", WordCount, "medium", ReduceStrategy.BR),
    ("wordcount", WordCount, "large", ReduceStrategy.BR),
    ("kmeans", KMeans, "medium", ReduceStrategy.BR),
]


def _time_run(spec, inp, backend, repeats: int,
              strategy=ReduceStrategy.TR) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_job(spec, inp, mode=MemoryMode.SIO, strategy=strategy,
                backend=backend)
        best = min(best, time.perf_counter() - t0)
    return best


def bench_parallel(out_path: str, repeats: int, workers: list[int]) -> int:
    """Sweep ParallelBackend worker counts against FastBackend."""
    results = []
    for name, cls, size, strategy in PARALLEL_CASES:
        w = cls()
        inp = w.generate(size, seed=0)
        spec = w.spec_for_size(size, seed=0)
        fast_s = _time_run(spec, inp, "fast", repeats, strategy)
        row = {
            "workload": name,
            "size": size,
            "strategy": strategy.value,
            "records": len(inp),
            "fast_wall_s": round(fast_s, 4),
            "parallel": {},
        }
        for n in workers:
            backend = ParallelBackend(workers=n, min_records=0)
            par_s = _time_run(spec, inp, backend, repeats, strategy)
            row["parallel"][str(n)] = {
                "wall_s": round(par_s, 4),
                "speedup_vs_fast": round(fast_s / par_s, 2),
            }
            print(f"{name:10s} {size:6s} {strategy.value} "
                  f"workers={n}  fast {fast_s:8.4f}s  "
                  f"parallel {par_s:8.4f}s  {fast_s / par_s:6.2f}x")
        results.append(row)

    doc = {
        "description": "Wall-clock: ParallelBackend (sharded "
                       "multiprocessing, per-shard combine under BR) vs "
                       "FastBackend, mode=SIO, best of N runs.  Speedup "
                       "requires real cores: on a single-core host the "
                       "pool can only add dispatch overhead.",
        "repeats": repeats,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workers_swept": workers,
        "results": results,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")

    medium_wc = next(r for r in results
                     if r["workload"] == "wordcount" and r["size"] == "medium")
    four = medium_wc["parallel"].get("4")
    if four is not None and four["speedup_vs_fast"] < 2:
        print(f"WARNING: medium wordcount speedup {four['speedup_vs_fast']}x "
              f"with 4 workers is below the 2x acceptance bar "
              f"(cpu_count={os.cpu_count()})")
        return 0 if (os.cpu_count() or 1) < 4 else 1
    return 0


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_backend.json"))
    p.add_argument("--repeats", type=int, default=3,
                   help="take the best of N runs per backend")
    p.add_argument("--parallel", action="store_true",
                   help="benchmark ParallelBackend vs FastBackend "
                        "instead of fast vs sim")
    p.add_argument("--parallel-out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_parallel.json"))
    p.add_argument("--workers", default="1,2,4,8",
                   help="comma-separated worker counts for --parallel")
    args = p.parse_args(argv)

    if args.parallel:
        workers = [int(n) for n in args.workers.split(",") if n.strip()]
        return bench_parallel(args.parallel_out, args.repeats, workers)

    results = []
    for name, cls, size in CASES:
        w = cls()
        inp = w.generate(size, seed=0)
        spec = w.spec_for_size(size, seed=0)
        sim_s = _time_run(spec, inp, "sim", args.repeats)
        fast_s = _time_run(spec, inp, "fast", args.repeats)
        row = {
            "workload": name,
            "size": size,
            "records": len(inp),
            "sim_wall_s": round(sim_s, 4),
            "fast_wall_s": round(fast_s, 4),
            "speedup": round(sim_s / fast_s, 1),
        }
        results.append(row)
        print(f"{name:10s} {size:6s} {len(inp):7d} records  "
              f"sim {sim_s:8.3f}s  fast {fast_s:8.4f}s  "
              f"{row['speedup']:7.1f}x")

    doc = {
        "description": "Wall-clock: FastBackend vs SimBackend, "
                       "mode=SIO strategy=TR, full GTX 280 config, "
                       "best of N runs",
        "repeats": args.repeats,
        "python": platform.python_version(),
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    medium_wc = next(r for r in results
                     if r["workload"] == "wordcount" and r["size"] == "medium")
    if medium_wc["speedup"] < 20:
        print(f"WARNING: medium wordcount speedup {medium_wc['speedup']}x "
              "is below the 20x acceptance bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
