"""Benchmark the fast backend against the simulator: wall-clock only.

Runs wordcount and kmeans at two sizes under both execution backends
and writes ``BENCH_backend.json`` at the repo root (committed as the
PR's perf artifact).  The quantity compared is *host wall-clock
seconds to execute the job* — the simulator's virtual cycle counts
are its product, not its cost; the fast backend's cycles are zero by
design.  The acceptance bar: >= 20x on medium wordcount.

Usage::

    PYTHONPATH=src python scripts/bench_backends.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.framework.job import run_job
from repro.framework.modes import MemoryMode, ReduceStrategy
from repro.workloads import KMeans, WordCount

CASES = [
    ("wordcount", WordCount, "small"),
    ("wordcount", WordCount, "medium"),
    ("kmeans", KMeans, "small"),
    ("kmeans", KMeans, "medium"),
]


def _time_run(spec, inp, backend: str, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_job(spec, inp, mode=MemoryMode.SIO, strategy=ReduceStrategy.TR,
                backend=backend)
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_backend.json"))
    p.add_argument("--repeats", type=int, default=3,
                   help="take the best of N runs per backend")
    args = p.parse_args(argv)

    results = []
    for name, cls, size in CASES:
        w = cls()
        inp = w.generate(size, seed=0)
        spec = w.spec_for_size(size, seed=0)
        sim_s = _time_run(spec, inp, "sim", args.repeats)
        fast_s = _time_run(spec, inp, "fast", args.repeats)
        row = {
            "workload": name,
            "size": size,
            "records": len(inp),
            "sim_wall_s": round(sim_s, 4),
            "fast_wall_s": round(fast_s, 4),
            "speedup": round(sim_s / fast_s, 1),
        }
        results.append(row)
        print(f"{name:10s} {size:6s} {len(inp):7d} records  "
              f"sim {sim_s:8.3f}s  fast {fast_s:8.4f}s  "
              f"{row['speedup']:7.1f}x")

    doc = {
        "description": "Wall-clock: FastBackend vs SimBackend, "
                       "mode=SIO strategy=TR, full GTX 280 config, "
                       "best of N runs",
        "repeats": args.repeats,
        "python": platform.python_version(),
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    medium_wc = next(r for r in results
                     if r["workload"] == "wordcount" and r["size"] == "medium")
    if medium_wc["speedup"] < 20:
        print(f"WARNING: medium wordcount speedup {medium_wc['speedup']}x "
              "is below the 20x acceptance bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
