#!/usr/bin/env python
"""Factory calibration for the tuner's cost constants.

Measures per-phase simulated cycles over the eight shipped workloads
plus the five synthetic tuner shapes (modes x strategies at the
default block size, plus a block-size sweep on a subset), extracts the
same :class:`~repro.tune.profiler.InputStats` features the runtime
model sees, and fits the :class:`~repro.tune.cost.CostConstants`
rates: non-negative least squares for the per-phase coefficients, a
small grid search for the block-size sensitivity constants.  Prints
the fitted constants as Python source (paste into
``repro/tune/cost.py``) and the per-case decision quality
(predicted-best vs. measured-best, the <=10% acceptance bar).

Run with ``python scripts/calibrate_tuner.py``.  Takes several
minutes: it is the factory half of the calibration protocol
(docs/PERFORMANCE.md); the runtime half refines these from the run
ledger without any simulation.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
os.environ.setdefault("REPRO_LEDGER", "0")

import numpy as np

from repro.framework.job import run_job
from repro.framework.modes import ALL_MODES, MemoryMode, ReduceStrategy, \
    effective_reduce_mode
from repro.gpu.config import DeviceConfig
from repro.tune.cost import Candidate, CostConstants, estimate_cycles, \
    stage_overflow
from repro.tune.profiler import profile_input
from repro.tune.synthetic import SYNTHETIC_CASES, synthetic_case
from repro.workloads import ALL_WORKLOADS, EXTRA_WORKLOADS

CFG = DeviceConfig.small(4)
SCALES = (0.6, 1.0)
TPB_EXTRA = (64, 256)  # beyond the default 128, on the tpb subset
TPB_MODES = (MemoryMode.G, MemoryMode.SO, MemoryMode.SIO)


def cases():
    for cls in (*ALL_WORKLOADS, *EXTRA_WORKLOADS):
        w = cls()
        for scale in SCALES:
            inp = w.generate("small", seed=0, scale=scale)
            spec = w.spec_for_size("small", seed=0, scale=scale)
            yield f"{w.code}x{scale}", spec, inp, w.has_reduce
    for name in SYNTHETIC_CASES:
        for scale in SCALES:
            spec, inp = synthetic_case(name, seed=0, scale=scale)
            yield f"{name}x{scale}", spec, inp, True


def nnls(A, y):
    """lstsq with negative coefficients clipped out and refit."""
    A = np.asarray(A, dtype=float)
    y = np.asarray(y, dtype=float)
    active = list(range(A.shape[1]))
    coef = np.zeros(0)
    for _ in range(A.shape[1]):
        coef, *_ = np.linalg.lstsq(A[:, active], y, rcond=None)
        if (coef >= 0).all():
            break
        active = [a for a, c in zip(active, coef) if c >= 0]
        if not active:
            return np.zeros(A.shape[1])
    full = np.zeros(A.shape[1])
    for a, c in zip(active, coef):
        full[a] = max(0.0, c)
    return full


def measure(spec, inp, mode, strat, tpb=128):
    res = run_job(spec, inp, mode=mode, strategy=strat, config=CFG,
                  threads_per_block=tpb)
    return res.timings


def main() -> int:
    map_rows = {m.value: ([], []) for m in ALL_MODES}
    shuffle_rows = ([], [])
    # Reduce rows binned by (strategy, effective reduce mode).
    red_rows = {}
    measured = {}  # case -> {(mode, strat, tpb): timings}
    stats_by_case = {}
    case_list = list(cases())

    for name, spec, inp, has_reduce in case_list:
        stats = profile_input(spec, inp)
        stats_by_case[name] = stats
        n = float(stats.records)
        in_b = n * stats.rec_bytes_avg
        e = stats.est_emissions
        out_b = e * (stats.emit_key_bytes + stats.emit_val_bytes)
        groups = float(max(1, stats.est_groups)) if e else 0.0
        val_b = e * stats.emit_val_bytes
        maxg = stats.est_max_group
        loge = np.log2(e) if e > 1 else 0.0
        strategies = ((ReduceStrategy.TR, ReduceStrategy.BR)
                      if has_reduce else (None,))
        measured[name] = {}
        for strat in strategies:
            for mode in ALL_MODES:
                if strat is ReduceStrategy.BR and mode is MemoryMode.GT:
                    continue
                try:
                    t = measure(spec, inp, mode, strat)
                except Exception as exc:  # pragma: no cover
                    print(f"  skip {name} {mode.value}/{strat}: {exc!r}",
                          file=sys.stderr)
                    continue
                measured[name][(mode.value,
                                strat.value if strat else None, 128)] = t
                if strat in (None, ReduceStrategy.TR):
                    A, y = map_rows[mode.value]
                    ovf = stage_overflow(stats, 128, CFG, CostConstants()) \
                        if mode.stages_output else 0.0
                    A.append([n, in_b, e, out_b, e * ovf,
                              n * stats.compute_per_record])
                    y.append(t.map)
                if strat is ReduceStrategy.TR and mode is MemoryMode.G:
                    A, y = shuffle_rows
                    A.append([e, e * loge])
                    y.append(t.shuffle)
                if strat is not None:
                    red_mode = effective_reduce_mode(mode, strat).value
                    A, y = red_rows.setdefault(
                        (strat.value, red_mode), ([], []))
                    A.append([groups, e, maxg, val_b])
                    y.append(t.reduce)
        print(f"measured {name}", file=sys.stderr)

    # Block-size sweep: scale-1.0 cases only, G/SO/SIO, first strategy.
    for name, spec, inp, has_reduce in case_list:
        if not name.endswith("x1.0"):
            continue
        strat = ReduceStrategy.TR if has_reduce else None
        sv = strat.value if strat else None
        for mode in TPB_MODES:
            for tpb in TPB_EXTRA:
                try:
                    t = measure(spec, inp, mode, strat, tpb)
                except Exception as exc:  # pragma: no cover
                    print(f"  skip {name} {mode.value}@{tpb}: {exc!r}",
                          file=sys.stderr)
                    continue
                measured[name][(mode.value, sv, tpb)] = t
        print(f"tpb-swept {name}", file=sys.stderr)

    map_fit = {}
    for mode in ALL_MODES:
        A, y = map_rows[mode.value]
        map_fit[mode.value] = tuple(float(c) for c in nnls(A, y))
    sh = nnls(*shuffle_rows)
    red_fit = {"TR": {}, "BR": {}}
    for (strat, red_mode), (A, y) in sorted(red_rows.items()):
        red_fit[strat][red_mode] = tuple(float(c) for c in nnls(A, y))
    tr, br = red_fit["TR"], red_fit["BR"]

    # Grid-search the block-size constants: minimize total decision
    # regret of "pick the tpb with the lowest predicted map cost" over
    # every (case, mode) trio measured above.
    trios = []
    for name, table in measured.items():
        stats = stats_by_case[name]
        for mode in TPB_MODES:
            entries = {tpb: t for (m, s, tpb), t in table.items()
                       if m == mode.value}
            if len(entries) < 3:
                continue
            trios.append((stats, mode, entries))

    def regret(fg, ap):
        consts = CostConstants(
            map_modes=map_fit, reduce_tr=tr, reduce_br=br,
            shuffle_per_rec=float(sh[0]), shuffle_per_rec_log=float(sh[1]),
            tpb_flush_gain=fg, tpb_atomic_pain=ap,
        )
        total = 0.0
        for stats, mode, entries in trios:
            pred = {
                tpb: estimate_cycles(
                    stats, Candidate(mode=mode, strategy=None,
                                     threads_per_block=tpb), CFG, consts)
                for tpb in entries
            }
            pick = min(pred, key=pred.get)
            best = min(t.map for t in entries.values())
            total += entries[pick].map / max(1.0, best) - 1.0
        return total

    best_tpb = None
    for fg in (0.0, 0.02, 0.05, 0.1, 0.2, 0.3):
        for ap in (0.0, 0.02, 0.05, 0.1, 0.2):
            r = regret(fg, ap)
            if best_tpb is None or r < best_tpb[0]:
                best_tpb = (r, fg, ap)
    _, fg, ap = best_tpb
    print(f"# tpb grid: regret={best_tpb[0]:.4f}", file=sys.stderr)

    print("_FACTORY_MAP = {")
    for mode in ALL_MODES:
        c = map_fit[mode.value]
        print(f'    "{mode.value}":  ({c[0]:.1f}, {c[1]:.3f}, '
              f'{c[2]:.1f}, {c[3]:.3f}, {c[4]:.1f}, {c[5]:.3f}),')
    print("}")
    for label, table in (("_FACTORY_TR", tr), ("_FACTORY_BR", br)):
        print(f"{label} = {{")
        for red_mode, c in sorted(table.items()):
            print(f'    "{red_mode}":  ({c[0]:.1f}, {c[1]:.3f}, '
                  f'{c[2]:.3f}, {c[3]:.3f}),')
        print("}")
    print(f"shuffle_per_rec = {sh[0]:.2f}")
    print(f"shuffle_per_rec_log = {sh[1]:.3f}")
    print(f"tpb_flush_gain = {fg}")
    print(f"tpb_atomic_pain = {ap}")

    consts = CostConstants(
        map_modes=map_fit, reduce_tr=tr, reduce_br=br,
        shuffle_per_rec=float(sh[0]), shuffle_per_rec_log=float(sh[1]),
        tpb_flush_gain=fg, tpb_atomic_pain=ap,
    )

    # Decision quality: price the full candidate space (modes x
    # strategies x block sizes), measure the model's pick if the sweep
    # missed it, compare against the measured best.
    bad = 0
    for name, spec, inp, has_reduce in case_list:
        stats = stats_by_case[name]
        table = measured[name]
        if not table:
            continue
        strategies = ((ReduceStrategy.TR, ReduceStrategy.BR)
                      if has_reduce else (None,))
        pred = {}
        for strat in strategies:
            for mode in ALL_MODES:
                if strat is ReduceStrategy.BR and mode is MemoryMode.GT:
                    continue
                for tpb in (64, 128, 256):
                    cand = Candidate(mode=mode, strategy=strat,
                                     threads_per_block=tpb)
                    pred[(mode, strat, tpb)] = estimate_cycles(
                        stats, cand, CFG, consts)
        mode, strat, tpb = min(pred, key=pred.get)
        pick_key = (mode.value, strat.value if strat else None, tpb)
        if pick_key not in table:
            try:
                table[pick_key] = measure(spec, inp, mode, strat, tpb)
            except Exception as exc:  # pragma: no cover
                print(f"  pick unmeasurable {name} {pick_key}: {exc!r}",
                      file=sys.stderr)
                continue
        best_key = min(table, key=lambda k: table[k].total)
        ratio = table[pick_key].total / table[best_key].total
        flag = "OK " if ratio <= 1.10 else "BAD"
        if ratio > 1.10:
            bad += 1
        print(f"{flag} {name:16s} pick={pick_key} best={best_key} "
              f"ratio={ratio:.3f}")
    print(f"{bad} case(s) beyond the 10% bar")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
