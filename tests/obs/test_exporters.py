"""Exporter schema: Chrome trace_event JSON and the JSONL log."""

import json

from repro.framework import MemoryMode, ReduceStrategy
from repro.framework.job import run_job
from repro.gpu import DeviceConfig
from repro.obs import Tracer, to_chrome_trace, write_chrome_trace, write_jsonl
from repro.obs.exporters import DEVICE_PID, HOST_PID, _lane_tid
from repro.workloads import WordCount

VALID_PH = {"X", "i", "M"}


def traced_job():
    # backend pinned: these tests assert device-lane spans (poll_wait,
    # flush_done) that only the simulator emits.
    wc = WordCount()
    inp = wc.generate("small", seed=0)
    tr = Tracer()
    res = run_job(wc.spec(), inp, mode=MemoryMode.SIO,
                  strategy=ReduceStrategy.TR,
                  config=DeviceConfig.small(1), tracer=tr, backend="sim")
    return tr, res


class TestChromeTrace:
    def setup_method(self):
        self.tr, self.res = traced_job()
        self.doc = to_chrome_trace(self.tr)

    def test_document_shape(self):
        assert set(self.doc) == {
            "traceEvents", "displayTimeUnit", "otherData"}
        for ev in self.doc["traceEvents"]:
            assert ev["ph"] in VALID_PH
            assert ev["pid"] in (HOST_PID, DEVICE_PID)
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
                assert ev["ts"] >= 0

    def test_process_and_thread_metadata(self):
        meta = [e for e in self.doc["traceEvents"] if e["ph"] == "M"]
        procs = {e["args"]["name"] for e in meta
                 if e["name"] == "process_name"}
        assert procs == {"host", "device"}
        lanes = sorted({(e.block, e.warp)
                        for e in self.tr.device_events})
        thread_tids = {e["tid"] for e in meta
                       if e["name"] == "thread_name" and e["pid"] == DEVICE_PID}
        assert thread_tids == {_lane_tid(b, w) for b, w in lanes}

    def test_host_spans_nest(self):
        """job -> phases -> kernel spans: every child interval is
        contained in its parent's, and the expected names appear."""
        spans = [e for e in self.doc["traceEvents"]
                 if e["ph"] == "X" and e["pid"] == HOST_PID]
        names = [e["name"] for e in spans]
        assert names[0].startswith("job:")
        for expected in ("io_in", "map", "map_kernel", "shuffle",
                         "reduce", "reduce_kernel", "io_out"):
            assert expected in names
        job = spans[0]
        for e in spans[1:]:
            assert e["ts"] >= job["ts"]
            assert e["ts"] + e["dur"] <= job["ts"] + job["dur"]
        # Kernel spans sit inside their phase spans.
        by_name = {e["name"]: e for e in spans}
        for kern, phase in (("map_kernel", "map"),
                            ("reduce_kernel", "reduce")):
            k, p = by_name[kern], by_name[phase]
            assert p["ts"] <= k["ts"]
            assert k["ts"] + k["dur"] <= p["ts"] + p["dur"]

    def test_device_events_present(self):
        dev = [e for e in self.doc["traceEvents"]
               if e.get("cat") == "device"]
        assert dev, "traced block produced no device events"
        cats = {e["name"] for e in dev if e["ph"] == "X"}
        assert "poll_wait" in cats  # SIO wait-signal episodes
        marks = {e["name"] for e in dev if e["ph"] == "i"}
        assert "flush_done" in marks  # collector flush epochs

    def test_written_file_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self.tr, path)
        doc = json.loads(path.read_text())
        assert doc == json.loads(json.dumps(self.doc))


class TestJsonl:
    def test_records_and_types(self, tmp_path):
        tr, _ = traced_job()
        path = tmp_path / "events.jsonl"
        write_jsonl(tr, path)
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        types = {r["type"] for r in records}
        assert types == {"span", "device"} or types == {
            "span", "instant", "device"}
        spans = [r for r in records if r["type"] == "span"]
        assert len(spans) == len(tr.spans)
        root = spans[0]
        assert root["parent"] is None and root["depth"] == 0
        for r in spans[1:]:
            assert r["depth"] >= 1 and r["parent"] is not None
        devs = [r for r in records if r["type"] == "device"]
        assert len(devs) == len(tr.device_events)
        assert all(set(r) >= {"kernel", "block", "warp", "category",
                              "start", "end"} for r in devs)
