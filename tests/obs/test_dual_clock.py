"""Dual-clock tracing: wall stamps beside the sim-cycle clock.

The contract under test:

* ``Tracer(wall_clock=True)`` stamps every span/instant with
  ``perf_counter_ns`` wall times alongside the sim clock;
* the default tracer captures **no** wall stamps, and its exports are
  field-for-field what the single-clock exporter emitted — the
  golden-trace byte-identity guarantee at the unit level;
* exporters survive an empty (span-less) tracer.
"""

import json

from repro.framework import MemoryMode, ReduceStrategy
from repro.framework.job import run_job
from repro.gpu import DeviceConfig
from repro.obs import Tracer, to_chrome_trace, write_chrome_trace, write_jsonl
from repro.workloads import WordCount


def _run(tracer, backend="fast"):
    wc = WordCount()
    inp = wc.generate("small", seed=0)
    return run_job(wc.spec(), inp, mode=MemoryMode.SIO,
                   strategy=ReduceStrategy.TR,
                   config=DeviceConfig.small(1), tracer=tracer,
                   backend=backend)


class TestWallStamps:
    def test_default_tracer_has_no_wall_stamps(self):
        tr = Tracer()
        _run(tr)
        assert not tr.wall_clock
        assert all(sp.wall_start is None and sp.wall_end is None
                   for sp in tr.spans)

    def test_wall_clock_tracer_stamps_every_span(self):
        tr = Tracer(wall_clock=True)
        _run(tr)
        assert tr.spans
        for sp in tr.spans:
            assert sp.wall_start is not None
            assert sp.wall_end is not None
            assert sp.wall_end >= sp.wall_start
            assert sp.wall_duration_ns == sp.wall_end - sp.wall_start

    def test_wall_stamps_follow_the_origin(self):
        tr = Tracer(wall_clock=True)
        _run(tr)
        assert all(sp.wall_start >= tr.wall_origin_ns for sp in tr.spans)

    def test_instants_carry_wall_time(self):
        tr = Tracer(wall_clock=True)
        with tr.span("s"):
            tr.instant("tick")
        assert tr.instants[0].wall_time is not None
        assert Tracer().instants == []

    def test_fast_backend_exec_spans_have_nonzero_wall(self):
        """The satellite: `repro-trace --backend fast` is non-empty —
        the phase-exec sub-spans carry real wall durations even though
        their sim durations are zero by design."""
        tr = Tracer(wall_clock=True)
        _run(tr, backend="fast")
        execs = [sp for sp in tr.spans
                 if sp.name in ("map_exec", "shuffle_exec", "reduce_exec")]
        assert len(execs) == 3
        assert all(sp.duration == 0 for sp in execs)  # sim clock
        assert any(sp.wall_duration_ns > 0 for sp in execs)


class TestExportParity:
    """Dual-clock must be strictly additive: with the default tracer
    the exported records carry exactly the single-clock fields."""

    def test_chrome_spans_have_no_wall_fields_by_default(self):
        tr = Tracer()
        _run(tr, backend="sim")
        doc = to_chrome_trace(tr)
        assert doc["otherData"]["clock"] == "simulated GPU cycles"
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X" and ev["pid"] == 0:
                assert "sim_ts" not in ev["args"]
                assert "sim_dur" not in ev["args"]

    def test_chrome_wall_mode_keeps_sim_clock_in_args(self):
        tr = Tracer(wall_clock=True)
        _run(tr)
        doc = to_chrome_trace(tr)
        assert "wall" in doc["otherData"]["clock"]
        host = [e for e in doc["traceEvents"]
                if e["ph"] == "X" and e["pid"] == 0]
        assert host
        for ev in host:
            assert "sim_ts" in ev["args"]
            assert "sim_dur" in ev["args"]

    def test_jsonl_wall_fields_only_on_dual_clock(self, tmp_path):
        for wall, expected in ((False, set()), (True, {"wall_start_ns",
                                                       "wall_end_ns"})):
            tr = Tracer(wall_clock=wall)
            _run(tr)
            path = tmp_path / f"ev_{wall}.jsonl"
            write_jsonl(tr, str(path))
            recs = [json.loads(line) for line in path.read_text().splitlines()]
            spans = [r for r in recs if r["type"] == "span"]
            assert spans
            for r in spans:
                assert expected <= set(r)
                if not wall:
                    assert "wall_start_ns" not in r


class TestEmptyTracer:
    """Regression guard: exporters on a tracer that never saw a span."""

    def test_chrome_trace_of_empty_tracer(self):
        doc = to_chrome_trace(Tracer())
        # Only the host metadata records; no crash, valid shape.
        assert all(e["ph"] == "M" for e in doc["traceEvents"])
        assert doc["otherData"]["clock"] == "simulated GPU cycles"

    def test_empty_wall_clock_tracer_falls_back_to_sim_form(self):
        doc = to_chrome_trace(Tracer(wall_clock=True))
        assert doc["otherData"]["clock"] == "simulated GPU cycles"

    def test_write_exporters_accept_empty_tracer(self, tmp_path):
        tr = Tracer()
        write_chrome_trace(tr, str(tmp_path / "t.json"))
        write_jsonl(tr, str(tmp_path / "e.jsonl"))
        json.load(open(tmp_path / "t.json"))
        assert (tmp_path / "e.jsonl").read_text() == ""
